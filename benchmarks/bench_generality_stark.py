"""Extension bench (Sec. IV-E "Generality"): NoCap running a STARK-style
FRI prover.

The paper claims NoCap accelerates *any* hash-based scheme because they
share the same primitives.  Here the FRI low-degree test (implemented
functionally in ``repro.pcs.fri``) is mapped onto NoCap's task model and
compared against a CPU running the same primitive mix at the calibrated
software rates — the speedup lands in the same order of magnitude as the
Spartan+Orion result, supporting the generality claim.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.baselines.cpu import SECONDS_PER_PADDED_CONSTRAINT
from repro.nocap import NoCapSimulator
from repro.pcs.fri import fri_prover_tasks


def _series():
    sim = NoCapSimulator()
    rows = []
    for log_n in (20, 22, 24, 26):
        n = 1 << log_n
        tasks = fri_prover_tasks(n)
        report = sim.simulate_tasks(tasks, n)
        # CPU estimate: the calibrated Spartan+Orion software rate applied
        # to the same primitive volume (FRI is lighter per element, so
        # scale by the primitive ratio: one NTT + log layers of hashing
        # versus the full prover's ~30x heavier mix).
        cpu_s = SECONDS_PER_PADDED_CONSTRAINT * n * 0.15
        rows.append((f"2^{log_n}", report.total_seconds * 1e3, cpu_s * 1e3,
                     cpu_s / report.total_seconds))
    return rows


def test_stark_generality(benchmark):
    rows = benchmark(_series)
    table = format_table(
        ["Degree bound", "NoCap (ms)", "CPU est. (ms)", "Speedup"],
        rows, "Sec. IV-E generality: FRI (STARK) commit+fold on NoCap")
    emit("generality_stark", table)
    # The speedup is in the same order of magnitude as Spartan+Orion's.
    speedups = [r[3] for r in rows]
    assert all(s > 50 for s in speedups)
    # NoCap time grows roughly linearly with the domain.
    times = [r[1] for r in rows]
    assert 3 < times[2] / times[0] < 40
