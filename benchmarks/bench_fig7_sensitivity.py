"""Fig. 7: parameter sensitivity — sweep the throughput of each hardware
building block individually and report relative gmean performance.

Paper reference (qualitative): performance is most sensitive to raw
arithmetic throughput; other FUs matter up to the chosen parameters;
growing the register file is negligible but shrinking it is drastic;
the chosen design point is balanced (small upside, sharp downside).
"""

from conftest import emit

from repro.analysis.figures import ascii_line_chart
from repro.analysis.tables import format_table
from repro.nocap import sensitivity_sweep

FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)
RESOURCES = ("arith", "hash", "ntt", "hbm", "rf")


def _sweep():
    return sensitivity_sweep(factors=FACTORS, resources=RESOURCES)


def test_fig7(benchmark):
    points = benchmark(_sweep)
    perf = {}
    for p in points:
        perf.setdefault(p.resource, {})[p.factor] = p.relative_performance
    table = format_table(
        ["Resource"] + [f"x{f}" for f in FACTORS],
        [(res,) + tuple(perf[res][f] for f in FACTORS) for res in RESOURCES],
        "Fig. 7: relative gmean performance when scaling one resource")
    chart = ascii_line_chart(
        {res: [(f, perf[res][f]) for f in FACTORS] for res in RESOURCES},
        title="\nFig. 7 (relative performance vs scale factor, log x):",
        log_x=True)
    emit("fig7_sensitivity", table + "\n" + chart)

    # Shape assertions mirroring the paper's observations.
    down = {r: perf[r][0.25] for r in RESOURCES}
    up = {r: perf[r][4.0] for r in RESOURCES}
    assert down["arith"] == min(down.values())   # most sensitive
    assert up["arith"] == max(up.values())
    assert up["rf"] < 1.05                        # bigger RF: negligible
    assert down["rf"] < 0.7                       # smaller RF: drastic
    assert up["hash"] < 1.02                      # hash FU sized to HBM BW
    for r in RESOURCES:
        assert up[r] < 1.6                        # balanced design point
        assert down[r] < 0.95
