"""Fig. 5: NoCap power breakdown for a 16M-constraint statement.

Paper reference: 62 W total; 13% functional units, 44% register file,
42% HBM.  The breakdown is essentially identical across benchmarks
(Sec. VIII-B), which the series below shows.
"""

from conftest import emit

from repro.analysis.figures import ascii_bar_chart
from repro.analysis.tables import format_table
from repro.nocap import NoCapSimulator, power_model


def _reference_power():
    report = NoCapSimulator().simulate(1 << 24)
    return power_model(report)


def test_fig5(benchmark):
    power = benchmark(_reference_power)
    frac = power.fractions()
    table = format_table(
        ["Component", "Watts", "Share", "Paper share"],
        [("Functional units", power.fu_watts, f"{frac['FUs']:.0%}", "13%"),
         ("Register file", power.rf_watts, f"{frac['Register file']:.0%}", "44%"),
         ("HBM", power.hbm_watts, f"{frac['HBM']:.0%}", "42%"),
         ("Other", power.other_watts, f"{frac['Other']:.0%}", "~1%"),
         ("Total", power.total_watts, "100%", "62 W")],
        "Fig. 5: power breakdown, 16M-constraint statement")

    # Stability across benchmark sizes (Sec. VIII-B).
    sim = NoCapSimulator()
    series = []
    for log_n in (24, 25, 27, 28, 30):
        p = power_model(sim.simulate(1 << log_n))
        series.append((f"2^{log_n}", p.total_watts, f"{p.fractions()['HBM']:.0%}"))
    table += "\n\n" + format_table(
        ["Statement size", "Total W", "HBM share"],
        series, "power across benchmark sizes (essentially constant):")
    table += "\n\n" + ascii_bar_chart(
        {"FUs": power.fu_watts, "Register file": power.rf_watts,
         "HBM": power.hbm_watts, "Other": power.other_watts},
        title="Fig. 5 (watts):", unit=" W")
    emit("fig5_power", table)

    assert abs(power.total_watts - 62.0) < 2.0
    assert abs(frac["FUs"] - 0.13) < 0.02
    assert abs(frac["Register file"] - 0.44) < 0.02
    assert abs(frac["HBM"] - 0.42) < 0.02
    watts = [w for _, w, _ in series]
    assert max(watts) / min(watts) < 1.1
