"""Functional prover/verifier benchmarks: real Spartan+Orion proofs over
real workload circuits at laptop scale.

These time the cryptographic implementation itself (not the performance
model) and report measured proof sizes for the uncomposed proofs — the
functional counterpart of Tables III/IV.
"""

import numpy as np
import pytest
from conftest import emit

from repro.analysis.tables import format_table
from repro.hashing import Transcript
from repro.pcs import OrionPCS, PCSParams
from repro.snark import TEST, prove, setup, verify
from repro.spartan import SpartanParams, SpartanProver, SpartanVerifier
from repro.workloads import synthetic_r1cs


def _snark_for(log_size: int):
    r1cs, pub, wit = synthetic_r1cs(log_size, band=16, seed=log_size)
    params = SpartanParams(repetitions=1)
    pcs = OrionPCS(params=PCSParams(num_rows=16),
                   rng=np.random.default_rng(1))
    return (SpartanProver(r1cs, pcs, params),
            SpartanVerifier(r1cs, pcs, params), pub, wit)


@pytest.mark.parametrize("log_size", [6, 8, 10])
def test_prove_synthetic(benchmark, log_size):
    prover, verifier, pub, wit = _snark_for(log_size)
    # A fresh transcript per round: proving mutates it.
    proof = benchmark(lambda: prover.prove(pub, wit, Transcript()))
    assert verifier.verify(pub, proof, Transcript())


@pytest.mark.parametrize("log_size", [6, 8, 10])
def test_verify_synthetic(benchmark, log_size):
    prover, verifier, pub, wit = _snark_for(log_size)
    proof = prover.prove(pub, wit, Transcript())

    def run():
        return verifier.verify(pub, proof, Transcript())

    assert benchmark(run)


def test_prove_rsa_circuit(benchmark):
    from repro.workloads import rsa_demo_circuit

    circuit, _ = rsa_demo_circuit(num_messages=1, modulus_bits=64, exponent=17)
    r1cs, pub, wit = circuit.compile()
    pk, vk = setup(r1cs, TEST)
    bundle = benchmark(lambda: prove(pk, pub, wit))
    assert verify(vk, bundle)


def test_prove_auction_circuit(benchmark):
    from repro.workloads import auction_demo_circuit

    circuit, _ = auction_demo_circuit(num_bids=16, bid_bits=16)
    r1cs, pub, wit = circuit.compile()
    pk, vk = setup(r1cs, TEST)
    bundle = benchmark(lambda: prove(pk, pub, wit))
    assert verify(vk, bundle)


def test_functional_proof_sizes(benchmark):
    """Measured (uncomposed) proof sizes vs statement size — the raw
    counterpart of Table III before Orion's inner-SNARK compression."""

    def measure():
        rows = []
        for log_size in (6, 8, 10, 12):
            prover, verifier, pub, wit = _snark_for(log_size)
            proof = prover.prove(pub, wit, Transcript())
            assert verifier.verify(pub, proof, Transcript())
            rows.append((f"2^{log_size}", proof.size_bytes() / 1024))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["Padded constraints", "Uncomposed proof (KiB)"], rows,
        "Functional-layer proof sizes (reps=1, 16-row PCS, 24 queries)")
    emit("functional_proof_sizes", table)
    sizes = [s for _, s in rows]
    assert all(b >= a for a, b in zip(sizes, sizes[1:]))
