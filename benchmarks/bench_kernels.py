"""Microbenchmarks of the functional layer's primitive kernels — the
operations NoCap's FUs implement (Sec. IV-B): modular vector arithmetic,
NTTs, hashing/Merkle trees, the sumcheck DP, and SpMV.

These measure the *Python* substrate (pytest-benchmark timings), giving
the measured per-element costs the performance model's CPU comparisons
are sanity-checked against.
"""

import numpy as np
import pytest

from repro.field import vector as fv
from repro.hashing import MerkleTree, Transcript
from repro.multilinear import prove_sumcheck
from repro.ntt import four_step_ntt, ntt
from repro.r1cs.matrices import SparseMatrix
from repro.workloads import synthetic_r1cs

RNG = np.random.default_rng(0xBE)
VEC = fv.rand_vector(1 << 16, RNG)
VEC_B = fv.rand_vector(1 << 16, RNG)


def test_vector_mul(benchmark):
    out = benchmark(fv.mul, VEC, VEC_B)
    assert out.shape == VEC.shape


def test_vector_add(benchmark):
    out = benchmark(fv.add, VEC, VEC_B)
    assert out.shape == VEC.shape


def test_vector_inner_product(benchmark):
    out = benchmark(fv.dot, VEC[:4096], VEC_B[:4096])
    assert isinstance(out, int)


@pytest.mark.parametrize("log_n", [10, 14, 16])
def test_ntt_radix2(benchmark, log_n):
    x = VEC[: 1 << log_n]
    out = benchmark(ntt, x)
    assert out.shape == x.shape


def test_ntt_four_step(benchmark):
    x = VEC[: 1 << 14]
    out = benchmark(four_step_ntt, x, False, 1 << 6)
    assert (out == ntt(x)).all()


def test_merkle_tree_build(benchmark):
    mat = VEC[: 128 * 256].reshape(128, 256)
    tree = benchmark(MerkleTree.from_columns, mat)
    assert tree.num_leaves == 256


def test_sumcheck_prover(benchmark):
    tables = [VEC[: 1 << 12], VEC_B[: 1 << 12]]

    def run():
        return prove_sumcheck(tables, Transcript())

    proof, _ = benchmark(run)
    assert proof.num_rounds == 12


def test_spmv(benchmark):
    r1cs, pub, wit = synthetic_r1cs(12, band=32, seed=5)
    z = r1cs.assemble_z(pub, wit)
    out = benchmark(r1cs.a.matvec, z)
    assert out.shape == z.shape
