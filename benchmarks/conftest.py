"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and emits
the rows both to stdout and to ``benchmarks/out/<name>.txt`` so results
survive pytest's output capture.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
