"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and emits
the rows both to stdout and to ``benchmarks/out/<name>.txt`` so results
survive pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as ``bench`` so a combined run can
    stay fast with ``-m "not bench"`` (tier-1 ``testpaths`` already excludes
    this directory)."""
    here = pathlib.Path(__file__).parent
    for item in items:
        if here in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.bench)


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
