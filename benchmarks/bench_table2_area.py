"""Table II: NoCap area breakdown in a 14nm process.

Paper reference: total 45.87 mm^2 — compute 9.95 (NTT 1.80, Mul 6.34,
Add 0.96, Hash 0.84), memory system 35.92 (RF 6.01, Benes 0.11,
PHYs 29.80).
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.nocap import area_model

PAPER = {
    "NTT FU": 1.80,
    "Multiply FU": 6.34,
    "Add FU": 0.96,
    "Hash FU": 0.84,
    "Total Compute": 9.95,
    "Reg. file (2,048 x 4 KB banks)": 6.01,
    "Benes network": 0.11,
    "Memory interface (2 x PHY)": 29.80,
    "Total memory system": 35.92,
    "Total NoCap": 45.87,
}


def test_table2(benchmark):
    breakdown = benchmark(area_model)
    table_vals = breakdown.as_table()
    table = format_table(
        ["Building block", "Area (mm^2)", "Paper (mm^2)"],
        [(k, v, PAPER[k]) for k, v in table_vals.items()],
        "Table II: NoCap area breakdown (14nm)")
    emit("table2_area", table)
    for k, v in table_vals.items():
        assert abs(v - PAPER[k]) < 0.03, k
