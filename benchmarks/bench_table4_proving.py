"""Table IV: proof-generation time for NoCap, the 32-core CPU, and
PipeZK, with NoCap's speedups.

Paper reference: gmean 586x over the CPU and 41x over PipeZK
(per-benchmark: 560-622x and 25-53x).
"""

from conftest import emit

from repro.analysis import gmean
from repro.analysis.tables import format_table
from repro.baselines import DEFAULT_CPU, PipeZkModel
from repro.nocap.simulator import prover_seconds
from repro.workloads.spec import PAPER_WORKLOADS


def _rows():
    pipezk = PipeZkModel()
    rows = []
    for w in PAPER_WORKLOADS:
        t_nocap = prover_seconds(w.raw_constraints)
        t_cpu = DEFAULT_CPU.prover_seconds(w.raw_constraints)
        t_pz = pipezk.prover_seconds(w.raw_constraints)
        rows.append((w.name, t_nocap, t_cpu, t_cpu / t_nocap,
                     w.paper_cpu_s / w.paper_nocap_s,
                     t_pz, t_pz / t_nocap,
                     w.paper_pipezk_s / w.paper_nocap_s))
    return rows


def test_table4(benchmark):
    rows = benchmark(_rows)
    table = format_table(
        ["Workload", "NoCap (s)", "CPU (s)", "vs CPU", "paper",
         "PipeZK (s)", "vs PipeZK", "paper"],
        rows, "Table IV: proof generation time and NoCap speedups")
    g_cpu = gmean([r[3] for r in rows])
    g_pz = gmean([r[6] for r in rows])
    table += (f"\ngmean speedup vs CPU:    {g_cpu:6.0f}x (paper 586x)"
              f"\ngmean speedup vs PipeZK: {g_pz:6.0f}x (paper 41x)")
    emit("table4_proving", table)
    assert abs(g_cpu - 586) / 586 < 0.06
    assert abs(g_pz - 41) / 41 < 0.10
    for row in rows:
        assert abs(row[3] - row[4]) / row[4] < 0.12, row[0]   # vs CPU
        assert abs(row[6] - row[7]) / row[7] < 0.12, row[0]   # vs PipeZK
