"""Table V: per-benchmark end-to-end runtime for NoCap and speedup over
PipeZK (prover + 10 MB/s proof send + verification).

Paper reference: totals 1.1/1.3/2.5/4.0/12.3 s; speedups 7.4x/12.1x/
19.6x/34.1x/22.4x, gmean 16.8x.
"""

from conftest import emit

from repro.analysis import gmean, table5_rows
from repro.analysis.tables import format_table

PAPER = {
    "AES": (1.1, 7.4),
    "SHA": (1.3, 12.1),
    "RSA": (2.5, 19.6),
    "Litmus": (4.0, 34.1),
    "Auction": (12.3, 22.4),
}


def test_table5(benchmark):
    rows = benchmark(table5_rows)
    table = format_table(
        ["Workload", "Prover (s)", "Send (s)", "Verifier (s)", "Total (s)",
         "Paper total", "vs PipeZK", "Paper"],
        [(r.workload, r.prover_s, r.send_s, r.verifier_s, r.total_s,
          PAPER[r.workload][0], r.speedup_vs_pipezk, PAPER[r.workload][1])
         for r in rows],
        "Table V: end-to-end runtime and speedup vs PipeZK")
    g = gmean([r.speedup_vs_pipezk for r in rows])
    table += f"\ngmean end-to-end speedup vs PipeZK: {g:.1f}x (paper 16.8x)"
    emit("table5_endtoend", table)
    assert abs(g - 16.8) / 16.8 < 0.05
    for r in rows:
        paper_total, paper_speedup = PAPER[r.workload]
        assert abs(r.total_s - paper_total) / paper_total < 0.10, r.workload
        assert abs(r.speedup_vs_pipezk - paper_speedup) / paper_speedup < 0.10
