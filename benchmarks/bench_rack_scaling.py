"""Extension bench (Sec. X future work): rack-scale strong scaling.

Projects the paper's closing observation — folding-based proofs would
let large statements shard across many NoCap chips with little
communication — using the calibrated single-chip model.  Not a paper
table; shapes asserted: near-linear scaling at low shard counts, then
aggregation/communication overheads flatten the curve.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.nocap.multiaccelerator import scaling_curve

N = 550_000_000  # the Auction statement: the largest in Table III


def _curve():
    return scaling_curve(N, accelerator_counts=[1, 2, 4, 8, 16, 32, 64])


def test_rack_scaling(benchmark):
    points = benchmark(_curve)
    table = format_table(
        ["Accelerators", "Shard (s)", "Aggregate (s)", "Comm (s)",
         "Total (s)", "Speedup", "Efficiency"],
        [(p.num_accelerators, p.shard_seconds, p.aggregation_seconds,
          p.communication_seconds, p.total_seconds, p.speedup, p.efficiency)
         for p in points],
        f"Rack-scale projection: Auction ({N / 1e6:.0f}M constraints) "
        "sharded across NoCap chips")
    emit("rack_scaling", table)

    by_s = {p.num_accelerators: p for p in points}
    assert by_s[1].speedup == 1.0
    # Mild superlinearity: sharding avoids spill rounds, so early scaling
    # is at least ~80% efficient.
    assert by_s[4].efficiency > 0.8
    # Speedup is monotone up to the knee, then flattens.
    assert by_s[16].speedup > by_s[4].speedup > by_s[1].speedup
    assert by_s[64].efficiency < by_s[4].efficiency
