"""Fig. 6: (a) runtime breakdown across tasks for CPU and NoCap, and
(b) NoCap memory-traffic breakdown.

Paper reference (NoCap): runtime ~70% sumcheck, 12% poly arith, 9% RS,
5% Merkle, 0.5% SpMV; traffic 55% sumcheck, 25% poly arith, 9% Merkle,
9% RS, 1% SpMV; overall compute utilization 60%.
CPU runtime: 70% sumcheck, 19% RS, 6% poly, 3% Merkle, 2% SpMV.
"""

from conftest import emit

from repro.analysis.figures import ascii_bar_chart
from repro.analysis.tables import format_table
from repro.baselines.cpu import CPU_TIME_FRACTIONS
from repro.nocap import NoCapSimulator

PAPER_NOCAP_TIME = {"sumcheck": 0.70, "polyarith": 0.12, "rs_encode": 0.09,
                    "merkle": 0.05, "spmv": 0.005}
PAPER_NOCAP_TRAFFIC = {"sumcheck": 0.55, "polyarith": 0.25, "merkle": 0.09,
                       "rs_encode": 0.09, "spmv": 0.01}


def _simulate():
    return NoCapSimulator().simulate(1 << 24)


def test_fig6(benchmark):
    report = benchmark(_simulate)
    tf = report.time_fractions()
    bf = report.traffic_fractions()
    families = ("sumcheck", "polyarith", "rs_encode", "merkle", "spmv")
    table = format_table(
        ["Task", "NoCap time", "paper", "NoCap traffic", "paper",
         "CPU time", "paper"],
        [(fam, f"{tf[fam]:.1%}", f"{PAPER_NOCAP_TIME[fam]:.1%}",
          f"{bf[fam]:.1%}", f"{PAPER_NOCAP_TRAFFIC[fam]:.1%}",
          f"{CPU_TIME_FRACTIONS[fam]:.1%}", f"{CPU_TIME_FRACTIONS[fam]:.1%}")
         for fam in families],
        "Fig. 6: runtime and memory-traffic breakdown by task (16M constraints)")
    table += (f"\ntotal traffic: {report.total_traffic_bytes / 1e9:.1f} GB"
              f"\ncompute utilization: {report.compute_utilization():.0%} (paper 60%)")
    table += "\n\n" + ascii_bar_chart(
        {fam: 100 * tf[fam] for fam in families},
        title="Fig. 6a, NoCap runtime share (%):", unit="%")
    table += "\n\n" + ascii_bar_chart(
        {fam: 100 * bf[fam] for fam in families},
        title="Fig. 6b, NoCap traffic share (%):", unit="%")
    emit("fig6_breakdown", table)

    for fam in families:
        assert abs(tf[fam] - PAPER_NOCAP_TIME[fam]) < 0.05, fam
        assert abs(bf[fam] - PAPER_NOCAP_TRAFFIC[fam]) < 0.05, fam
    assert abs(report.compute_utilization() - 0.60) < 0.06
