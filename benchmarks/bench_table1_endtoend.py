"""Table I: end-to-end anatomy of five prover/hardware combinations at
16M R1CS constraints over a 10 MB/s link.

Paper reference (totals, seconds): Groth16 CPU 54.00, GPU 37.45,
PipeZK 8.03; Spartan+Orion CPU 95.14, NoCap 1.09.
"""

from conftest import emit

from repro.analysis import table1_rows
from repro.analysis.tables import format_table

PAPER_TOTALS = {
    "Groth16 / CPU": 54.00,
    "Groth16 / GPU": 37.45,
    "Groth16 / PipeZK": 8.03,
    "Spartan+Orion / CPU": 95.14,
    "Spartan+Orion / NoCap": 1.09,
}


def test_table1(benchmark):
    rows = benchmark(table1_rows)
    table = format_table(
        ["zkSNARK / prover", "Prover (s)", "Send (s)", "Verifier (s)",
         "Total (s)", "Paper total (s)"],
        [(r.label, r.prover_s, r.send_s, r.verifier_s, r.total_s,
          PAPER_TOTALS[r.label]) for r in rows],
        "Table I: end-to-end execution time, 16M constraints, 10 MB/s link")
    emit("table1_endtoend", table)
    for r in rows:
        assert abs(r.total_s - PAPER_TOTALS[r.label]) / PAPER_TOTALS[r.label] < 0.05
    nocap = next(r for r in rows if "NoCap" in r.label)
    pipezk = next(r for r in rows if "PipeZK" in r.label)
    assert 6.9 < pipezk.total_s / nocap.total_s < 7.9  # paper: 7.4x
