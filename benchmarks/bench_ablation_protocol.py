"""Sec. VIII-C: effect of the three protocol optimizations.

Paper reference: on the CPU, Goldilocks64 gives 1.7x and Reed-Solomon a
further 1.2x (2.1x combined); sumcheck-input recomputation improves
NoCap by 1.1x (cutting sumcheck traffic 31%) but *hurts* the CPU by 1%,
which is why the CPU version leaves it off.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.baselines.cpu import CpuModel
from repro.nocap import NoCapSimulator

N = 16_000_000


def _ablations():
    base = CpuModel().prover_seconds(N)
    rows = [
        ("CPU, all optimizations (baseline)", base, 1.0),
        ("CPU, 256-bit field instead of Goldilocks64",
         CpuModel(use_goldilocks=False).prover_seconds(N),
         CpuModel(use_goldilocks=False).prover_seconds(N) / base),
        ("CPU, expander code instead of Reed-Solomon",
         CpuModel(use_reed_solomon=False).prover_seconds(N),
         CpuModel(use_reed_solomon=False).prover_seconds(N) / base),
        ("CPU, original codebases (both off)",
         CpuModel(use_goldilocks=False, use_reed_solomon=False)
         .prover_seconds(N),
         CpuModel(use_goldilocks=False, use_reed_solomon=False)
         .prover_seconds(N) / base),
        ("CPU, with sumcheck recomputation",
         CpuModel(use_recompute=True).prover_seconds(N),
         CpuModel(use_recompute=True).prover_seconds(N) / base),
    ]
    sim = NoCapSimulator()
    on = sim.simulate(1 << 24)
    off = sim.simulate(1 << 24, recompute=False)
    rows.append(("NoCap, with recomputation (baseline)", on.total_seconds, 1.0))
    rows.append(("NoCap, without recomputation", off.total_seconds,
                 off.total_seconds / on.total_seconds))
    traffic_cut = 1 - (on.traffic_by_family["sumcheck"]
                       / off.traffic_by_family["sumcheck"])
    return rows, traffic_cut


def test_protocol_ablations(benchmark):
    rows, traffic_cut = benchmark(_ablations)
    table = format_table(
        ["Configuration", "Prover (s)", "Slowdown vs baseline"],
        rows, "Sec. VIII-C: protocol optimization ablations (16M constraints)")
    table += (f"\nsumcheck traffic cut by recomputation: {traffic_cut:.0%} "
              "(paper 31%)")
    emit("ablation_protocol", table)

    by_label = {r[0]: r[2] for r in rows}
    assert abs(by_label["CPU, 256-bit field instead of Goldilocks64"] - 1.7) < 0.05
    assert abs(by_label["CPU, expander code instead of Reed-Solomon"] - 1.2) < 0.05
    assert abs(by_label["CPU, original codebases (both off)"] - 2.04) < 0.1
    assert abs(by_label["CPU, with sumcheck recomputation"] - 1.01) < 0.005
    assert abs(by_label["NoCap, without recomputation"] - 1.10) < 0.05
    assert abs(traffic_cut - 0.31) < 0.05
