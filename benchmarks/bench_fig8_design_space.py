"""Fig. 8: NoCap's design space — performance vs area scatter at 1 TB/s
and 2 TB/s HBM with Pareto frontiers.

Paper reference (qualitative): the chosen 45.87 mm^2 configuration sits
at the knee of the 1 TB/s frontier (the curve flattens for larger areas),
and 2 TB/s shifts the frontier to higher performance at higher area.
"""

from conftest import emit

from repro.analysis.figures import ascii_line_chart
from repro.analysis.tables import format_table
from repro.nocap import (
    DEFAULT_CONFIG,
    design_space_sweep,
    gmean_prover_seconds,
    pareto_frontier,
)
from repro.nocap.area import area_model

SWEEP_KW = dict(arith_factors=(0.25, 0.5, 1.0, 2.0, 4.0),
                ntt_factors=(0.5, 1.0, 2.0),
                hash_factors=(0.5, 1.0, 2.0),
                rf_factors=(0.5, 1.0, 2.0))


def _sweep_both():
    one = design_space_sweep(hbm_bytes_per_s=1e12, **SWEEP_KW)
    two = design_space_sweep(hbm_bytes_per_s=2e12, **SWEEP_KW)
    return one, two


def test_fig8(benchmark):
    one, two = benchmark(_sweep_both)
    f1 = pareto_frontier(one)
    f2 = pareto_frontier(two)
    chosen_area = area_model(DEFAULT_CONFIG).total
    chosen_time = gmean_prover_seconds(DEFAULT_CONFIG)

    def rows(frontier):
        return [(p.area_mm2, p.gmean_seconds, 1.0 / p.gmean_seconds)
                for p in frontier]

    table = format_table(["Area (mm^2)", "gmean time (s)", "perf (1/s)"],
                         rows(f1),
                         f"Fig. 8 Pareto frontier, 1 TB/s HBM "
                         f"({len(one)} points swept)")
    table += "\n\n" + format_table(
        ["Area (mm^2)", "gmean time (s)", "perf (1/s)"], rows(f2),
        f"Fig. 8 Pareto frontier, 2 TB/s HBM ({len(two)} points swept)")
    table += (f"\n\nchosen configuration: {chosen_area:.1f} mm^2, "
              f"gmean {chosen_time:.3f} s")
    chart = ascii_line_chart(
        {"1 TB/s": [(p.area_mm2, 1.0 / p.gmean_seconds) for p in one],
         "2 TB/s": [(p.area_mm2, 1.0 / p.gmean_seconds) for p in two],
         "chosen": [(chosen_area, 1.0 / chosen_time)]},
        title="\nFig. 8 (performance vs area):")
    emit("fig8_design_space", table + "\n" + chart)

    # The chosen point is not dominated by any swept 1 TB/s point.
    for p in one:
        assert not (p.area_mm2 < chosen_area * 0.99
                    and p.gmean_seconds < chosen_time * 0.99)
    # The frontier flattens: performance gain per area shrinks past the knee.
    big = [p for p in f1 if p.area_mm2 > chosen_area * 1.5]
    if big:
        best_big = min(p.gmean_seconds for p in big)
        assert chosen_time / best_big < 2.0  # < 2x for >1.5x the area
    # 2 TB/s reaches beyond the 1 TB/s frontier.
    assert min(p.gmean_seconds for p in f2) < min(p.gmean_seconds for p in f1)
