"""Table III: benchmark characteristics — R1CS size, proof size, and CPU
verification time for the five workloads.

Paper reference: AES 16.0M/8.1MB/134.0ms ... Auction 550M/12.5MB/276.1ms.
"""

from conftest import emit

from repro.analysis import proof_size_mb, verifier_seconds
from repro.analysis.tables import format_table
from repro.workloads.spec import PAPER_WORKLOADS


def _rows():
    rows = []
    for w in PAPER_WORKLOADS:
        rows.append((w.name, w.raw_constraints / 1e6,
                     proof_size_mb(w.raw_constraints), w.paper_proof_mb,
                     verifier_seconds(w.raw_constraints) * 1e3,
                     w.paper_verify_ms))
    return rows


def test_table3(benchmark):
    rows = benchmark(_rows)
    table = format_table(
        ["Benchmark", "R1CS (M)", "Proof (MB)", "Paper (MB)",
         "V time (ms)", "Paper (ms)"],
        rows, "Table III: proof size and verification time per benchmark")
    emit("table3_benchmarks", table)
    for name, _, size, paper_size, vms, paper_vms in rows:
        assert abs(size - paper_size) < 0.15, name
        assert abs(vms - paper_vms) < 2.0, name
