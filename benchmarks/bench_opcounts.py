"""Sec. III: disentangling algorithmic efficiency, software efficiency,
and acceleration potential.

Paper reference: Spartan+Orion does 4.94x fewer 64-bit multiplies than
Groth16, retires them 4.66x slower serially on the CPU, and scales 2.7x
at 32 cores (vs Groth16's 5.0x) — net 1.74x slower on the CPU despite
doing less work.
"""

from conftest import emit

from repro.analysis import (
    cpu_efficiency_breakdown,
    groth16_mul_count,
    spartan_orion_mul_count,
)
from repro.analysis.tables import format_table
from repro.baselines import DEFAULT_CPU, Groth16Cpu

N = 16_000_000


def _analysis():
    so_muls = spartan_orion_mul_count(N)
    g_muls = groth16_mul_count(N)
    so_time = DEFAULT_CPU.prover_seconds(N)
    g_time = Groth16Cpu().prover_seconds(N)
    b = cpu_efficiency_breakdown()
    return so_muls, g_muls, so_time, g_time, b


def test_opcount_analysis(benchmark):
    so_muls, g_muls, so_time, g_time, b = benchmark(_analysis)
    so_rate = so_muls / so_time
    g_rate = g_muls / g_time
    table = format_table(
        ["Quantity", "Spartan+Orion", "Groth16", "Ratio"],
        [("64-bit multiplies", so_muls, g_muls, g_muls / so_muls),
         ("CPU prover time (s)", so_time, g_time, so_time / g_time),
         ("mult/s on 32-core CPU", so_rate, g_rate, g_rate / so_rate),
         ("parallel speedup @32c", b.parallel_scaling_deficit * 5.0, 5.0,
          1 / b.parallel_scaling_deficit)],
        "Sec. III: operation-count analysis (16M constraints)")
    table += (f"\nidentity: {b.serial_rate_deficit} / "
              f"{b.mult_count_advantage} / (2.7/5.0) = "
              f"{b.net_slowdown_vs_groth16:.2f}x slower on CPU (paper 1.74x)")
    emit("opcounts", table)

    assert abs(g_muls / so_muls - 4.94) < 0.01
    assert abs(so_time / g_time - 1.74) < 0.05
    assert abs(b.net_slowdown_vs_groth16 - 1.74) < 0.02
