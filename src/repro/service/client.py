"""Synchronous client for the proving service.

    from repro import ServiceClient

    with ServiceClient("/tmp/repro.sock") as svc:
        envelope = svc.prove("sha", seed=7)          # submit + wait
        assert svc.verify(envelope)                  # round-trip check

:class:`ServiceClient` speaks the length-prefixed JSON protocol
(:mod:`repro.service.protocol`) over one persistent connection — strict
request/response, so a plain lock makes it thread-safe.  Server-side
failures come back as the same typed exceptions local calls raise
(:class:`~repro.errors.ConfigError`,
:class:`~repro.errors.ProverTimeoutError`,
:class:`~repro.service.protocol.QueueFullError`, ...), which is what
lets ``repro client`` reuse the CLI's exit-code mapping unchanged.

The low-level surface mirrors the job lifecycle — :meth:`submit`,
:meth:`status`, :meth:`result` — and :meth:`prove` / :meth:`verify` wrap
it in submit-then-wait convenience.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Optional, Tuple, Union

from . import protocol

#: Seconds between `result` long-polls while waiting for a job.
_POLL_WAIT_S = 5.0


def _parse_address(address: Union[str, Tuple[str, int]]):
    """``(host, port)``, ``"host:port"``, or a unix socket path."""
    if isinstance(address, tuple):
        return ("tcp", address[0], int(address[1]))
    text = str(address)
    if ":" in text and not text.startswith(("/", ".")):
        host, _, port = text.rpartition(":")
        return ("tcp", host or "127.0.0.1", int(port))
    return ("unix", text, None)


class ServiceClient:
    """One connection to a running ``repro serve`` daemon."""

    def __init__(self, address: Union[str, Tuple[str, int]],
                 *, connect_timeout_s: float = 10.0,
                 client_id: str = ""):
        self._kind, self._host, self._port = _parse_address(address)
        self.client_id = client_id
        self._lock = threading.Lock()
        if self._kind == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(connect_timeout_s)
            self._sock.connect(self._host)
        else:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=connect_timeout_s)
        # Job waits are long-poll round trips; the socket timeout only
        # needs to catch a dead server, not bound the job.
        self._sock.settimeout(max(connect_timeout_s, _POLL_WAIT_S * 4))

    # -- plumbing ----------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """One raw request/response round trip (typed errors raised)."""
        with self._lock:
            self._sock.sendall(protocol.pack_frame(payload))
            response = protocol.read_frame_sync(self._sock)
        if response is None:
            raise protocol.ServiceError(
                "server closed the connection mid-request")
        return protocol.raise_for_error(response)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- job lifecycle -----------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def submit(self, kind: str, *, circuit_id: str = "",
               preset: Optional[str] = None, seed: Optional[int] = None,
               envelope: Optional[bytes] = None, priority: int = 0,
               timeout_s: Optional[float] = None) -> str:
        """Submit one job; returns its id (may already be done on a
        proof-cache hit).  Raises
        :class:`~repro.service.protocol.QueueFullError` on backpressure."""
        payload = {"op": "submit", "kind": kind, "priority": priority}
        if circuit_id:
            payload["circuit_id"] = circuit_id
        if preset is not None:
            payload["preset"] = preset
        if seed is not None:
            payload["seed"] = int(seed)
        if envelope is not None:
            payload["envelope"] = protocol.encode_blob(envelope)
        if timeout_s is not None:
            payload["timeout_s"] = float(timeout_s)
        if self.client_id:
            payload["client"] = self.client_id
        return str(self.request(payload)["job_id"])

    def status(self, job_id: str) -> dict:
        return self.request({"op": "status", "job_id": job_id})

    def result(self, job_id: str,
               wait_s: Optional[float] = None) -> dict:
        """The job's result, long-polling until it finishes.

        ``wait_s`` bounds the total wait (None = wait forever); on
        expiry with the job still running, returns its status dict
        (``state`` != done).  A failed job raises its typed error.
        """
        t_end = None if wait_s is None else time.monotonic() + wait_s
        while True:
            step = _POLL_WAIT_S
            if t_end is not None:
                left = t_end - time.monotonic()
                if left <= 0:
                    return self.status(job_id)
                step = min(step, left)
            response = self.request(
                {"op": "result", "job_id": job_id, "wait_s": step})
            if response.get("state") in ("done", "failed"):
                return response

    # -- convenience -------------------------------------------------------

    def prove(self, circuit_id: str, *, preset: Optional[str] = None,
              seed: Optional[int] = None, priority: int = 0,
              timeout_s: Optional[float] = None,
              wait_s: Optional[float] = None) -> bytes:
        """Submit a prove job and wait for its NCPE envelope bytes."""
        job_id = self.submit("prove", circuit_id=circuit_id, preset=preset,
                             seed=seed, priority=priority,
                             timeout_s=timeout_s)
        response = self.result(job_id, wait_s=wait_s)
        if response.get("state") != "done":
            raise protocol.ServiceError(
                f"job {job_id} still {response.get('state')} after wait",
                code=protocol.E_TIMEOUT)
        return protocol.decode_blob(str(response["envelope"]))

    def verify(self, envelope: bytes, *, circuit_id: str = "",
               priority: int = 0, timeout_s: Optional[float] = None,
               wait_s: Optional[float] = None) -> bool:
        """Submit a verify job; True iff the proof is valid."""
        job_id = self.submit("verify", envelope=envelope,
                             circuit_id=circuit_id, priority=priority,
                             timeout_s=timeout_s)
        response = self.result(job_id, wait_s=wait_s)
        if response.get("state") != "done":
            raise protocol.ServiceError(
                f"job {job_id} still {response.get('state')} after wait",
                code=protocol.E_TIMEOUT)
        return bool(response.get("valid"))

    def stats(self) -> dict:
        return dict(self.request({"op": "stats"})["stats"])

    def shutdown_server(self) -> dict:
        """Ask the daemon to drain and exit (returns its ack)."""
        return self.request({"op": "shutdown"})
