"""The proving service daemon: asyncio front end, pooled prover back end.

Architecture (see ``docs/SERVICE.md`` for the operator view)::

    client ──frames──▶ asyncio connection handler
                          │  submit: admission control
                          ▼
                 BoundedJobQueue (priority + per-client fairness)
                          │  dispatcher task, one per job slot
                          ▼
                 run_in_executor ──▶ _run_job (worker thread)
                          │            KeyCache / ProofCache
                          │            prove() / verify()  [ProverPool]
                          ▼
                 job done/failed → per-job asyncio.Event → result frames

The event loop only ever shuffles frames and queue entries; proving runs
on a small :class:`~concurrent.futures.ThreadPoolExecutor` so a 30 s
paper-preset proof never blocks a ``status`` poll.  Job bodies call the
ordinary lifecycle API, which means PR 6's supervision (worker restarts,
serial degradation, cooperative deadlines) and PR 7's telemetry (flight
recorder, latency histograms) apply to service traffic unchanged — a
killed pool worker becomes a recovered job, not a dropped one, and every
job leaves a :class:`~repro.obs.events.JobReport` behind.

Failure contract: a job that fails carries a typed error (name +
message) in its ``status``/``result`` responses; the connection never
hangs.  Submissions past the queue bound are rejected with the
429-style :data:`~repro.service.protocol.E_QUEUE_FULL` before any work
is queued.  On shutdown the daemon stops accepting, fails queued jobs
with :data:`~repro.service.protocol.E_SHUTTING_DOWN`, waits for running
jobs, then tears down the prover pool (shared memory included).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import ConfigError
from ..obs.events import FLIGHT as _FLIGHT
from ..obs.metrics import METRICS as _METRICS
from ..parallel.kernels import _maybe_fault
from . import protocol
from .cache import (
    DEFAULT_KEY_CACHE_BYTES,
    DEFAULT_PROOF_CACHE_BYTES,
    KeyCache,
    ProofCache,
    proof_cache_key,
)
from .queue import DEFAULT_MAX_DEPTH, DEFAULT_MAX_PER_CLIENT, BoundedJobQueue


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune, with production-ish defaults."""

    host: str = "127.0.0.1"
    port: int = 0                    # 0 = OS-assigned (reported on start)
    unix_socket: Optional[str] = None
    queue_depth: int = DEFAULT_MAX_DEPTH
    max_per_client: int = DEFAULT_MAX_PER_CLIENT
    job_slots: int = 1               # concurrent executor threads
    workers: Optional[int] = None    # ProverPool fan-out inside a job
    preset: str = "test-fast"        # default preset for prove jobs
    key_cache_bytes: int = DEFAULT_KEY_CACHE_BYTES
    proof_cache_bytes: int = DEFAULT_PROOF_CACHE_BYTES
    timeout_s: Optional[float] = 120.0   # default per-job deadline
    max_results: int = 1024          # finished jobs kept for `result`

    def __post_init__(self) -> None:
        if self.job_slots < 1:
            raise ConfigError(
                f"job_slots must be >= 1, got {self.job_slots}")
        if self.workers is not None and self.workers > 1 \
                and self.job_slots > 1:
            # The ProverPool is not thread-safe: with intra-job fan-out
            # the pool is the parallelism, so jobs must serialize.
            raise ConfigError(
                "job_slots must be 1 when workers > 1 (the prover pool "
                "serializes dispatch; parallelism comes from the pool)")


@dataclass
class Job:
    """One submitted unit of work and its lifecycle state."""

    job_id: str
    kind: str                        # "prove" | "verify"
    client: str
    circuit_id: str = ""
    preset: str = ""
    seed: Optional[int] = None
    priority: int = 0
    timeout_s: Optional[float] = None
    envelope: Optional[bytes] = None     # verify input / prove output
    state: str = "queued"
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cached: bool = False
    valid: Optional[bool] = None         # verify outcome
    error: Optional[BaseException] = None
    report: Optional[dict] = None        # JobReport.to_dict() of the job
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def status_dict(self) -> dict:
        out = {
            "job_id": self.job_id, "kind": self.kind, "state": self.state,
            "circuit_id": self.circuit_id, "preset": self.preset,
            "cached": self.cached,
        }
        if self.finished_at is not None and self.started_at is not None:
            out["run_s"] = round(self.finished_at - self.started_at, 6)
        if self.state == "failed" and self.error is not None:
            out["error"] = type(self.error).__name__
            out["message"] = str(self.error)
        if self.valid is not None:
            out["valid"] = self.valid
        return out


class ProvingService:
    """The daemon behind ``repro serve``.

    Use :meth:`start` / :meth:`stop` from an event loop, or
    :func:`serve_forever` as the blocking entry point.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.queue = BoundedJobQueue(self.config.queue_depth,
                                     self.config.max_per_client)
        self.key_cache = KeyCache(self.config.key_cache_bytes)
        self.proof_cache = ProofCache(self.config.proof_cache_bytes)
        self.jobs: "Dict[str, Job]" = {}
        self._job_order: list = []       # insertion order, for retention
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatchers: list = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pool = None
        self._accepting = False
        self._stopping = False
        self._stopped = asyncio.Event()
        self._started_at = 0.0
        self._jobs_done = 0
        self._jobs_failed = 0
        self.address: Optional[Any] = None   # (host, port) or unix path

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        cfg = self.config
        _METRICS.enabled = True
        self._executor = ThreadPoolExecutor(
            max_workers=cfg.job_slots, thread_name_prefix="repro-job")
        if cfg.workers is not None and cfg.workers > 1:
            from ..parallel import get_pool

            self._pool = get_pool(cfg.workers)
        if cfg.unix_socket:
            with contextlib.suppress(OSError):
                os.unlink(cfg.unix_socket)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=cfg.unix_socket)
            self.address = cfg.unix_socket
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=cfg.host, port=cfg.port)
            sock = self._server.sockets[0]
            self.address = sock.getsockname()[:2]
        self._dispatchers = [
            asyncio.ensure_future(self._dispatch_loop())
            for _ in range(cfg.job_slots)]
        self._accepting = True
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        """Graceful shutdown: drain, tear down, leave nothing behind.

        Idempotent: concurrent callers (in-band ``shutdown`` op plus a
        signal) all wait for the one real teardown to complete.
        """
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Fail whatever never started; clients polling `result` get a
        # typed 503, not silence.
        while True:
            job = self.queue.get_nowait()
            if job is None:
                break
            self._finish_job(job, error=protocol.ServiceError(
                "server shutting down before job started",
                code=protocol.E_SHUTTING_DOWN))
        # Let running jobs finish: cancel the dispatch loops (they are
        # either awaiting the queue or awaiting an executor future — the
        # latter shields the job body, which runs to completion).
        running = [j for j in self.jobs.values() if j.state == "running"]
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        for job in running:
            await job.done.wait()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        from ..parallel import shutdown as pool_shutdown

        pool_shutdown()
        self._pool = None
        if self.config.unix_socket:
            with contextlib.suppress(OSError):
                os.unlink(self.config.unix_socket)
        self._stopped.set()

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername") or "unix"
        default_client = f"{peer}" if peer else "unix"
        try:
            while True:
                try:
                    request = await protocol.read_frame_async(reader)
                except protocol.FrameError as exc:
                    # Framing is broken; answer once, then drop the
                    # connection (we can no longer find frame boundaries).
                    writer.write(protocol.pack_frame(
                        protocol.error_from_exception(exc)))
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._handle_request(request,
                                                      default_client)
                writer.write(protocol.pack_frame(response))
                await writer.drain()
                if request.get("op") == "shutdown":
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_request(self, request: dict,
                              default_client: str) -> dict:
        t0 = time.perf_counter()
        op = str(request.get("op", ""))
        try:
            if self._stopping and op not in ("ping", "stats", "status",
                                             "result"):
                raise protocol.ServiceError(
                    "server is shutting down",
                    code=protocol.E_SHUTTING_DOWN)
            if op == "ping":
                response = protocol.ok_response(
                    version=protocol.PROTOCOL_VERSION, pid=os.getpid())
            elif op == "submit":
                response = self._op_submit(request, default_client)
            elif op == "status":
                response = self._op_status(request)
            elif op == "result":
                response = await self._op_result(request)
            elif op == "stats":
                response = protocol.ok_response(stats=self.stats())
            elif op == "shutdown":
                asyncio.get_running_loop().create_task(
                    self._shutdown_soon())
                response = protocol.ok_response(stopping=True)
            else:
                raise protocol.ServiceError(
                    f"unknown op {op!r}", code=protocol.E_BAD_REQUEST)
        except Exception as exc:  # noqa: BLE001 - wire boundary
            response = protocol.error_from_exception(exc)
        _METRICS.observe("service_request_seconds",
                         time.perf_counter() - t0, op=op or "unknown")
        return response

    async def _shutdown_soon(self) -> None:
        # A beat of delay lets the shutdown response flush first.
        await asyncio.sleep(0)
        await self.stop()

    # -- ops ---------------------------------------------------------------

    def _op_submit(self, request: dict, default_client: str) -> dict:
        kind = str(request.get("kind", ""))
        if kind not in protocol.JOB_KINDS:
            raise protocol.ServiceError(
                f"kind must be one of {protocol.JOB_KINDS}, got {kind!r}",
                code=protocol.E_BAD_REQUEST)
        client = str(request.get("client") or default_client)
        priority = int(request.get("priority", 0))
        timeout_s = request.get("timeout_s", self.config.timeout_s)
        if timeout_s is not None:
            timeout_s = float(timeout_s)
        job = Job(job_id=f"svc-{_FLIGHT.next_job_id()}", kind=kind,
                  client=client, priority=priority, timeout_s=timeout_s)
        if kind == "prove":
            job.circuit_id = str(request.get("circuit_id", ""))
            if not job.circuit_id:
                raise protocol.ServiceError(
                    "prove requires circuit_id",
                    code=protocol.E_BAD_REQUEST)
            from ..workloads.registry import resolve_workload

            job.circuit_id = resolve_workload(job.circuit_id)
            job.preset = str(request.get("preset") or self.config.preset)
            from ..snark import preset_by_name

            preset_by_name(job.preset)  # fail fast on unknown presets
            seed = request.get("seed")
            job.seed = None if seed is None else int(seed)
            # Proof-cache fast path: answer at submit time, skip the
            # queue entirely.  Key inputs are resolved lazily in the job
            # body on a miss; here we can only consult the cache when
            # the statement's keys are already cached (no compile work
            # on the event loop).
            hit = self._proof_cache_probe(job)
            if hit is not None:
                job.envelope = hit
                job.cached = True
                self._register_job(job)
                self._finish_job(job)
                return protocol.ok_response(job_id=job.job_id,
                                            state=job.state, cached=True)
        else:
            blob = request.get("envelope")
            if not blob:
                raise protocol.ServiceError(
                    "verify requires envelope",
                    code=protocol.E_BAD_REQUEST)
            job.envelope = protocol.decode_blob(str(blob))
            job.circuit_id = str(request.get("circuit_id", ""))
        self._register_job(job)
        try:
            self.queue.put(job, priority=priority, client=client)
        except protocol.QueueFullError:
            self._forget_job(job)
            raise
        return protocol.ok_response(job_id=job.job_id, state=job.state,
                                    cached=False)

    def _proof_cache_probe(self, job: Job) -> Optional[bytes]:
        """Cache lookup that never compiles: only when the statement's
        keys are hot can we form the content address cheaply.  Uses
        counter-neutral peeks (a probe miss falls through to the counted
        lookup inside the job body); a probe *hit* is a real
        proof-cache hit and is counted as one."""
        entry = self.key_cache._lru.peek((job.circuit_id, job.preset))
        if entry is None:
            return None
        key = proof_cache_key(job.preset, job.circuit_id, entry.public,
                              job.seed)
        hit = self.proof_cache._lru.peek(key)
        if hit is not None:
            self.proof_cache._lru.hits += 1
            _METRICS.inc("service.proof_cache.hits")
        return hit

    def _op_status(self, request: dict) -> dict:
        job = self._find_job(request)
        return protocol.ok_response(**job.status_dict())

    async def _op_result(self, request: dict) -> dict:
        job = self._find_job(request)
        wait_s = float(request.get("wait_s", 0.0) or 0.0)
        if not job.done.is_set() and wait_s > 0:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.shield(job.done.wait()), timeout=wait_s)
        if not job.done.is_set():
            # Long-poll expired with the job still in flight: report the
            # state; the client polls again.  Not an error.
            return protocol.ok_response(**job.status_dict())
        if job.state == "failed":
            return protocol.error_from_exception(job.error)
        fields = job.status_dict()
        if job.kind == "prove" and job.envelope is not None:
            fields["envelope"] = protocol.encode_blob(job.envelope)
        if job.report is not None:
            fields["report"] = job.report
        return protocol.ok_response(**fields)

    def _find_job(self, request: dict) -> Job:
        job_id = str(request.get("job_id", ""))
        job = self.jobs.get(job_id)
        if job is None:
            raise protocol.ServiceError(
                f"unknown job id {job_id!r}", code=protocol.E_NOT_FOUND)
        return job

    # -- job bookkeeping ---------------------------------------------------

    def _register_job(self, job: Job) -> None:
        self.jobs[job.job_id] = job
        self._job_order.append(job.job_id)
        # Bounded retention: forget the oldest *finished* jobs once over
        # budget, so a long-lived daemon cannot leak envelopes.
        while len(self._job_order) > self.config.max_results:
            for i, jid in enumerate(self._job_order):
                old = self.jobs.get(jid)
                if old is None or old.done.is_set():
                    del self._job_order[i]
                    self.jobs.pop(jid, None)
                    break
            else:
                break  # everything live; retention resumes later

    def _forget_job(self, job: Job) -> None:
        self.jobs.pop(job.job_id, None)
        with contextlib.suppress(ValueError):
            self._job_order.remove(job.job_id)

    def _finish_job(self, job: Job,
                    error: Optional[BaseException] = None) -> None:
        job.finished_at = time.monotonic()
        if error is not None:
            job.error = error
            job.state = "failed"
            self._jobs_failed += 1
            _METRICS.inc("service.jobs_failed")
        else:
            job.state = "done"
            self._jobs_done += 1
            _METRICS.inc("service.jobs_done")
        _METRICS.observe("service_job_seconds",
                         job.finished_at - job.submitted_at, kind=job.kind)
        job.done.set()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self.queue.get()
            job.state = "running"
            job.started_at = time.monotonic()
            # shield: a cancelled dispatcher (shutdown) must not abandon
            # a job the executor thread is still running — the body
            # completes and finishes the job via call_soon_threadsafe.
            with contextlib.suppress(Exception):
                await asyncio.shield(
                    loop.run_in_executor(self._executor,
                                         self._run_job, job, loop))

    def _run_job(self, job: Job, loop: asyncio.AbstractEventLoop) -> None:
        """Job body (worker thread): lifecycle API + caches.

        Always finishes the job — the per-job Event is the contract that
        keeps clients from hanging.  Completion is marshalled back onto
        the event loop (asyncio events are not thread-safe to set).
        """
        error: Optional[BaseException] = None
        try:
            # Chaos-harness injection point: `REPRO_FAULTS` plans naming
            # site "service_job" fire here, inside the failure contract —
            # the injected exception becomes a typed job error.
            _maybe_fault("service_job")
            if job.kind == "prove":
                self._run_prove(job)
            else:
                self._run_verify(job)
        except Exception as exc:  # noqa: BLE001 - typed error to client
            error = exc
        loop.call_soon_threadsafe(self._finish_job, job, error)

    def _run_prove(self, job: Job) -> None:
        from ..snark import prove

        entry = self.key_cache.get_or_build(job.circuit_id, job.preset)
        key = proof_cache_key(job.preset, job.circuit_id, entry.public,
                              job.seed)
        cached = self.proof_cache.get(key)
        if cached is not None:
            job.envelope = cached
            job.cached = True
            return
        bundle = prove(entry.pk, entry.public, entry.witness,
                       seed=job.seed, pool=self._pool,
                       circuit_id=job.circuit_id,
                       timeout_s=job.timeout_s, attach_report=True)
        job.envelope = bundle.to_bytes()
        if bundle.report is not None:
            job.report = bundle.report.to_dict()
        self.proof_cache.put(key, job.envelope)

    def _run_verify(self, job: Job) -> None:
        from ..snark import ProofBundle, verify

        bundle = ProofBundle.from_bytes(job.envelope)
        circuit_id = job.circuit_id or bundle.circuit_id
        if not circuit_id:
            raise ConfigError(
                "envelope carries no circuit id; pass circuit_id to name "
                "the statement it proves")
        job.circuit_id = circuit_id
        job.preset = bundle.preset_name
        entry = self.key_cache.get_or_build(circuit_id, bundle.preset_name)
        job.valid = verify(entry.vk, bundle)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3)
            if self._started_at else 0.0,
            "pid": os.getpid(),
            "accepting": self._accepting,
            "jobs_done": self._jobs_done,
            "jobs_failed": self._jobs_failed,
            "jobs_tracked": len(self.jobs),
            "queue": self.queue.stats(),
            "pk_cache": self.key_cache.stats(),
            "proof_cache": self.proof_cache.stats(),
            "config": {
                "job_slots": self.config.job_slots,
                "workers": self.config.workers,
                "preset": self.config.preset,
                "queue_depth": self.config.queue_depth,
                "max_per_client": self.config.max_per_client,
            },
        }


async def _serve(config: ServiceConfig) -> None:
    service = ProvingService(config)
    await service.start()
    where = (service.address if isinstance(service.address, str)
             else "%s:%d" % tuple(service.address))
    print(f"repro serve: listening on {where} "
          f"(pid {os.getpid()}, queue {config.queue_depth}, "
          f"job slots {config.job_slots}, preset {config.preset})",
          flush=True)
    loop = asyncio.get_running_loop()
    stop_signal = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(sig, stop_signal.set)
    # Either a signal or an in-band `shutdown` op ends the daemon.
    while not service._stopping:
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(stop_signal.wait(), timeout=0.2)
        if stop_signal.is_set():
            break
    await service.stop()
    print("repro serve: drained and stopped", flush=True)


def serve_forever(config: ServiceConfig) -> int:
    """Blocking entry point for ``repro serve``."""
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:  # pragma: no cover - signal race
        pass
    return 0
