"""Wire protocol of the proving service: length-prefixed JSON frames.

One frame is ``u32 big-endian payload length | utf-8 JSON object``.  The
connection is strictly request/response — the client writes one request
frame and reads exactly one response frame before sending the next — so
framing never needs message ids, and a synchronous client stays a loop
of two blocking calls.  Binary blobs (proof envelopes) travel base64'd
inside the JSON.

Parsing follows the envelope parser's posture (``docs/ROBUSTNESS.md``):
every length is bounds-checked before allocation
(:data:`MAX_FRAME_BYTES`), payloads must decode to a JSON *object*, and
a malformed frame is answered with a typed error response — never a
crash, never a hang.

Requests carry ``{"op": <name>, ...}``; responses carry ``{"ok": true,
...}`` or ``{"ok": false, "code": <int>, "error": <type name>,
"message": <str>}``.  Error codes are HTTP-flavored
(:data:`E_QUEUE_FULL` is the 429-style backpressure signal); the client
maps the ``error`` type name back onto the repro error taxonomy so CLI
exit codes (``docs/API.md``) carry through the socket unchanged.
"""

from __future__ import annotations

import asyncio
import base64
import json
import socket
import struct
from typing import Optional

from ..errors import (
    ConfigError,
    DeserializationError,
    ProverTimeoutError,
    ReproError,
    VerificationError,
)

#: Frame length prefix: one unsigned 32-bit big-endian integer.
LEN_STRUCT = struct.Struct(">I")

#: Hard cap on a single frame's JSON payload.  A base64'd paper-preset
#: envelope is ~2 MB; 64 MiB leaves room for large batches while keeping
#: a malicious length prefix from allocating unbounded memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Protocol revision, echoed by ``ping`` so clients can detect skew.
PROTOCOL_VERSION = 1

# -- error codes (HTTP-flavored; see docs/SERVICE.md) -----------------------
E_BAD_REQUEST = 400     # malformed JSON, unknown op, invalid field
E_NOT_FOUND = 404       # unknown job id
E_TIMEOUT = 408         # job deadline expired (ProverTimeoutError)
E_TOO_LARGE = 413       # frame exceeds MAX_FRAME_BYTES
E_QUEUE_FULL = 429      # bounded queue (or per-client cap) rejected the job
E_INTERNAL = 500        # unexpected server-side failure
E_SHUTTING_DOWN = 503   # server is draining; retry elsewhere/later

#: Submittable job kinds.
JOB_KINDS = ("prove", "verify")

#: Job lifecycle states reported by ``status``.
JOB_STATES = ("queued", "running", "done", "failed")


class ServiceError(ReproError):
    """A typed failure reported by (or about) the proving service.

    ``code`` is the protocol error code the server attached; client-side
    transport failures use :data:`E_INTERNAL`.
    """

    def __init__(self, message: str, *, code: int = E_INTERNAL):
        self.code = code
        super().__init__(message)


class QueueFullError(ServiceError):
    """429-style backpressure: the bounded job queue (or the caller's
    per-client fairness cap) refused the submission.  Retry with backoff."""

    def __init__(self, message: str):
        super().__init__(message, code=E_QUEUE_FULL)


class FrameError(DeserializationError):
    """A malformed protocol frame (bad length prefix, oversized payload,
    non-JSON body).  Subclasses DeserializationError so the CLI's
    exit-code mapping (4) applies unchanged."""


# -- blob helpers -----------------------------------------------------------

def encode_blob(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def decode_blob(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, AttributeError, UnicodeEncodeError) as exc:
        raise FrameError(f"invalid base64 blob: {exc}") from None


# -- frame codec ------------------------------------------------------------

def pack_frame(payload: dict) -> bytes:
    """Serialize one JSON object to its wire frame."""
    raw = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(raw) > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload {len(raw)} bytes exceeds cap "
                         f"{MAX_FRAME_BYTES}")
    return LEN_STRUCT.pack(len(raw)) + raw


def _parse_payload(raw: bytes) -> dict:
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise FrameError("frame payload must be a JSON object, got "
                         f"{type(obj).__name__}")
    return obj


def _checked_length(prefix: bytes) -> int:
    (length,) = LEN_STRUCT.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds cap "
                         f"{MAX_FRAME_BYTES}")
    return length


async def read_frame_async(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one frame from an asyncio stream; None on clean EOF."""
    try:
        prefix = await reader.readexactly(LEN_STRUCT.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    length = _checked_length(prefix)
    try:
        raw = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        raise FrameError("connection closed mid-frame") from None
    return _parse_payload(raw)


def read_frame_sync(sock: socket.socket) -> Optional[dict]:
    """Read one frame from a blocking socket; None on clean EOF."""
    prefix = _recv_exact(sock, LEN_STRUCT.size)
    if prefix is None:
        return None
    length = _checked_length(prefix)
    raw = _recv_exact(sock, length)
    if raw is None:
        raise FrameError("connection closed mid-frame")
    return _parse_payload(raw)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """``n`` bytes from a blocking socket; None on EOF at a frame
    boundary, :class:`FrameError` on EOF mid-read."""
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if not buf:
                return None
            raise FrameError("connection closed mid-frame")
        buf.extend(chunk)
    return bytes(buf)


# -- response shaping -------------------------------------------------------

def ok_response(**fields) -> dict:
    fields["ok"] = True
    return fields


def error_response(code: int, error: str, message: str) -> dict:
    return {"ok": False, "code": int(code), "error": error,
            "message": message}


def error_from_exception(exc: BaseException) -> dict:
    """Map a server-side exception to its wire error response."""
    name = type(exc).__name__
    if isinstance(exc, QueueFullError):
        code = E_QUEUE_FULL
    elif isinstance(exc, ProverTimeoutError):
        code = E_TIMEOUT
    elif isinstance(exc, FrameError):
        code = E_TOO_LARGE if "exceeds cap" in str(exc) else E_BAD_REQUEST
    elif isinstance(exc, (DeserializationError, ConfigError, ValueError,
                          TypeError, KeyError)):
        code = E_BAD_REQUEST
    elif isinstance(exc, ServiceError):
        code = exc.code
    else:
        code = E_INTERNAL
    return error_response(code, name, str(exc))


#: Error type names reconstructed client-side onto the repro taxonomy,
#: so `repro client` exits with the same codes as local commands.
_ERROR_TYPES = {
    "ConfigError": ConfigError,
    "DeserializationError": DeserializationError,
    "FrameError": FrameError,
    "VerificationError": VerificationError,
    "ProverTimeoutError": ProverTimeoutError,
    "QueueFullError": QueueFullError,
}


def raise_for_error(response: dict) -> dict:
    """Return ``response`` if ``ok``; raise the typed client-side error
    otherwise (the error taxonomy crosses the wire by type name)."""
    if response.get("ok"):
        return response
    name = str(response.get("error", "ServiceError"))
    message = str(response.get("message", "service request failed"))
    code = int(response.get("code", E_INTERNAL))
    exc_type = _ERROR_TYPES.get(name)
    if exc_type is QueueFullError:
        raise QueueFullError(message)
    if exc_type is ProverTimeoutError:
        raise ProverTimeoutError(message)
    if exc_type is not None:
        raise exc_type(message)
    raise ServiceError(f"{name}: {message}", code=code)
