"""Proving-as-a-service: daemon, client, protocol, queue, and caches.

The long-running complement to the one-shot lifecycle API
(:mod:`repro.snark`): ``repro serve`` keeps proving keys, a proof
cache, and a warm :class:`~repro.parallel.ProverPool` resident across
requests, and :class:`ServiceClient` (also exported from :mod:`repro`)
talks to it over a unix or TCP socket.  See ``docs/SERVICE.md``.
"""

from .cache import KeyCache, LRUBytesCache, ProofCache, proof_cache_key
from .client import ServiceClient
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    QueueFullError,
    ServiceError,
)
from .queue import BoundedJobQueue
from .server import Job, ProvingService, ServiceConfig, serve_forever

__all__ = [
    "BoundedJobQueue",
    "FrameError",
    "Job",
    "KeyCache",
    "LRUBytesCache",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProofCache",
    "ProvingService",
    "QueueFullError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "proof_cache_key",
    "serve_forever",
]
