"""Service caches: proving/verifying keys and content-addressed proofs.

Two caches keep the daemon hot across requests:

* :class:`KeyCache` — one entry per ``(circuit_id, preset)``: the
  compiled circuit's keys plus its demo assignment, built once via
  :func:`repro.snark.setup` and reused by every subsequent job on that
  statement.  Keygen is the part of a request that cannot be
  parallelized away, so amortizing it is where a persistent service
  beats a fresh CLI process.

* :class:`ProofCache` — content-addressed envelopes: requests are keyed
  by ``sha256(preset | circuit | public inputs | seed)``
  (:func:`proof_cache_key`), and a hit returns the *byte-identical*
  NCPE envelope of the earlier proof without touching the prover.
  Deterministic proving (fixed seed ⇒ fixed bytes, PR 4) is what makes
  this sound: same key ⇒ same statement and randomness ⇒ same proof.
  Unseeded requests hash the seed's absence, so they also dedup against
  each other (the first proof's bytes serve every repeat), while
  distinct explicit seeds keep distinct entries.

Both are LRU-bounded **by bytes**, not entry count, because one
paper-preset key dwarfs a hundred test-preset envelopes.  Hit/miss/
eviction counters and byte gauges land in the metrics registry under
``service.pk_cache.*`` / ``service.proof_cache.*``.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from ..obs.metrics import METRICS as _METRICS

#: Default byte budgets (overridable via ServiceConfig / CLI flags).
DEFAULT_KEY_CACHE_BYTES = 256 * 1024 * 1024
DEFAULT_PROOF_CACHE_BYTES = 64 * 1024 * 1024


class LRUBytesCache:
    """An LRU map bounded by the summed byte size of its values.

    ``get`` refreshes recency; ``put`` evicts least-recently-used
    entries until the new value fits.  A value larger than the whole
    budget is simply not cached (callers still hold the object they
    built).  Counters are mirrored into METRICS under
    ``service.<label>.hits/misses/evictions`` with a
    ``service.<label>.bytes`` gauge.
    """

    def __init__(self, max_bytes: int, label: str):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.label = label
        self._entries: "OrderedDict[Any, Tuple[Any, int]]" = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            _METRICS.inc(f"service.{self.label}.misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        _METRICS.inc(f"service.{self.label}.hits")
        return entry[0]

    def peek(self, key: Any) -> Optional[Any]:
        """Like :meth:`get` but without touching the hit/miss counters —
        for probe paths whose miss falls through to a counted lookup."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry[0]

    def put(self, key: Any, value: Any, size_bytes: int) -> None:
        size_bytes = int(size_bytes)
        if size_bytes > self.max_bytes:
            return  # would evict everything and still not fit
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes -= old[1]
        while self._entries and self.bytes + size_bytes > self.max_bytes:
            _k, (_v, sz) = self._entries.popitem(last=False)
            self.bytes -= sz
            self.evictions += 1
            _METRICS.inc(f"service.{self.label}.evictions")
        self._entries[key] = (value, size_bytes)
        self.bytes += size_bytes
        _METRICS.gauge(f"service.{self.label}.bytes", self.bytes)
        _METRICS.gauge(f"service.{self.label}.entries", len(self._entries))

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class KeyEntry:
    """One compiled statement: keys plus the demo assignment."""

    pk: Any                  # ProvingKey
    vk: Any                  # VerifyingKey
    public: np.ndarray       # the workload's canonical public inputs
    witness: np.ndarray      # the workload's canonical witness


class KeyCache:
    """``(circuit_id, preset_name)`` → :class:`KeyEntry`, LRU by bytes.

    Entry size is estimated by pickling the proving key — the dominant
    object, and exactly what :func:`repro.snark.prove_many` ships to
    workers, so the estimate matches real broadcast cost.
    """

    def __init__(self, max_bytes: int = DEFAULT_KEY_CACHE_BYTES):
        self._lru = LRUBytesCache(max_bytes, "pk_cache")

    def get_or_build(self, circuit_id: str, preset_name: str) -> KeyEntry:
        """The cached entry, or build-compile-setup-insert on miss.

        Raises :class:`~repro.errors.ConfigError` for unknown circuit
        ids or presets — the caller maps that to a 400.
        """
        from ..snark import preset_by_name, setup
        from ..workloads.registry import build_workload

        key = (circuit_id, preset_name)
        entry = self._lru.get(key)
        if entry is not None:
            return entry
        name, circuit = build_workload(circuit_id)
        preset = preset_by_name(preset_name)
        r1cs, public, witness = circuit.compile()
        pk, vk = setup(r1cs, preset)
        entry = KeyEntry(pk=pk, vk=vk,
                         public=np.asarray(public, dtype=np.uint64),
                         witness=np.asarray(witness, dtype=np.uint64))
        size = len(pickle.dumps(pk)) + public.nbytes + witness.nbytes
        self._lru.put(key, entry, size)
        return entry

    def stats(self) -> dict:
        return self._lru.stats()


def proof_cache_key(preset_name: str, circuit_id: str, public: np.ndarray,
                    seed: Optional[int]) -> str:
    """Content address of a prove request: sha256 over the statement and
    the randomness choice.

    The seed participates because proof bytes depend on it: two requests
    collide only when they would provably produce identical envelopes.
    ``seed=None`` hashes as its own marker, so unseeded requests dedup
    against each other (the first proof's bytes are what every repeat
    gets back) but never against an explicitly seeded one.
    """
    h = hashlib.sha256()
    h.update(b"ncpe-proof-v1\0")
    h.update(preset_name.encode("utf-8") + b"\0")
    h.update(circuit_id.encode("utf-8") + b"\0")
    h.update(b"none" if seed is None else str(int(seed)).encode("ascii"))
    h.update(b"\0")
    h.update(np.ascontiguousarray(
        np.asarray(public, dtype=np.uint64)).tobytes())
    return h.hexdigest()


class ProofCache:
    """Content-addressed envelope store: hex digest → NCPE bytes."""

    def __init__(self, max_bytes: int = DEFAULT_PROOF_CACHE_BYTES):
        self._lru = LRUBytesCache(max_bytes, "proof_cache")

    def get(self, key: str) -> Optional[bytes]:
        return self._lru.get(key)

    def put(self, key: str, envelope: bytes) -> None:
        self._lru.put(key, envelope, len(envelope))

    def stats(self) -> dict:
        return self._lru.stats()
