"""Bounded, client-fair priority queue for the proving service.

The admission-control half of the service's backpressure story
(``docs/SERVICE.md``): the queue holds at most ``max_depth`` jobs and
each client at most ``max_per_client`` of them; a submission past either
bound raises :class:`~repro.service.protocol.QueueFullError` — the
429-style rejection the protocol relays — instead of buffering without
limit and letting latency (and memory) grow unbounded under overload.

Ordering is **priority first, then fair**: within one priority level,
jobs are interleaved round-robin across clients rather than strictly
FIFO, so a client that dumps a 50-job batch cannot park every other
client behind it.  The mechanism is a virtual-time key: a client's
``k``-th *outstanding* job sorts at position ``k``, so clients with
fewer queued jobs always sort ahead at equal priority.  Within one
``(priority, position)`` a monotonic sequence number keeps FIFO order
and makes the heap total (jobs never compare).

Single-consumer/multi-producer from one asyncio event loop: ``put`` is
synchronous (handlers reject instantly — backpressure must not itself
queue), ``get`` awaits.  No thread-safety is needed or provided; the
executor-bound job *bodies* run in threads, but queue access stays on
the loop.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Any, Dict, List, Optional, Tuple

from ..obs.metrics import METRICS as _METRICS
from .protocol import QueueFullError

#: Default bounds; services usually override via ServiceConfig.
DEFAULT_MAX_DEPTH = 64
DEFAULT_MAX_PER_CLIENT = 16


class BoundedJobQueue:
    """An asyncio priority queue with hard bounds and per-client fairness.

    ``priority`` is smaller-is-sooner (0 = normal; negative jumps the
    line, positive yields it).  ``client`` is any stable string naming
    the submitter (the service uses the client-supplied id or the
    connection's peer name).
    """

    def __init__(self, max_depth: int = DEFAULT_MAX_DEPTH,
                 max_per_client: int = DEFAULT_MAX_PER_CLIENT):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if max_per_client < 1:
            raise ValueError(
                f"max_per_client must be >= 1, got {max_per_client}")
        self.max_depth = int(max_depth)
        self.max_per_client = int(max_per_client)
        self._heap: List[Tuple[int, int, int, Any]] = []
        self._queued_per_client: Dict[str, int] = {}
        self._seq = itertools.count()
        self._not_empty = asyncio.Event()
        #: Lifetime stats (also mirrored into METRICS counters/gauges).
        self.peak_depth = 0
        self.rejected_full = 0
        self.rejected_client = 0
        self.enqueued = 0

    def __len__(self) -> int:
        return len(self._heap)

    def depth_of(self, client: str) -> int:
        """Jobs currently queued by ``client``."""
        return self._queued_per_client.get(client, 0)

    def put(self, item: Any, *, priority: int = 0, client: str = "") -> None:
        """Admit ``item`` or raise :class:`QueueFullError` (never blocks).

        The two bounds reject with distinct messages so a client can
        tell "the service is saturated" (back off globally) from "I have
        too many in flight" (drain my own results first).
        """
        if len(self._heap) >= self.max_depth:
            self.rejected_full += 1
            _METRICS.inc("service.queue.rejected_full")
            raise QueueFullError(
                f"job queue full ({self.max_depth} queued); retry with "
                "backoff")
        mine = self._queued_per_client.get(client, 0)
        if mine >= self.max_per_client:
            self.rejected_client += 1
            _METRICS.inc("service.queue.rejected_client")
            raise QueueFullError(
                f"client {client or '<anonymous>'!s} already has {mine} "
                f"jobs queued (cap {self.max_per_client}); await results "
                "before submitting more")
        # Fairness position: this becomes the client's (mine+1)-th queued
        # job, so it sorts behind every client with fewer outstanding.
        self._queued_per_client[client] = mine + 1
        heapq.heappush(self._heap,
                       (int(priority), mine, next(self._seq), (client, item)))
        self.enqueued += 1
        self.peak_depth = max(self.peak_depth, len(self._heap))
        _METRICS.inc("service.queue.enqueued")
        _METRICS.gauge("service.queue.depth", len(self._heap))
        _METRICS.gauge("service.queue.peak_depth", self.peak_depth)
        self._not_empty.set()

    async def get(self) -> Any:
        """Pop the next job (priority, then client-fair order); awaits
        until one is available."""
        while not self._heap:
            self._not_empty.clear()
            await self._not_empty.wait()
        _prio, _pos, _seq, (client, item) = heapq.heappop(self._heap)
        left = self._queued_per_client.get(client, 1) - 1
        if left > 0:
            self._queued_per_client[client] = left
        else:
            self._queued_per_client.pop(client, None)
        _METRICS.gauge("service.queue.depth", len(self._heap))
        return item

    def get_nowait(self) -> Optional[Any]:
        """Pop without waiting; None when empty (drain-on-shutdown path)."""
        if not self._heap:
            return None
        _prio, _pos, _seq, (client, item) = heapq.heappop(self._heap)
        left = self._queued_per_client.get(client, 1) - 1
        if left > 0:
            self._queued_per_client[client] = left
        else:
            self._queued_per_client.pop(client, None)
        _METRICS.gauge("service.queue.depth", len(self._heap))
        return item

    def stats(self) -> dict:
        return {
            "depth": len(self._heap),
            "peak_depth": self.peak_depth,
            "max_depth": self.max_depth,
            "max_per_client": self.max_per_client,
            "enqueued": self.enqueued,
            "rejected_full": self.rejected_full,
            "rejected_client": self.rejected_client,
        }
