"""The sumcheck protocol for products of multilinear polynomials.

This is the kernel NoCap spends ~70% of its time on (Fig. 6a).  The prover
convinces the verifier that  sum_{b in {0,1}^L} prod_j P_j(b) = claim,
one variable per round, sending a degree-k univariate polynomial each
round (as k+1 evaluations) and folding the tables by the verifier's
challenge — the dynamic-programming structure of Listing 1 generalized to
products (Spartan's first sumcheck has k = 3).

Fiat-Shamir makes it non-interactive; 128-bit soundness over the 64-bit
Goldilocks field is obtained by running independent repetitions
(Sec. VII-A: "we run all sumchecks 3 times").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..field import vector as fv
from ..field.goldilocks import MODULUS
from ..field.poly import interpolate_eval
from ..hashing.transcript import Transcript
from ..obs.metrics import METRICS as _METRICS

#: The field has 64-bit indices: no honest sumcheck runs more rounds.
MAX_VERIFY_ROUNDS = 64


@dataclass
class SumcheckProof:
    """Round polynomials (each as evaluations at t = 0..degree) plus the
    prover's claimed factor values at the final random point."""

    round_evals: List[List[int]]
    final_values: List[int]

    @property
    def num_rounds(self) -> int:
        return len(self.round_evals)

    def size_bytes(self) -> int:
        return 8 * (sum(len(r) for r in self.round_evals) + len(self.final_values))


@dataclass
class SumcheckResult:
    """Verifier-side outcome: accept/reject plus the reduced claim."""

    ok: bool
    challenges: List[int]
    final_claim: int
    reason: str = ""


def _product_sum(factors: Sequence[np.ndarray]) -> int:
    """vsum(prod_j factors[j]) — one fused pass over the factor vectors.

    Intermediate products stay non-canonical (any uint64 representative):
    the multiply kernel is exact for arbitrary uint64 inputs and ``vsum``'s
    split accumulation never needs values below p.
    """
    prod = factors[0]
    for vals in factors[1:]:
        prod = fv.mul(prod, vals, canonical=False)
    return fv.vsum(prod)


def prove_sumcheck(tables: Sequence[np.ndarray], transcript: Transcript,
                   label: bytes = b"sumcheck",
                   claim: int | None = None) -> Tuple[SumcheckProof, List[int]]:
    """Run the prover for sum over the hypercube of prod_j tables[j].

    Returns the proof and the challenge vector (for chaining into later
    protocol steps).  Tables are not modified.

    Allocation-lean round structure: each round computes the top-bottom
    difference of every factor ONCE and reuses it for (a) every t >= 2
    extension point — reached incrementally by adding the difference, one
    vector add instead of a scalar multiply — and (b) the fold to the next
    round's (half-size) tables.  No full-table copies are made; the input
    tables are only ever read.

    The round polynomial's value at 0 is never computed directly: the
    sumcheck invariant g(0) + g(1) = claim pins it to claim - g(1), and the
    reduced claim for the next round follows by interpolating g at the
    challenge.  Callers that already know the total (``claim``) therefore
    save one full evaluation pass per round; when omitted it costs one
    product-sum over the input tables.
    """
    tables = [np.asarray(t, dtype=np.uint64) for t in tables]
    n = len(tables[0])
    if any(len(t) != n for t in tables):
        raise ValueError("all factor tables must have equal length")
    if n == 0 or n & (n - 1):
        raise ValueError("table length must be a power of two")
    num_rounds = n.bit_length() - 1
    degree = len(tables)
    _METRICS.inc("sumcheck.instances")
    _METRICS.inc("sumcheck.rounds", num_rounds)
    current = (claim if claim is not None else _product_sum(tables)) % MODULUS

    xs = list(range(degree + 1))
    round_evals: List[List[int]] = []
    challenges: List[int] = []
    for rnd in range(num_rounds):
        half = len(tables[0]) // 2
        bottoms = [t[:half] for t in tables]
        tops = [t[half:] for t in tables]
        diffs = [fv.sub(tp, bt) for tp, bt in zip(tops, bottoms)]
        # Factor value at (t, b) is bottom + t*diff; t = 1 is a free read
        # and each further t adds diff to the previous samples.
        g1 = _product_sum(tops)
        evals = [(current - g1) % MODULUS, g1]
        samples = tops
        for _t_val in range(2, degree + 1):
            samples = [fv.add(s, d) for s, d in zip(samples, diffs)]
            evals.append(_product_sum(samples))
        transcript.absorb_fields(label + b"/round%d" % rnd, evals)
        r = transcript.challenge_field(label + b"/r%d" % rnd)
        challenges.append(r)
        current = interpolate_eval(xs, evals, r)
        # Fold with the precomputed diffs: bottom + r*diff, one fused pass.
        tables = [fv.scale_add(bt, df, r) for bt, df in zip(bottoms, diffs)]
        round_evals.append(evals)

    final_values = [int(t[0]) for t in tables]
    transcript.absorb_fields(label + b"/final", final_values)
    return SumcheckProof(round_evals, final_values), challenges


def _well_formed_evals(evals, expected_len: int) -> bool:
    """True when ``evals`` is a sequence of ``expected_len`` canonical
    field elements — the precondition for arithmetic and transcript
    absorption on the verify path."""
    if not isinstance(evals, (list, tuple)):
        return False
    if len(evals) != expected_len:
        return False
    return all(isinstance(v, (int, np.integer)) and not isinstance(v, bool)
               and 0 <= v < MODULUS for v in evals)


def verify_sumcheck_rounds(claim: int, round_evals: Sequence[Sequence[int]],
                           degree: int, transcript: Transcript,
                           label: bytes = b"sumcheck") -> SumcheckResult:
    """Check round-polynomial consistency only, reducing ``claim`` to a
    claimed evaluation at the random point.  The caller finishes the proof
    by checking that reduced claim against oracles (MLE evaluations, PCS
    openings, or a composite expression as in Spartan's first sumcheck).
    """
    if not isinstance(round_evals, (list, tuple)):
        return SumcheckResult(False, [], 0, "round evaluations not a list")
    if len(round_evals) > MAX_VERIFY_ROUNDS:
        return SumcheckResult(False, [], 0,
                              f"{len(round_evals)} rounds exceeds the cap")
    current = claim % MODULUS
    challenges: List[int] = []
    xs = list(range(degree + 1))
    for rnd, evals in enumerate(round_evals):
        if not _well_formed_evals(evals, degree + 1):
            return SumcheckResult(False, challenges, 0,
                                  f"round {rnd}: malformed evaluations")
        if (evals[0] + evals[1]) % MODULUS != current:
            return SumcheckResult(False, challenges, 0,
                                  f"round {rnd}: g(0)+g(1) != claim")
        transcript.absorb_fields(label + b"/round%d" % rnd, evals)
        r = transcript.challenge_field(label + b"/r%d" % rnd)
        challenges.append(r)
        current = interpolate_eval(xs, evals, r)
    return SumcheckResult(True, challenges, current)


def verify_sumcheck(claim: int, proof: SumcheckProof, degree: int,
                    transcript: Transcript,
                    label: bytes = b"sumcheck") -> SumcheckResult:
    """Verify round consistency and reduce the claim to a point evaluation.

    On success, ``final_claim`` equals the claimed value of the product at
    the challenge point; the caller must still check it against
    ``proof.final_values`` (or an oracle/PCS opening of each factor).
    """
    if not isinstance(proof, SumcheckProof):
        return SumcheckResult(False, [], 0, "not a SumcheckProof")
    rounds = verify_sumcheck_rounds(claim, proof.round_evals, degree,
                                    transcript, label)
    if not rounds.ok:
        return rounds
    challenges, current = rounds.challenges, rounds.final_claim

    if (not isinstance(proof.final_values, (list, tuple))
            or not _well_formed_evals(proof.final_values,
                                      len(proof.final_values))):
        return SumcheckResult(False, challenges, current,
                              "malformed final values")
    transcript.absorb_fields(label + b"/final", proof.final_values)
    # The factor-product at the challenge point must match the reduced claim.
    prod = 1
    for v in proof.final_values:
        prod = prod * (v % MODULUS) % MODULUS
    if prod != current:
        return SumcheckResult(False, challenges, current,
                              "final product mismatch")
    return SumcheckResult(True, challenges, current)


def sumcheck_cost(n: int, degree: int):
    """Operation counts of one sumcheck over a size-n table with
    ``degree`` factors (performance-model hook).

    Per round over m remaining entries: for each of (degree+1) sample
    points and each factor, one mul + adds on m/2 entries, plus the
    product across factors and the reduction sum.  Folding costs one mul
    per entry per factor.  Traffic: each factor table is streamed once per
    round (read) and half is written back.
    """
    from ..opcount import OpCount

    cost = OpCount()
    m = n
    while m > 1:
        half = m // 2
        samples = degree + 1
        # factor evaluations at the sample points (t=0,1 are free reads)
        cost.mul += (samples - 2) * degree * half
        cost.add += (samples - 2) * degree * half * 2
        # cross-factor products and accumulation
        cost.mul += samples * (degree - 1) * half
        cost.add += samples * half
        # folding each factor table
        cost.mul += degree * half
        cost.add += degree * half * 2
        # traffic: read all factor tables, write back folded halves
        cost.mem_read_bytes += degree * m * 8
        cost.mem_write_bytes += degree * half * 8
        m = half
    return cost
