"""The sumcheck protocol for products of multilinear polynomials.

This is the kernel NoCap spends ~70% of its time on (Fig. 6a).  The prover
convinces the verifier that  sum_{b in {0,1}^L} prod_j P_j(b) = claim,
one variable per round, sending a degree-k univariate polynomial each
round (as k+1 evaluations) and folding the tables by the verifier's
challenge — the dynamic-programming structure of Listing 1 generalized to
products (Spartan's first sumcheck has k = 3).

Fiat-Shamir makes it non-interactive; 128-bit soundness over the 64-bit
Goldilocks field is obtained by running independent repetitions
(Sec. VII-A: "we run all sumchecks 3 times").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..field import vector as fv
from ..field.goldilocks import MODULUS
from ..field.poly import interpolate_eval
from ..hashing.transcript import Transcript
from .mle import fold


@dataclass
class SumcheckProof:
    """Round polynomials (each as evaluations at t = 0..degree) plus the
    prover's claimed factor values at the final random point."""

    round_evals: List[List[int]]
    final_values: List[int]

    @property
    def num_rounds(self) -> int:
        return len(self.round_evals)

    def size_bytes(self) -> int:
        return 8 * (sum(len(r) for r in self.round_evals) + len(self.final_values))


@dataclass
class SumcheckResult:
    """Verifier-side outcome: accept/reject plus the reduced claim."""

    ok: bool
    challenges: List[int]
    final_claim: int
    reason: str = ""


def prove_sumcheck(tables: Sequence[np.ndarray], transcript: Transcript,
                   label: bytes = b"sumcheck") -> Tuple[SumcheckProof, List[int]]:
    """Run the prover for sum over the hypercube of prod_j tables[j].

    Returns the proof and the challenge vector (for chaining into later
    protocol steps).  Tables are not modified.
    """
    tables = [np.asarray(t, dtype=np.uint64).copy() for t in tables]
    n = len(tables[0])
    if any(len(t) != n for t in tables):
        raise ValueError("all factor tables must have equal length")
    if n == 0 or n & (n - 1):
        raise ValueError("table length must be a power of two")
    num_rounds = n.bit_length() - 1
    degree = len(tables)

    round_evals: List[List[int]] = []
    challenges: List[int] = []
    for rnd in range(num_rounds):
        half = len(tables[0]) // 2
        evals = []
        for t_val in range(degree + 1):
            prod = None
            for table in tables:
                bottom, top = table[:half], table[half:]
                # value of the factor at (t, b) = bottom + t*(top - bottom)
                if t_val == 0:
                    vals = bottom
                elif t_val == 1:
                    vals = top
                else:
                    vals = fv.add(bottom, fv.mul_scalar(fv.sub(top, bottom), t_val))
                prod = vals if prod is None else fv.mul(prod, vals)
            evals.append(fv.vsum(prod))
        transcript.absorb_fields(label + b"/round%d" % rnd, evals)
        r = transcript.challenge_field(label + b"/r%d" % rnd)
        challenges.append(r)
        tables = [fold(t, r) for t in tables]
        round_evals.append(evals)

    final_values = [int(t[0]) for t in tables]
    transcript.absorb_fields(label + b"/final", final_values)
    return SumcheckProof(round_evals, final_values), challenges


def verify_sumcheck_rounds(claim: int, round_evals: Sequence[Sequence[int]],
                           degree: int, transcript: Transcript,
                           label: bytes = b"sumcheck") -> SumcheckResult:
    """Check round-polynomial consistency only, reducing ``claim`` to a
    claimed evaluation at the random point.  The caller finishes the proof
    by checking that reduced claim against oracles (MLE evaluations, PCS
    openings, or a composite expression as in Spartan's first sumcheck).
    """
    current = claim % MODULUS
    challenges: List[int] = []
    xs = list(range(degree + 1))
    for rnd, evals in enumerate(round_evals):
        if len(evals) != degree + 1:
            return SumcheckResult(False, challenges, 0,
                                  f"round {rnd}: wrong evaluation count")
        if (evals[0] + evals[1]) % MODULUS != current:
            return SumcheckResult(False, challenges, 0,
                                  f"round {rnd}: g(0)+g(1) != claim")
        transcript.absorb_fields(label + b"/round%d" % rnd, evals)
        r = transcript.challenge_field(label + b"/r%d" % rnd)
        challenges.append(r)
        current = interpolate_eval(xs, evals, r)
    return SumcheckResult(True, challenges, current)


def verify_sumcheck(claim: int, proof: SumcheckProof, degree: int,
                    transcript: Transcript,
                    label: bytes = b"sumcheck") -> SumcheckResult:
    """Verify round consistency and reduce the claim to a point evaluation.

    On success, ``final_claim`` equals the claimed value of the product at
    the challenge point; the caller must still check it against
    ``proof.final_values`` (or an oracle/PCS opening of each factor).
    """
    rounds = verify_sumcheck_rounds(claim, proof.round_evals, degree,
                                    transcript, label)
    if not rounds.ok:
        return rounds
    challenges, current = rounds.challenges, rounds.final_claim

    transcript.absorb_fields(label + b"/final", proof.final_values)
    # The factor-product at the challenge point must match the reduced claim.
    prod = 1
    for v in proof.final_values:
        prod = prod * (v % MODULUS) % MODULUS
    if prod != current:
        return SumcheckResult(False, challenges, current,
                              "final product mismatch")
    return SumcheckResult(True, challenges, current)


def sumcheck_cost(n: int, degree: int):
    """Operation counts of one sumcheck over a size-n table with
    ``degree`` factors (performance-model hook).

    Per round over m remaining entries: for each of (degree+1) sample
    points and each factor, one mul + adds on m/2 entries, plus the
    product across factors and the reduction sum.  Folding costs one mul
    per entry per factor.  Traffic: each factor table is streamed once per
    round (read) and half is written back.
    """
    from ..opcount import OpCount

    cost = OpCount()
    m = n
    while m > 1:
        half = m // 2
        samples = degree + 1
        # factor evaluations at the sample points (t=0,1 are free reads)
        cost.mul += (samples - 2) * degree * half
        cost.add += (samples - 2) * degree * half * 2
        # cross-factor products and accumulation
        cost.mul += samples * (degree - 1) * half
        cost.add += samples * half
        # folding each factor table
        cost.mul += degree * half
        cost.add += degree * half * 2
        # traffic: read all factor tables, write back folded halves
        cost.mem_read_bytes += degree * m * 8
        cost.mem_write_bytes += degree * half * 8
        m = half
    return cost
