"""Multilinear extensions (MLEs) over the boolean hypercube.

A length-2^L vector is read as the evaluation table of an L-variate
multilinear polynomial: index i holds the value at the point whose bit
pattern is i (Sec. V-A, "Sumcheck DP algorithm").  Convention: variable 0
binds the MOST significant bit, matching Listing 1's fold order (round i
combines entries b and b + 2^(L-i)).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..field import vector as fv
from ..field.goldilocks import MODULUS


def num_vars(table: np.ndarray) -> int:
    n = len(table)
    if n == 0 or n & (n - 1):
        raise ValueError(f"MLE table length must be a power of two, got {n}")
    return n.bit_length() - 1


def fold(table: np.ndarray, r: int) -> np.ndarray:
    """Bind the top variable to r: out[b] = (1-r)*bottom[b] + r*top[b].

    The output is the MLE table of the remaining L-1 variables.
    """
    table = np.asarray(table, dtype=np.uint64)
    half = len(table) // 2
    bottom, top = table[:half], table[half:]
    # bottom + r * (top - bottom), fused multiply-accumulate.
    return fv.scale_add(bottom, fv.sub(top, bottom), r)


def mle_eval(table: np.ndarray, point: Sequence[int]) -> int:
    """Evaluate the MLE of ``table`` at ``point`` (len(point) variables)."""
    table = np.asarray(table, dtype=np.uint64)
    if len(table) != 1 << len(point):
        raise ValueError("point dimension does not match table size")
    for r in point:
        table = fold(table, int(r))
    return int(table[0])


def eq_table(point: Sequence[int]) -> np.ndarray:
    """Evaluation table of eq(point, .): out[b] = prod_i eq(point_i, b_i).

    eq(r, b) = r*b + (1-r)*(1-b).  Built by iterative doubling: O(2^L)
    multiplies, which is also what the cost model charges.
    """
    table = np.ones(1, dtype=np.uint64)
    for r in point:
        r = int(r) % MODULUS
        hi = fv.mul_scalar(table, r)
        lo = fv.sub(table, hi)  # table * (1 - r)
        new = np.empty(2 * len(table), dtype=np.uint64)
        # Earlier variables are more significant bits, so each newly bound
        # variable becomes the least significant: interleave lo/hi.
        new[0::2] = lo
        new[1::2] = hi
        table = new
    return table


def eq_eval(a: Sequence[int], b: Sequence[int]) -> int:
    """eq(a, b) = prod_i (a_i b_i + (1-a_i)(1-b_i))."""
    if len(a) != len(b):
        raise ValueError("eq_eval needs equal-length points")
    acc = 1
    for x, y in zip(a, b):
        x, y = int(x) % MODULUS, int(y) % MODULUS
        term = (x * y + (1 - x) * (1 - y)) % MODULUS
        acc = acc * term % MODULUS
    return acc


def hypercube_sum(table: np.ndarray) -> int:
    """Sum of the MLE over the boolean hypercube = sum of the table."""
    return fv.vsum(np.asarray(table, dtype=np.uint64))


def tensor_split_eval(table: np.ndarray, row_point: Sequence[int],
                      col_point: Sequence[int]) -> int:
    """Evaluate viewing the table as a (2^|row|, 2^|col|) matrix:
    value = row_eq^T M col_eq.  This is the Orion PCS evaluation identity."""
    rows = 1 << len(row_point)
    cols = 1 << len(col_point)
    mat = np.asarray(table, dtype=np.uint64).reshape(rows, cols)
    r = eq_table(row_point)
    c = eq_table(col_point)
    u = combine_rows(mat, r)
    return fv.dot(u, c)


def combine_rows(matrix: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
    """Return coeffs^T @ matrix over GF(p) (random row combination).

    Delegates to the batched :func:`repro.field.vector.vecmat` kernel —
    one vectorized multiply plus an exact split-accumulate column sum,
    instead of a Python loop over rows.
    """
    matrix = np.asarray(matrix, dtype=np.uint64)
    coeffs = np.asarray(coeffs, dtype=np.uint64)
    if matrix.shape[0] != len(coeffs):
        raise ValueError("coefficient count must equal row count")
    return fv.vecmat(coeffs, matrix)
