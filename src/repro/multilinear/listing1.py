"""Listing 1 from the paper, verbatim: the sumcheck dynamic-programming
algorithm for proving sum_{b in {0,1}^L} A(b).

Kept as a faithful reference implementation (including the in-place DP
array update and the HASH-derived challenges) and cross-checked against
the generic vectorized prover in :mod:`repro.multilinear.sumcheck` by the
test suite.  NoCap's key sumcheck optimization — recomputing the DP array
from the compressed circuit instead of streaming it (Sec. V-A) — changes
*where* A's entries come from, not this control structure.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List, Tuple

from ..field.goldilocks import MODULUS


def _hash_to_field(values: List[int]) -> int:
    """rx[i] = HASH(result[i]) with rejection sampling into GF(p)."""
    data = b"".join(struct.pack("<Q", v % MODULUS) for v in values)
    counter = 0
    while True:
        digest = hashlib.sha3_256(data + struct.pack("<Q", counter)).digest()
        candidate = struct.unpack("<Q", digest[:8])[0]
        if candidate < MODULUS:
            return candidate
        counter += 1


def sumcheck_dp(a: List[int]) -> Tuple[List[List[int]], List[int]]:
    """The paper's Listing 1: prove the value of sum_b A(b).

    Returns (result, rx): result[i] = [y0, y1] are the round-i partial
    sums; rx[i] is the round-i challenge.  Indices follow the listing
    (1-based rounds stored 0-based here).
    """
    a = [v % MODULUS for v in a]
    n = len(a)
    if n == 0 or n & (n - 1):
        raise ValueError("array length must be a power of two")
    big_l = n.bit_length() - 1

    result: List[List[int]] = []
    rx: List[int] = []
    for i in range(1, big_l + 1):
        s = 1 << (big_l - i)
        y0 = 0
        y1 = 0
        for b in range(s):
            if i > 1:
                r_prev = rx[i - 2]
                one_minus = (1 - r_prev) % MODULUS
                a[b] = (a[b] * one_minus + a[b + 2 * s] * r_prev) % MODULUS
                a[b + s] = (a[b + s] * one_minus + a[b + 3 * s] * r_prev) % MODULUS
            y0 = (y0 + a[b]) % MODULUS
            y1 = (y1 + a[b + s]) % MODULUS
        result.append([y0, y1])
        rx.append(_hash_to_field(result[-1]))
    return result, rx


def verify_sumcheck_dp(claim: int, result: List[List[int]],
                       final_value: int) -> bool:
    """Verify a Listing-1 transcript against the claimed hypercube sum.

    ``final_value`` is A evaluated at the challenge point (rx), which the
    verifier obtains from an oracle (in Spartan+Orion, from the PCS).
    """
    current = claim % MODULUS
    rx: List[int] = []
    for y0, y1 in result:
        if (y0 + y1) % MODULUS != current:
            return False
        r = _hash_to_field([y0, y1])
        rx.append(r)
        # degree-1 round polynomial: g(r) = y0 + r*(y1 - y0)
        current = (y0 + r * (y1 - y0)) % MODULUS
    return current == final_value % MODULUS


def final_challenge_point(result: List[List[int]]) -> List[int]:
    """Recompute the challenge vector rx from a Listing-1 transcript."""
    return [_hash_to_field(pair) for pair in result]
