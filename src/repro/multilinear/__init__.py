"""Multilinear extensions and the sumcheck protocol."""

from .listing1 import final_challenge_point, sumcheck_dp, verify_sumcheck_dp
from .mle import (
    combine_rows,
    eq_eval,
    eq_table,
    fold,
    hypercube_sum,
    mle_eval,
    num_vars,
    tensor_split_eval,
)
from .sumcheck import (
    SumcheckProof,
    SumcheckResult,
    prove_sumcheck,
    sumcheck_cost,
    verify_sumcheck,
    verify_sumcheck_rounds,
)

__all__ = [
    "final_challenge_point",
    "sumcheck_dp",
    "verify_sumcheck_dp",
    "combine_rows",
    "eq_eval",
    "eq_table",
    "fold",
    "hypercube_sum",
    "mle_eval",
    "num_vars",
    "tensor_split_eval",
    "SumcheckProof",
    "SumcheckResult",
    "prove_sumcheck",
    "sumcheck_cost",
    "verify_sumcheck",
    "verify_sumcheck_rounds",
]
