"""In-circuit Poseidon: the field-friendly hash as an R1CS gadget.

Mirrors :mod:`repro.hashing.poseidon` constraint-for-constraint: each
x^7 S-box costs 4 multiplications, mixing and round constants are free
linear work, so one permutation costs 4 * (3*RF + RP) = 184 constraints —
versus tens of thousands for SHA-256 in bits.  Includes the Merkle-path
verification gadget used for private set membership.
"""

from __future__ import annotations

from typing import List, Sequence

from ..hashing.poseidon import (
    FULL_ROUNDS,
    PARTIAL_ROUNDS,
    ROUND_CONSTANTS,
    WIDTH,
)
from .builder import Circuit, Wire


def _sbox_gadget(circuit: Circuit, x: Wire) -> Wire:
    """x^7 with 4 constraints: x2, x4, x6, x7."""
    x2 = circuit.mul(x, x)
    x4 = circuit.mul(x2, x2)
    x6 = circuit.mul(x4, x2)
    return circuit.mul(x6, x)


def _mix_gadget(state: List[Wire]) -> List[Wire]:
    total = state[0] + state[1] + state[2]
    return [total + s for s in state]


def permutation_gadget(circuit: Circuit, state: Sequence[Wire]) -> List[Wire]:
    """The Poseidon permutation over wires."""
    if len(state) != WIDTH:
        raise ValueError(f"state must have {WIDTH} wires")
    s = list(state)
    half_full = FULL_ROUNDS // 2
    r = 0
    for _ in range(half_full):
        s = [x + c for x, c in zip(s, ROUND_CONSTANTS[r])]
        s = [_sbox_gadget(circuit, x) for x in s]
        s = _mix_gadget(s)
        r += 1
    for _ in range(PARTIAL_ROUNDS):
        s = [x + c for x, c in zip(s, ROUND_CONSTANTS[r])]
        s[0] = _sbox_gadget(circuit, s[0])
        s = _mix_gadget(s)
        r += 1
    for _ in range(half_full):
        s = [x + c for x, c in zip(s, ROUND_CONSTANTS[r])]
        s = [_sbox_gadget(circuit, x) for x in s]
        s = _mix_gadget(s)
        r += 1
    return s


def hash2_gadget(circuit: Circuit, a: Wire, b: Wire) -> Wire:
    """In-circuit 2-to-1 Poseidon compression."""
    return permutation_gadget(circuit, [a, b, circuit.constant(0)])[0]


def merkle_verify_gadget(circuit: Circuit, root: Wire, leaf: Wire,
                         index_bits: Sequence[Wire],
                         siblings: Sequence[Wire]) -> None:
    """Constrain that ``leaf`` sits at the position given by
    ``index_bits`` (LSB first, boolean wires) under Poseidon root
    ``root``, with ``siblings`` as the authentication path."""
    if len(index_bits) != len(siblings):
        raise ValueError("path depth mismatch")
    acc = leaf
    for bit, sib in zip(index_bits, siblings):
        # bit == 0: acc is the left child; bit == 1: acc is the right.
        left = circuit.select(bit, sib, acc)
        right = circuit.select(bit, acc, sib)
        acc = hash2_gadget(circuit, left, right)
    circuit.assert_equal(acc, root)
