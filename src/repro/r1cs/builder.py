"""Circuit builder: a small DSL that synthesizes R1CS instances and their
witnesses simultaneously.

The builder follows the assignment-style synthesis used by production
SNARK front-ends: allocating a wire supplies its concrete value, so after
construction the instance comes with a satisfying assignment.  Arithmetic
on :class:`Wire` objects builds linear combinations for free; each
multiplication of two non-constant wires allocates one witness wire and
one R1CS constraint — the cost model the paper's benchmarks are sized in.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..field.goldilocks import MODULUS, inv
from .matrices import SparseMatrix
from .system import R1CS, pad_r1cs


class LinearCombination:
    """A sparse linear combination of circuit variables.

    ``terms`` maps variable index -> coefficient; variable 0 is the
    constant-one wire, so constants are terms on variable 0.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Dict[int, int]] = None):
        self.terms = {v: c % MODULUS for v, c in (terms or {}).items() if c % MODULUS}

    @classmethod
    def from_var(cls, index: int, coeff: int = 1) -> "LinearCombination":
        return cls({index: coeff})

    @classmethod
    def from_const(cls, value: int) -> "LinearCombination":
        return cls({0: value})

    def __add__(self, other: "LinearCombination") -> "LinearCombination":
        terms = dict(self.terms)
        for v, c in other.terms.items():
            terms[v] = (terms.get(v, 0) + c) % MODULUS
        return LinearCombination(terms)

    def __sub__(self, other: "LinearCombination") -> "LinearCombination":
        terms = dict(self.terms)
        for v, c in other.terms.items():
            terms[v] = (terms.get(v, 0) - c) % MODULUS
        return LinearCombination(terms)

    def scale(self, k: int) -> "LinearCombination":
        k %= MODULUS
        return LinearCombination({v: c * k % MODULUS for v, c in self.terms.items()})

    def is_constant(self) -> Optional[int]:
        """Return the constant value if this LC uses only the one-wire."""
        if not self.terms:
            return 0
        if set(self.terms) == {0}:
            return self.terms[0]
        return None


class Wire:
    """A handle to a linear combination within a circuit, with operators."""

    __slots__ = ("circuit", "lc")

    def __init__(self, circuit: "Circuit", lc: LinearCombination):
        self.circuit = circuit
        self.lc = lc

    # -- linear ops (free) ---------------------------------------------------
    def __add__(self, other: "Wire | int") -> "Wire":
        return Wire(self.circuit, self.lc + self.circuit._as_lc(other))

    __radd__ = __add__

    def __sub__(self, other: "Wire | int") -> "Wire":
        return Wire(self.circuit, self.lc - self.circuit._as_lc(other))

    def __rsub__(self, other: "Wire | int") -> "Wire":
        return Wire(self.circuit, self.circuit._as_lc(other) - self.lc)

    def __neg__(self) -> "Wire":
        return Wire(self.circuit, self.lc.scale(MODULUS - 1))

    def __mul__(self, other: "Wire | int") -> "Wire":
        if isinstance(other, int):
            return Wire(self.circuit, self.lc.scale(other))
        const = other.lc.is_constant()
        if const is not None:
            return Wire(self.circuit, self.lc.scale(const))
        const = self.lc.is_constant()
        if const is not None:
            return Wire(self.circuit, other.lc.scale(const))
        return self.circuit.mul(self, other)

    def __rmul__(self, other: int) -> "Wire":
        return self.__mul__(other)

    @property
    def value(self) -> int:
        return self.circuit.eval_lc(self.lc)

    def __repr__(self) -> str:
        return f"Wire(value={self.value})"


class Circuit:
    """An R1CS circuit under construction, carrying a live assignment."""

    def __init__(self):
        self._values: List[int] = [1]          # var 0 is the constant 1
        self._num_public = 1                    # includes the one-wire
        self._constraints: List[Tuple[LinearCombination, LinearCombination,
                                      LinearCombination]] = []
        self._public_order: List[int] = []      # var indices in allocation order
        self._frozen_public = False

    # -- allocation -----------------------------------------------------------
    def public(self, value: int) -> Wire:
        """Allocate a public-input wire.  All publics must be allocated
        before any witness wire so the z-vector layout stays contiguous."""
        if self._frozen_public:
            raise RuntimeError("allocate all public inputs before witnesses")
        idx = len(self._values)
        self._values.append(value % MODULUS)
        self._num_public += 1
        self._public_order.append(idx)
        return Wire(self, LinearCombination.from_var(idx))

    def witness(self, value: int) -> Wire:
        """Allocate a private witness wire with the given value."""
        self._frozen_public = True
        idx = len(self._values)
        self._values.append(value % MODULUS)
        return Wire(self, LinearCombination.from_var(idx))

    def constant(self, value: int) -> Wire:
        return Wire(self, LinearCombination.from_const(value))

    @property
    def one(self) -> Wire:
        return self.constant(1)

    # -- constraints ------------------------------------------------------------
    def enforce(self, a: "Wire | int", b: "Wire | int", c: "Wire | int") -> None:
        """Add the constraint <a,z> * <b,z> = <c,z>."""
        self._constraints.append(
            (self._as_lc(a), self._as_lc(b), self._as_lc(c)))

    def mul(self, x: Wire, y: Wire) -> Wire:
        """Allocate w = x * y with one constraint."""
        w = self.witness(self.eval_lc(x.lc) * self.eval_lc(y.lc) % MODULUS)
        self.enforce(x, y, w)
        return w

    def square(self, x: Wire) -> Wire:
        return self.mul(x, x)

    def assert_equal(self, x: "Wire | int", y: "Wire | int") -> None:
        self.enforce(Wire(self, self._as_lc(x) - self._as_lc(y)), self.one, 0)

    def assert_zero(self, x: Wire) -> None:
        self.enforce(x, self.one, 0)

    def assert_bool(self, x: Wire) -> None:
        """Constrain x in {0, 1}: x * (x - 1) = 0."""
        self.enforce(x, x - 1, 0)

    # -- boolean gadgets ----------------------------------------------------------
    def xor(self, a: Wire, b: Wire) -> Wire:
        """a XOR b for boolean wires: a + b - 2ab (one constraint)."""
        prod = self.mul(a, b)
        return a + b - prod * 2

    def and_(self, a: Wire, b: Wire) -> Wire:
        return self.mul(a, b)

    def or_(self, a: Wire, b: Wire) -> Wire:
        return a + b - self.mul(a, b)

    def not_(self, a: Wire) -> Wire:
        return self.one - a

    def select(self, cond: Wire, if_true: Wire, if_false: Wire) -> Wire:
        """cond ? if_true : if_false, for boolean cond (one constraint)."""
        delta = if_true - if_false
        return if_false + self.mul(cond, delta)

    # -- numeric gadgets ------------------------------------------------------------
    def to_bits(self, x: Wire, width: int) -> List[Wire]:
        """Decompose x into `width` boolean wires (LSB first); constrains
        each bit and the recomposition, so it doubles as a range check."""
        value = self.eval_lc(x.lc)
        if value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        bits = []
        for i in range(width):
            bit = self.witness((value >> i) & 1)
            self.assert_bool(bit)
            bits.append(bit)
        self.assert_equal(self.from_bits(bits), x)
        return bits

    def from_bits(self, bits: Sequence[Wire]) -> Wire:
        acc = self.constant(0)
        for i, bit in enumerate(bits):
            acc = acc + bit * (1 << i)
        return acc

    def is_zero(self, x: Wire) -> Wire:
        """Return a boolean wire that is 1 iff x == 0 (two constraints)."""
        value = self.eval_lc(x.lc)
        inv_val = 0 if value == 0 else inv(value)
        m = self.witness(inv_val)
        y = self.witness(1 if value == 0 else 0)
        # x * m = 1 - y  and  x * y = 0
        self.enforce(x, m, self.one - y)
        self.enforce(x, y, 0)
        return y

    def assert_nonzero(self, x: Wire) -> Wire:
        """Constrain x != 0 by exhibiting its inverse; returns 1/x."""
        value = self.eval_lc(x.lc)
        if value == 0:
            raise ValueError("assert_nonzero on a zero wire")
        m = self.witness(inv(value))
        self.enforce(x, m, 1)
        return m

    def less_than(self, a: Wire, b: Wire, width: int) -> Wire:
        """Boolean a < b for values known to fit in `width` bits.

        Computes b - a - 1 + 2^width and inspects bit `width` (borrow
        trick): the bit is set exactly when b - a - 1 >= 0, i.e. a < b.
        """
        shifted = b - a + ((1 << width) - 1)
        bits = self.to_bits(shifted, width + 1)
        return bits[width]

    def lookup(self, x: Wire, table: Sequence[int], width: int = 8,
               assume_range: bool = False) -> Wire:
        """Table lookup y = table[x] via the interpolated polynomial.

        Requires len(table) == 2^width; range-checks x then evaluates the
        degree-(2^width - 1) interpolant with a Horner chain (one constraint
        per coefficient).  This is how the AES S-box is arithmetized.
        Pass ``assume_range=True`` when x was already assembled from
        constrained bits, to skip the redundant range check.
        """
        if len(table) != (1 << width):
            raise ValueError("table length must be 2^width")
        if not assume_range:
            self.to_bits(x, width)
        coeffs = _lookup_coeffs(tuple(int(v) % MODULUS for v in table))
        acc = self.constant(coeffs[-1])
        for coeff in reversed(coeffs[:-1]):
            acc = self.mul(acc, x) + coeff
        return acc

    # -- evaluation / compilation -------------------------------------------------
    def eval_lc(self, lc: LinearCombination) -> int:
        return sum(c * self._values[v] for v, c in lc.terms.items()) % MODULUS

    def _as_lc(self, x: "Wire | int") -> LinearCombination:
        if isinstance(x, Wire):
            return x.lc
        return LinearCombination.from_const(int(x))

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def num_variables(self) -> int:
        return len(self._values)

    def compile(self, min_size: int = 4) -> Tuple[R1CS, np.ndarray, np.ndarray]:
        """Produce the padded R1CS plus (public, witness) assignments.

        The returned public vector includes the leading constant 1.
        """
        num_public = self._num_public
        num_witness = len(self._values) - num_public
        m = len(self._constraints)

        def build(which: int) -> SparseMatrix:
            rows, cols, vals = [], [], []
            for row, cons in enumerate(self._constraints):
                for var, coeff in cons[which].terms.items():
                    rows.append(row)
                    cols.append(var)
                    vals.append(coeff)
            return SparseMatrix.from_arrays(m, num_public + num_witness,
                                            rows, cols, vals)

        r1cs = pad_r1cs(build(0), build(1), build(2),
                        num_public, num_witness, min_size=min_size)
        public = np.array(self._values[:num_public], dtype=np.uint64)
        witness = np.array(self._values[num_public:], dtype=np.uint64)
        return r1cs, public, witness


_lookup_cache: Dict[Tuple[int, ...], Tuple[int, ...]] = {}


def _lookup_coeffs(table: Tuple[int, ...]) -> Tuple[int, ...]:
    """Interpolation coefficients of the polynomial through (i, table[i])."""
    if table not in _lookup_cache:
        from ..field.poly import interpolate

        poly = interpolate(list(range(len(table))), list(table))
        coeffs = list(poly.coeffs) + [0] * (len(table) - len(poly.coeffs))
        _lookup_cache[table] = tuple(coeffs)
    return _lookup_cache[table]
