"""R1CS arithmetization: sparse matrices, constraint systems, circuit DSL."""

from . import bignum, gadgets, poseidon_gadget
from .builder import Circuit, LinearCombination, Wire
from .matrices import SparseMatrix
from .system import R1CS, R1CSShape, pad_r1cs

__all__ = [
    "bignum",
    "gadgets",
    "poseidon_gadget",
    "Circuit",
    "LinearCombination",
    "Wire",
    "SparseMatrix",
    "R1CS",
    "R1CSShape",
    "pad_r1cs",
]
