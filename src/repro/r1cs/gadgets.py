"""Bit-vector gadgets for cipher and hash circuits.

AES and SHA-256 are bit-oriented, so their R1CS circuits manipulate values
as lists of boolean wires (LSB first).  XOR/AND cost one constraint per
bit; rotations and shifts are free rewirings; modular addition allocates
the sum's bits.  These cost characteristics are what make the paper's
AES/SHA benchmarks as large as Table III reports.
"""

from __future__ import annotations

from typing import List, Sequence

from .builder import Circuit, Wire

Bits = List[Wire]


def witness_bits(circuit: Circuit, value: int, width: int) -> Bits:
    """Allocate ``width`` boolean witness wires holding ``value``."""
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    bits = []
    for i in range(width):
        bit = circuit.witness((value >> i) & 1)
        circuit.assert_bool(bit)
        bits.append(bit)
    return bits


def public_bits(circuit: Circuit, value: int, width: int) -> Bits:
    """Allocate ``width`` boolean public wires holding ``value``."""
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    bits = []
    for i in range(width):
        bit = circuit.public((value >> i) & 1)
        circuit.assert_bool(bit)
        bits.append(bit)
    return bits


def const_bits(circuit: Circuit, value: int, width: int) -> Bits:
    """Constant bits (no wires allocated)."""
    return [circuit.constant((value >> i) & 1) for i in range(width)]


def bits_value(bits: Sequence[Wire]) -> int:
    """Current assignment of a bit vector."""
    return sum(int(b.value) << i for i, b in enumerate(bits))


def bits_xor(circuit: Circuit, a: Bits, b: Bits) -> Bits:
    """Bitwise XOR; constant operand bits cost nothing."""
    out = []
    for x, y in zip(a, b):
        cx, cy = x.lc.is_constant(), y.lc.is_constant()
        if cx is not None:
            out.append(y if cx == 0 else circuit.not_(y))
        elif cy is not None:
            out.append(x if cy == 0 else circuit.not_(x))
        else:
            out.append(circuit.xor(x, y))
    return out


def bits_and(circuit: Circuit, a: Bits, b: Bits) -> Bits:
    return [circuit.and_(x, y) if x.lc.is_constant() is None
            and y.lc.is_constant() is None
            else x * y for x, y in zip(a, b)]


def bits_not(circuit: Circuit, a: Bits) -> Bits:
    return [circuit.not_(x) for x in a]


def bits_rotr(a: Bits, k: int) -> Bits:
    """Rotate right by k (free rewiring).  LSB-first: out[i] = a[(i+k) % w]."""
    w = len(a)
    k %= w
    return [a[(i + k) % w] for i in range(w)]


def bits_shr(circuit: Circuit, a: Bits, k: int) -> Bits:
    """Logical shift right by k, zero-filling the top (free)."""
    zero = circuit.constant(0)
    return [a[i + k] if i + k < len(a) else zero for i in range(len(a))]


def bits_to_field(circuit: Circuit, bits: Bits) -> Wire:
    """Recompose bits into one field wire (free linear combination)."""
    return circuit.from_bits(bits)


def add_mod(circuit: Circuit, words: Sequence[Bits], width: int) -> Bits:
    """Sum several width-bit words modulo 2^width.

    One field addition is free; the result is re-decomposed into
    width + ceil(log2(k)) constrained bits and the carries discarded —
    the standard SNARK adder (~width + log k constraints per addition).
    """
    if not words:
        raise ValueError("add_mod needs at least one word")
    total = circuit.constant(0)
    value = 0
    for w in words:
        if len(w) != width:
            raise ValueError("operand width mismatch")
        total = total + circuit.from_bits(w)
        value += bits_value(w)
    carry_bits = max(1, (len(words) - 1).bit_length())
    out_bits = witness_bits(circuit, value % (1 << (width + carry_bits)),
                            width + carry_bits)
    circuit.assert_equal(circuit.from_bits(out_bits), total)
    return out_bits[:width]


def bits_select(circuit: Circuit, cond: Wire, if_true: Bits,
                if_false: Bits) -> Bits:
    """Per-bit conditional select (one constraint per bit)."""
    return [circuit.select(cond, t, f) for t, f in zip(if_true, if_false)]


def assert_bits_equal(circuit: Circuit, a: Bits, b: Bits) -> None:
    """Constrain two bit vectors equal (via their field recompositions)."""
    circuit.assert_equal(circuit.from_bits(a), circuit.from_bits(b))
