"""Multi-precision ("bignum") arithmetic gadgets for R1CS.

RSA operates on integers far wider than the Goldilocks field, so values
are represented as vectors of 16-bit limbs.  Modular multiplication is
proven with the standard SNARK recipe: the prover supplies quotient and
remainder as witnesses, limb-products are compared through a carry chain,
and every limb/carry is range-checked.  This is the machinery behind the
paper's RSA benchmark (Table III: 98M constraints for 1,000 2048-bit
exponentiations).
"""

from __future__ import annotations

from typing import List, Optional

from .builder import Circuit, Wire

LIMB_BITS = 16
LIMB_BASE = 1 << LIMB_BITS
LIMB_MASK = LIMB_BASE - 1


def _to_limbs(value: int, num_limbs: int) -> List[int]:
    if value < 0:
        raise ValueError("bignum values must be non-negative")
    limbs = [(value >> (LIMB_BITS * i)) & LIMB_MASK for i in range(num_limbs)]
    if value >> (LIMB_BITS * num_limbs):
        raise ValueError(f"value does not fit in {num_limbs} limbs")
    return limbs


class BigNum:
    """A non-negative integer as range-checked 16-bit limb wires."""

    def __init__(self, circuit: Circuit, limbs: List[Wire], num_limbs: int):
        self.circuit = circuit
        self.limbs = limbs
        self.num_limbs = num_limbs

    # -- constructors --------------------------------------------------------
    @classmethod
    def witness(cls, circuit: Circuit, value: int, num_limbs: int) -> "BigNum":
        limbs = []
        for lv in _to_limbs(value, num_limbs):
            w = circuit.witness(lv)
            circuit.to_bits(w, LIMB_BITS)  # range check
            limbs.append(w)
        return cls(circuit, limbs, num_limbs)

    @classmethod
    def public(cls, circuit: Circuit, value: int, num_limbs: int) -> "BigNum":
        limbs = [circuit.public(lv) for lv in _to_limbs(value, num_limbs)]
        return cls(circuit, limbs, num_limbs)

    @classmethod
    def constant(cls, circuit: Circuit, value: int, num_limbs: int) -> "BigNum":
        limbs = [circuit.constant(lv) for lv in _to_limbs(value, num_limbs)]
        return cls(circuit, limbs, num_limbs)

    # -- inspection -----------------------------------------------------------
    def value(self) -> int:
        return sum(int(w.value) << (LIMB_BITS * i)
                   for i, w in enumerate(self.limbs))

    # -- constraints ------------------------------------------------------------
    def assert_equal(self, other: "BigNum") -> None:
        if self.num_limbs != other.num_limbs:
            raise ValueError("limb-count mismatch")
        for a, b in zip(self.limbs, other.limbs):
            self.circuit.assert_equal(a, b)


def _carry_bound_bits(num_limbs: int) -> int:
    """Bit width B such that every carry satisfies |c| < 2^B."""
    return LIMB_BITS + max(1, num_limbs.bit_length()) + 2


def _assert_limbwise_equal(circuit: Circuit, lhs: List[Wire],
                           lhs_vals: List[int], rhs: List[Wire],
                           rhs_vals: List[int]) -> None:
    """Constrain sum lhs_i 2^(16 i) == sum rhs_i 2^(16 i) as integers.

    lhs/rhs limbs may exceed 16 bits (they are raw convolution sums); a
    signed carry chain with range-checked carries enforces integer
    equality: lhs_i - rhs_i + c_{i-1} = c_i * 2^16 and c_last = 0.
    """
    n = len(lhs)
    if len(rhs) != n:
        raise ValueError("limb-count mismatch")
    bound_bits = _carry_bound_bits(n)
    offset = 1 << bound_bits
    carry_wire: Optional[Wire] = None
    carry_val = 0
    for i in range(n):
        diff_val = lhs_vals[i] - rhs_vals[i] + carry_val
        if diff_val % LIMB_BASE:
            raise ValueError("limb equality does not hold on the assignment")
        new_carry = diff_val // LIMB_BASE
        if i == n - 1:
            # Final carry must vanish.
            expr = lhs[i] - rhs[i]
            if carry_wire is not None:
                expr = expr + carry_wire
            elif carry_val:
                expr = expr + carry_val
            circuit.assert_equal(expr, 0)
            if new_carry != 0:
                raise ValueError("non-zero final carry on the assignment")
            return
        # Allocate the signed carry via an offset range check.
        shifted = circuit.witness(new_carry + offset)
        circuit.to_bits(shifted, bound_bits + 1)
        c_wire = shifted - offset
        expr = lhs[i] - rhs[i]
        if carry_wire is not None:
            expr = expr + carry_wire
        elif carry_val:
            expr = expr + carry_val
        circuit.assert_equal(expr, c_wire * LIMB_BASE)
        carry_wire, carry_val = c_wire, new_carry


def mulmod(circuit: Circuit, a: BigNum, b: BigNum, modulus: int) -> BigNum:
    """Return r = (a * b) mod modulus, fully constrained.

    Proves a*b = q*modulus + r with witnessed q, r, via a limb convolution
    and carry chain; also proves r < modulus.
    """
    n = a.num_limbs
    if b.num_limbs != n:
        raise ValueError("operand limb counts must match")
    av, bv = a.value(), b.value()
    q_val, r_val = divmod(av * bv, modulus)
    q = BigNum.witness(circuit, q_val, n)
    r = BigNum.witness(circuit, r_val, n)
    mod_limbs = _to_limbs(modulus, n)

    # lhs_i = sum_j a_j * b_{i-j}  (real multiplications)
    # rhs_i = sum_j q_j * N_{i-j} + r_i  (N is constant: linear, free)
    lhs: List[Wire] = []
    rhs: List[Wire] = []
    lhs_vals: List[int] = []
    rhs_vals: List[int] = []
    a_vals = [int(w.value) for w in a.limbs]
    b_vals = [int(w.value) for w in b.limbs]
    q_vals = [int(w.value) for w in q.limbs]
    r_vals = [int(w.value) for w in r.limbs]
    for i in range(2 * n - 1):
        lo = max(0, i - n + 1)
        hi = min(i, n - 1)
        l_expr = circuit.constant(0)
        l_val = 0
        r_expr = circuit.constant(0)
        r_val_i = 0
        for j in range(lo, hi + 1):
            l_expr = l_expr + circuit.mul(a.limbs[j], b.limbs[i - j])
            l_val += a_vals[j] * b_vals[i - j]
            r_expr = r_expr + q.limbs[j] * mod_limbs[i - j]
            r_val_i += q_vals[j] * mod_limbs[i - j]
        if i < n:
            r_expr = r_expr + r.limbs[i]
            r_val_i += r_vals[i]
        lhs.append(l_expr)
        rhs.append(r_expr)
        lhs_vals.append(l_val)
        rhs_vals.append(r_val_i)
    _assert_limbwise_equal(circuit, lhs, lhs_vals, rhs, rhs_vals)
    assert_less_than_const(circuit, r, modulus)
    return r


def assert_less_than_const(circuit: Circuit, a: BigNum, bound: int) -> None:
    """Constrain a < bound (bound a public constant) by exhibiting
    diff = bound - 1 - a as a range-checked bignum with a + diff = bound-1."""
    n = a.num_limbs
    av = a.value()
    if av >= bound:
        raise ValueError("assignment violates a < bound")
    diff = BigNum.witness(circuit, bound - 1 - av, n)
    target = _to_limbs(bound - 1, n)
    lhs = [a.limbs[i] + diff.limbs[i] for i in range(n)]
    lhs_vals = [int(a.limbs[i].value) + int(diff.limbs[i].value)
                for i in range(n)]
    rhs = [circuit.constant(t) for t in target]
    _assert_limbwise_equal(circuit, lhs, lhs_vals, rhs, list(target))


def modexp(circuit: Circuit, base: BigNum, exponent: int,
           modulus: int) -> BigNum:
    """Fixed-exponent modular exponentiation by square-and-multiply.

    The exponent is public (as in RSA verification, e.g. e = 65537), so
    the multiplication schedule is static.
    """
    if exponent < 1:
        raise ValueError("exponent must be >= 1")
    result: Optional[BigNum] = None
    acc = base
    e = exponent
    while True:
        if e & 1:
            result = acc if result is None else mulmod(circuit, result, acc,
                                                       modulus)
        e >>= 1
        if e == 0:
            break
        acc = mulmod(circuit, acc, acc, modulus)
    if result is None:  # unreachable for exponent >= 1; survives python -O
        raise ValueError("powmod produced no result")
    return result
