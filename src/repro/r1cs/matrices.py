"""Sparse matrices for R1CS constraint systems (Sec. II-B).

The A, B, C matrices of an R1CS mostly encode permutations — O(1) non-zeros
per row, concentrated near the diagonal — which is what makes NoCap's
output-stationary SpMV mapping effective (Sec. V-A).  This module stores
them in coordinate form with numpy index arrays and provides exact
modular sparse matrix-vector products.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from ..field import vector as fv
from ..field.goldilocks import MODULUS


class SparseMatrix:
    """COO sparse matrix over GF(p) with fast modular SpMV."""

    def __init__(self, num_rows: int, num_cols: int,
                 rows: np.ndarray | None = None,
                 cols: np.ndarray | None = None,
                 vals: np.ndarray | None = None):
        self.num_rows = num_rows
        self.num_cols = num_cols
        self.rows = np.asarray(rows if rows is not None else [], dtype=np.int64)
        self.cols = np.asarray(cols if cols is not None else [], dtype=np.int64)
        self.vals = np.asarray(vals if vals is not None else [], dtype=np.uint64)
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise ValueError("rows, cols, vals must have equal length")

    @classmethod
    def from_entries(cls, num_rows: int, num_cols: int,
                     entries: Iterable[Tuple[int, int, int]]) -> "SparseMatrix":
        """Build from (row, col, value) triples; duplicate coordinates sum.

        Vectorized (lexsort + grouped reduction) so that circuits with
        millions of matrix entries compile in seconds.
        """
        entries = list(entries)
        if not entries:
            return cls(num_rows, num_cols)
        return cls.from_arrays(num_rows, num_cols,
                               [e[0] for e in entries],
                               [e[1] for e in entries],
                               [e[2] for e in entries])

    @classmethod
    def from_arrays(cls, num_rows: int, num_cols: int,
                    row_list, col_list, val_list) -> "SparseMatrix":
        """Build from parallel row/col/value lists (the fast path used by
        :meth:`repro.r1cs.builder.Circuit.compile`); duplicates sum."""
        if not row_list:
            return cls(num_rows, num_cols)
        rows = np.array(row_list, dtype=np.int64)
        cols = np.array(col_list, dtype=np.int64)
        vals = np.array([v % MODULUS for v in val_list], dtype=np.uint64)
        if rows.min() < 0 or rows.max() >= num_rows or \
                cols.min() < 0 or cols.max() >= num_cols:
            bad = np.flatnonzero((rows < 0) | (rows >= num_rows)
                                 | (cols < 0) | (cols >= num_cols))[0]
            raise IndexError(f"entry ({rows[bad]},{cols[bad]}) outside "
                             f"{num_rows}x{num_cols}")
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        # Group duplicates and sum their 32-bit halves exactly (uint64
        # holds up to 2^32 terms per coordinate), then recombine mod p.
        new_group = np.empty(len(rows), dtype=bool)
        new_group[0] = True
        new_group[1:] = (np.diff(rows) != 0) | (np.diff(cols) != 0)
        starts = np.flatnonzero(new_group)
        lo = np.add.reduceat(vals & np.uint64(0xFFFFFFFF), starts)
        hi = np.add.reduceat(vals >> np.uint64(32), starts)
        p = np.uint64(MODULUS)
        lo = np.where(lo >= p, lo - p, lo)
        hi = np.where(hi >= p, hi - p, hi)
        summed = fv.add(lo, fv.mul(hi, np.uint64((1 << 32) % MODULUS)))
        keep = summed != 0
        return cls(num_rows, num_cols,
                   rows[starts][keep], cols[starts][keep], summed[keep])

    @property
    def nnz(self) -> int:
        return len(self.vals)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Exact y = M x over GF(p)."""
        x = np.asarray(x, dtype=np.uint64)
        if x.shape[0] != self.num_cols:
            raise ValueError(f"vector length {x.shape[0]} != num_cols {self.num_cols}")
        if self.nnz == 0:
            return np.zeros(self.num_rows, dtype=np.uint64)
        prods = fv.mul(self.vals, x[self.cols])
        # Exact vectorized scatter-add: accumulate the 32-bit halves of each
        # product separately (uint64 holds up to 2^32 such terms), then
        # recombine modularly.  Any uint64 t < 2p, so one conditional
        # subtract canonicalizes each partial sum.
        lo = prods & np.uint64(0xFFFFFFFF)
        hi = prods >> np.uint64(32)
        sum_lo = np.zeros(self.num_rows, dtype=np.uint64)
        sum_hi = np.zeros(self.num_rows, dtype=np.uint64)
        np.add.at(sum_lo, self.rows, lo)
        np.add.at(sum_hi, self.rows, hi)
        p = np.uint64(MODULUS)
        sum_lo = np.where(sum_lo >= p, sum_lo - p, sum_lo)
        sum_hi = np.where(sum_hi >= p, sum_hi - p, sum_hi)
        two32 = np.uint64((1 << 32) % MODULUS)
        return fv.add(sum_lo, fv.mul(sum_hi, two32))

    def transpose_matvec(self, x: np.ndarray) -> np.ndarray:
        """Exact y = M^T x over GF(p)."""
        return SparseMatrix(self.num_cols, self.num_rows,
                            self.cols, self.rows, self.vals).matvec(x)

    def to_dense(self) -> np.ndarray:
        """Dense object-dtype matrix (tests / tiny systems only)."""
        out = np.zeros((self.num_rows, self.num_cols), dtype=object)
        for r, c, v in zip(self.rows, self.cols, self.vals):
            out[r, c] = (out[r, c] + int(v)) % MODULUS
        return out

    def entries(self) -> List[Tuple[int, int, int]]:
        return [(int(r), int(c), int(v))
                for r, c, v in zip(self.rows, self.cols, self.vals)]

    def pad_to(self, num_rows: int, num_cols: int) -> "SparseMatrix":
        """Embed into a larger zero matrix (R1CS power-of-two padding)."""
        if num_rows < self.num_rows or num_cols < self.num_cols:
            raise ValueError("pad_to cannot shrink a matrix")
        return SparseMatrix(num_rows, num_cols, self.rows, self.cols, self.vals)

    def bandwidth(self) -> int:
        """Max |row - col| over non-zeros: the paper's 'limited-bandwidth'
        property that gives SpMV its input-vector reuse."""
        if self.nnz == 0:
            return 0
        return int(np.max(np.abs(self.rows - self.cols)))
