"""Sparse matrices for R1CS constraint systems (Sec. II-B).

The A, B, C matrices of an R1CS mostly encode permutations — O(1) non-zeros
per row, concentrated near the diagonal — which is what makes NoCap's
output-stationary SpMV mapping effective (Sec. V-A).  This module stores
them in coordinate form with numpy index arrays and provides exact
modular sparse matrix-vector products.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from ..field import vector as fv
from ..field.goldilocks import MODULUS


class SparseMatrix:
    """COO sparse matrix over GF(p) with fast modular SpMV."""

    def __init__(self, num_rows: int, num_cols: int,
                 rows: np.ndarray | None = None,
                 cols: np.ndarray | None = None,
                 vals: np.ndarray | None = None):
        self.num_rows = num_rows
        self.num_cols = num_cols
        self.rows = np.asarray(rows if rows is not None else [], dtype=np.int64)
        self.cols = np.asarray(cols if cols is not None else [], dtype=np.int64)
        self.vals = np.asarray(vals if vals is not None else [], dtype=np.uint64)
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise ValueError("rows, cols, vals must have equal length")
        self._groups: tuple | None = None      # lazy matvec gather plan
        self._transposed: "SparseMatrix | None" = None

    def __getstate__(self):
        """Pickle only the coordinate arrays.

        The matvec gather plan and the transposed view are derived caches
        a receiver can rebuild lazily; dropping them roughly halves the
        pickled size of a proving key, which matters when keys are
        broadcast to worker processes (see ProverPool.broadcast).
        """
        state = self.__dict__.copy()
        state["_groups"] = None
        state["_transposed"] = None
        return state

    @classmethod
    def from_entries(cls, num_rows: int, num_cols: int,
                     entries: Iterable[Tuple[int, int, int]]) -> "SparseMatrix":
        """Build from (row, col, value) triples; duplicate coordinates sum.

        Vectorized (lexsort + grouped reduction) so that circuits with
        millions of matrix entries compile in seconds.
        """
        entries = list(entries)
        if not entries:
            return cls(num_rows, num_cols)
        return cls.from_arrays(num_rows, num_cols,
                               [e[0] for e in entries],
                               [e[1] for e in entries],
                               [e[2] for e in entries])

    @classmethod
    def from_arrays(cls, num_rows: int, num_cols: int,
                    row_list, col_list, val_list) -> "SparseMatrix":
        """Build from parallel row/col/value lists (the fast path used by
        :meth:`repro.r1cs.builder.Circuit.compile`); duplicates sum."""
        if not row_list:
            return cls(num_rows, num_cols)
        rows = np.array(row_list, dtype=np.int64)
        cols = np.array(col_list, dtype=np.int64)
        vals = np.array([v % MODULUS for v in val_list], dtype=np.uint64)
        if rows.min() < 0 or rows.max() >= num_rows or \
                cols.min() < 0 or cols.max() >= num_cols:
            bad = np.flatnonzero((rows < 0) | (rows >= num_rows)
                                 | (cols < 0) | (cols >= num_cols))[0]
            raise IndexError(f"entry ({rows[bad]},{cols[bad]}) outside "
                             f"{num_rows}x{num_cols}")
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        # Group duplicates and sum their 32-bit halves exactly (uint64
        # holds up to 2^32 terms per coordinate), then recombine mod p.
        new_group = np.empty(len(rows), dtype=bool)
        new_group[0] = True
        new_group[1:] = (np.diff(rows) != 0) | (np.diff(cols) != 0)
        starts = np.flatnonzero(new_group)
        lo = np.add.reduceat(vals & np.uint64(0xFFFFFFFF), starts)
        hi = np.add.reduceat(vals >> np.uint64(32), starts)
        summed = fv.combine_halves(lo, hi)
        keep = summed != 0
        return cls(num_rows, num_cols,
                   rows[starts][keep], cols[starts][keep], summed[keep])

    @property
    def nnz(self) -> int:
        return len(self.vals)

    def _group_plan(self):
        """Lazy gather plan for :meth:`matvec`: a permutation bringing the
        entries into row order, segment starts for ``np.add.reduceat``, and
        the distinct row ids.  ``order`` is None when the entries are
        already row-sorted (the :meth:`from_arrays` invariant), skipping
        the permutation pass entirely."""
        if self._groups is None:
            rows = self.rows
            if len(rows) == 0 or np.all(rows[:-1] <= rows[1:]):
                order, sorted_rows = None, rows
            else:
                order = np.argsort(rows, kind="stable")
                sorted_rows = rows[order]
            new_group = np.empty(len(sorted_rows), dtype=bool)
            new_group[0] = True
            new_group[1:] = np.diff(sorted_rows) != 0
            starts = np.flatnonzero(new_group)
            self._groups = (order, starts, sorted_rows[starts])
        return self._groups

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Exact y = M x over GF(p).

        The scatter-add is a segmented ``np.add.reduceat`` over the
        row-sorted products: the 32-bit halves of each product are
        accumulated separately (uint64 holds up to 2^32 such terms), then
        recombined by :func:`repro.field.vector.combine_halves` (exact for
        the raw half-sums — no per-half canonicalization needed).
        """
        x = np.asarray(x, dtype=np.uint64)
        if x.shape[0] != self.num_cols:
            raise ValueError(f"vector length {x.shape[0]} != num_cols {self.num_cols}")
        if self.nnz == 0:
            return np.zeros(self.num_rows, dtype=np.uint64)
        # Non-canonical representatives are fine: the split-accumulate
        # below is exact for any uint64 terms.
        prods = fv.mul(self.vals, x[self.cols], canonical=False)
        order, starts, row_ids = self._group_plan()
        if order is not None:
            prods = prods[order]
        lo_half, hi_half = fv.halves(prods)
        lo = np.add.reduceat(lo_half, starts, dtype=np.uint64)
        hi = np.add.reduceat(hi_half, starts, dtype=np.uint64)
        combined = fv.combine_halves(lo, hi)
        if len(row_ids) == self.num_rows:
            # Every row has at least one entry: row_ids is 0..num_rows-1
            # in order, so the segment sums ARE the output.
            return combined
        out = np.zeros(self.num_rows, dtype=np.uint64)
        out[row_ids] = combined
        return out

    def transpose_matvec(self, x: np.ndarray) -> np.ndarray:
        """Exact y = M^T x over GF(p).

        The transposed view (and its matvec gather plan) is built once and
        cached — SparseMatrix instances are treated as immutable.
        """
        if self._transposed is None:
            self._transposed = SparseMatrix(self.num_cols, self.num_rows,
                                            self.cols, self.rows, self.vals)
        return self._transposed.matvec(x)

    def to_dense(self) -> np.ndarray:
        """Dense object-dtype matrix (tests / tiny systems only)."""
        out = np.zeros((self.num_rows, self.num_cols), dtype=object)
        for r, c, v in zip(self.rows, self.cols, self.vals):
            out[r, c] = (out[r, c] + int(v)) % MODULUS
        return out

    def entries(self) -> List[Tuple[int, int, int]]:
        return [(int(r), int(c), int(v))
                for r, c, v in zip(self.rows, self.cols, self.vals)]

    def pad_to(self, num_rows: int, num_cols: int) -> "SparseMatrix":
        """Embed into a larger zero matrix (R1CS power-of-two padding)."""
        if num_rows < self.num_rows or num_cols < self.num_cols:
            raise ValueError("pad_to cannot shrink a matrix")
        return SparseMatrix(num_rows, num_cols, self.rows, self.cols, self.vals)

    def bandwidth(self) -> int:
        """Max |row - col| over non-zeros: the paper's 'limited-bandwidth'
        property that gives SpMV its input-vector reuse."""
        if self.nnz == 0:
            return 0
        return int(np.max(np.abs(self.rows - self.cols)))


class StackedMatrices:
    """The A, B, C matrices of an R1CS stacked for fused SpMV passes.

    Spartan's prover needs all three products A z, B z, C z (sumcheck #1)
    and the random combination (r_a A + r_b B + r_c C)^T eq (sumcheck #2).
    Issuing them as three separate SpMVs streams the input vector and the
    scatter/reduce machinery three times; stacking the coordinate arrays
    once turns each into a single gather + multiply + segmented-reduce
    pass — the same batching NoCap gets by time-multiplexing the three
    matrices through one output-stationary SpMV unit (Sec. V-A).
    """

    def __init__(self, mats: List[SparseMatrix]):
        if not mats:
            raise ValueError("need at least one matrix to stack")
        n_rows, n_cols = mats[0].num_rows, mats[0].num_cols
        if any(m.num_rows != n_rows or m.num_cols != n_cols for m in mats):
            raise ValueError("stacked matrices must share a shape")
        self.count = len(mats)
        self.num_rows, self.num_cols = n_rows, n_cols
        offset_rows = np.concatenate(
            [m.rows + np.int64(i * n_rows) for i, m in enumerate(mats)])
        cols = np.concatenate([m.cols for m in mats])
        vals = np.concatenate([m.vals for m in mats])
        # Forward: one (count*n_rows) x n_cols matrix whose output slices
        # are the individual products.  Each member's rows are sorted, and
        # the offsets keep the concatenation sorted, so the matvec gather
        # plan needs no permutation.
        self._forward = SparseMatrix(self.count * n_rows, n_cols,
                                     offset_rows, cols, vals)
        # Transposed: output rows are the original columns; the gather
        # index points into a stack of ``count`` scaled copies of the
        # input vector, which folds per-matrix coefficients into the
        # product (see scaled_transpose_matvec).
        self._transposed = SparseMatrix(n_cols, self.count * n_rows,
                                        cols, offset_rows, vals)

    def matvec_all(self, x: np.ndarray) -> List[np.ndarray]:
        """[M_0 x, M_1 x, ...] in ONE fused SpMV pass."""
        stacked = self._forward.matvec(x)
        n = self.num_rows
        return [stacked[i * n:(i + 1) * n] for i in range(self.count)]

    def scaled_transpose_matvec(self, coeffs, x: np.ndarray) -> np.ndarray:
        """sum_i coeffs[i] * M_i^T x in ONE fused SpMV pass.

        The coefficients are folded into ``count`` scalar-scaled copies of
        ``x``; the stacked transpose then gathers each matrix's entries
        from its own copy, so the combination costs no extra pass over the
        non-zeros.
        """
        if len(coeffs) != self.count:
            raise ValueError("need one coefficient per stacked matrix")
        # The scaled copies only feed the matvec's gather-multiply, which
        # accepts any uint64 representative — skip canonicalization.
        scaled = np.concatenate(
            [fv.mul_scalar(x, int(c), canonical=False) for c in coeffs])
        return self._transposed.matvec(scaled)
