r"""R1CS constraint systems with the Spartan-friendly z-vector layout.

An R1CS instance is (A, B, C, x) and a witness w such that
(A z) o (B z) = (C z), where o is the element-wise product and z is the
wire-value vector (Fig. 2 of the paper).

Layout.  Spartan's verifier must split the multilinear extension of z into
a public part it can evaluate itself and a committed witness part.  We use::

    z = [ 1, x_0 .. x_{k-1}, 0-pad ]  ++  [ w_0 .. w_{m-1}, 0-pad ]
        \____ public half (2^(L-1)) _/    \___ witness half (2^(L-1)) __/

so  z~(r_0, r) = (1 - r_0) * pub~(r) + r_0 * w~(r)  and only w~ needs a
polynomial-commitment opening.  Constraints are padded to the same 2^L.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..field import vector as fv
from ..ntt.polymul import next_pow2
from .matrices import SparseMatrix, StackedMatrices


@dataclass
class R1CSShape:
    """Dimensions of a padded R1CS instance."""

    num_constraints: int   # padded, power of two, == z length
    num_public: int        # count of public entries incl. the leading 1
    num_witness: int       # count of live witness wires

    @property
    def log_size(self) -> int:
        return self.num_constraints.bit_length() - 1

    @property
    def half(self) -> int:
        return self.num_constraints // 2


class R1CS:
    """A padded rank-1 constraint system over Goldilocks."""

    def __init__(self, a: SparseMatrix, b: SparseMatrix, c: SparseMatrix,
                 num_public: int, num_witness: int):
        if not (a.num_rows == b.num_rows == c.num_rows):
            raise ValueError("A, B, C must have equal row counts")
        if not (a.num_cols == b.num_cols == c.num_cols):
            raise ValueError("A, B, C must have equal column counts")
        if a.num_rows != a.num_cols:
            raise ValueError("padded R1CS must be square (rows == z length)")
        n = a.num_rows
        if n < 2 or n & (n - 1):
            raise ValueError("padded size must be a power of two >= 2")
        half = n // 2
        if num_public > half or num_witness > half:
            raise ValueError("public/witness sections exceed their halves")
        self.a, self.b, self.c = a, b, c
        self.shape = R1CSShape(n, num_public, num_witness)
        self._stacked_cache: StackedMatrices | None = None

    def __getstate__(self):
        """Drop the fused-SpMV cache from pickles (rebuilt lazily by the
        receiver); with SparseMatrix's own cache trimming this keeps a
        broadcast proving key to the raw coordinate arrays."""
        state = self.__dict__.copy()
        state["_stacked_cache"] = None
        return state

    def _stacked(self) -> StackedMatrices:
        """Lazily-built fused view of (A, B, C) for single-pass SpMVs."""
        if self._stacked_cache is None:
            self._stacked_cache = StackedMatrices([self.a, self.b, self.c])
        return self._stacked_cache

    # -- z-vector assembly ---------------------------------------------------
    def assemble_z(self, public: np.ndarray, witness: np.ndarray) -> np.ndarray:
        """Build the padded z vector from public inputs (incl. leading 1)
        and witness values."""
        public = np.asarray(public, dtype=np.uint64)
        witness = np.asarray(witness, dtype=np.uint64)
        if len(public) != self.shape.num_public:
            raise ValueError(f"expected {self.shape.num_public} public entries")
        if len(witness) != self.shape.num_witness:
            raise ValueError(f"expected {self.shape.num_witness} witness entries")
        if self.shape.num_public >= 1 and int(public[0]) != 1:
            raise ValueError("public[0] must be the constant 1")
        z = np.zeros(self.shape.num_constraints, dtype=np.uint64)
        z[: len(public)] = public
        z[self.shape.half : self.shape.half + len(witness)] = witness
        return z

    def split_z(self, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (public half, witness half) of a padded z vector."""
        half = self.shape.half
        return z[:half], z[half:]

    # -- satisfaction ---------------------------------------------------------
    def is_satisfied(self, z: np.ndarray) -> bool:
        """Check (A z) o (B z) == (C z)."""
        az, bz, cz = self.products(z)
        return bool((fv.mul(az, bz) == cz).all())

    def products(self, z: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (A z, B z, C z) — the inputs to Spartan's first sumcheck.

        All three SpMVs run as one fused pass over the stacked coordinate
        arrays (:class:`StackedMatrices`)."""
        az, bz, cz = self._stacked().matvec_all(z)
        return az, bz, cz

    def combined_transpose_matvec(self, coeffs, x: np.ndarray) -> np.ndarray:
        """(coeffs[0]*A + coeffs[1]*B + coeffs[2]*C)^T x in one fused pass —
        the first factor of Spartan's second sumcheck."""
        return self._stacked().scaled_transpose_matvec(coeffs, x)

    @property
    def nnz(self) -> int:
        return self.a.nnz + self.b.nnz + self.c.nnz

    def __repr__(self) -> str:
        s = self.shape
        return (f"R1CS(n={s.num_constraints}, public={s.num_public}, "
                f"witness={s.num_witness}, nnz={self.nnz})")


def pad_r1cs(a: SparseMatrix, b: SparseMatrix, c: SparseMatrix,
             num_public: int, num_witness: int,
             min_size: int = 4) -> R1CS:
    """Pad raw constraint matrices to the square power-of-two Spartan shape.

    Raw matrices are (m constraints) x (num_public + num_witness) with
    columns ordered [1, x..., w...].  Witness columns are relocated to the
    second half of the padded z vector.
    """
    raw_cols = num_public + num_witness
    for m in (a, b, c):
        if m.num_cols != raw_cols:
            raise ValueError("matrix columns must equal num_public + num_witness")
    half = max(next_pow2(num_public), next_pow2(num_witness), min_size // 2)
    n = max(next_pow2(a.num_rows), 2 * half, min_size)
    half = n // 2

    def relocate(m: SparseMatrix) -> SparseMatrix:
        cols = m.cols.copy()
        wit = cols >= num_public
        cols[wit] = cols[wit] - num_public + half
        return SparseMatrix(n, n, m.rows, cols, m.vals)

    return R1CS(relocate(a), relocate(b), relocate(c), num_public, num_witness)
