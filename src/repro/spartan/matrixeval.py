"""Evaluation of the multilinear extensions of the R1CS matrices.

M~(rx, ry) = sum over non-zeros v at (i, j) of v * eq(rx, i) * eq(ry, j).

Spartan's full scheme (Spark) commits to these sparse MLEs during
preprocessing and proves the evaluations with memory-checking sumchecks
(the 4-gamma multiset hashes of Sec. VII-A).  The functional layer here
lets the verifier evaluate directly in O(nnz) — identical result, not
succinct; the succinct variant's cost appears in the performance model
(DESIGN.md, substitutions table).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..field import vector as fv
from ..multilinear.mle import eq_table
from ..r1cs.matrices import SparseMatrix


def matrix_mle_eval(matrix: SparseMatrix, rx: Sequence[int],
                    ry: Sequence[int]) -> int:
    """Evaluate the matrix MLE at (rx, ry) directly from the non-zeros."""
    if matrix.num_rows != (1 << len(rx)) or matrix.num_cols != (1 << len(ry)):
        raise ValueError("point dimensions do not match matrix shape")
    if matrix.nnz == 0:
        return 0
    eq_rows = eq_table(rx)
    eq_cols = eq_table(ry)
    terms = fv.mul(matrix.vals, fv.mul(eq_rows[matrix.rows], eq_cols[matrix.cols]))
    return fv.vsum(terms)


def combined_matrix_eval(a: SparseMatrix, b: SparseMatrix, c: SparseMatrix,
                         r_a: int, r_b: int, r_c: int,
                         rx: Sequence[int], ry: Sequence[int]) -> int:
    """(r_a * A~ + r_b * B~ + r_c * C~)(rx, ry), sharing the eq tables."""
    eq_rows = eq_table(rx)
    eq_cols = eq_table(ry)
    total = 0
    for m, coeff in ((a, r_a), (b, r_b), (c, r_c)):
        if m.nnz == 0:
            continue
        terms = fv.mul(m.vals, fv.mul(eq_rows[m.rows], eq_cols[m.cols]))
        total += coeff * fv.vsum(terms)
    from ..field.goldilocks import MODULUS

    return total % MODULUS


def combined_matrix_row(a: SparseMatrix, b: SparseMatrix, c: SparseMatrix,
                        r_a: int, r_b: int, r_c: int,
                        rx: Sequence[int]) -> np.ndarray:
    """The vector y |-> (r_a*A~ + r_b*B~ + r_c*C~)(rx, y) on the hypercube.

    Equals (r_a*A + r_b*B + r_c*C)^T eq(rx); this is the first factor of
    Spartan's second sumcheck.
    """
    eq_rows = eq_table(rx)
    acc = np.zeros(a.num_cols, dtype=np.uint64)
    for m, coeff in ((a, r_a), (b, r_b), (c, r_c)):
        acc = fv.add(acc, fv.mul_scalar(m.transpose_matvec(eq_rows), coeff))
    return acc
