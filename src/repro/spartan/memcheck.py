"""Offline memory checking with multiset hashes — the Spark primitive
behind Spartan's sparse-matrix commitments (Sec. VII-A: "For the multiset
hash function in Spartan, we run 4 separate instantiations (i.e.,
different gamma values)").

Spark proves that the prover's claimed sequence of reads from a committed
table is consistent, using Blum-style offline memory checking: every read
of address a returning value v at timestamp t is paired with a write-back
at the new timestamp, and the invariant

    init_set  U  write_set   ==   read_set  U  final_set     (as multisets)

holds iff every read returned the last value written.  Multiset equality
is checked by comparing randomized hashes

    H_gamma(S) = prod_{(a, v, t) in S} (tau - (a + gamma*v + gamma^2*t)),

whose collision probability is |S| * deg / p per (gamma, tau) pair — over
the 64-bit Goldilocks field that is too weak alone, hence the paper's 4
independent instantiations (Sec. VII-A), mirrored here.

The module provides the native checker (used to validate the protocol
inventory the NoCap cost model charges for) plus the operation counts
one instantiation contributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..field.goldilocks import MODULUS
from ..hashing.transcript import Transcript
from ..opcount import OpCount

#: Paper parameter: independent multiset-hash instantiations.
DEFAULT_INSTANTIATIONS = 4

Tuple3 = Tuple[int, int, int]  # (address, value, timestamp)


def multiset_hash(tuples: Sequence[Tuple3], gamma: int, tau: int) -> int:
    """H(S) = prod (tau - (a + gamma*v + gamma^2*t)) over GF(p)."""
    gamma %= MODULUS
    tau %= MODULUS
    g2 = gamma * gamma % MODULUS
    acc = 1
    for a, v, t in tuples:
        fingerprint = (a + gamma * v + g2 * t) % MODULUS
        acc = acc * ((tau - fingerprint) % MODULUS) % MODULUS
    return acc


@dataclass
class MemoryTrace:
    """A timestamped read trace over an initial table (Spark's access
    pattern: the circuit's sparse-matrix row/col indices reading from the
    eq tables)."""

    initial: List[int]
    reads: List[Tuple3] = field(default_factory=list)   # read set RS
    writes: List[Tuple3] = field(default_factory=list)  # write set WS
    _state: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    _clock: int = 0

    def __post_init__(self):
        for addr, value in enumerate(self.initial):
            self._state[addr] = (value % MODULUS, 0)

    def read(self, addr: int) -> int:
        """Perform one checked read: log (a, v, t_old) in RS and the
        timestamp-bumped write-back in WS."""
        value, t_old = self._state[addr]
        self._clock += 1
        self.reads.append((addr, value, t_old))
        self.writes.append((addr, value, self._clock))
        self._state[addr] = (value, self._clock)
        return value

    def init_set(self) -> List[Tuple3]:
        return [(a, v % MODULUS, 0) for a, v in enumerate(self.initial)]

    def final_set(self) -> List[Tuple3]:
        return [(a, v, t) for a, (v, t) in sorted(self._state.items())]


def check_trace(trace: MemoryTrace, transcript: Transcript,
                instantiations: int = DEFAULT_INSTANTIATIONS) -> bool:
    """Verify init U WS == RS U final with ``instantiations`` independent
    (gamma, tau) pairs."""
    return check_sets(trace.init_set(), trace.writes, trace.reads,
                      trace.final_set(), transcript, instantiations)


def check_sets(init_set: Sequence[Tuple3], write_set: Sequence[Tuple3],
               read_set: Sequence[Tuple3], final_set: Sequence[Tuple3],
               transcript: Transcript,
               instantiations: int = DEFAULT_INSTANTIATIONS) -> bool:
    """The multiset-hash equality check on explicit sets."""
    if len(init_set) + len(write_set) != len(read_set) + len(final_set):
        return False
    for k in range(instantiations):
        gamma = transcript.challenge_field(b"memcheck/gamma%d" % k)
        tau = transcript.challenge_field(b"memcheck/tau%d" % k)
        lhs = (multiset_hash(init_set, gamma, tau)
               * multiset_hash(write_set, gamma, tau)) % MODULUS
        rhs = (multiset_hash(read_set, gamma, tau)
               * multiset_hash(final_set, gamma, tau)) % MODULUS
        if lhs != rhs:
            return False
    return True


def memcheck_cost(num_reads: int, table_size: int,
                  instantiations: int = DEFAULT_INSTANTIATIONS) -> OpCount:
    """Operation counts of the checking products (cost-model hook):
    each tuple costs ~3 multiplies per instantiation, over
    2*(reads + table) tuples total."""
    tuples = 2 * (num_reads + table_size)
    return OpCount(mul=3 * tuples * instantiations,
                   add=2 * tuples * instantiations,
                   mem_read_bytes=24 * tuples)
