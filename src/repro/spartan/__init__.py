"""The Spartan IOP composed with the Orion PCS."""

from . import memcheck
from .matrixeval import combined_matrix_eval, combined_matrix_row, matrix_mle_eval
from .protocol import (
    DEFAULT_REPETITIONS,
    RepetitionProof,
    SpartanParams,
    SpartanProof,
    SpartanProver,
    SpartanVerifier,
)
from .sumcheck1 import finish_constraint_sumcheck, prove_constraint_sumcheck

__all__ = [
    "memcheck",
    "combined_matrix_eval",
    "combined_matrix_row",
    "matrix_mle_eval",
    "DEFAULT_REPETITIONS",
    "RepetitionProof",
    "SpartanParams",
    "SpartanProof",
    "SpartanProver",
    "SpartanVerifier",
    "finish_constraint_sumcheck",
    "prove_constraint_sumcheck",
]
