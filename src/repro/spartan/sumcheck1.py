"""Spartan's first sumcheck: the cubic "constraint" sumcheck.

Proves  sum_{x in {0,1}^L}  eq(tau, x) * (Az~(x) * Bz~(x) - Cz~(x)) = 0,
which (for random tau) implies (A z) o (B z) = (C z), i.e. that the R1CS
is satisfied.  The per-round polynomial has degree 3, so each round sends
four evaluations.  This is the kernel NoCap's sumcheck DP (Listing 1)
plus recomputation optimization targets.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..field import vector as fv
from ..field.goldilocks import MODULUS
from ..field.poly import interpolate_eval
from ..hashing.transcript import Transcript
from ..obs.metrics import METRICS as _METRICS

DEGREE = 3


def _eq_scalar(a: int, t: int) -> int:
    """eq(a, t) = a*t + (1-a)(1-t) mod p for scalar arguments."""
    return (a * t + (1 - a) * (1 - t)) % MODULUS


def prove_constraint_sumcheck(
    tau: Sequence[int], az: np.ndarray, bz: np.ndarray, cz: np.ndarray,
    transcript: Transcript, label: bytes = b"spartan/sc1",
) -> Tuple[List[List[int]], Tuple[int, int, int], List[int]]:
    """Prover for sum_x eq(tau, x) * (az(x)*bz(x) - cz(x)) (claim = 0).

    Returns (round_evals, (va, vb, vc), challenges) where va/vb/vc are the
    claimed MLE values of Az, Bz, Cz at the challenge point rx.

    The eq factor is never carried as a fourth folded table.  Because
    eq(tau, x) tensors over the variables, in round ``rnd`` (with earlier
    variables bound to challenges r_j) it splits as

        eq(tau, (r, t, x_rest))
            = [prod_{j<rnd} eq(tau_j, r_j)] * eq(tau_rnd, t)
              * eq(tau_{rnd+1:}, x_rest),

    i.e. a running scalar prefix, a degree-1 scalar factor in the sample
    point t, and a STATIC suffix table that needs no per-round fold.  The
    remaining cubic g(t) is the scalar factor times a QUADRATIC inner sum,
    so only two vector evaluations (t = 1, 2) are needed per round: the
    t = 0 value follows from the running-claim invariant g(0) + g(1) =
    claim, and t = 3 by quadratic extrapolation.  The wire format (four
    evaluations per round) is unchanged.
    """
    tables = [np.asarray(t, dtype=np.uint64) for t in (az, bz, cz)]
    n = len(tables[0])
    if any(len(t) != n for t in tables) or n & (n - 1):
        raise ValueError("tables must share a power-of-two length")
    num_rounds = n.bit_length() - 1
    taus = [int(t) % MODULUS for t in tau]
    if len(taus) != num_rounds:
        raise ValueError(f"need {num_rounds} eq coordinates, got {len(taus)}")
    _METRICS.inc("sumcheck.instances")
    _METRICS.inc("sumcheck.rounds", num_rounds)

    # Suffix eq tables, back to front: suffixes[rnd] = eq_table(tau[rnd+1:])
    # (variable rnd+1 most significant, matching the fold order).  Total
    # cost ~n/2 multiplies — half of building the full eq table once.
    suffixes: List[np.ndarray] = [None] * max(num_rounds, 1)
    s = np.ones(1, dtype=np.uint64)
    for rnd in range(num_rounds - 1, -1, -1):
        suffixes[rnd] = s
        if rnd:
            hi = fv.mul_scalar(s, taus[rnd])
            s = np.concatenate([fv.sub(s, hi), hi])

    round_evals: List[List[int]] = []
    challenges: List[int] = []
    # Running claim (g_{rnd-1} interpolated at the challenge); 0 initially
    # for a satisfied system.
    current = 0
    # prod_{j<rnd} eq(tau_j, r_j): the bound-variable scalar prefix.
    c_prefix = 1
    xs = list(range(DEGREE + 1))
    for rnd in range(num_rounds):
        half = len(tables[0]) // 2
        bottoms = [t[:half] for t in tables]
        tops = [t[half:] for t in tables]
        diffs = [fv.sub(tp, bt) for tp, bt in zip(tops, bottoms)]
        suffix = suffixes[rnd]
        t_r = taus[rnd]

        def inner(az_t, bz_t, cz_t):
            # Non-canonical intermediates are exact: mul accepts any uint64
            # inputs and vsum's split accumulation tolerates values >= p.
            h = fv.sub(fv.mul(az_t, bz_t, canonical=False), cz_t)
            return fv.vsum(fv.mul(suffix, h, canonical=False))

        inner1 = inner(*tops)
        g1 = c_prefix * t_r % MODULUS * inner1 % MODULUS
        g0 = (current - g1) % MODULUS
        denom = c_prefix * (1 - t_r) % MODULUS
        if denom:
            # g(0) = denom * inner(0), so inner(0) comes for free from the
            # claim invariant instead of a third vector evaluation.
            inner0 = g0 * pow(denom, MODULUS - 2, MODULUS) % MODULUS
        else:
            inner0 = inner(*bottoms)
        samples = [fv.add(tp, df) for tp, df in zip(tops, diffs)]
        inner2 = inner(*samples)
        # The inner sum is quadratic in t: extrapolate the fourth point.
        inner3 = (inner0 - 3 * inner1 + 3 * inner2) % MODULUS
        evals = [g0, g1,
                 c_prefix * _eq_scalar(t_r, 2) % MODULUS * inner2 % MODULUS,
                 c_prefix * _eq_scalar(t_r, 3) % MODULUS * inner3 % MODULUS]
        transcript.absorb_fields(label + b"/round%d" % rnd, evals)
        r = transcript.challenge_field(label + b"/r%d" % rnd)
        challenges.append(r)
        current = interpolate_eval(xs, evals, r)
        tables = [fv.scale_add(bt, df, r) for bt, df in zip(bottoms, diffs)]
        c_prefix = c_prefix * _eq_scalar(t_r, r) % MODULUS
        round_evals.append(evals)

    va, vb, vc = int(tables[0][0]), int(tables[1][0]), int(tables[2][0])
    transcript.absorb_fields(label + b"/final", [va, vb, vc])
    return round_evals, (va, vb, vc), challenges


def finish_constraint_sumcheck(
    reduced_claim: int, eq_at_rx: int, va: int, vb: int, vc: int,
) -> bool:
    """Verifier's final check: eq(tau, rx) * (va*vb - vc) == reduced claim."""
    expected = eq_at_rx * ((va * vb - vc) % MODULUS) % MODULUS
    return expected == reduced_claim % MODULUS
