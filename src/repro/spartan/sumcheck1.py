"""Spartan's first sumcheck: the cubic "constraint" sumcheck.

Proves  sum_{x in {0,1}^L}  eq(tau, x) * (Az~(x) * Bz~(x) - Cz~(x)) = 0,
which (for random tau) implies (A z) o (B z) = (C z), i.e. that the R1CS
is satisfied.  The per-round polynomial has degree 3, so each round sends
four evaluations.  This is the kernel NoCap's sumcheck DP (Listing 1)
plus recomputation optimization targets.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..field import vector as fv
from ..field.goldilocks import MODULUS
from ..hashing.transcript import Transcript
from ..multilinear.mle import fold

DEGREE = 3


def _sample(table: np.ndarray, t_val: int) -> np.ndarray:
    """Value of a multilinear factor at (t, b): bottom + t*(top - bottom)."""
    half = len(table) // 2
    bottom, top = table[:half], table[half:]
    if t_val == 0:
        return bottom
    if t_val == 1:
        return top
    return fv.add(bottom, fv.mul_scalar(fv.sub(top, bottom), t_val))


def prove_constraint_sumcheck(
    eq: np.ndarray, az: np.ndarray, bz: np.ndarray, cz: np.ndarray,
    transcript: Transcript, label: bytes = b"spartan/sc1",
) -> Tuple[List[List[int]], Tuple[int, int, int], List[int]]:
    """Prover for sum_x eq(x) * (az(x)*bz(x) - cz(x)) (claim = 0).

    Returns (round_evals, (va, vb, vc), challenges) where va/vb/vc are the
    claimed MLE values of Az, Bz, Cz at the challenge point rx.
    """
    tables = [np.asarray(t, dtype=np.uint64).copy() for t in (eq, az, bz, cz)]
    n = len(tables[0])
    if any(len(t) != n for t in tables) or n & (n - 1):
        raise ValueError("tables must share a power-of-two length")

    round_evals: List[List[int]] = []
    challenges: List[int] = []
    num_rounds = n.bit_length() - 1
    for rnd in range(num_rounds):
        evals = []
        for t_val in range(DEGREE + 1):
            eq_t = _sample(tables[0], t_val)
            az_t = _sample(tables[1], t_val)
            bz_t = _sample(tables[2], t_val)
            cz_t = _sample(tables[3], t_val)
            g = fv.mul(eq_t, fv.sub(fv.mul(az_t, bz_t), cz_t))
            evals.append(fv.vsum(g))
        transcript.absorb_fields(label + b"/round%d" % rnd, evals)
        r = transcript.challenge_field(label + b"/r%d" % rnd)
        challenges.append(r)
        tables = [fold(t, r) for t in tables]
        round_evals.append(evals)

    va, vb, vc = int(tables[1][0]), int(tables[2][0]), int(tables[3][0])
    transcript.absorb_fields(label + b"/final", [va, vb, vc])
    return round_evals, (va, vb, vc), challenges


def finish_constraint_sumcheck(
    reduced_claim: int, eq_at_rx: int, va: int, vb: int, vc: int,
) -> bool:
    """Verifier's final check: eq(tau, rx) * (va*vb - vc) == reduced claim."""
    expected = eq_at_rx * ((va * vb - vc) % MODULUS) % MODULUS
    return expected == reduced_claim % MODULUS
