"""The Spartan IOP composed with the Orion PCS: the paper's zk-SNARK.

Protocol outline (Setty, CRYPTO'20, NIZK variant; Sec. II / V of the
paper):

1. The prover commits to the witness MLE w~ with the Orion PCS.
2. Sumcheck #1 (cubic): sum_x eq(tau, x) * (Az~(x) Bz~(x) - Cz~(x)) = 0
   for a random tau, reducing satisfiability to claims (va, vb, vc) about
   Az~, Bz~, Cz~ at a random point rx.
3. The claims are bundled with random coefficients (r_a, r_b, r_c) and
   sumcheck #2 (quadratic) peels off the matrix products:
   sum_y M~(rx, y) * z~(y) = r_a va + r_b vb + r_c vc.
4. The verifier checks M~(rx, ry) itself (from the public matrices) and
   obtains z~(ry) from the public half plus a PCS opening of w~.

128-bit soundness over the 64-bit field comes from running the sumcheck
chain ``repetitions`` times with independent Fiat-Shamir challenges
(Sec. VII-A: 3 repetitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..field import vector as fv
from ..field.goldilocks import MODULUS
from ..hashing.transcript import Transcript
from ..multilinear.mle import eq_eval, eq_table, mle_eval
from ..multilinear.sumcheck import (
    SumcheckProof,
    prove_sumcheck,
    verify_sumcheck_rounds,
)
from ..obs import span as _span
from ..parallel.deadline import check_deadline
from ..pcs.orion import OrionCommitment, OrionEvalProof, OrionPCS
from ..r1cs.system import R1CS
from .matrixeval import combined_matrix_eval
from .sumcheck1 import (
    finish_constraint_sumcheck,
    prove_constraint_sumcheck,
)

#: Paper value (Sec. VII-A): "we run all sumchecks 3 times".
DEFAULT_REPETITIONS = 3


@dataclass
class SpartanParams:
    """Protocol knobs; defaults give the paper's 128-bit configuration."""

    repetitions: int = DEFAULT_REPETITIONS


@dataclass
class RepetitionProof:
    """One independently-challenged run of the sumcheck chain."""

    sc1_round_evals: List[List[int]]
    va: int
    vb: int
    vc: int
    sc2: SumcheckProof
    w_eval: int                      # claimed w~(ry[1:])
    pcs_proof: OrionEvalProof

    def size_bytes(self) -> int:
        total = 8 * sum(len(r) for r in self.sc1_round_evals)
        total += 3 * 8
        total += self.sc2.size_bytes()
        total += 8
        total += self.pcs_proof.size_bytes()
        return total


@dataclass
class SpartanProof:
    """A complete Spartan+Orion proof."""

    witness_commitment: OrionCommitment
    repetitions: List[RepetitionProof]

    def size_bytes(self) -> int:
        return (self.witness_commitment.size_bytes()
                + sum(r.size_bytes() for r in self.repetitions))


class SpartanProver:
    """Generates Spartan+Orion proofs for a fixed R1CS instance."""

    def __init__(self, r1cs: R1CS, pcs: Optional[OrionPCS] = None,
                 params: Optional[SpartanParams] = None, pool=None):
        self.r1cs = r1cs
        self.pcs = pcs or OrionPCS()
        self.params = params or SpartanParams()
        #: Optional :class:`~repro.parallel.ProverPool` for the commit-side
        #: kernels (RS encodes, Merkle hashing).  Never affects proof bytes.
        self.pool = pool

    def prove(self, public: np.ndarray, witness: np.ndarray,
              transcript: Optional[Transcript] = None) -> SpartanProof:
        """Prove knowledge of ``witness`` satisfying the R1CS on ``public``."""
        tr = transcript or Transcript()
        r1cs = self.r1cs
        log_n = r1cs.shape.log_size
        # Cooperative cancellation (repro.parallel.deadline): the kernels
        # are long uninterruptible numpy calls, so the deadline is checked
        # at every phase boundary — witness assembly, SpMV, commit, each
        # repetition's sumchecks and PCS opening.
        check_deadline("spartan.witness")
        with _span("spartan.witness", "other", n=1 << log_n):
            z = r1cs.assemble_z(public, witness)
        # One SpMV pass serves both the satisfaction check and sumcheck #1
        # (is_satisfied would recompute all three products).
        check_deadline("spartan.spmv")
        with _span("spartan.spmv", "spmv", n=1 << log_n):
            az, bz, cz = r1cs.products(z)
        if (fv.mul(az, bz) != cz).any():
            raise ValueError("witness does not satisfy the constraint system")
        pub_half, wit_half = r1cs.split_z(z)

        tr.absorb_array(b"spartan/public", np.asarray(public, dtype=np.uint64))
        check_deadline("pcs.commit")
        commitment, state = self.pcs.commit(wit_half, pool=self.pool)
        tr.absorb_digest(b"spartan/witness-commitment", commitment.root)
        reps: List[RepetitionProof] = []
        for rep in range(self.params.repetitions):
            label = b"spartan/rep%d" % rep
            check_deadline("spartan.rep%d" % rep)
            with _span("spartan.rep%d" % rep, "other", rep=rep):
                tau = tr.challenge_fields(label + b"/tau", log_n)
                # The eq(tau, .) factor is handled inside the sumcheck via
                # its tensor split (scalar prefix x static suffix tables) —
                # the full 2^L eq table is never materialized.
                with _span("spartan.sumcheck1", "sumcheck", rounds=log_n):
                    sc1_rounds, (va, vb, vc), rx = prove_constraint_sumcheck(
                        tau, az, bz, cz, tr, label + b"/sc1")

                r_a = tr.challenge_field(label + b"/ra")
                r_b = tr.challenge_field(label + b"/rb")
                r_c = tr.challenge_field(label + b"/rc")
                claim2 = (r_a * va + r_b * vb + r_c * vc) % MODULUS

                # Fused (r_a*A + r_b*B + r_c*C)^T eq(rx): one stacked SpMV
                # instead of three (equals combined_matrix_row on (A, B, C)).
                check_deadline("spartan.matrix_combine")
                with _span("spartan.matrix_combine", "spmv"):
                    m_row = r1cs.combined_transpose_matvec((r_a, r_b, r_c),
                                                           eq_table(rx))
                with _span("spartan.sumcheck2", "sumcheck", rounds=log_n):
                    sc2, ry = prove_sumcheck([m_row, z], tr, label + b"/sc2",
                                             claim=claim2)

                # Open w~ at ry[1:] (ry[0] selects the witness half).
                check_deadline("pcs.open")
                w_point = ry[1:]
                w_eval = mle_eval(wit_half, w_point)
                tr.absorb_field(label + b"/w-eval", w_eval)
                pcs_proof = self.pcs.open(state, commitment, w_point,
                                          tr.fork(label + b"/pcs"),
                                          pool=self.pool)
                reps.append(RepetitionProof(sc1_rounds, va, vb, vc, sc2,
                                            w_eval, pcs_proof))
        return SpartanProof(commitment, reps)


class SpartanVerifier:
    """Checks Spartan+Orion proofs against the public R1CS instance."""

    def __init__(self, r1cs: R1CS, pcs: Optional[OrionPCS] = None,
                 params: Optional[SpartanParams] = None):
        self.r1cs = r1cs
        self.pcs = pcs or OrionPCS()
        self.params = params or SpartanParams()

    def verify(self, public: np.ndarray, proof: SpartanProof,
               transcript: Optional[Transcript] = None) -> bool:
        """Check a proof against the public inputs.

        ``proof`` is untrusted: structure is validated before any
        transcript absorption or arithmetic, so malformed proofs are
        rejected with ``False`` rather than an uncaught exception.
        """
        tr = transcript or Transcript()
        r1cs = self.r1cs
        log_n = r1cs.shape.log_size
        try:
            public = np.asarray(public, dtype=np.uint64)
        except (TypeError, ValueError, OverflowError):
            return False
        if public.ndim != 1 or len(public) != r1cs.shape.num_public:
            return False
        if public.size and int(public.max()) >= MODULUS:
            return False
        if not self._proof_well_formed(proof, log_n):
            return False

        # Reconstruct the public half of z for direct evaluation.
        pub_half = np.zeros(r1cs.shape.half, dtype=np.uint64)
        pub_half[: len(public)] = public

        tr.absorb_array(b"spartan/public", public)
        tr.absorb_digest(b"spartan/witness-commitment",
                         proof.witness_commitment.root)

        for rep, rp in enumerate(proof.repetitions):
            label = b"spartan/rep%d" % rep
            va, vb, vc = int(rp.va), int(rp.vb), int(rp.vc)
            tau = tr.challenge_fields(label + b"/tau", log_n)

            # Sumcheck 1: claim 0, degree 3.
            res1 = verify_sumcheck_rounds(0, rp.sc1_round_evals, 3, tr,
                                          label + b"/sc1")
            if not res1.ok or len(res1.challenges) != log_n:
                return False
            rx = res1.challenges
            tr.absorb_fields(label + b"/sc1/final", [va, vb, vc])
            eq_at_rx = eq_eval(tau, rx)
            if not finish_constraint_sumcheck(res1.final_claim, eq_at_rx,
                                              va, vb, vc):
                return False

            r_a = tr.challenge_field(label + b"/ra")
            r_b = tr.challenge_field(label + b"/rb")
            r_c = tr.challenge_field(label + b"/rc")
            claim2 = (r_a * va + r_b * vb + r_c * vc) % MODULUS

            # Sumcheck 2: degree 2; final factor values are (m_val, z_val).
            res2 = verify_sumcheck_rounds(claim2, rp.sc2.round_evals, 2, tr,
                                          label + b"/sc2")
            if not res2.ok or len(res2.challenges) != log_n:
                return False
            ry = res2.challenges
            tr.absorb_fields(label + b"/sc2/final", rp.sc2.final_values)
            if len(rp.sc2.final_values) != 2:
                return False
            m_val, z_val = (int(v) for v in rp.sc2.final_values)
            if m_val * z_val % MODULUS != res2.final_claim:
                return False

            # Check m_val directly against the public matrices.
            expected_m = combined_matrix_eval(r1cs.a, r1cs.b, r1cs.c,
                                              r_a, r_b, r_c, rx, ry)
            if m_val % MODULUS != expected_m:
                return False

            # Check z_val = (1 - ry0) * pub~(ry[1:]) + ry0 * w~(ry[1:]).
            w_point = ry[1:]
            w_eval = int(rp.w_eval)
            tr.absorb_field(label + b"/w-eval", w_eval)
            pub_eval = mle_eval(pub_half, w_point)
            ry0 = ry[0] % MODULUS
            expected_z = ((1 - ry0) * pub_eval + ry0 * w_eval) % MODULUS
            if z_val % MODULUS != expected_z:
                return False

            # PCS opening of w~ at ry[1:].
            if not self.pcs.verify(proof.witness_commitment, w_point,
                                   w_eval, rp.pcs_proof,
                                   tr.fork(label + b"/pcs")):
                return False
        return True

    def _proof_well_formed(self, proof: SpartanProof, log_n: int) -> bool:
        """Structural validation of an untrusted proof object.

        Everything the verify loop touches is checked here first: claimed
        scalars are canonical integers, sumcheck containers are lists,
        the commitment geometry matches this instance, and the repetition
        count matches the preset.  Per-round polynomial shape is left to
        :func:`verify_sumcheck_rounds`, which rejects with ``False``.
        """
        if not isinstance(proof, SpartanProof):
            return False
        c = proof.witness_commitment
        if not OrionPCS._commitment_well_formed(c):
            return False
        if c.table_len != self.r1cs.shape.half:
            return False
        if c.num_rows != self.pcs.params.rows_for(c.table_len):
            return False
        if not isinstance(proof.repetitions, list):
            return False
        if len(proof.repetitions) != self.params.repetitions:
            return False
        for rp in proof.repetitions:
            if not isinstance(rp, RepetitionProof):
                return False
            if not all(_canonical_scalar(v)
                       for v in (rp.va, rp.vb, rp.vc, rp.w_eval)):
                return False
            if not isinstance(rp.sc1_round_evals, list):
                return False
            if not isinstance(rp.sc2, SumcheckProof):
                return False
            if not isinstance(rp.sc2.round_evals, list):
                return False
            if not isinstance(rp.sc2.final_values, list) or not all(
                    _canonical_scalar(v) for v in rp.sc2.final_values):
                return False
            if not isinstance(rp.pcs_proof, OrionEvalProof):
                return False
        return True


def _canonical_scalar(v) -> bool:
    """True for a canonical field element carried as a plain integer."""
    return (isinstance(v, (int, np.integer)) and not isinstance(v, bool)
            and 0 <= v < MODULUS)
