"""High-level zk-SNARK API (Spartan IOP + Orion PCS).

Lifecycle entry points: :func:`setup` -> (:class:`ProvingKey`,
:class:`VerifyingKey`), :func:`prove` -> :class:`ProofBundle`,
:func:`verify`; :func:`prove_many` batches independent jobs across a
:class:`~repro.parallel.ProverPool`.  All of these are also re-exported
at the top level (``from repro import setup, prove, verify``).
"""

from .api import (
    JobResult,
    ProofBundle,
    ProvingKey,
    VerifyingKey,
    prove,
    prove_many,
    setup,
    verify,
)
from .params import PAPER, PRESETS, TEST, SecurityPreset, preset_by_name
from .serialize import proof_from_bytes, proof_to_bytes

__all__ = [
    "JobResult",
    "ProofBundle",
    "ProvingKey",
    "VerifyingKey",
    "setup",
    "prove",
    "prove_many",
    "verify",
    "PAPER",
    "TEST",
    "PRESETS",
    "SecurityPreset",
    "preset_by_name",
    "proof_from_bytes",
    "proof_to_bytes",
]
