"""High-level zk-SNARK API (Spartan IOP + Orion PCS)."""

from .api import ProofBundle, Snark, prove_and_verify
from .params import PAPER, TEST, SecurityPreset
from .serialize import proof_from_bytes, proof_to_bytes

__all__ = [
    "ProofBundle",
    "Snark",
    "prove_and_verify",
    "PAPER",
    "TEST",
    "SecurityPreset",
    "proof_from_bytes",
    "proof_to_bytes",
]
