"""High-level zk-SNARK API (Spartan IOP + Orion PCS).

Lifecycle entry points: :func:`setup` -> (:class:`ProvingKey`,
:class:`VerifyingKey`), :func:`prove` -> :class:`ProofBundle`,
:func:`verify`; :func:`prove_many` batches independent jobs across a
:class:`~repro.parallel.ProverPool`.  ``Snark`` / ``prove_and_verify``
are deprecated shims over the same machinery.
"""

from .api import (
    JobResult,
    ProofBundle,
    ProvingKey,
    Snark,
    VerifyingKey,
    prove,
    prove_and_verify,
    prove_many,
    setup,
    verify,
)
from .params import PAPER, PRESETS, TEST, SecurityPreset, preset_by_name
from .serialize import proof_from_bytes, proof_to_bytes

__all__ = [
    "JobResult",
    "ProofBundle",
    "ProvingKey",
    "VerifyingKey",
    "setup",
    "prove",
    "prove_many",
    "verify",
    "Snark",
    "prove_and_verify",
    "PAPER",
    "TEST",
    "PRESETS",
    "SecurityPreset",
    "preset_by_name",
    "proof_from_bytes",
    "proof_to_bytes",
]
