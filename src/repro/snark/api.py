"""High-level zk-SNARK API: the facade downstream users program against.

    from repro.snark import Snark
    from repro.r1cs import Circuit

    circuit = Circuit()
    ...build constraints, allocating public inputs and witnesses...
    snark = Snark.from_circuit(circuit)
    proof = snark.prove()
    if not snark.verify(proof):
        ...  # reject

``Snark`` binds an R1CS instance to a security preset; the proof object
serializes to bytes (:mod:`repro.snark.serialize`) so it can be shipped to
a verifier over the paper's 10 MB/s link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ReproError, VerificationError
from ..hashing.transcript import Transcript
from ..obs import span as _span
from ..r1cs.builder import Circuit
from ..r1cs.system import R1CS
from ..spartan.protocol import SpartanProof, SpartanProver, SpartanVerifier
from .params import TEST, SecurityPreset


@dataclass
class ProofBundle:
    """A proof plus the public inputs it attests to."""

    proof: SpartanProof
    public: np.ndarray

    def size_bytes(self) -> int:
        return self.proof.size_bytes() + len(self.public) * 8


class Snark:
    """A prover/verifier pair for one R1CS instance."""

    def __init__(self, r1cs: R1CS, preset: SecurityPreset = TEST,
                 rng: Optional[np.random.Generator] = None):
        self.r1cs = r1cs
        self.preset = preset
        self._pcs = preset.make_pcs(rng=rng)
        self._params = preset.make_spartan_params()
        self._prover = SpartanProver(r1cs, self._pcs, self._params)
        self._verifier = SpartanVerifier(r1cs, self._pcs, self._params)
        self._public: Optional[np.ndarray] = None
        self._witness: Optional[np.ndarray] = None

    @classmethod
    def from_circuit(cls, circuit: Circuit, preset: SecurityPreset = TEST,
                     rng: Optional[np.random.Generator] = None) -> "Snark":
        """Compile a circuit and remember its assignment for :meth:`prove`."""
        r1cs, public, witness = circuit.compile()
        snark = cls(r1cs, preset, rng)
        snark._public = public
        snark._witness = witness
        return snark

    def prove(self, public: Optional[np.ndarray] = None,
              witness: Optional[np.ndarray] = None) -> ProofBundle:
        """Generate a proof; defaults to the assignment captured at
        :meth:`from_circuit` time."""
        public = public if public is not None else self._public
        witness = witness if witness is not None else self._witness
        if public is None or witness is None:
            raise ValueError("no assignment: pass public and witness explicitly")
        with _span("snark.prove", "other",
                   constraints=self.r1cs.shape.num_constraints,
                   repetitions=self._params.repetitions):
            proof = self._prover.prove(public, witness, Transcript())
        return ProofBundle(proof=proof, public=np.asarray(public, dtype=np.uint64))

    def verify(self, bundle: ProofBundle) -> bool:
        """Check a proof against its public inputs.

        Total over untrusted input: any malformed bundle — wrong types,
        broken structure, a typed :class:`~repro.errors.ReproError` from
        a lower layer — is a rejection (``False``), never a crash.
        """
        if not isinstance(bundle, ProofBundle):
            return False
        return self.verify_raw(bundle.public, bundle.proof)

    def verify_raw(self, public: np.ndarray, proof: SpartanProof) -> bool:
        try:
            public = np.asarray(public, dtype=np.uint64)
        except (TypeError, ValueError, OverflowError):
            return False
        try:
            with _span("snark.verify", "other"):
                return self._verifier.verify(public, proof, Transcript())
        except ReproError:
            # Typed rejection from a lower layer: the proof is invalid.
            return False


def prove_and_verify(circuit: Circuit,
                     preset: SecurityPreset = TEST) -> ProofBundle:
    """One-shot helper used by examples and tests: prove then self-check."""
    snark = Snark.from_circuit(circuit, preset)
    bundle = snark.prove()
    if not snark.verify(bundle):
        raise VerificationError(
            "freshly generated proof failed verification")
    return bundle
