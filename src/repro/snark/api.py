"""High-level zk-SNARK API: explicit keygen / prove / verify lifecycle.

    from repro.r1cs import Circuit
    from repro.snark import setup, prove, verify, TEST

    circuit = Circuit()
    ...build constraints, allocating public inputs and witnesses...
    r1cs, public, witness = circuit.compile()
    pk, vk = setup(r1cs, preset=TEST)
    bundle = prove(pk, public, witness)
    if not verify(vk, bundle):
        ...  # reject

The three stages are separate objects so a verifier never constructs a
prover: :class:`ProvingKey` is what a proving service holds,
:class:`VerifyingKey` is what a relying party holds, and
:class:`ProofBundle` is the self-contained artifact that travels between
them — it serializes to a versioned envelope
(:meth:`ProofBundle.to_bytes` / :meth:`ProofBundle.from_bytes`, format in
:mod:`repro.snark.envelope`) carrying the preset id, the public inputs,
and the proof payload over the paper's 10 MB/s link.

Throughput comes from :mod:`repro.parallel`: pass ``workers=N`` (or a
long-lived :class:`~repro.parallel.ProverPool`) to :func:`prove` to fan
the commit-side kernels out across processes, or :func:`prove_many` to
run independent proof jobs in parallel.  Proof bytes are bit-identical
at any worker count.

A long-running process serves this API over a socket via
:mod:`repro.service` (``repro serve``), which keeps keys and a warm
worker pool resident across requests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..errors import ProverTimeoutError, ReproError
from ..hashing.transcript import Transcript
from ..obs import JobReport
from ..obs import span as _span
from ..obs.events import FLIGHT as _FLIGHT
from ..obs.metrics import METRICS as _METRICS
from ..parallel.deadline import deadline_scope
from ..r1cs.system import R1CS
from ..spartan.protocol import SpartanProof, SpartanProver, SpartanVerifier
from .params import TEST, SecurityPreset


@dataclass
class ProofBundle:
    """A proof plus the statement metadata it attests to.

    ``preset_name``/``circuit_id`` make the bundle self-describing on the
    wire (see :mod:`repro.snark.envelope`); bundles built by hand for the
    legacy API may leave them empty, in which case :meth:`to_bytes` is
    unavailable and preset binding is skipped at verification.

    ``report`` is local-only telemetry (the flight-recorder
    :class:`~repro.obs.events.JobReport` for the job that produced this
    bundle), populated when :func:`prove` / :func:`prove_many` is called
    with ``attach_report=True``.  It never serializes into the envelope:
    proof bytes stay bit-identical with or without it.
    """

    proof: SpartanProof
    public: np.ndarray
    preset_name: str = ""
    circuit_id: str = ""
    report: Optional[JobReport] = None

    def size_bytes(self) -> int:
        return self.proof.size_bytes() + len(self.public) * 8

    def to_bytes(self) -> bytes:
        """Serialize to the versioned self-describing envelope format."""
        from .envelope import bundle_to_bytes

        return bundle_to_bytes(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProofBundle":
        """Strictly parse an envelope; raises
        :class:`~repro.errors.DeserializationError` on malformed input."""
        from .envelope import bundle_from_bytes

        return bundle_from_bytes(data)


@dataclass(frozen=True)
class ProvingKey:
    """Everything a prover needs for one R1CS instance: the constraint
    system plus the protocol parameters.  Hold one per circuit; it is
    picklable, so :func:`prove_many` can ship it to worker processes."""

    r1cs: R1CS
    preset: SecurityPreset

    def prover(self, rng: Optional[np.random.Generator] = None,
               pool=None) -> SpartanProver:
        """Instantiate the underlying protocol prover (``rng`` feeds the
        zk-mask; ``pool`` fans out the commit-side kernels)."""
        return SpartanProver(self.r1cs, self.preset.make_pcs(rng=rng),
                             self.preset.make_spartan_params(), pool=pool)


@dataclass(frozen=True)
class VerifyingKey:
    """Everything a relying party needs: the public constraint system and
    the protocol parameters.  Constructing one never builds a prover."""

    r1cs: R1CS
    preset: SecurityPreset

    def verifier(self) -> SpartanVerifier:
        return SpartanVerifier(self.r1cs, self.preset.make_pcs(),
                               self.preset.make_spartan_params())


def setup(r1cs: R1CS, preset: SecurityPreset = TEST
          ) -> Tuple[ProvingKey, VerifyingKey]:
    """Key generation: bind an R1CS instance to a security preset.

    This scheme is transparent (hash-based, no trusted setup), so "keys"
    carry no secrets — the split exists so the prover and verifier roles
    hold exactly the state they need and nothing more.
    """
    if not isinstance(r1cs, R1CS):
        raise TypeError(f"setup expects an R1CS, got {type(r1cs).__name__} "
                        "(compile circuits first: r1cs, pub, wit = "
                        "circuit.compile())")
    return ProvingKey(r1cs, preset), VerifyingKey(r1cs, preset)


def _dispatch_mode(pool) -> str:
    """Which dispatch path a pool implies (for flight-recorder reports)."""
    if pool is None or pool.is_serial:
        return "serial"
    return "shm" if pool.use_shm else "pickle"


def _observe_phases(tracer, rec0: int, root: str) -> None:
    """Record per-family phase seconds for the spans opened since
    ``rec0`` into the ``phase_seconds`` histogram (one labeled series
    per family).  Slicing by record index keeps multi-prove traces from
    double counting earlier jobs."""
    if tracer is None:
        return
    for fam, secs in tracer.family_seconds(root, start_index=rec0).items():
        _METRICS.observe("phase_seconds", secs, family=fam)


def prove(pk: ProvingKey, public: np.ndarray, witness: np.ndarray, *,
          rng: Optional[np.random.Generator] = None,
          seed: Optional[int] = None,
          pool=None, workers: Optional[int] = None,
          circuit_id: str = "",
          timeout_s: Optional[float] = None,
          attach_report: bool = False) -> ProofBundle:
    """Generate a proof that ``witness`` satisfies ``pk.r1cs`` on ``public``.

    Randomness: the zk-mask draws from ``rng`` (or a generator seeded
    with ``seed``; fresh OS entropy when both are omitted).  Fixing the
    seed makes proof bytes fully deterministic.

    Parallelism: pass a live :class:`~repro.parallel.ProverPool` as
    ``pool``, or ``workers=N`` to use the persistent process-wide pool
    (:func:`repro.parallel.get_pool` — created once, kept warm across
    calls, torn down by :func:`repro.parallel.shutdown` or atexit).
    ``workers<=1`` — the default — is the exact serial path; proof bytes
    are identical either way.

    ``timeout_s`` bounds the call with a cooperative deadline
    (:mod:`repro.parallel.deadline`): once the budget is spent, the next
    phase boundary or dispatch wait raises
    :class:`~repro.errors.ProverTimeoutError`.  Deadlines nest — inside
    an enclosing scope the effective budget is the tighter of the two.

    Telemetry: every call appends a :class:`~repro.obs.events.JobReport`
    to the flight recorder (``repro report`` dumps the tail) and, when
    the metrics registry is enabled, one observation each into the
    ``prove_seconds`` and per-family ``phase_seconds`` histograms.
    ``attach_report=True`` additionally hangs the report off the
    returned bundle (:attr:`ProofBundle.report`; local-only, never
    serialized).
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    if pool is None and workers is not None and workers > 1:
        from ..parallel import get_pool

        pool = get_pool(workers)
    job_id = _FLIGHT.next_job_id()
    seq0 = _FLIGHT.seq
    rss0 = obs.peak_rss_bytes()
    tracer = obs.get_tracer()
    rec0 = tracer.record_index() if tracer is not None else 0
    t0 = time.perf_counter()
    try:
        with deadline_scope(timeout_s, label="prove"):
            prover = pk.prover(rng=rng, pool=pool)
            with _span("snark.prove", "other",
                       constraints=pk.r1cs.shape.num_constraints,
                       repetitions=pk.preset.sumcheck_repetitions,
                       workers=getattr(pool, "workers", 1)):
                proof = prover.prove(public, witness, Transcript())
    except BaseException as exc:
        _FLIGHT.record_job(JobReport(
            job_id=job_id, op="prove", preset=pk.preset.name,
            circuit_id=circuit_id, workers=getattr(pool, "workers", 1),
            dispatch=_dispatch_mode(pool), jobs=1,
            duration_s=time.perf_counter() - t0,
            peak_rss_delta_bytes=max(0, obs.peak_rss_bytes() - rss0),
            ok=False, error=type(exc).__name__,
            events=_FLIGHT.fault_deltas(seq0)))
        raise
    duration = time.perf_counter() - t0
    _METRICS.observe("prove_seconds", duration)
    _observe_phases(tracer, rec0, "snark.prove")
    bundle = ProofBundle(proof=proof,
                         public=np.asarray(public, dtype=np.uint64),
                         preset_name=pk.preset.name,
                         circuit_id=circuit_id)
    report = JobReport(
        job_id=job_id, op="prove", preset=pk.preset.name,
        circuit_id=circuit_id, workers=getattr(pool, "workers", 1),
        dispatch=_dispatch_mode(pool), jobs=1, duration_s=duration,
        proof_size_bytes=bundle.size_bytes(),
        peak_rss_delta_bytes=max(0, obs.peak_rss_bytes() - rss0),
        ok=True, events=_FLIGHT.fault_deltas(seq0))
    _FLIGHT.record_job(report)
    if attach_report:
        bundle.report = report
    return bundle


@dataclass
class JobResult:
    """Outcome of one :func:`prove_many` job under ``on_error="return"``.

    Exactly one of ``bundle`` (``ok=True``) and ``error`` (``ok=False``)
    is set; ``error`` is the typed exception the job ended with after
    every recovery path (retry, serial degradation) was exhausted.

    ``report`` is the per-job :class:`~repro.obs.events.JobReport`:
    failed jobs always carry one (also recorded to the flight recorder,
    so structured errors survive the batch — what the proving service
    returns to clients); successful jobs carry the batch report when the
    call passed ``attach_report=True``.
    """

    ok: bool
    bundle: Optional[ProofBundle] = None
    error: Optional[BaseException] = None
    report: Optional[JobReport] = None


def prove_many(pk: ProvingKey, jobs: Sequence[Tuple[np.ndarray, np.ndarray]],
               *, workers: Optional[int] = None, pool=None,
               base_seed: Optional[int] = None,
               circuit_id: str = "",
               timeout_s: Optional[float] = None,
               on_error: str = "raise",
               attach_report: bool = False):
    """Prove a batch of independent ``(public, witness)`` jobs.

    Jobs share nothing, so each runs end to end on one worker process
    (serial kernels inside — no nested pools); results return in job
    order.  Each job's zk-mask generator is seeded from a
    ``SeedSequence(base_seed).spawn`` child derived on the calling
    process, so the bundle bytes for a fixed ``base_seed`` are identical
    at any worker count (``workers<=1`` runs the same code inline).
    Workers ship each bundle back in envelope form, which the caller
    re-parses — so every batched proof also round-trips the wire format.

    Keygen is amortized: with workers the batch broadcasts ``pk`` into
    shared memory ONCE (cached across batches on the persistent pool
    from :func:`repro.parallel.get_pool`) and stacks the jobs' public
    inputs and witnesses into two shared arrays, so per-job dispatch
    ships only a few descriptors instead of re-pickling the key.  Set
    ``REPRO_PARALLEL_NO_SHM=1`` for the legacy pickled dispatch.

    Fan-out is skipped when it cannot pay — no pool, one job, or a
    single-core host where CPU-bound jobs would only time-slice
    (``ProverPool.job_fanout_pays``); the batch then runs the identical
    serial path inline.  An *explicit* ``workers`` of 0 or 1 (with no
    ``pool``) short-circuits straight to that serial path without
    touching the process-wide pool at all — no worker spawn, no
    dispatch-cost probe.

    Fault handling: jobs that fail on workers (crash, torn shared
    memory, a poisoned broadcast blob) are retried *serially in this
    process* — the parent holds the pristine ``pk``, so even broadcast
    corruption recovers, and the retried bytes are bit-identical because
    the job's seed is unchanged.  ``timeout_s`` is a per-job cooperative
    budget (:class:`~repro.errors.ProverTimeoutError`; never retried).
    ``on_error`` selects the failure contract: ``"raise"`` (default)
    re-raises the first unrecovered error, all-or-nothing;
    ``"return"`` yields a :class:`JobResult` per job so one poisoned
    statement cannot sink a batch.

    Telemetry: the batch appends one :class:`~repro.obs.events.JobReport`
    (``op="prove_many"``) to the flight recorder whose ``events`` are the
    supervision incidents *of this batch only* — deltas of the recorder's
    sequence numbers, not absolute counter values, so back-to-back
    batches in one process never inherit each other's degradation or
    retry counts.  ``attach_report=True`` hangs that batch report off
    every returned bundle.  Under ``on_error="return"`` every *failed*
    job additionally records — and carries, via
    :attr:`JobResult.report` — its own per-job report naming the typed
    error, so partial results stay structured (the proving service
    relays exactly these to clients).
    """
    if on_error not in ("raise", "return"):
        raise ValueError(f"on_error must be 'raise' or 'return', "
                         f"got {on_error!r}")
    jobs = list(jobs)
    if not jobs:
        return []
    from ..obs.metrics import METRICS
    from ..parallel import kernels

    seeds = np.random.SeedSequence(base_seed).spawn(len(jobs))
    pubs = [np.asarray(pub, dtype=np.uint64) for pub, _ in jobs]
    wits = [np.asarray(wit, dtype=np.uint64) for _, wit in jobs]

    def _serial_job(j):
        return ProofBundle.from_bytes(
            kernels.prove_job(pk.r1cs, pk.preset, pubs[j], wits[j],
                              seeds[j], circuit_id, timeout_s=timeout_s))

    job_id = _FLIGHT.next_job_id()
    seq0 = _FLIGHT.seq
    rss0 = obs.peak_rss_bytes()
    t0 = time.perf_counter()

    def _batch_report(outcomes, pool, error: str = "") -> JobReport:
        bundles = [out for out in outcomes if isinstance(out, ProofBundle)]
        failures = [out for out in outcomes
                    if isinstance(out, JobResult) and not out.ok]
        if not error and failures:
            error = type(failures[0].error).__name__
        return JobReport(
            job_id=job_id, op="prove_many", preset=pk.preset.name,
            circuit_id=circuit_id, workers=getattr(pool, "workers", 1),
            dispatch=_dispatch_mode(pool), jobs=len(jobs),
            duration_s=time.perf_counter() - t0,
            proof_size_bytes=sum(b.size_bytes() for b in bundles),
            peak_rss_delta_bytes=max(0, obs.peak_rss_bytes() - rss0),
            ok=not error, error=error,
            events=_FLIGHT.fault_deltas(seq0))

    def _fail(exc: BaseException, pool, duration_s: float = 0.0) -> JobResult:
        """A failed job's result, with its own flight-recorder report —
        the structured error a caller (or the proving service) can
        surface without re-deriving what went wrong."""
        report = JobReport(
            job_id=_FLIGHT.next_job_id(), op="prove",
            preset=pk.preset.name, circuit_id=circuit_id,
            workers=getattr(pool, "workers", 1),
            dispatch=_dispatch_mode(pool), jobs=1, duration_s=duration_s,
            ok=False, error=type(exc).__name__)
        _FLIGHT.record_job(report)
        return JobResult(ok=False, error=exc, report=report)

    def _finish(outcomes, pool):
        report = _batch_report(outcomes, pool)
        _FLIGHT.record_job(report)
        if on_error == "return":
            results = [out if isinstance(out, JobResult)
                       else JobResult(ok=True, bundle=out)
                       for out in outcomes]
        else:
            for out in outcomes:
                if isinstance(out, JobResult) and not out.ok:
                    raise out.error
            results = list(outcomes)
        if attach_report:
            for out in results:
                bundle = out.bundle if isinstance(out, JobResult) else out
                if bundle is not None:
                    bundle.report = report
                if isinstance(out, JobResult) and out.report is None:
                    out.report = report
        return results

    explicit_serial = (pool is None and workers is not None and workers <= 1)
    if pool is None and not explicit_serial:
        from ..parallel import get_pool

        pool = get_pool(workers)
    try:
        if (pool is None or pool.is_serial or len(jobs) == 1
                or not pool.job_fanout_pays):
            outcomes = []
            with _span("snark.prove_many", "other", jobs=len(jobs),
                       workers=1):
                for j in range(len(jobs)):
                    tj = time.perf_counter()
                    try:
                        outcomes.append(_serial_job(j))
                    except Exception as exc:  # noqa: BLE001 - per-job
                        if on_error == "raise":
                            raise
                        outcomes.append(_fail(
                            exc, None, time.perf_counter() - tj))
            return _finish(outcomes, None)
    except BaseException as exc:
        _FLIGHT.record_job(_batch_report([], None,
                                         error=type(exc).__name__))
        raise
    try:
        return _prove_many_pooled(pk, pool, jobs, seeds, pubs, wits,
                                  circuit_id, timeout_s, on_error,
                                  _serial_job, _finish, _fail, METRICS,
                                  kernels)
    except BaseException as exc:
        _FLIGHT.record_job(_batch_report([], pool,
                                         error=type(exc).__name__))
        raise


def _prove_many_pooled(pk, pool, jobs, seeds, pubs, wits, circuit_id,
                       timeout_s, on_error, _serial_job, _finish, _fail,
                       METRICS, kernels):
    """The fan-out body of :func:`prove_many` (split for readability)."""
    with _span("snark.prove_many", "other", jobs=len(jobs),
               workers=pool.workers):
        if pool.use_shm:
            arena = pool.arena()
            token, blob_desc = pool.broadcast(pk)
            pub_desc = arena.share_array(np.stack(pubs))
            wit_desc = arena.share_array(np.stack(wits))
            try:
                tasks = [(token, blob_desc, pub_desc, wit_desc, j, seed,
                          circuit_id, timeout_s)
                         for j, seed in enumerate(seeds)]
                blobs = pool.run(kernels.prove_job_shm, tasks,
                                 return_exceptions=True)
            finally:
                arena.free(pub_desc)
                arena.free(wit_desc)
        else:
            tasks = [(pk.r1cs, pk.preset, pub, wit, seed, circuit_id,
                      timeout_s)
                     for pub, wit, seed in zip(pubs, wits, seeds)]
            import pickle

            METRICS.inc("parallel.bytes_pickled",
                        len(jobs) * len(pickle.dumps(pk)))
            blobs = pool.run(kernels.prove_job, tasks,
                             return_exceptions=True)
        outcomes = []
        for j, blob in enumerate(blobs):
            if not isinstance(blob, BaseException):
                outcomes.append(ProofBundle.from_bytes(blob))
                continue
            if isinstance(blob, ProverTimeoutError):
                # A spent budget is final: no retry can honor it.
                if on_error == "raise":
                    raise blob
                outcomes.append(_fail(blob, pool))
                continue
            # Worker-side failure: recover serially in the parent, which
            # holds the pristine pk (immune to broadcast corruption).
            # Drop the cached broadcast first so the *next* batch
            # re-broadcasts a clean blob instead of replaying the damage.
            pool.drop_broadcast(pk)
            pool._degraded("prove_job", blob)
            tj = time.perf_counter()
            try:
                outcomes.append(_serial_job(j))
            except Exception as exc:  # noqa: BLE001 - per-job contract
                if on_error == "raise":
                    raise
                outcomes.append(_fail(exc, pool,
                                      time.perf_counter() - tj))
    return _finish(outcomes, pool)


def verify(vk: VerifyingKey, bundle: ProofBundle) -> bool:
    """Check a proof bundle against its public inputs.

    Total over untrusted input: any malformed bundle — wrong types,
    broken structure, a preset id that does not match the key, a typed
    :class:`~repro.errors.ReproError` from a lower layer — is a
    rejection (``False``), never a crash.
    """
    if not isinstance(vk, VerifyingKey) or not isinstance(bundle, ProofBundle):
        return False
    if bundle.preset_name and bundle.preset_name != vk.preset.name:
        return False  # proved under different parameters than this key
    return _verify_parts(vk, bundle.public, bundle.proof)


def _verify_parts(vk: VerifyingKey, public, proof) -> bool:
    """Boolean verification of raw (public, proof) parts."""
    try:
        public = np.asarray(public, dtype=np.uint64)
    except (TypeError, ValueError, OverflowError):
        return False
    t0 = time.perf_counter()
    try:
        with _span("snark.verify", "other"):
            return vk.verifier().verify(public, proof, Transcript())
    except ReproError:
        # Typed rejection from a lower layer: the proof is invalid.
        return False
    finally:
        _METRICS.observe("verify_seconds", time.perf_counter() - t0)


