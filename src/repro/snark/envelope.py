"""Versioned self-describing envelope around a proof bundle.

The proof wire format in :mod:`repro.snark.serialize` carries only the
proof; a relying party still needs to know which security preset produced
it, which circuit it talks about, and the public-input vector it binds.
The envelope packages all four so a single file/blob is verifiable on its
own::

    "NCPE" | version u8
          | preset-id   u8 length + utf-8 bytes   (must name a known preset)
          | circuit-id  u8 length + utf-8 bytes   (may be empty)
          | public      u32 count + canonical u64 field elements
          | payload     u32 length + proof bytes (serialize.proof_to_bytes)

Parsing is strict, mirroring the proof parser: every length is
bounds-checked before allocation, unknown versions and unknown preset ids
are rejected, field elements must be canonical, and trailing bytes after
the payload are an error.  All failures raise
:class:`~repro.errors.DeserializationError`.
"""

from __future__ import annotations

from ..errors import DeserializationError
from .serialize import _Reader, _Writer, proof_from_bytes, proof_to_bytes

MAGIC = b"NCPE"
VERSION = 1

#: Preset ids are short registry keys; circuit ids are free-form labels.
MAX_PRESET_ID_BYTES = 64
MAX_CIRCUIT_ID_BYTES = 255


def bundle_to_bytes(bundle) -> bytes:
    """Serialize a :class:`~repro.snark.api.ProofBundle` to envelope bytes.

    The bundle must be self-describing: ``preset_name`` is required (the
    lifecycle API always sets it; hand-built legacy bundles may not).
    """
    if not bundle.preset_name:
        raise ValueError("bundle has no preset id; produce bundles via "
                         "prove(pk, ...) to serialize them")
    preset_id = bundle.preset_name.encode("utf-8")
    circuit_id = bundle.circuit_id.encode("utf-8")
    if len(preset_id) > MAX_PRESET_ID_BYTES:
        raise ValueError(f"preset id exceeds {MAX_PRESET_ID_BYTES} bytes")
    if len(circuit_id) > MAX_CIRCUIT_ID_BYTES:
        raise ValueError(f"circuit id exceeds {MAX_CIRCUIT_ID_BYTES} bytes")
    w = _Writer()
    w.parts.append(MAGIC)
    w.u8(VERSION)
    w.u8(len(preset_id))
    w.parts.append(preset_id)
    w.u8(len(circuit_id))
    w.parts.append(circuit_id)
    w.array(bundle.public)
    payload = proof_to_bytes(bundle.proof)
    w.u32(len(payload))
    w.parts.append(payload)
    return w.getvalue()


def bundle_from_bytes(data: bytes):
    """Strictly parse envelope bytes back into a ``ProofBundle``.

    A successful return guarantees: known format version, a preset id
    resolving in the preset registry, canonical public inputs, a
    structurally valid proof payload, and no trailing bytes.  The preset
    id is *not* checked against any verifying key here — that binding
    happens in :func:`repro.snark.api.verify`.
    """
    from .api import ProofBundle
    from .params import PRESETS

    r = _Reader(data)
    if r._take(4) != MAGIC:
        raise DeserializationError("bad envelope magic", offset=0)
    version = r.u8()
    if version != VERSION:
        raise DeserializationError(
            f"unsupported envelope version {version}", offset=4)
    preset_name = _read_label(r, "preset id", MAX_PRESET_ID_BYTES)
    if not preset_name:
        raise r.fail("empty preset id")
    if preset_name not in PRESETS:
        raise r.fail(f"unknown preset id {preset_name!r}")
    circuit_id = _read_label(r, "circuit id", MAX_CIRCUIT_ID_BYTES)
    public = r.array("public inputs")
    payload_len = r.count("proof payload", 1)
    payload = r._take(payload_len)
    proof = proof_from_bytes(payload)
    if not r.done():
        raise DeserializationError(
            f"{len(r.data) - r.pos} trailing bytes after envelope",
            offset=r.pos)
    return ProofBundle(proof=proof, public=public,
                       preset_name=preset_name, circuit_id=circuit_id)


def _read_label(r: _Reader, what: str, cap: int) -> str:
    """Read a u8-length-prefixed utf-8 label."""
    n = r.u8()
    if n > cap:
        raise r.fail(f"{what} length {n} exceeds cap {cap}")
    raw = r._take(n)
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError:
        raise r.fail(f"{what} is not valid utf-8") from None
