"""Security-parameter presets for the Spartan+Orion SNARK.

``PAPER`` mirrors Sec. VII-A: 128-bit target soundness via 3 sumcheck
repetitions, a 128-row Orion matrix, Reed-Solomon blowup 4 with 189
column queries, and 4 proximity vectors.  ``TEST`` shrinks everything for
fast functional runs; it proves the same statements with reduced
soundness, which is exactly how the test-suite exercises the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..code.reed_solomon import ReedSolomonCode
from ..pcs.orion import OrionPCS, PCSParams
from ..spartan.protocol import SpartanParams


@dataclass(frozen=True)
class SecurityPreset:
    """A named bundle of protocol parameters."""

    name: str
    sumcheck_repetitions: int
    pcs_rows: int
    rs_blowup: int
    column_queries: int
    proximity_vectors: int
    multiset_hash_instances: int  # Spark memory checking (cost model only)

    def make_pcs(self, rng=None) -> OrionPCS:
        code = ReedSolomonCode(blowup=self.rs_blowup,
                               num_queries=self.column_queries)
        params = PCSParams(num_rows=self.pcs_rows,
                           num_proximity_vectors=self.proximity_vectors)
        return OrionPCS(code=code, params=params, rng=rng)

    def make_spartan_params(self) -> SpartanParams:
        return SpartanParams(repetitions=self.sumcheck_repetitions)


#: The paper's 128-bit configuration (Sec. VII-A).
PAPER = SecurityPreset(
    name="paper-128bit",
    sumcheck_repetitions=3,
    pcs_rows=128,
    rs_blowup=4,
    column_queries=189,
    proximity_vectors=4,
    multiset_hash_instances=4,
)

#: Reduced-soundness preset for fast functional tests and examples.
TEST = SecurityPreset(
    name="test-fast",
    sumcheck_repetitions=1,
    pcs_rows=16,
    rs_blowup=4,
    column_queries=24,
    proximity_vectors=2,
    multiset_hash_instances=4,
)

#: Registry of named presets — the ids a proof envelope may carry.
PRESETS = {p.name: p for p in (PAPER, TEST)}


def preset_by_name(name: str) -> SecurityPreset:
    """Resolve a preset id (as carried in a proof envelope) to its preset.

    Raises :class:`~repro.errors.ConfigError` for unknown names, so a CLI
    caller gets the config exit code rather than a KeyError.
    """
    try:
        return PRESETS[name]
    except KeyError:
        from ..errors import ConfigError

        raise ConfigError(
            f"unknown security preset {name!r}; "
            f"known presets: {', '.join(sorted(PRESETS))}") from None
