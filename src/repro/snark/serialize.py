"""Binary serialization of Spartan+Orion proofs.

A compact little-endian format so measured wire sizes are honest: this is
what travels over the paper's 10 MB/s prover-verifier link.  Layout is
length-prefixed throughout; see the writer methods for the exact framing.
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

from ..hashing.merkle import MerkleMultiProof
from ..pcs.orion import OrionCommitment, OrionEvalProof
from ..spartan.protocol import RepetitionProof, SpartanProof

MAGIC = b"NCAP"
#: v2: column openings carry one Merkle multiproof instead of per-query paths.
VERSION = 2


class _Writer:
    def __init__(self):
        self.parts: List[bytes] = []

    def u8(self, v: int) -> None:
        self.parts.append(struct.pack("<B", v))

    def u32(self, v: int) -> None:
        self.parts.append(struct.pack("<I", v))

    def u64(self, v: int) -> None:
        self.parts.append(struct.pack("<Q", v))

    def digest(self, d: bytes) -> None:
        if len(d) != 32:
            raise ValueError("digest must be 32 bytes")
        self.parts.append(d)

    def fields(self, values) -> None:
        self.u32(len(values))
        for v in values:
            self.u64(int(v))

    def array(self, arr: np.ndarray) -> None:
        arr = np.asarray(arr, dtype="<u8")
        self.u32(arr.size)
        self.parts.append(arr.tobytes())

    def getvalue(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ValueError("truncated proof data")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def digest(self) -> bytes:
        return self._take(32)

    def fields(self) -> List[int]:
        n = self.u32()
        return [self.u64() for _ in range(n)]

    def array(self) -> np.ndarray:
        n = self.u32()
        return np.frombuffer(self._take(8 * n), dtype="<u8").astype(np.uint64)

    def done(self) -> bool:
        return self.pos == len(self.data)


def _write_pcs_proof(w: _Writer, p: OrionEvalProof) -> None:
    w.u32(len(p.proximity_rows))
    for row in p.proximity_rows:
        w.array(row)
    w.array(p.eval_row)
    w.u32(len(p.query_indices))
    for idx in p.query_indices:
        w.u32(idx)
    w.u32(len(p.columns))
    for col in p.columns:
        w.array(col)
    # The multiproof's sorted index list is derivable from query_indices,
    # so only the sibling digests go on the wire.
    w.u32(len(p.merkle.nodes))
    for node in p.merkle.nodes:
        w.digest(node)


def _read_pcs_proof(r: _Reader) -> OrionEvalProof:
    proximity_rows = [r.array() for _ in range(r.u32())]
    eval_row = r.array()
    query_indices = [r.u32() for _ in range(r.u32())]
    columns = [r.array() for _ in range(r.u32())]
    nodes = [r.digest() for _ in range(r.u32())]
    merkle = MerkleMultiProof(indices=sorted(set(query_indices)), nodes=nodes)
    return OrionEvalProof(proximity_rows, eval_row, query_indices, columns,
                          merkle)


def _write_repetition(w: _Writer, rp: RepetitionProof) -> None:
    w.u32(len(rp.sc1_round_evals))
    for evals in rp.sc1_round_evals:
        w.fields(evals)
    w.u64(rp.va)
    w.u64(rp.vb)
    w.u64(rp.vc)
    w.u32(len(rp.sc2.round_evals))
    for evals in rp.sc2.round_evals:
        w.fields(evals)
    w.fields(rp.sc2.final_values)
    w.u64(rp.w_eval)
    _write_pcs_proof(w, rp.pcs_proof)


def _read_repetition(r: _Reader) -> RepetitionProof:
    from ..multilinear.sumcheck import SumcheckProof

    sc1 = [r.fields() for _ in range(r.u32())]
    va, vb, vc = r.u64(), r.u64(), r.u64()
    sc2_rounds = [r.fields() for _ in range(r.u32())]
    sc2_finals = r.fields()
    w_eval = r.u64()
    pcs_proof = _read_pcs_proof(r)
    return RepetitionProof(sc1, va, vb, vc,
                           SumcheckProof(sc2_rounds, sc2_finals),
                           w_eval, pcs_proof)


def proof_to_bytes(proof: SpartanProof) -> bytes:
    """Serialize a proof to its wire format."""
    w = _Writer()
    w.parts.append(MAGIC)
    w.u8(VERSION)
    c = proof.witness_commitment
    w.digest(c.root)
    w.u64(c.table_len)
    w.u32(c.num_rows)
    w.u32(c.num_cols)
    w.u32(len(proof.repetitions))
    for rp in proof.repetitions:
        _write_repetition(w, rp)
    return w.getvalue()


def proof_from_bytes(data: bytes) -> SpartanProof:
    """Parse a proof from its wire format; raises ValueError on corruption."""
    r = _Reader(data)
    if r._take(4) != MAGIC:
        raise ValueError("bad magic")
    if r.u8() != VERSION:
        raise ValueError("unsupported proof version")
    commitment = OrionCommitment(root=r.digest(), table_len=r.u64(),
                                 num_rows=r.u32(), num_cols=r.u32())
    reps = [_read_repetition(r) for _ in range(r.u32())]
    if not r.done():
        raise ValueError("trailing bytes after proof")
    return SpartanProof(commitment, reps)
