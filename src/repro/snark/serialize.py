"""Binary serialization of Spartan+Orion proofs.

A compact little-endian format so measured wire sizes are honest: this is
what travels over the paper's 10 MB/s prover-verifier link.  Layout is
length-prefixed throughout; see the writer methods for the exact framing.

The reader side is a *strict* parser: proof bytes come from an untrusted
prover, so every length prefix is bounds-checked against the remaining
buffer before a single element is read, every field element must be
canonical (< Goldilocks p), structural counts are capped at
protocol-plausible values, opened Merkle columns must match the
commitment geometry, and trailing bytes are rejected.  All failures raise
:class:`repro.errors.DeserializationError` with byte-offset context —
never ``IndexError``, ``struct.error`` or a numpy exception.
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

from ..errors import DeserializationError
from ..field.goldilocks import MODULUS
from ..hashing.merkle import MerkleMultiProof
from ..pcs.orion import OrionCommitment, OrionEvalProof
from ..spartan.protocol import RepetitionProof, SpartanProof

MAGIC = b"NCAP"
#: v2: column openings carry one Merkle multiproof instead of per-query paths.
VERSION = 2

#: Structural caps.  The field has 64-bit indices, so no sumcheck runs more
#: than 64 rounds; repetitions beyond 64 exceed any soundness target; round
#: polynomials are degree <= 7 in every deployed configuration.  Counts past
#: these mark garbage (or a length-prefix DoS attempt), not a bigger proof.
MAX_SUMCHECK_ROUNDS = 64
MAX_REPETITIONS = 64
MAX_ROUND_EVALS = 8
#: A Merkle multiproof ships at most one sibling per level per query path.
MAX_TREE_DEPTH = 64


class _Writer:
    def __init__(self):
        self.parts: List[bytes] = []

    def u8(self, v: int) -> None:
        self.parts.append(struct.pack("<B", v))

    def u32(self, v: int) -> None:
        self.parts.append(struct.pack("<I", v))

    def u64(self, v: int) -> None:
        self.parts.append(struct.pack("<Q", v))

    def digest(self, d: bytes) -> None:
        if len(d) != 32:
            raise ValueError("digest must be 32 bytes")
        self.parts.append(d)

    def fields(self, values) -> None:
        self.u32(len(values))
        for v in values:
            self.u64(int(v))

    def array(self, arr: np.ndarray) -> None:
        arr = np.asarray(arr, dtype="<u8")
        self.u32(arr.size)
        self.parts.append(arr.tobytes())

    def getvalue(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    """Bounds-checked little-endian reader over untrusted bytes."""

    def __init__(self, data: bytes):
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise DeserializationError(
                f"proof data must be bytes, got {type(data).__name__}")
        self.data = bytes(data)
        self.pos = 0

    def fail(self, message: str) -> "DeserializationError":
        return DeserializationError(message, offset=self.pos)

    def _take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise self.fail(f"truncated proof data: need {n} more bytes, "
                            f"have {len(self.data) - self.pos}")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def count(self, what: str, item_bytes: int, cap: int = 1 << 32) -> int:
        """Read a u32 length prefix, proving the claimed run of
        ``item_bytes``-sized items can fit in the remaining buffer BEFORE
        anything is allocated or looped over."""
        n = self.u32()
        if n > cap:
            raise self.fail(f"{what} count {n} exceeds cap {cap}")
        if item_bytes * n > len(self.data) - self.pos:
            raise self.fail(f"{what} count {n} overruns the remaining "
                            f"{len(self.data) - self.pos} bytes")
        return n

    def digest(self) -> bytes:
        return self._take(32)

    def field(self, what: str = "field element") -> int:
        v = self.u64()
        if v >= MODULUS:
            raise DeserializationError(
                f"non-canonical {what} {v} >= modulus", offset=self.pos - 8)
        return v

    def fields(self, what: str = "field vector",
               expected: int | None = None) -> List[int]:
        n = self.count(what, 8)
        if expected is not None and n != expected:
            raise self.fail(f"{what}: expected {expected} elements, got {n}")
        return [self.field(what) for _ in range(n)]

    def array(self, what: str = "field array",
              expected: int | None = None) -> np.ndarray:
        n = self.count(what, 8)
        if expected is not None and n != expected:
            raise self.fail(f"{what}: expected {expected} elements, got {n}")
        arr = np.frombuffer(self._take(8 * n), dtype="<u8").astype(np.uint64)
        if n and int(arr.max()) >= MODULUS:
            raise DeserializationError(
                f"non-canonical element in {what}", offset=self.pos - 8 * n)
        return arr

    def done(self) -> bool:
        return self.pos == len(self.data)


def _write_pcs_proof(w: _Writer, p: OrionEvalProof) -> None:
    w.u32(len(p.proximity_rows))
    for row in p.proximity_rows:
        w.array(row)
    w.array(p.eval_row)
    w.u32(len(p.query_indices))
    for idx in p.query_indices:
        w.u32(idx)
    w.u32(len(p.columns))
    for col in p.columns:
        w.array(col)
    # The multiproof's sorted index list is derivable from query_indices,
    # so only the sibling digests go on the wire.
    w.u32(len(p.merkle.nodes))
    for node in p.merkle.nodes:
        w.digest(node)


def _read_pcs_proof(r: _Reader, c: OrionCommitment) -> OrionEvalProof:
    """Parse one PCS opening, validated against the commitment geometry:
    combination rows are ``num_cols`` wide, opened columns are ``num_rows``
    (+1 with the zk mask row) tall, and the multiproof ships at most one
    sibling per level per query."""
    num_prox = r.count("proximity row", 4 + 8, cap=MAX_REPETITIONS)
    proximity_rows = [r.array("proximity row", expected=c.num_cols)
                      for _ in range(num_prox)]
    eval_row = r.array("evaluation row", expected=c.num_cols)
    num_queries = r.count("query index", 4)
    query_indices = [r.u32() for _ in range(num_queries)]
    num_cols_opened = r.count("opened column", 4 + 8 * c.num_rows)
    distinct = sorted(set(query_indices))
    if num_cols_opened != len(distinct):
        raise r.fail(f"opened column count {num_cols_opened} does not match "
                     f"{len(distinct)} distinct query indices")
    columns = []
    for _ in range(num_cols_opened):
        col = r.array("opened column")
        if col.size not in (c.num_rows, c.num_rows + 1):
            raise r.fail(f"opened column height {col.size} does not match "
                         f"commitment rows {c.num_rows} (+1 mask)")
        columns.append(col)
    num_nodes = r.count("Merkle node", 32,
                        cap=max(1, num_queries) * MAX_TREE_DEPTH)
    nodes = [r.digest() for _ in range(num_nodes)]
    merkle = MerkleMultiProof(indices=distinct, nodes=nodes)
    return OrionEvalProof(proximity_rows, eval_row, query_indices, columns,
                          merkle)


def _write_repetition(w: _Writer, rp: RepetitionProof) -> None:
    w.u32(len(rp.sc1_round_evals))
    for evals in rp.sc1_round_evals:
        w.fields(evals)
    w.u64(rp.va)
    w.u64(rp.vb)
    w.u64(rp.vc)
    w.u32(len(rp.sc2.round_evals))
    for evals in rp.sc2.round_evals:
        w.fields(evals)
    w.fields(rp.sc2.final_values)
    w.u64(rp.w_eval)
    _write_pcs_proof(w, rp.pcs_proof)


def _read_repetition(r: _Reader, c: OrionCommitment) -> RepetitionProof:
    from ..multilinear.sumcheck import SumcheckProof

    sc1 = []
    for _ in range(r.count("sumcheck-1 round", 4, cap=MAX_SUMCHECK_ROUNDS)):
        evals = r.fields("sumcheck-1 round")
        if len(evals) > MAX_ROUND_EVALS:
            raise r.fail(f"sumcheck-1 round has {len(evals)} evaluations")
        sc1.append(evals)
    va = r.field("va")
    vb = r.field("vb")
    vc = r.field("vc")
    sc2_rounds = []
    for _ in range(r.count("sumcheck-2 round", 4, cap=MAX_SUMCHECK_ROUNDS)):
        evals = r.fields("sumcheck-2 round")
        if len(evals) > MAX_ROUND_EVALS:
            raise r.fail(f"sumcheck-2 round has {len(evals)} evaluations")
        sc2_rounds.append(evals)
    sc2_finals = r.fields("sumcheck-2 final values")
    w_eval = r.field("witness evaluation")
    pcs_proof = _read_pcs_proof(r, c)
    return RepetitionProof(sc1, va, vb, vc,
                           SumcheckProof(sc2_rounds, sc2_finals),
                           w_eval, pcs_proof)


def proof_to_bytes(proof: SpartanProof) -> bytes:
    """Serialize a proof to its wire format."""
    w = _Writer()
    w.parts.append(MAGIC)
    w.u8(VERSION)
    c = proof.witness_commitment
    w.digest(c.root)
    w.u64(c.table_len)
    w.u32(c.num_rows)
    w.u32(c.num_cols)
    w.u32(len(proof.repetitions))
    for rp in proof.repetitions:
        _write_repetition(w, rp)
    return w.getvalue()


def proof_from_bytes(data: bytes) -> SpartanProof:
    """Strictly parse a proof from its wire format.

    Raises :class:`~repro.errors.DeserializationError` (a ``ValueError``
    subclass) on any malformed input; a successful return guarantees
    canonical field elements and a commitment-consistent structure, so
    the verifier can evaluate the proof without type or shape surprises.
    """
    r = _Reader(data)
    if r._take(4) != MAGIC:
        raise DeserializationError("bad magic", offset=0)
    version = r.u8()
    if version != VERSION:
        raise DeserializationError(
            f"unsupported proof version {version}", offset=4)
    root = r.digest()
    table_len = r.u64()
    num_rows = r.u32()
    num_cols = r.u32()
    if table_len == 0 or table_len & (table_len - 1):
        raise r.fail(f"commitment table length {table_len} is not a "
                     "power of two")
    if num_rows == 0 or num_rows & (num_rows - 1):
        raise r.fail(f"commitment row count {num_rows} is not a power of two")
    if num_rows * num_cols != table_len:
        raise r.fail(f"commitment geometry {num_rows}x{num_cols} does not "
                     f"cover table length {table_len}")
    commitment = OrionCommitment(root=root, table_len=table_len,
                                 num_rows=num_rows, num_cols=num_cols)
    # Each repetition carries at least the five count/value headers.
    num_reps = r.count("repetition", 4, cap=MAX_REPETITIONS)
    reps = [_read_repetition(r, commitment) for _ in range(num_reps)]
    if not r.done():
        raise DeserializationError(
            f"{len(r.data) - r.pos} trailing bytes after proof",
            offset=r.pos)
    return SpartanProof(commitment, reps)
