"""Adversarial-input tooling: structured proof mutators for the
soundness fault-injection harness (``tools/soundness_harness.py``)."""

from .mutate import (  # noqa: F401
    Mutant,
    STRUCTURED_MUTATORS,
    random_mutants,
    splice_mutants,
    structured_mutants,
)

__all__ = [
    "Mutant",
    "STRUCTURED_MUTATORS",
    "random_mutants",
    "splice_mutants",
    "structured_mutants",
]
