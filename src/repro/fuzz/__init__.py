"""Adversarial tooling: structured proof mutators for the soundness
harness (``tools/soundness_harness.py``) and deterministic runtime fault
injection for the chaos harness (``tools/chaos_harness.py``)."""

from . import faults  # noqa: F401
from .faults import FaultPlan  # noqa: F401
from .mutate import (  # noqa: F401
    Mutant,
    STRUCTURED_MUTATORS,
    random_mutants,
    splice_mutants,
    structured_mutants,
)

__all__ = [
    "FaultPlan",
    "Mutant",
    "STRUCTURED_MUTATORS",
    "faults",
    "random_mutants",
    "splice_mutants",
    "structured_mutants",
]
