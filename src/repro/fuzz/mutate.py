"""Structured proof mutators for soundness fault injection.

Every mutator takes the *wire bytes* of a valid proof and returns one or
more adversarial variants.  Two families:

* **Byte-level** mutators edit the serialized form directly (flips,
  truncation, garbage, non-canonical field injection) and should die in
  the strict parser with a typed
  :class:`~repro.errors.DeserializationError`.
* **Structural** mutators parse the proof, surgically alter one
  semantically meaningful value (a sumcheck evaluation, a Merkle sibling,
  a claimed product, a query index, ...) and re-serialize.  These produce
  *well-formed* proofs of false statements, so they must be rejected by
  the verifier itself (``verify() -> False``), exercising the soundness
  checks rather than the parser.

The harness contract (see ``tools/soundness_harness.py``): every mutant
must be rejected via ``False`` or a typed ``ReproError`` — no other
exception may escape, and no mutant may verify.

All randomness comes from the caller's ``random.Random`` so runs are
reproducible from a seed.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..errors import DeserializationError
from ..field.goldilocks import MODULUS
from ..snark.serialize import proof_from_bytes, proof_to_bytes

#: Byte offset of the version byte / commitment root in the wire format
#: (see :mod:`repro.snark.serialize`): magic(4) version(1) root(32)
#: table_len(8) num_rows(4) num_cols(4) rep_count(4).
_OFF_VERSION = 4
_OFF_ROOT = 5
_OFF_TABLE_LEN = 37
_OFF_NUM_ROWS = 45
_OFF_NUM_COLS = 49
_OFF_REP_COUNT = 53


@dataclass
class Mutant:
    """One adversarial proof variant."""

    mutator: str   # name of the mutator class that produced it
    data: bytes    # the mutated wire bytes


def _parse(data: bytes):
    proof = proof_from_bytes(data)
    return proof


def _reserialize(name: str, proof) -> List[Mutant]:
    return [Mutant(name, proof_to_bytes(proof))]


# ---------------------------------------------------------------------------
# Byte-level mutators (should be caught by the strict parser)
# ---------------------------------------------------------------------------

def mutate_byte_flip(data: bytes, rng: random.Random) -> List[Mutant]:
    """Flip one random byte, three times (distinct positions)."""
    out = []
    for pos in rng.sample(range(len(data)), k=min(3, len(data))):
        buf = bytearray(data)
        buf[pos] ^= 1 << rng.randrange(8)
        out.append(Mutant("byte_flip", bytes(buf)))
    return out


def mutate_truncate(data: bytes, rng: random.Random) -> List[Mutant]:
    """Cut the proof short: mid-header, mid-body, and one byte shy."""
    cuts = {3, min(20, len(data) - 1), rng.randrange(1, len(data)),
            len(data) - 1}
    return [Mutant("truncate", data[:c]) for c in sorted(cuts) if c < len(data)]


def mutate_append_garbage(data: bytes, rng: random.Random) -> List[Mutant]:
    """Trailing bytes after a complete proof must be rejected."""
    return [Mutant("append_garbage", data + b"\x00"),
            Mutant("append_garbage", data + rng.randbytes(17))]


def mutate_bad_header(data: bytes, rng: random.Random) -> List[Mutant]:
    """Wrong magic, unknown version, and non-power-of-two geometry."""
    out = []
    buf = bytearray(data)
    buf[0] ^= 0xFF
    out.append(Mutant("bad_header", bytes(buf)))
    buf = bytearray(data)
    buf[_OFF_VERSION] = 0xEE
    out.append(Mutant("bad_header", bytes(buf)))
    # table_len := table_len + 1 (no longer a power of two, and the
    # rows*cols product no longer covers it)
    buf = bytearray(data)
    buf[_OFF_TABLE_LEN] ^= 1
    out.append(Mutant("bad_header", bytes(buf)))
    # absurd repetition count: a length-prefix DoS probe
    buf = bytearray(data)
    buf[_OFF_REP_COUNT:_OFF_REP_COUNT + 4] = (0xFFFFFFFF).to_bytes(4, "little")
    out.append(Mutant("bad_header", bytes(buf)))
    return out


def mutate_noncanonical_field(data: bytes, rng: random.Random) -> List[Mutant]:
    """Overwrite a wire u64 that holds a field element with a value
    >= the Goldilocks modulus.  The first sumcheck-round evaluation sits
    right after the repetition header: rep_count(4) sc1_count(4)
    round_len(4)."""
    proof = _parse(data)
    if not proof.repetitions or not proof.repetitions[0].sc1_round_evals:
        return []
    off = _OFF_REP_COUNT + 4 + 4 + 4
    buf = bytearray(data)
    buf[off:off + 8] = (MODULUS + rng.randrange(1, 1 << 32)).to_bytes(
        8, "little")
    return [Mutant("noncanonical_field", bytes(buf))]


# ---------------------------------------------------------------------------
# Structural mutators (well-formed proofs of false statements)
# ---------------------------------------------------------------------------

def mutate_field_bump(data: bytes, rng: random.Random) -> List[Mutant]:
    """Add 1 (mod p) to one value in each major proof section."""
    out = []
    targets = ("va", "vb", "vc", "w_eval")
    for name in targets:
        proof = _parse(data)
        rp = rng.choice(proof.repetitions)
        setattr(rp, name, (int(getattr(rp, name)) + 1) % MODULUS)
        out.extend(_reserialize("field_bump", proof))
    # one element of the PCS evaluation row
    proof = _parse(data)
    rp = rng.choice(proof.repetitions)
    row = np.array(rp.pcs_proof.eval_row, dtype=np.uint64)
    i = rng.randrange(row.size)
    row[i] = np.uint64((int(row[i]) + 1) % MODULUS)
    rp.pcs_proof.eval_row = row
    out.extend(_reserialize("field_bump", proof))
    # one element of an opened column (breaks the Merkle binding)
    proof = _parse(data)
    rp = rng.choice(proof.repetitions)
    if rp.pcs_proof.columns:
        k = rng.randrange(len(rp.pcs_proof.columns))
        col = np.array(rp.pcs_proof.columns[k], dtype=np.uint64)
        j = rng.randrange(col.size)
        col[j] = np.uint64((int(col[j]) + 1) % MODULUS)
        rp.pcs_proof.columns[k] = col
        out.extend(_reserialize("field_bump", proof))
    return out


def mutate_sumcheck_tweak(data: bytes, rng: random.Random) -> List[Mutant]:
    """Tamper with sumcheck round polynomials.

    Includes the *compensated* attack: add d to g(0) and subtract d from
    g(1) so the round-sum check g(0)+g(1) == claim still passes — only
    the evaluation binding at the round challenge can catch it.
    """
    out = []
    proof = _parse(data)
    rp = rng.choice(proof.repetitions)
    if rp.sc1_round_evals:
        rnd = rng.randrange(len(rp.sc1_round_evals))
        evals = list(rp.sc1_round_evals[rnd])
        d = rng.randrange(1, MODULUS)
        evals[0] = (evals[0] + d) % MODULUS
        if len(evals) > 1:
            evals[1] = (evals[1] - d) % MODULUS
        rp.sc1_round_evals[rnd] = evals
        out.extend(_reserialize("sumcheck_tweak", proof))
    # plain tweak of a later evaluation point in sumcheck 2
    proof = _parse(data)
    rp = rng.choice(proof.repetitions)
    if rp.sc2.round_evals:
        rnd = rng.randrange(len(rp.sc2.round_evals))
        evals = list(rp.sc2.round_evals[rnd])
        k = rng.randrange(len(evals))
        evals[k] = (evals[k] + rng.randrange(1, MODULUS)) % MODULUS
        rp.sc2.round_evals[rnd] = evals
        out.extend(_reserialize("sumcheck_tweak", proof))
    # tamper the final multilinear evaluations
    proof = _parse(data)
    rp = rng.choice(proof.repetitions)
    if rp.sc2.final_values:
        fv = list(rp.sc2.final_values)
        k = rng.randrange(len(fv))
        fv[k] = (fv[k] + 1) % MODULUS
        rp.sc2.final_values = fv
        out.extend(_reserialize("sumcheck_tweak", proof))
    return out


def mutate_wrong_claim(data: bytes, rng: random.Random) -> List[Mutant]:
    """Substitute internally *consistent* but wrong claims: va*vb == vc
    still holds for random values, so only the sumcheck binding to the
    real witness can reject it."""
    proof = _parse(data)
    rp = rng.choice(proof.repetitions)
    va = rng.randrange(MODULUS)
    vb = rng.randrange(MODULUS)
    rp.va, rp.vb, rp.vc = va, vb, (va * vb) % MODULUS
    out = _reserialize("wrong_claim", proof)
    # zero out the claims entirely (a "prove nothing" attempt)
    proof = _parse(data)
    rp = rng.choice(proof.repetitions)
    rp.va = rp.vb = rp.vc = 0
    out.extend(_reserialize("wrong_claim", proof))
    return out


def mutate_merkle_tamper(data: bytes, rng: random.Random) -> List[Mutant]:
    """Break the Merkle binding: flip a sibling digest, swap two
    siblings, drop one, and flip a bit of the commitment root."""
    out = []
    proof = _parse(data)
    rp = rng.choice(proof.repetitions)
    nodes = rp.pcs_proof.merkle.nodes
    if nodes:
        i = rng.randrange(len(nodes))
        tampered = bytearray(nodes[i])
        tampered[rng.randrange(32)] ^= 0x40
        nodes[i] = bytes(tampered)
        out.extend(_reserialize("merkle_tamper", proof))
    proof = _parse(data)
    nodes = rng.choice(proof.repetitions).pcs_proof.merkle.nodes
    if len(nodes) >= 2:
        i, j = rng.sample(range(len(nodes)), 2)
        nodes[i], nodes[j] = nodes[j], nodes[i]
        out.extend(_reserialize("merkle_tamper", proof))
    proof = _parse(data)
    nodes = rng.choice(proof.repetitions).pcs_proof.merkle.nodes
    if nodes:
        nodes.pop(rng.randrange(len(nodes)))
        out.extend(_reserialize("merkle_tamper", proof))
    proof = _parse(data)
    root = bytearray(proof.witness_commitment.root)
    root[rng.randrange(32)] ^= 0x01
    proof.witness_commitment.root = bytes(root)
    out.extend(_reserialize("merkle_tamper", proof))
    return out


def mutate_query_indices(data: bytes, rng: random.Random) -> List[Mutant]:
    """Answer different columns than the transcript demands: shift one
    query index, and swap two opened columns in place."""
    out = []
    proof = _parse(data)
    rp = rng.choice(proof.repetitions)
    qi = rp.pcs_proof.query_indices
    if qi:
        k = rng.randrange(len(qi))
        qi[k] = (qi[k] + 1) % max(2, max(qi) + 1)
        out.extend(_reserialize("query_indices", proof))
    proof = _parse(data)
    cols = rng.choice(proof.repetitions).pcs_proof.columns
    if len(cols) >= 2:
        i, j = rng.sample(range(len(cols)), 2)
        cols[i], cols[j] = cols[j], cols[i]
        out.extend(_reserialize("query_indices", proof))
    return out


def mutate_repetition_surgery(data: bytes, rng: random.Random) -> List[Mutant]:
    """Drop or duplicate whole repetitions (the soundness amplifier)."""
    out = []
    proof = _parse(data)
    if len(proof.repetitions) > 0:
        proof.repetitions = proof.repetitions[:-1]
        out.extend(_reserialize("repetition_surgery", proof))
    proof = _parse(data)
    proof.repetitions.append(copy.deepcopy(proof.repetitions[0]))
    out.extend(_reserialize("repetition_surgery", proof))
    return out


#: Single-proof structured mutators, keyed by class name.
STRUCTURED_MUTATORS: Dict[str, Callable[[bytes, random.Random], List[Mutant]]]
STRUCTURED_MUTATORS = {
    "byte_flip": mutate_byte_flip,
    "truncate": mutate_truncate,
    "append_garbage": mutate_append_garbage,
    "bad_header": mutate_bad_header,
    "noncanonical_field": mutate_noncanonical_field,
    "field_bump": mutate_field_bump,
    "sumcheck_tweak": mutate_sumcheck_tweak,
    "wrong_claim": mutate_wrong_claim,
    "merkle_tamper": mutate_merkle_tamper,
    "query_indices": mutate_query_indices,
    "repetition_surgery": mutate_repetition_surgery,
}


def structured_mutants(data: bytes, rng: random.Random) -> List[Mutant]:
    """Run every structured mutator class on one valid proof.

    Mutants that happen to be byte-identical to the input are dropped:
    swapping two equal columns or equal sibling digests (common in tiny,
    zero-padded witnesses) is a no-op, not an attack, and a no-op "mutant"
    verifying would be a false alarm.
    """
    out: List[Mutant] = []
    for fn in STRUCTURED_MUTATORS.values():
        out.extend(m for m in fn(data, rng) if m.data != data)
    return out


def random_mutants(data: bytes, rng: random.Random,
                   count: int) -> List[Mutant]:
    """``count`` seeded random byte-level mutations: flips, overwrites,
    truncations and extensions at uniformly random positions."""
    out = []
    for _ in range(count):
        buf = bytearray(data)
        op = rng.randrange(4)
        if op == 0:
            buf[rng.randrange(len(buf))] ^= 1 << rng.randrange(8)
        elif op == 1:
            pos = rng.randrange(len(buf))
            buf[pos] = (buf[pos] + rng.randrange(1, 256)) % 256
        elif op == 2:
            del buf[rng.randrange(len(buf)):]
        else:
            buf[rng.randrange(len(buf)):] = rng.randbytes(rng.randrange(1, 64))
        if bytes(buf) != data:
            out.append(Mutant("random_bytes", bytes(buf)))
    return out


def splice_mutants(data_a: bytes, data_b: bytes,
                   rng: random.Random) -> List[Mutant]:
    """Cross-proof splices: graft sections of proof B (for a *different*
    statement) into proof A.  Domain separation in the transcript must
    reject every one of these even when both halves are individually
    honest."""
    out = []
    a, b = _parse(data_a), _parse(data_b)
    # commitment from A, repetitions from B
    spliced = copy.deepcopy(a)
    spliced.repetitions = copy.deepcopy(b.repetitions)
    try:
        out.extend(_reserialize("splice", spliced))
    except (ValueError, DeserializationError):
        pass  # geometry mismatch made it unserializable; skip
    # B's PCS opening under A's sumcheck transcript
    spliced = copy.deepcopy(a)
    if spliced.repetitions and b.repetitions:
        spliced.repetitions[0].pcs_proof = copy.deepcopy(
            b.repetitions[0].pcs_proof)
        try:
            out.extend(_reserialize("splice", spliced))
        except (ValueError, DeserializationError):
            pass
    # B's sumcheck transcript with A's opening
    spliced = copy.deepcopy(a)
    if spliced.repetitions and b.repetitions:
        rp_a, rp_b = spliced.repetitions[0], b.repetitions[0]
        rp_a.sc1_round_evals = copy.deepcopy(rp_b.sc1_round_evals)
        rp_a.va, rp_a.vb, rp_a.vc = rp_b.va, rp_b.vb, rp_b.vc
        rp_a.sc2 = copy.deepcopy(rp_b.sc2)
        rp_a.w_eval = rp_b.w_eval
        out.extend(_reserialize("splice", spliced))
    # raw byte-level splice: A's header, B's body
    cut = _OFF_REP_COUNT
    out.append(Mutant("splice", data_a[:cut] + data_b[cut:]))
    return [m for m in out if m.data != data_a]
