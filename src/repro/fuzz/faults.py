"""Deterministic fault injection for the parallel proving engine.

The chaos harness (``tools/chaos_harness.py``) needs to reproduce the
failure modes a long-running prover actually sees — a worker SIGKILLed
mid-chunk, a dispatch that hangs, a shared-memory segment unlinked from
under a reader, a poisoned pickle in the broadcast blob — at *seeded,
repeatable* points, across process boundaries.

The mechanism is a single JSON :class:`FaultPlan` carried in the
``REPRO_FAULTS`` environment variable.  Instrumented sites (the worker
kernels in :mod:`repro.parallel.kernels`, the broadcast path in
:mod:`repro.parallel.pool`) call :func:`maybe_fault(site)`; the call is
a no-op unless a plan is installed, names that site, and the site's
per-process arrival counter has reached ``hits``.  A cross-process
*claim file* (``O_CREAT|O_EXCL``) arbitrates so each plan fires exactly
once no matter how many workers race to it — the injection point is
deterministic ("the Nth arrival at site S"), the winning process is
whichever worker gets there first.

Because the plan rides the environment, it must be installed **before**
the worker processes are started (workers snapshot the environment at
fork/spawn).  The harness therefore builds a fresh pool per scenario
inside a ``with faults.injected(plan):`` block.

Fault kinds
-----------
``worker_kill``    SIGKILL the calling process (uncatchable worker death).
``stall``          sleep ``stall_s`` seconds (a hung dispatch; the pool's
                   watchdog must detect and recover).
``shm_unlink``     unlink the segment named by the site's descriptor
                   before it is used (the janitor-vs-reader race); the
                   subsequent attach raises ``ShmError``.
``poison_pickle``  flip bytes of the segment named by the descriptor
                   (a corrupted broadcast blob; ``pickle.loads`` fails).
``error``          raise ``RuntimeError("injected fault")`` (a generic
                   in-task exception).
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, Optional

#: Environment variable carrying the JSON-encoded plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Every kind maybe_fault knows how to fire.
FAULT_KINDS = ("worker_kill", "stall", "shm_unlink", "poison_pickle",
               "error")


@dataclass(frozen=True)
class FaultPlan:
    """One scheduled fault: fire ``kind`` on the ``hits``-th arrival at
    ``site``, at most once across all processes sharing ``token``."""

    kind: str
    site: str
    hits: int = 1
    stall_s: float = 30.0
    token: str = "default"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {', '.join(FAULT_KINDS)}")
        if self.hits < 1:
            raise ValueError(f"hits must be >= 1, got {self.hits}")

    def to_env(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_env(cls, raw: str) -> "FaultPlan":
        return cls(**json.loads(raw))

    @property
    def claim_path(self) -> str:
        return os.path.join(tempfile.gettempdir(),
                            f"repro_fault_{self.token}.fired")


# -- plan lifecycle (harness side) ------------------------------------------

def install(plan: FaultPlan) -> None:
    """Arm ``plan`` for this process and any worker started afterwards."""
    _reset_counters()
    try:
        os.unlink(plan.claim_path)
    except OSError:
        pass
    os.environ[FAULTS_ENV] = plan.to_env()


def clear() -> None:
    """Disarm any installed plan and remove its claim file."""
    raw = os.environ.pop(FAULTS_ENV, None)
    _reset_counters()
    if raw:
        try:
            os.unlink(FaultPlan.from_env(raw).claim_path)
        except (OSError, ValueError, TypeError):
            pass


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with faults.injected(plan):`` — scoped arm/disarm.

    Build pools *inside* the block so workers inherit the armed
    environment.
    """
    install(plan)
    try:
        yield plan
    finally:
        clear()


# -- firing side (instrumented code) ----------------------------------------

#: Per-process arrival counters by site, plus a parse cache keyed on the
#: raw env string (the plan is immutable for a given armed value).
_counters: Dict[str, int] = {}
_parse_cache: Optional[tuple] = None  # (raw, plan)


def _reset_counters() -> None:
    global _parse_cache
    _counters.clear()
    _parse_cache = None


def _current_plan() -> Optional[FaultPlan]:
    raw = os.environ.get(FAULTS_ENV)
    if not raw:
        return None
    global _parse_cache
    if _parse_cache is None or _parse_cache[0] != raw:
        try:
            _parse_cache = (raw, FaultPlan.from_env(raw))
        except (ValueError, TypeError, KeyError):
            _parse_cache = (raw, None)
    return _parse_cache[1]


def _claim(plan: FaultPlan) -> bool:
    """Cross-process once-only arbitration: True for the single winner."""
    try:
        fd = os.open(plan.claim_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:  # tmpdir unwritable: fall back to per-process once
        fired = _counters.get("__fired__", 0)
        _counters["__fired__"] = 1
        return not fired
    with os.fdopen(fd, "w") as fh:
        fh.write(f"{os.getpid()} {plan.kind}@{plan.site}\n")
    return True


def maybe_fault(site: str, desc=None) -> None:
    """Injection point: fire the armed plan if this is its moment.

    ``desc`` is the shm descriptor in scope at segment-targeting sites
    (``shm_unlink`` / ``poison_pickle`` need a victim segment; those
    kinds are no-ops at sites that pass none).
    """
    plan = _current_plan()
    if plan is None or plan.site not in (site, "any"):
        return
    count = _counters.get(site, 0) + 1
    _counters[site] = count
    if count < plan.hits:
        return
    if plan.kind in ("shm_unlink", "poison_pickle") and desc is None:
        return
    if not _claim(plan):
        return
    _fire(plan, desc)


def _segment_path(name: str) -> str:
    return os.path.join("/dev/shm", name)


def _fire(plan: FaultPlan, desc) -> None:
    if plan.kind == "worker_kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif plan.kind == "stall":
        time.sleep(plan.stall_s)
    elif plan.kind == "shm_unlink":
        try:
            os.unlink(_segment_path(desc.name))
        except OSError:
            pass
    elif plan.kind == "poison_pickle":
        poison_segment(desc.name)
    elif plan.kind == "error":
        raise RuntimeError(f"injected fault at site {plan.site!r}")


def poison_segment(name: str) -> bool:
    """Flip bytes of a named /dev/shm segment in place (deterministic
    offsets), so a pickled blob stored there can no longer be loaded.
    Returns False when the segment could not be opened (non-Linux)."""
    path = _segment_path(name)
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            for off in {0, 1, size // 3, size // 2, size - 1} - {size}:
                fh.seek(max(0, off))
                byte = fh.read(1)
                if byte:
                    fh.seek(max(0, off))
                    fh.write(bytes([byte[0] ^ 0xFF]))
    except OSError:
        return False
    return True
