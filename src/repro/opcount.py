"""Operation-count accounting shared by the functional layer and the
performance models.

The paper's key analyses (Sec. III "critical operations", Fig. 6 task
breakdowns) are stated in terms of 64-bit multiplies, hash invocations,
and bytes moved.  :class:`OpCount` is the common currency: functional
modules can report what they did, and analytic models report what a
paper-scale run would do, in the same units.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OpCount:
    """Counts of primitive operations (the units NoCap's FUs implement)."""

    mul: int = 0          # 64-bit modular multiplies
    add: int = 0          # 64-bit modular adds/subs
    hash_words: int = 0   # 256-bit hash-pair operations (Hash FU ops)
    ntt_elements: int = 0 # elements pushed through base NTT kernels
    shuffle_elements: int = 0  # elements routed through the Benes network
    mem_read_bytes: int = 0
    mem_write_bytes: int = 0
    random_accesses: int = 0   # serialized, data-dependent off-chip reads

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            mul=self.mul + other.mul,
            add=self.add + other.add,
            hash_words=self.hash_words + other.hash_words,
            ntt_elements=self.ntt_elements + other.ntt_elements,
            shuffle_elements=self.shuffle_elements + other.shuffle_elements,
            mem_read_bytes=self.mem_read_bytes + other.mem_read_bytes,
            mem_write_bytes=self.mem_write_bytes + other.mem_write_bytes,
            random_accesses=self.random_accesses + other.random_accesses,
        )

    def scaled(self, k: int) -> "OpCount":
        """Multiply every count by an integer repetition factor."""
        return OpCount(
            mul=self.mul * k,
            add=self.add * k,
            hash_words=self.hash_words * k,
            ntt_elements=self.ntt_elements * k,
            shuffle_elements=self.shuffle_elements * k,
            mem_read_bytes=self.mem_read_bytes * k,
            mem_write_bytes=self.mem_write_bytes * k,
            random_accesses=self.random_accesses * k,
        )

    @property
    def mem_bytes(self) -> int:
        return self.mem_read_bytes + self.mem_write_bytes
