"""Fiat-Shamir transcript: turns the interactive Spartan+Orion protocol
into a non-interactive argument.

Every prover message is absorbed into a running SHA3 state; verifier
challenges are derived deterministically from that state, so prover and
verifier reconstruct identical challenge sequences.  This is the same
mechanism Listing 1's ``rx[i] = HASH(result[i])`` line sketches.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List, Sequence

import numpy as np

from ..errors import TranscriptError
from ..field.goldilocks import MODULUS


class Transcript:
    """A labelled Fiat-Shamir transcript over SHA3-256.

    Absorb methods validate their input and raise
    :class:`~repro.errors.TranscriptError` on anything that is not a
    clean byte string / integer sequence.  Verifier paths check proof
    structure *before* absorbing, so these are a typed backstop: replayed
    adversarial data can at worst raise a ``ReproError``, never a bare
    ``struct.error`` or ``TypeError``.
    """

    def __init__(self, domain: bytes = b"nocap.spartan-orion.v1"):
        self._state = hashlib.sha3_256(domain).digest()
        self._counter = 0

    # -- absorbing ----------------------------------------------------------
    def absorb_bytes(self, label: bytes, data: bytes) -> None:
        if not isinstance(label, (bytes, bytearray)):
            raise TranscriptError(
                f"transcript label must be bytes, got {type(label).__name__}")
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TranscriptError(
                f"transcript data must be bytes, got {type(data).__name__}")
        h = hashlib.sha3_256()
        h.update(self._state)
        h.update(struct.pack("<I", len(label)))
        h.update(label)
        h.update(struct.pack("<Q", len(data)))
        h.update(data)
        self._state = h.digest()

    def absorb_field(self, label: bytes, value: int) -> None:
        self.absorb_bytes(label, struct.pack("<Q", self._as_field(value)))

    def absorb_fields(self, label: bytes, values: Sequence[int]) -> None:
        data = b"".join(struct.pack("<Q", self._as_field(v)) for v in values)
        self.absorb_bytes(label, data)

    def absorb_array(self, label: bytes, arr: np.ndarray) -> None:
        try:
            data = np.ascontiguousarray(arr, dtype="<u8").tobytes()
        except (TypeError, ValueError, OverflowError) as exc:
            raise TranscriptError(
                f"cannot absorb non-uint64 array under {label!r}: {exc}"
            ) from exc
        self.absorb_bytes(label, data)

    def absorb_digest(self, label: bytes, digest: bytes) -> None:
        self.absorb_bytes(label, digest)

    @staticmethod
    def _as_field(value) -> int:
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise TranscriptError(
                f"transcript field element must be an integer, "
                f"got {type(value).__name__}")
        return int(value) % MODULUS

    # -- squeezing ----------------------------------------------------------
    def _squeeze(self) -> bytes:
        h = hashlib.sha3_256()
        h.update(self._state)
        h.update(struct.pack("<Q", self._counter))
        self._counter += 1
        return h.digest()

    def challenge_field(self, label: bytes) -> int:
        """Derive one uniform field element (rejection sampling on 64-bit draws)."""
        self.absorb_bytes(b"challenge/" + label, b"")
        while True:
            block = self._squeeze()
            for off in range(0, 32, 8):
                candidate = struct.unpack("<Q", block[off : off + 8])[0]
                if candidate < MODULUS:
                    return candidate

    def challenge_fields(self, label: bytes, count: int) -> List[int]:
        return [self.challenge_field(label + b"/%d" % i) for i in range(count)]

    def challenge_vector(self, label: bytes, count: int) -> np.ndarray:
        return np.array(self.challenge_fields(label, count), dtype=np.uint64)

    def challenge_indices(self, label: bytes, count: int, bound: int) -> List[int]:
        """Derive ``count`` distinct indices in [0, bound) — the Orion
        column-query sampler.  If bound <= count, returns all indices."""
        if bound <= 0:
            raise TranscriptError("challenge index bound must be positive")
        if bound <= count:
            return list(range(bound))
        self.absorb_bytes(b"challenge-idx/" + label, struct.pack("<QQ", count, bound))
        chosen: List[int] = []
        seen = set()
        while len(chosen) < count:
            block = self._squeeze()
            for off in range(0, 32, 8):
                candidate = struct.unpack("<Q", block[off : off + 8])[0] % bound
                if candidate not in seen:
                    seen.add(candidate)
                    chosen.append(candidate)
                    if len(chosen) == count:
                        break
        return chosen

    def fork(self, label: bytes) -> "Transcript":
        """Create an independent transcript branch (for repeated sumchecks)."""
        child = Transcript.__new__(Transcript)
        child._state = hashlib.sha3_256(self._state + b"fork/" + label).digest()
        child._counter = 0
        return child
