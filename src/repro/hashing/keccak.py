"""SHA3-256 from scratch: the Keccak-f[1600] permutation and sponge.

NoCap's Hash FU implements SHA3 in hardware (Sec. IV-B: "The SHA3 hash
unit hashes at a throughput of 1 KB per cycle ... 48-cycle pipeline" in
our scheduler model — 24 rounds, two per stage).  The rest of the
repository uses :mod:`hashlib` for speed; this module is the from-scratch
reference the tests verify hashlib against, and the place to read what
the Hash FU actually computes round by round.
"""

from __future__ import annotations

from typing import List

#: Keccak-f[1600] round constants (24 rounds).
ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

#: Rotation offsets r[x][y].
ROTATIONS = (
    (0, 36, 3, 41, 18),
    (1, 44, 10, 45, 2),
    (62, 6, 43, 15, 61),
    (28, 55, 25, 21, 56),
    (27, 20, 39, 8, 14),
)

_M64 = (1 << 64) - 1


def _rotl(x: int, n: int) -> int:
    n %= 64
    return ((x << n) | (x >> (64 - n))) & _M64


def keccak_f1600(state: List[int]) -> List[int]:
    """The Keccak-f[1600] permutation on 25 lanes of 64 bits.

    State layout: ``state[x + 5 * y]`` is lane (x, y), matching FIPS 202.
    """
    if len(state) != 25:
        raise ValueError("state must have 25 lanes")
    a = [[state[x + 5 * y] & _M64 for y in range(5)] for x in range(5)]

    for rc in ROUND_CONSTANTS:
        # theta
        c = [a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4] for x in range(5)]
        d = [c[(x - 1) % 5] ^ _rotl(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(5):
                a[x][y] ^= d[x]
        # rho + pi
        b = [[0] * 5 for _ in range(5)]
        for x in range(5):
            for y in range(5):
                b[y][(2 * x + 3 * y) % 5] = _rotl(a[x][y], ROTATIONS[x][y])
        # chi
        for x in range(5):
            for y in range(5):
                a[x][y] = b[x][y] ^ ((~b[(x + 1) % 5][y]) & b[(x + 2) % 5][y] & _M64)
        # iota
        a[0][0] ^= rc

    return [a[x][y] for y in range(5) for x in range(5)]


#: SHA3-256 sponge parameters: rate 1088 bits (136 bytes), capacity 512.
RATE_BYTES = 136
DIGEST_BYTES = 32


def sha3_256(message: bytes) -> bytes:
    """SHA3-256 via the sponge construction (domain suffix 0x06)."""
    state = [0] * 25

    # Absorb: pad10*1 with the SHA-3 domain separator.
    padded = bytearray(message)
    padded.append(0x06)
    while len(padded) % RATE_BYTES:
        padded.append(0x00)
    padded[-1] |= 0x80

    for block_off in range(0, len(padded), RATE_BYTES):
        block = padded[block_off : block_off + RATE_BYTES]
        for i in range(RATE_BYTES // 8):
            lane = int.from_bytes(block[8 * i : 8 * i + 8], "little")
            state[i] ^= lane
        state = keccak_f1600(state)

    # Squeeze one block (the digest fits in the first rate).
    out = bytearray()
    for i in range(DIGEST_BYTES // 8):
        out += state[i].to_bytes(8, "little")
    return bytes(out)
