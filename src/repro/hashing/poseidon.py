"""A Poseidon-style arithmetization-friendly hash over Goldilocks.

Hash-based ZKP deployments pair a fast binary hash (SHA3, which NoCap's
Hash FU implements) with a *field-friendly* hash for statements that must
verify hashes **inside** a circuit — Merkle membership, commitments to
secret data, signatures of signed images (the paper's photo-modification
use case).  SHA3 costs tens of thousands of R1CS constraints per call;
a Poseidon permutation costs a few hundred.

This is a faithfully-shaped instance (x^7 S-box, RF full + RP partial
rounds, MDS-style mixing, SHA3-derived round constants) intended for the
reproduction; it has not been cryptanalyzed — production systems should
use a standardized parameter set.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, List, Sequence

from ..field.goldilocks import MODULUS

#: State width (rate 2 + capacity 1): a 2-to-1 compression per permutation.
WIDTH = 3
#: Full rounds (S-box on the whole state) and partial rounds (one S-box).
FULL_ROUNDS = 8
PARTIAL_ROUNDS = 22
#: S-box exponent; gcd(7, p - 1) = 1 so x^7 permutes GF(p).
ALPHA = 7

#: Mixing matrix: I + J (all-ones) + diag(1,1,1) -> [[2,1,1],[1,2,1],[1,1,2]].
#: Cheap to apply (one state sum plus adds) and invertible over GF(p).
MDS = ((2, 1, 1), (1, 2, 1), (1, 1, 2))


def _derive_round_constants() -> List[List[int]]:
    """Nothing-up-my-sleeve constants from a SHA3 stream."""
    constants = []
    counter = 0
    total_rounds = FULL_ROUNDS + PARTIAL_ROUNDS
    while len(constants) < total_rounds:
        row = []
        while len(row) < WIDTH:
            digest = hashlib.sha3_256(
                b"poseidon-goldilocks" + struct.pack("<Q", counter)).digest()
            counter += 1
            for off in range(0, 32, 8):
                candidate = struct.unpack("<Q", digest[off : off + 8])[0]
                if candidate < MODULUS and len(row) < WIDTH:
                    row.append(candidate)
        constants.append(row)
    return constants


ROUND_CONSTANTS = _derive_round_constants()


def _sbox(x: int) -> int:
    return pow(x, ALPHA, MODULUS)


def _mix(state: Sequence[int]) -> List[int]:
    total = sum(state) % MODULUS
    return [(total + s) % MODULUS for s in state]


def permutation(state: Sequence[int]) -> List[int]:
    """The Poseidon permutation on a WIDTH-element state."""
    if len(state) != WIDTH:
        raise ValueError(f"state must have {WIDTH} elements")
    s = [x % MODULUS for x in state]
    half_full = FULL_ROUNDS // 2
    rounds = ROUND_CONSTANTS
    r = 0
    for _ in range(half_full):
        s = [(x + c) % MODULUS for x, c in zip(s, rounds[r])]
        s = [_sbox(x) for x in s]
        s = _mix(s)
        r += 1
    for _ in range(PARTIAL_ROUNDS):
        s = [(x + c) % MODULUS for x, c in zip(s, rounds[r])]
        s[0] = _sbox(s[0])
        s = _mix(s)
        r += 1
    for _ in range(half_full):
        s = [(x + c) % MODULUS for x, c in zip(s, rounds[r])]
        s = [_sbox(x) for x in s]
        s = _mix(s)
        r += 1
    return s


def hash2(a: int, b: int) -> int:
    """2-to-1 compression: the Merkle-tree primitive."""
    return permutation([a % MODULUS, b % MODULUS, 0])[0]


def hash_many(values: Iterable[int]) -> int:
    """Sponge-style absorption of an arbitrary-length message (rate 2)."""
    state = [0, 0, 0]
    buf = []
    count = 0
    for v in values:
        buf.append(v % MODULUS)
        count += 1
        if len(buf) == 2:
            state[0] = (state[0] + buf[0]) % MODULUS
            state[1] = (state[1] + buf[1]) % MODULUS
            state = permutation(state)
            buf = []
    # Pad with the element count to distinguish lengths.
    state[0] = (state[0] + (buf[0] if buf else 0)) % MODULUS
    state[1] = (state[1] + count + 1) % MODULUS
    state = permutation(state)
    return state[0]


def merkle_root(leaves: Sequence[int]) -> int:
    """Poseidon Merkle root over a power-of-two list of field elements."""
    n = len(leaves)
    if n == 0 or n & (n - 1):
        raise ValueError("leaf count must be a power of two")
    layer = [v % MODULUS for v in leaves]
    while len(layer) > 1:
        layer = [hash2(layer[i], layer[i + 1]) for i in range(0, len(layer), 2)]
    return layer[0]


def merkle_path(leaves: Sequence[int], index: int) -> List[int]:
    """Sibling values from leaf ``index`` up to the root."""
    n = len(leaves)
    if not 0 <= index < n:
        raise IndexError("leaf index out of range")
    layer = [v % MODULUS for v in leaves]
    path = []
    i = index
    while len(layer) > 1:
        path.append(layer[i ^ 1])
        layer = [hash2(layer[j], layer[j + 1]) for j in range(0, len(layer), 2)]
        i //= 2
    return path


def merkle_verify(root: int, leaf: int, index: int, path: Sequence[int]) -> bool:
    acc = leaf % MODULUS
    i = index
    for sib in path:
        acc = hash2(sib, acc) if i & 1 else hash2(acc, sib)
        i //= 2
    return acc == root % MODULUS
