"""Merkle tree commitments over field-element leaves (Sec. V-A).

The prover packs field elements into leaves, hashes the largest layers in
parallel on the Hash FU, and combines upward; the verifier checks opened
leaves against the root with logarithmic-size authentication paths.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..obs.metrics import METRICS as _METRICS
from .fieldhash import DIGEST_BYTES, hash_columns, hash_elements, hash_pair

_EMPTY_LEAF = b"\x00" * DIGEST_BYTES


@dataclass
class MerklePath:
    """Authentication path for one leaf."""

    index: int
    siblings: List[bytes]

    @property
    def depth(self) -> int:
        return len(self.siblings)

    def size_bytes(self) -> int:
        return len(self.siblings) * DIGEST_BYTES


class MerkleTree:
    """A binary Merkle tree over a list of leaf digests.

    Layers are stored as CONTIGUOUS byte strings (32 bytes per node) rather
    than Python lists — each layer is built with one tight loop over a flat
    buffer, matching how the Hash FU streams a whole layer per pass.
    ``layers[0]`` is the (power-of-two padded) leaf layer; ``layers[-1]``
    is the single root digest.
    """

    def __init__(self, leaf_digests: Sequence[bytes], pool=None):
        if isinstance(leaf_digests, (bytes, bytearray, memoryview)):
            raw = bytes(leaf_digests)
            if len(raw) == 0 or len(raw) % DIGEST_BYTES:
                raise ValueError("packed leaves must be a non-empty multiple "
                                 "of the digest size")
            n = len(raw) // DIGEST_BYTES
        else:
            leaves = list(leaf_digests)
            if not leaves:
                raise ValueError("Merkle tree needs at least one leaf")
            n = len(leaves)
            raw = b"".join(leaves)
            if len(raw) != n * DIGEST_BYTES:
                raise ValueError("every leaf digest must be 32 bytes")
        size = 1 if n == 1 else 1 << (n - 1).bit_length()
        if size > n:
            raw += _EMPTY_LEAF * (size - n)
        self.num_leaves = n
        self.layers: List[bytes] = [raw]
        _sha3 = hashlib.sha3_256
        current = raw
        while len(current) > DIGEST_BYTES:
            # Wide layers fan out across pool workers (hash_layer returns
            # None below its threshold); the combine order is fixed, so
            # the layer bytes are identical at any worker count.
            pooled = pool.hash_layer(current) if pool is not None else None
            if pooled is not None:
                current = pooled
                self.layers.append(current)
                continue
            nxt = bytearray(len(current) // 2)
            for i in range(0, len(nxt), DIGEST_BYTES):
                nxt[i : i + DIGEST_BYTES] = _sha3(
                    current[2 * i : 2 * i + 2 * DIGEST_BYTES]).digest()
            current = bytes(nxt)
            self.layers.append(current)
        if _METRICS.enabled:
            _METRICS.inc("merkle.trees")
            _METRICS.inc("merkle.hashes", self.total_hashes())

    @classmethod
    def from_columns(cls, matrix: np.ndarray, pool=None) -> "MerkleTree":
        """Commit to the columns of a 2-D field matrix (one leaf per column).

        This is how Orion commits to a Reed-Solomon-encoded coefficient
        matrix: each codeword column becomes one leaf.  Leaves are hashed
        with the batched :func:`hash_columns` kernel (one packing pass for
        the whole matrix); with a :class:`~repro.parallel.ProverPool` the
        columns are hashed in worker-count-independent chunks.
        """
        matrix = np.asarray(matrix, dtype=np.uint64)
        if matrix.ndim != 2:
            raise ValueError("from_columns expects a 2-D matrix")
        if pool is not None:
            return cls(pool.hash_columns(matrix), pool=pool)
        return cls(hash_columns(matrix))

    def node(self, level: int, index: int) -> bytes:
        """Digest of node ``index`` in ``layers[level]``."""
        off = index * DIGEST_BYTES
        return self.layers[level][off : off + DIGEST_BYTES]

    @property
    def root(self) -> bytes:
        return self.layers[-1]

    @property
    def depth(self) -> int:
        return len(self.layers) - 1

    def open(self, index: int) -> MerklePath:
        """Produce the authentication path for leaf ``index``."""
        if not 0 <= index < self.num_leaves:
            raise IndexError(f"leaf index {index} out of range")
        siblings = []
        i = index
        for level in range(len(self.layers) - 1):
            siblings.append(self.node(level, i ^ 1))
            i >>= 1
        return MerklePath(index=index, siblings=siblings)

    def total_hashes(self) -> int:
        """Pair-hash operations performed building the tree (cost model hook)."""
        return sum(len(layer) // DIGEST_BYTES for layer in self.layers[1:])


@dataclass
class MerkleMultiProof:
    """Batched opening of several leaves with shared internal nodes.

    Orion opens 189 columns of one tree; sibling digests shared between
    query paths need shipping only once.  ``nodes`` lists the sibling
    digests in verification order (bottom layer upward, left to right).
    """

    indices: List[int]
    nodes: List[bytes]

    def size_bytes(self) -> int:
        return len(self.nodes) * DIGEST_BYTES + 4 * len(self.indices)


def open_many(tree: "MerkleTree", indices: Sequence[int]) -> MerkleMultiProof:
    """Produce one multiproof covering all ``indices`` (deduplicated)."""
    idxs = sorted(set(int(i) for i in indices))
    for i in idxs:
        if not 0 <= i < tree.num_leaves:
            raise IndexError(f"leaf index {i} out of range")
    _METRICS.inc("merkle.paths_opened", len(idxs))
    nodes: List[bytes] = []
    frontier = set(idxs)
    for level in range(len(tree.layers) - 1):
        next_frontier = set()
        for i in sorted(frontier):
            sibling = i ^ 1
            # Ship the sibling only if the verifier cannot derive it.
            if sibling not in frontier:
                nodes.append(tree.node(level, sibling))
            next_frontier.add(i // 2)
        frontier = next_frontier
    return MerkleMultiProof(indices=idxs, nodes=nodes)


def verify_many(root: bytes, leaf_digests: Sequence[bytes],
                proof: MerkleMultiProof, num_leaves: int) -> bool:
    """Check a multiproof: ``leaf_digests[k]`` sits at ``proof.indices[k]``.

    Reconstructs the tree frontier layer by layer, consuming shipped
    sibling nodes exactly in :func:`open_many`'s order.  Adversarial
    proofs — wrong node types, out-of-range or unsorted indices, missing
    or trailing siblings — are rejected with ``False``, never an
    uncaught exception.
    """
    if not isinstance(proof, MerkleMultiProof):
        return False
    if not isinstance(num_leaves, int) or num_leaves < 1:
        return False
    if not _well_formed_digests(proof.nodes):
        return False
    if not _well_formed_digests(leaf_digests):
        return False
    if not all(isinstance(i, int) and 0 <= i < num_leaves
               for i in proof.indices):
        return False
    if len(leaf_digests) != len(proof.indices):
        return False
    if sorted(set(proof.indices)) != list(proof.indices):
        return False
    size = 1 if num_leaves == 1 else 1 << (num_leaves - 1).bit_length()
    known = dict(zip(proof.indices, leaf_digests))
    nodes = iter(proof.nodes)
    try:
        while size > 1:
            next_known = {}
            for i in sorted(known):
                if i // 2 in next_known:
                    continue
                sibling = i ^ 1
                if sibling in known:
                    sib_digest = known[sibling]
                else:
                    sib_digest = next(nodes)
                left, right = (known[i], sib_digest) if i % 2 == 0                     else (sib_digest, known[i])
                next_known[i // 2] = hash_pair(left, right)
            known = next_known
            size //= 2
    except StopIteration:
        return False
    if next(nodes, None) is not None:
        return False  # trailing unused nodes
    return known.get(0) == root


#: No deployed tree is deeper than 64 levels (2^64 leaves); longer paths
#: are adversarial padding.
MAX_PATH_DEPTH = 64


def _well_formed_digests(digests) -> bool:
    """True when ``digests`` is a sequence of 32-byte strings."""
    try:
        return all(isinstance(d, (bytes, bytearray))
                   and len(d) == DIGEST_BYTES for d in digests)
    except TypeError:
        return False


def verify_path(root: bytes, leaf_digest: bytes, path: MerklePath) -> bool:
    """Check that ``leaf_digest`` sits at ``path.index`` under ``root``.

    Malformed paths (wrong types, negative index, absurd depth) are
    rejected with ``False``.
    """
    if not isinstance(path, MerklePath):
        return False
    if not isinstance(path.index, int) or path.index < 0:
        return False
    if not isinstance(leaf_digest, (bytes, bytearray)):
        return False
    if (len(path.siblings) > MAX_PATH_DEPTH
            or not _well_formed_digests(path.siblings)):
        return False
    if path.index >> len(path.siblings):
        return False  # index does not fit in a tree of this depth
    acc = leaf_digest
    i = path.index
    for sibling in path.siblings:
        if i & 1:
            acc = hash_pair(sibling, acc)
        else:
            acc = hash_pair(acc, sibling)
        i >>= 1
    return acc == root


def verify_column(root: bytes, column: np.ndarray, path: MerklePath) -> bool:
    """Verify an opened matrix column against a column-committed tree."""
    try:
        column = np.asarray(column, dtype=np.uint64)
    except (TypeError, ValueError, OverflowError):
        return False
    return verify_path(root, hash_elements(column), path)
