"""Hashing substrate: SHA3 field hashing, Merkle trees, Fiat-Shamir."""

from .fieldhash import (
    DIGEST_BYTES,
    ELEMENTS_PER_WORD,
    elements_to_words,
    hash_elements,
    hash_pair,
    sha3,
)
from .keccak import keccak_f1600
from .keccak import sha3_256 as sha3_256_from_scratch
from .merkle import (
    MerkleMultiProof,
    MerklePath,
    MerkleTree,
    open_many,
    verify_column,
    verify_many,
    verify_path,
)
from .transcript import Transcript
from . import poseidon

__all__ = [
    "DIGEST_BYTES",
    "ELEMENTS_PER_WORD",
    "elements_to_words",
    "hash_elements",
    "hash_pair",
    "sha3",
    "keccak_f1600",
    "sha3_256_from_scratch",
    "MerkleMultiProof",
    "MerklePath",
    "MerkleTree",
    "open_many",
    "verify_many",
    "verify_column",
    "verify_path",
    "Transcript",
    "poseidon",
]
