"""SHA3-256 hashing of field elements, mirroring NoCap's Hash FU semantics.

The paper's hash unit (Sec. IV-B) reinterprets each group of four
consecutive 64-bit field elements as one 256-bit value, and hashes pairs of
256-bit values into one 256-bit digest.  We reproduce that packing exactly
so the number of compression calls the functional layer performs matches
what the performance model charges the Hash FU for.
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np

DIGEST_BYTES = 32
#: Field elements per 256-bit hash word (4 x 64-bit).
ELEMENTS_PER_WORD = 4


def sha3(data: bytes) -> bytes:
    """SHA3-256 of raw bytes."""
    return hashlib.sha3_256(data).digest()


def hash_pair(left: bytes, right: bytes) -> bytes:
    """The Hash FU primitive: two 256-bit inputs -> one 256-bit output."""
    return hashlib.sha3_256(left + right).digest()


def elements_to_words(elements: np.ndarray) -> List[bytes]:
    """Pack field elements into 32-byte words (4 elements per word).

    The tail is zero-padded, matching how vectors are padded into hash
    lanes on the accelerator.
    """
    arr = np.asarray(elements, dtype=np.uint64).ravel()
    pad = (-len(arr)) % ELEMENTS_PER_WORD
    if pad:
        arr = np.concatenate([arr, np.zeros(pad, dtype=np.uint64)])
    raw = arr.astype("<u8").tobytes()
    return [raw[i : i + DIGEST_BYTES] for i in range(0, len(raw), DIGEST_BYTES)]


def hash_elements(elements: np.ndarray) -> bytes:
    """Hash a vector of field elements down to a single 256-bit digest.

    Words are combined left-to-right with the pairwise primitive — the
    sequential chaining a hash lane performs when a leaf spans multiple
    256-bit words.
    """
    words = elements_to_words(elements)
    if not words:
        return sha3(b"")
    acc = words[0]
    if len(words) == 1:
        # Single word still passes through the FU once (paired with zero).
        return hash_pair(acc, b"\x00" * DIGEST_BYTES)
    for word in words[1:]:
        acc = hash_pair(acc, word)
    return acc


def hash_columns(matrix: np.ndarray) -> List[bytes]:
    """Hash every column of a 2-D field matrix to one digest per column.

    Byte-for-byte equivalent to ``[hash_elements(matrix[:, j]) for j]`` —
    same packing, same left-to-right compression chaining — but the whole
    matrix is packed with ONE transpose + ``tobytes`` pass, and the chain
    walks a flat byte buffer.  This is the batched leaf-hashing kernel the
    Merkle commitment uses (all leaves of a layer stream through the Hash
    FU together, Sec. IV-B).
    """
    matrix = np.asarray(matrix, dtype=np.uint64)
    if matrix.ndim != 2:
        raise ValueError("hash_columns expects a 2-D matrix")
    rows, cols = matrix.shape
    if rows == 0:
        return [sha3(b"")] * cols
    pad = (-rows) % ELEMENTS_PER_WORD
    packed = np.zeros((cols, rows + pad), dtype="<u8")
    packed[:, :rows] = matrix.T
    raw = packed.tobytes()
    words = (rows + pad) // ELEMENTS_PER_WORD
    stride = words * DIGEST_BYTES
    _sha3 = hashlib.sha3_256
    out: List[bytes] = []
    if words == 1:
        zero = b"\x00" * DIGEST_BYTES
        for base in range(0, cols * stride, stride):
            out.append(_sha3(raw[base : base + DIGEST_BYTES] + zero).digest())
        return out
    for base in range(0, cols * stride, stride):
        acc = _sha3(raw[base : base + 2 * DIGEST_BYTES]).digest()
        for off in range(base + 2 * DIGEST_BYTES, base + stride, DIGEST_BYTES):
            acc = _sha3(acc + raw[off : off + DIGEST_BYTES]).digest()
        out.append(acc)
    return out


def compression_calls_for_elements(n_elements: int) -> int:
    """Number of Hash-FU pair operations :func:`hash_elements` performs.

    Used by unit tests to pin the functional layer to the cost model.
    """
    words = max(1, (n_elements + ELEMENTS_PER_WORD - 1) // ELEMENTS_PER_WORD)
    return max(1, words - 1) if words > 1 else 1
