"""SHA3-256 hashing of field elements, mirroring NoCap's Hash FU semantics.

The paper's hash unit (Sec. IV-B) reinterprets each group of four
consecutive 64-bit field elements as one 256-bit value, and hashes pairs of
256-bit values into one 256-bit digest.  We reproduce that packing exactly
so the number of compression calls the functional layer performs matches
what the performance model charges the Hash FU for.
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np

DIGEST_BYTES = 32
#: Field elements per 256-bit hash word (4 x 64-bit).
ELEMENTS_PER_WORD = 4


def sha3(data: bytes) -> bytes:
    """SHA3-256 of raw bytes."""
    return hashlib.sha3_256(data).digest()


def hash_pair(left: bytes, right: bytes) -> bytes:
    """The Hash FU primitive: two 256-bit inputs -> one 256-bit output."""
    return hashlib.sha3_256(left + right).digest()


def elements_to_words(elements: np.ndarray) -> List[bytes]:
    """Pack field elements into 32-byte words (4 elements per word).

    The tail is zero-padded, matching how vectors are padded into hash
    lanes on the accelerator.
    """
    arr = np.asarray(elements, dtype=np.uint64).ravel()
    pad = (-len(arr)) % ELEMENTS_PER_WORD
    if pad:
        arr = np.concatenate([arr, np.zeros(pad, dtype=np.uint64)])
    raw = arr.astype("<u8").tobytes()
    return [raw[i : i + DIGEST_BYTES] for i in range(0, len(raw), DIGEST_BYTES)]


def hash_elements(elements: np.ndarray) -> bytes:
    """Hash a vector of field elements down to a single 256-bit digest.

    Words are combined left-to-right with the pairwise primitive — the
    sequential chaining a hash lane performs when a leaf spans multiple
    256-bit words.
    """
    words = elements_to_words(elements)
    if not words:
        return sha3(b"")
    acc = words[0]
    if len(words) == 1:
        # Single word still passes through the FU once (paired with zero).
        return hash_pair(acc, b"\x00" * DIGEST_BYTES)
    for word in words[1:]:
        acc = hash_pair(acc, word)
    return acc


def hash_columns(matrix: np.ndarray) -> List[bytes]:
    """Hash every column of a 2-D field matrix to one digest per column.

    Byte-for-byte equivalent to ``[hash_elements(matrix[:, j]) for j]`` —
    same packing, same left-to-right compression chaining — but the whole
    matrix is packed with ONE transpose + ``tobytes`` pass, and the chain
    walks a flat byte buffer.  This is the batched leaf-hashing kernel the
    Merkle commitment uses (all leaves of a layer stream through the Hash
    FU together, Sec. IV-B).
    """
    matrix = np.asarray(matrix, dtype=np.uint64)
    if matrix.ndim != 2:
        raise ValueError("hash_columns expects a 2-D matrix")
    rows, cols = matrix.shape
    if rows == 0:
        return [sha3(b"")] * cols
    pad = (-rows) % ELEMENTS_PER_WORD
    packed = np.zeros((cols, rows + pad), dtype="<u8")
    packed[:, :rows] = matrix.T
    raw = packed.tobytes()
    words = (rows + pad) // ELEMENTS_PER_WORD
    stride = words * DIGEST_BYTES
    _sha3 = hashlib.sha3_256
    out: List[bytes] = []
    if words == 1:
        zero = b"\x00" * DIGEST_BYTES
        for base in range(0, cols * stride, stride):
            out.append(_sha3(raw[base : base + DIGEST_BYTES] + zero).digest())
        return out
    for base in range(0, cols * stride, stride):
        acc = _sha3(raw[base : base + 2 * DIGEST_BYTES]).digest()
        for off in range(base + 2 * DIGEST_BYTES, base + stride, DIGEST_BYTES):
            acc = _sha3(acc + raw[off : off + DIGEST_BYTES]).digest()
        out.append(acc)
    return out


class ColumnChainHasher:
    """Incremental, tile-at-a-time version of :func:`hash_columns`.

    :func:`hash_columns` chains each column's 256-bit words (4 field
    elements per word) left to right.  That chain is *sequential in the
    row direction*, so a commitment can stream row tiles — encode a tile,
    fold it into the per-column accumulators, discard the tile — and
    never materialize the full matrix.  Feeding the same rows through
    :meth:`update` in order and calling :meth:`finalize` is byte-for-byte
    identical to ``hash_columns`` on the stacked matrix (property-tested
    in ``tests/test_parallel.py``).

    The chain rule per column: the first word is stashed; every later
    word ``w`` folds as ``acc = sha3(acc + w)`` (the stashed first word
    plays the role of ``acc`` for the second word); a column that only
    ever sees one word finalizes as ``sha3(w0 + zeros)``.  State is
    exactly 32 bytes per column plus one shared word counter, so it also
    ships cheaply through shared memory when tiles are folded on worker
    processes.
    """

    def __init__(self, num_cols: int, total_rows: int):
        if total_rows < 1 or num_cols < 1:
            raise ValueError("need at least one row and one column")
        self.num_cols = num_cols
        self.total_rows = total_rows
        #: Rows including the zero padding hash_columns applies.
        self.padded_rows = total_rows + ((-total_rows) % ELEMENTS_PER_WORD)
        self.rows_fed = 0
        self.words_done = 0
        # 32 bytes per column: the pending first word, then the chain acc.
        self.state = np.zeros((num_cols, DIGEST_BYTES), dtype=np.uint8)

    def update(self, tile: np.ndarray) -> None:
        """Fold a ``(tile_rows, num_cols)`` row tile into the chains.

        Every tile except the last must carry a multiple of
        ``ELEMENTS_PER_WORD`` rows (word boundaries cannot straddle
        tiles); the final tile is zero-padded internally, exactly like
        :func:`hash_columns` pads the full matrix.
        """
        tile = np.asarray(tile, dtype=np.uint64)
        if tile.ndim != 2 or tile.shape[1] != self.num_cols:
            raise ValueError("tile shape does not match the chain geometry")
        t_rows = tile.shape[0]
        if self.rows_fed + t_rows > self.total_rows:
            raise ValueError("more rows than the chain was sized for")
        self.rows_fed += t_rows
        pad = (-t_rows) % ELEMENTS_PER_WORD
        if pad and self.rows_fed != self.total_rows:
            raise ValueError("only the final tile may be a partial word")
        fold_chunk(self.state, tile, self.words_done)
        self.words_done += (t_rows + pad) // ELEMENTS_PER_WORD

    def finalize(self) -> bytes:
        """Flat ``num_cols * 32`` leaf-digest bytes (hash_columns order)."""
        if self.rows_fed != self.total_rows:
            raise ValueError(
                f"chain fed {self.rows_fed} of {self.total_rows} rows")
        if self.words_done == 1:
            # Single-word columns pair with a zero word, per hash_elements.
            zero = b"\x00" * DIGEST_BYTES
            raw = self.state.tobytes()
            _sha3 = hashlib.sha3_256
            return b"".join(
                _sha3(raw[off : off + DIGEST_BYTES] + zero).digest()
                for off in range(0, len(raw), DIGEST_BYTES))
        return self.state.tobytes()


def fold_chunk(state: np.ndarray, tile: np.ndarray, words_done: int) -> None:
    """Fold one row tile into a slice of chain state, in place.

    ``state`` is ``(cols, 32)`` uint8; ``tile`` is ``(tile_rows, cols)``
    uint64 with ``tile_rows`` padded to a word boundary by the caller's
    geometry (a trailing partial word is zero-padded here).  This is the
    worker-side kernel of the streaming commit: both arguments may be
    views into shared memory, so chunks of columns fold concurrently with
    no data shipped beyond their descriptors.
    """
    cols = state.shape[0]
    t_rows = tile.shape[0]
    pad = (-t_rows) % ELEMENTS_PER_WORD
    packed = np.zeros((cols, t_rows + pad), dtype="<u8")
    packed[:, :t_rows] = tile.T
    words = (t_rows + pad) // ELEMENTS_PER_WORD
    stride = words * DIGEST_BYTES
    _sha3 = hashlib.sha3_256
    state_bytes = state.tobytes()
    out = bytearray(state_bytes)
    for col in range(cols):
        # Per-column byte conversion: one stride-sized buffer at a time
        # keeps the transient footprint at O(stride), not O(tile).
        raw = packed[col].tobytes()
        soff = col * DIGEST_BYTES
        acc = state_bytes[soff : soff + DIGEST_BYTES]
        done = words_done
        for w in range(words):
            word = raw[w * DIGEST_BYTES : (w + 1) * DIGEST_BYTES]
            if done == 0:
                acc = word  # stash the first word; nothing to fold yet
            else:
                acc = _sha3(acc + word).digest()
            done += 1
        out[soff : soff + DIGEST_BYTES] = acc
    state[...] = np.frombuffer(bytes(out), dtype=np.uint8).reshape(cols,
                                                                   DIGEST_BYTES)


def compression_calls_for_elements(n_elements: int) -> int:
    """Number of Hash-FU pair operations :func:`hash_elements` performs.

    Used by unit tests to pin the functional layer to the cost model.
    """
    words = max(1, (n_elements + ELEMENTS_PER_WORD - 1) // ELEMENTS_PER_WORD)
    return max(1, words - 1) if words > 1 else 1
