"""Rate-1/4 Reed-Solomon code via the NTT (the Shockwave substitution).

Orion's original implementation used expander-graph codes; the paper
replaces them with Reed-Solomon codes (Sec. II, Sec. V-A) because RS
encoding is a single large NTT — regular, streaming, and NTT-FU friendly —
whereas expander encoding makes serialized, data-dependent off-chip
accesses.  Parameters follow Shockwave/Sec. VII-A: blowup 4, so only 189
column queries are needed (vs 1,222 for the expander code).

Encoding: interpret the n-element message as coefficients of a degree-<n
polynomial and evaluate it on the size-4n NTT domain.  Any n codeword
symbols determine the message, giving distance 3n + 1.
"""

from __future__ import annotations

import numpy as np

from ..ntt.polymul import poly_eval_domain
from ..ntt.radix2 import intt
from ..obs.metrics import METRICS as _METRICS
from ..opcount import OpCount
from .base import LinearCode

#: Shockwave parameters used throughout the paper (Sec. VII-A).
DEFAULT_BLOWUP = 4
DEFAULT_QUERIES = 189


class ReedSolomonCode(LinearCode):
    """Systematic-in-spirit RS code: codeword = NTT_(blowup*n)(pad(message))."""

    def __init__(self, blowup: int = DEFAULT_BLOWUP, num_queries: int = DEFAULT_QUERIES):
        if blowup < 2 or blowup & (blowup - 1):
            raise ValueError("blowup must be a power of two >= 2")
        self.blowup = blowup
        self.num_queries = num_queries

    def encode(self, message: np.ndarray) -> np.ndarray:
        message = np.asarray(message, dtype=np.uint64)
        n = message.shape[-1]
        if n & (n - 1):
            raise ValueError(f"message length must be a power of two, got {n}")
        if _METRICS.enabled:
            # Nominal full-NTT cost: (N/2)*log2(N) butterflies per row
            # (the zero-pad optimization skips the first log2(blowup)
            # stages; the counter tracks the structural count the paper's
            # cost model charges for).
            codeword_len = self.blowup * n
            rows = 1
            for dim in message.shape[:-1]:
                rows *= dim
            _METRICS.inc("ntt.butterflies",
                         rows * (codeword_len // 2)
                         * max(1, codeword_len.bit_length() - 1))
            _METRICS.inc("rs.rows_encoded", rows)
        return poly_eval_domain(message, self.blowup * n)

    def encode_rows(self, matrix: np.ndarray, pool=None) -> np.ndarray:
        """Encode every row in ONE batched NTT call.

        The radix-2 transform operates along the last axis, so the whole
        (rows, cols) message matrix goes through a single length-4*cols NTT
        — no per-row Python dispatch (the paper's NTT FU processes 64 such
        rows per pass; here one numpy call covers them all).

        With a :class:`~repro.parallel.ProverPool`, row ranges encode on
        worker processes instead — per-row transforms are independent, so
        the stacked result is bit-identical to the serial batched call.
        """
        matrix = np.asarray(matrix, dtype=np.uint64)
        if pool is not None and matrix.ndim == 2:
            return pool.encode_rows(self, matrix)
        return self.encode(matrix)

    def decode_systematic(self, codeword: np.ndarray) -> np.ndarray:
        """Recover the message from an *uncorrupted* codeword (test helper)."""
        codeword = np.asarray(codeword, dtype=np.uint64)
        coeffs = intt(codeword)
        n = codeword.shape[-1] // self.blowup
        if coeffs[..., n:].any():
            raise ValueError("codeword is not a valid RS codeword")
        return coeffs[..., :n]

    def encoding_cost(self, message_length: int) -> OpCount:
        """One length-4n NTT: (4n/2) * log2(4n) butterflies, each 1 mul + 2 adds.

        Traffic: the four-step implementation streams the vector once per
        matrix pass (2 passes below the register-file limit, plus one
        off-chip transpose above it — Sec. V-A).
        """
        n = self.blowup * message_length
        log_n = max(1, n.bit_length() - 1)
        butterflies = (n // 2) * log_n
        passes = 2 if n > (1 << 20) else 1  # off-chip transpose above RF size
        bytes_moved = n * 8 * (passes + 1)
        return OpCount(
            mul=butterflies,
            add=2 * butterflies,
            ntt_elements=n * log_n,
            mem_read_bytes=bytes_moved,
            mem_write_bytes=bytes_moved,
        )
