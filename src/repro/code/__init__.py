"""Linear error-correcting codes for the Orion polynomial commitment."""

from .base import LinearCode
from .expander import ExpanderCode
from .reed_solomon import DEFAULT_BLOWUP, DEFAULT_QUERIES, ReedSolomonCode

__all__ = [
    "LinearCode",
    "ExpanderCode",
    "ReedSolomonCode",
    "DEFAULT_BLOWUP",
    "DEFAULT_QUERIES",
]
