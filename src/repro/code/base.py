"""Abstract interface for the linear error-correcting codes used by the
Orion polynomial commitment (Sec. V-A, "Reed-Solomon codes").

A linear code here is an injective linear map GF(p)^n -> GF(p)^(blowup*n).
Linearity is what the commitment scheme exploits: the encoding of a random
combination of rows equals the same combination of the rows' encodings.
"""

from __future__ import annotations

import abc

import numpy as np

from ..opcount import OpCount


class LinearCode(abc.ABC):
    """Systematic-or-not linear code with a fixed integer blowup factor."""

    #: codeword length / message length
    blowup: int

    #: Column queries needed for the target soundness at this code's
    #: relative distance (paper: 189 for RS blowup 4, 1222 for expanders).
    num_queries: int

    @abc.abstractmethod
    def encode(self, message: np.ndarray) -> np.ndarray:
        """Encode one message vector (power-of-two length) into a codeword."""

    def encode_rows(self, matrix: np.ndarray, pool=None) -> np.ndarray:
        """Encode each row of a 2-D matrix; returns (rows, blowup * cols).

        Generic per-row fallback; codes whose encoder batches along leading
        axes (e.g. :class:`ReedSolomonCode`) override this with a single
        batched call.  Rows are independent for any linear code, so a
        :class:`~repro.parallel.ProverPool` may chunk them across workers
        with bit-identical results.
        """
        matrix = np.asarray(matrix, dtype=np.uint64)
        if pool is not None:
            return pool.encode_rows(self, matrix)
        out = np.empty((matrix.shape[0], self.blowup * matrix.shape[1]), dtype=np.uint64)
        for i in range(matrix.shape[0]):
            out[i] = self.encode(matrix[i])
        return out

    def codeword_length(self, message_length: int) -> int:
        return self.blowup * message_length

    @abc.abstractmethod
    def encoding_cost(self, message_length: int) -> OpCount:
        """Operation counts for one encode at paper scale (cost-model hook)."""
