"""Brakedown-style recursive expander-graph code — the baseline Orion used
before the paper's Reed-Solomon substitution.

The construction (after Spielman / Brakedown / Orion) encodes a length-n
message x as::

    Enc(x) = [ x | Enc(A x) | B * Enc(A x) ]
               n      2n          n           -> blowup 4

where A is a sparse (n/2 x n) random bipartite-expander matrix and B is a
sparse (n x 2n) one, both with fixed row degree.  The base case uses the
Reed-Solomon code so lengths compose exactly.

Why NoCap avoids it (Sec. II): the graphs take gigabytes at paper scale
and encoding traverses neighbours in data-dependent order, producing
serialized off-chip accesses.  :meth:`encoding_cost` charges for exactly
that, which is what makes the RS-vs-expander comparison in Sec. VIII-C
come out the way it does.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from ..field import vector as fv
from ..opcount import OpCount
from .base import LinearCode
from .reed_solomon import ReedSolomonCode

#: Fixed row degree of the expander matrices (Orion-like sparsity).
ROW_DEGREE = 8

#: Messages at or below this length are RS-encoded directly.
BASE_CASE = 64


class ExpanderCode(LinearCode):
    """Blowup-4 recursive expander code with seeded, shared graphs."""

    blowup = 4
    #: Orion's expander parameters need 1,222 column queries (Sec. VII-A).
    num_queries = 1222

    def __init__(self, seed: int = 0xE2C0DE, row_degree: int = ROW_DEGREE):
        self.seed = seed
        self.row_degree = row_degree
        self._base = ReedSolomonCode(blowup=4)

    # -- graph generation (deterministic; prover and verifier share it) ----
    @lru_cache(maxsize=None)
    def _graph(self, rows: int, cols: int, level: int, which: int) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse matrix as (indices, values), each of shape (rows, degree)."""
        rng = np.random.default_rng((self.seed, rows, cols, level, which))
        indices = rng.integers(0, cols, size=(rows, self.row_degree), dtype=np.int64)
        values = fv.rand_vector(rows * self.row_degree, rng).reshape(rows, self.row_degree)
        # Avoid zero coefficients so every edge contributes.
        values = np.where(values == 0, np.uint64(1), values)
        return indices, values

    def _spmv(self, indices: np.ndarray, values: np.ndarray, x: np.ndarray) -> np.ndarray:
        """y[i] = sum_k values[i,k] * x[indices[i,k]] (mod p)."""
        gathered = x[indices]  # the data-dependent accesses
        prods = fv.mul(values, gathered)
        acc = prods[:, 0]
        for k in range(1, prods.shape[1]):
            acc = fv.add(acc, prods[:, k])
        return acc

    # -- encoding -----------------------------------------------------------
    def encode(self, message: np.ndarray) -> np.ndarray:
        message = np.asarray(message, dtype=np.uint64)
        n = message.shape[-1]
        if n & (n - 1):
            raise ValueError(f"message length must be a power of two, got {n}")
        return self._encode(message, level=0)

    def _encode(self, x: np.ndarray, level: int) -> np.ndarray:
        n = x.shape[-1]
        if n <= BASE_CASE:
            return self._base.encode(x)
        a_idx, a_val = self._graph(n // 2, n, level, 0)
        y = self._spmv(a_idx, a_val, x)          # length n/2
        w = self._encode(y, level + 1)            # length 2n
        b_idx, b_val = self._graph(n, 2 * n, level, 1)
        v = self._spmv(b_idx, b_val, w)           # length n
        return np.concatenate([x, w, v])

    # -- cost model ----------------------------------------------------------
    def graph_bytes(self, message_length: int) -> int:
        """Storage for all expander matrices touched when encoding length n.

        Each edge stores a 4-byte index and an 8-byte coefficient.
        """
        total_edges = 0
        n = message_length
        while n > BASE_CASE:
            total_edges += (n // 2) * self.row_degree  # A
            total_edges += n * self.row_degree         # B
            n //= 2
        return total_edges * 12

    def encoding_cost(self, message_length: int) -> OpCount:
        cost = OpCount()
        n = message_length
        while n > BASE_CASE:
            edges = (n // 2 + n) * self.row_degree
            cost.mul += edges
            cost.add += edges
            cost.random_accesses += edges          # serialized gathers
            cost.mem_read_bytes += edges * 12      # graph is streamed once
            cost.mem_read_bytes += edges * 8       # gathered operands
            cost.mem_write_bytes += (n // 2 + n) * 8
            n //= 2
        cost = cost + self._base.encoding_cost(max(n, 1))
        return cost
