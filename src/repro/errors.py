"""Typed error hierarchy for the verification boundary.

The verifier sits across a trust boundary: proof bytes arrive from a
prover the verifier does not trust, over a transport that may corrupt
them.  The contract for every deserialization and verification path is

    **reject, never crash, never accept**:

malformed input is answered with ``False`` or one of the exceptions
below — never an ``IndexError``, a numpy broadcast error, or an
optimization-stripped ``assert``.

``DeserializationError`` and ``ConfigError`` also subclass ``ValueError``
so callers that predate the taxonomy (``except ValueError``) keep
working; new code should catch :class:`ReproError`.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "DeserializationError",
    "VerificationError",
    "TranscriptError",
    "ConfigError",
    "ProverTimeoutError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class of every typed error raised at a trust boundary."""


class DeserializationError(ReproError, ValueError):
    """Malformed or malicious wire bytes.

    Carries the byte offset at which parsing failed (when known) so a
    transport-corruption report can point at the damage.
    """

    def __init__(self, message: str, *, offset: Optional[int] = None):
        self.offset = offset
        if offset is not None:
            message = f"{message} (at byte offset {offset})"
        super().__init__(message)


class VerificationError(ReproError):
    """A proof whose *structure* is too broken to even evaluate.

    Ordinary invalid proofs are rejected by returning ``False``; this
    error marks inputs that could not have been produced by an honest
    prover at all (wrong container types, impossible shapes).
    """


class TranscriptError(ReproError, ValueError):
    """Invalid data fed to the Fiat-Shamir transcript.

    A backstop: verifier paths validate before absorbing, so reaching
    this from wire input indicates a missing check upstream.
    """


class ConfigError(ReproError, ValueError):
    """An impossible or inconsistent configuration (simulator design
    points, ISA programs, protocol parameter presets)."""


class ProverTimeoutError(ReproError, TimeoutError):
    """A proving deadline expired before the work completed.

    Raised by the cooperative deadline checks threaded through the
    prover (:mod:`repro.parallel.deadline`) and by the pool when a
    dispatch outlives the job budget.  Unlike worker crashes, a deadline
    expiry is *final*: the engine never degrades past it, because the
    caller asked for bounded latency, not a slower answer.  Carries the
    budget and the phase that tripped it.
    """

    def __init__(self, message: str, *, budget_s: Optional[float] = None,
                 phase: str = ""):
        self.budget_s = budget_s
        self.phase = phase
        detail = []
        if phase:
            detail.append(f"in {phase}")
        if budget_s is not None:
            detail.append(f"budget {budget_s:.3f}s")
        if detail:
            message = f"{message} ({', '.join(detail)})"
        super().__init__(message)


class WorkerCrashError(ReproError, RuntimeError):
    """A pooled dispatch could not be completed by worker processes.

    Raised after the supervisor has exhausted its restart/retry budget
    (worker death, hung dispatches, torn shared memory, poisoned
    broadcast blobs).  Kernel callers catch this and *degrade* to the
    bit-identical in-process serial path; job-level callers surface it
    per job (:func:`repro.snark.api.prove_many` partial results).
    """

    def __init__(self, message: str, *, retries: int = 0,
                 cause: Optional[BaseException] = None):
        self.retries = retries
        if retries:
            message = f"{message} (after {retries} retries)"
        super().__init__(message)
        if cause is not None:
            self.__cause__ = cause
