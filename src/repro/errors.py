"""Typed error hierarchy for the verification boundary.

The verifier sits across a trust boundary: proof bytes arrive from a
prover the verifier does not trust, over a transport that may corrupt
them.  The contract for every deserialization and verification path is

    **reject, never crash, never accept**:

malformed input is answered with ``False`` or one of the exceptions
below — never an ``IndexError``, a numpy broadcast error, or an
optimization-stripped ``assert``.

``DeserializationError`` and ``ConfigError`` also subclass ``ValueError``
so callers that predate the taxonomy (``except ValueError``) keep
working; new code should catch :class:`ReproError`.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "DeserializationError",
    "VerificationError",
    "TranscriptError",
    "ConfigError",
]


class ReproError(Exception):
    """Base class of every typed error raised at a trust boundary."""


class DeserializationError(ReproError, ValueError):
    """Malformed or malicious wire bytes.

    Carries the byte offset at which parsing failed (when known) so a
    transport-corruption report can point at the damage.
    """

    def __init__(self, message: str, *, offset: Optional[int] = None):
        self.offset = offset
        if offset is not None:
            message = f"{message} (at byte offset {offset})"
        super().__init__(message)


class VerificationError(ReproError):
    """A proof whose *structure* is too broken to even evaluate.

    Ordinary invalid proofs are rejected by returning ``False``; this
    error marks inputs that could not have been produced by an honest
    prover at all (wrong container types, impossible shapes).
    """


class TranscriptError(ReproError, ValueError):
    """Invalid data fed to the Fiat-Shamir transcript.

    A backstop: verifier paths validate before absorbing, so reaching
    this from wire input indicates a missing check upstream.
    """


class ConfigError(ReproError, ValueError):
    """An impossible or inconsistent configuration (simulator design
    points, ISA programs, protocol parameter presets)."""
