"""Unified tracing & metrics for the functional prover and the simulator.

Zero-dependency observability layer (ISSUE 3): nested wall/CPU-time spans
labeled with the paper's task families, a process-wide counter/gauge
registry, and exporters to Chrome trace-event JSON (Perfetto-loadable)
plus the machine-readable ``BENCH_phases.json`` breakdown.

Instrumented code uses the module-level helpers::

    from repro import obs

    with obs.span("pcs.commit", "rs_encode", n=len(table)):
        ...

and stays on a no-op fast path (a shared null span, a disabled metrics
registry) until a trace is started::

    with obs.tracing() as tracer:
        snark.prove()
    print(tracer.format_tree())

See ``docs/OBSERVABILITY.md`` for the span taxonomy and counter list.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .metrics import (  # noqa: F401
    DEFAULT_LATENCY_BOUNDS,
    METRICS,
    Histogram,
    MetricsRegistry,
    peak_rss_bytes,
)
from .events import FLIGHT, FlightEvent, FlightRecorder, JobReport  # noqa: F401
from .tracer import (  # noqa: F401
    FAMILIES,
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
)
from . import events  # noqa: F401
from . import export  # noqa: F401
from . import openmetrics  # noqa: F401

#: The active tracer: module state, single-threaded like the prover.
_active = NULL_TRACER


def span(name: str, family: str = "other", **attrs):
    """Open a span on the active tracer (no-op when tracing is off)."""
    return _active.span(name, family, **attrs)


def get_tracer() -> Optional[Tracer]:
    """The active :class:`Tracer`, or None when tracing is disabled."""
    return _active if isinstance(_active, Tracer) else None


def set_tracer(tracer) -> None:
    """Install ``tracer`` (or None to disable) as the active tracer."""
    global _active
    _active = tracer if tracer is not None else NULL_TRACER


def start_trace(metrics: bool = True) -> Tracer:
    """Begin recording: install a fresh Tracer, optionally enabling and
    resetting the metrics registry."""
    if metrics:
        METRICS.reset()
        METRICS.enabled = True
    tracer = Tracer(METRICS)
    set_tracer(tracer)
    return tracer


def stop_trace() -> Optional[Tracer]:
    """Finish the active trace (snapshot metrics, restore the no-op path)."""
    tracer = get_tracer()
    if tracer is not None:
        tracer.finish()
    METRICS.enabled = False
    set_tracer(None)
    return tracer


@contextmanager
def tracing(metrics: bool = True):
    """``with obs.tracing() as tracer:`` — scoped start/stop."""
    tracer = start_trace(metrics=metrics)
    try:
        yield tracer
    finally:
        stop_trace()


def observe(name: str, value, **labels) -> None:
    """Record one histogram observation (no-op when metrics disabled)."""
    METRICS.observe(name, value, **labels)


__all__ = [
    "DEFAULT_LATENCY_BOUNDS", "FAMILIES", "FLIGHT", "FlightEvent",
    "FlightRecorder", "Histogram", "JobReport", "METRICS",
    "MetricsRegistry", "NullTracer", "NULL_TRACER", "SpanRecord", "Tracer",
    "events", "export", "get_tracer", "observe", "openmetrics",
    "peak_rss_bytes", "set_tracer", "span", "start_trace", "stop_trace",
    "tracing",
]
