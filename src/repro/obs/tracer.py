"""Nested-span tracer for the functional prover.

A :class:`Tracer` records a tree of named spans — wall time, CPU time,
and the counter deltas accrued while each span was open — mirroring the
paper's task-family taxonomy (Fig. 6): every span carries a ``family``
from :data:`FAMILIES`, the same labels the NoCap simulator reports, so a
measured functional profile and a simulated profile can be compared
family by family.

The module-level :func:`span` helper routes through the *active* tracer.
By default that is a null tracer whose span object is a shared singleton
with empty ``__enter__``/``__exit__`` — the disabled cost of an
instrumented ``with span(...)`` site is one function call plus two empty
method calls, far below the vectorized kernels it wraps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .metrics import METRICS, MetricsRegistry, peak_rss_bytes

#: The paper's task-family taxonomy (Fig. 6).  This is the canonical
#: definition; :mod:`repro.nocap.simulator` imports it, and every span and
#: simulated task is labeled with one of these strings.
FAMILIES = ("sumcheck", "polyarith", "rs_encode", "merkle", "spmv", "other")


@dataclass
class SpanRecord:
    """One completed (or still-open) span.

    ``wall_s``/``cpu_s`` are inclusive of children; exclusive ("self")
    attribution is computed on demand by :meth:`Tracer.family_seconds`.
    ``counters`` holds the deltas of every metric counter that changed
    while the span was open (also inclusive).
    """

    name: str
    family: str
    depth: int
    parent: Optional[int]
    start_s: float
    wall_s: Optional[float] = None
    cpu_s: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, Any] = field(default_factory=dict)


class _Span:
    """Context manager recording one span; exception-safe by construction."""

    __slots__ = ("_tracer", "_index", "_t0", "_cpu0", "_counters0")

    def __init__(self, tracer: "Tracer", index: int):
        self._tracer = tracer
        self._index = index

    def __enter__(self) -> "_Span":
        tr = self._tracer
        tr._stack.append(self._index)
        metrics = tr.metrics
        self._counters0 = dict(metrics._counters) if metrics.enabled else None
        self._cpu0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        cpu1 = time.process_time()
        tr = self._tracer
        rec = tr._records[self._index]
        rec.wall_s = t1 - self._t0
        rec.cpu_s = cpu1 - self._cpu0
        if self._counters0 is not None:
            before = self._counters0
            rec.counters = {
                k: v - before.get(k, 0)
                for k, v in tr.metrics._counters.items()
                if v != before.get(k, 0)
            }
        if exc_type is not None:
            rec.attrs["error"] = exc_type.__name__
        # Unwind even if inner spans leaked (shouldn't happen: _Span exits
        # run LIFO), so one bad actor cannot corrupt the whole trace.
        while tr._stack and tr._stack[-1] != self._index:
            tr._stack.pop()
        if tr._stack:
            tr._stack.pop()
        return False


class _NullSpan:
    """Shared do-nothing span: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in whose spans cost two empty method calls."""

    enabled = False

    def span(self, name: str, family: str = "other", **attrs) -> _NullSpan:
        return _NULL_SPAN


NULL_TRACER = NullTracer()


class Tracer:
    """Records a tree of spans relative to its own start instant."""

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else METRICS
        self._records: List[SpanRecord] = []
        self._stack: List[int] = []
        self._t0 = time.perf_counter()
        self._worker_records: Dict[int, List[SpanRecord]] = {}
        self.metrics_snapshot: Dict[str, Dict[str, Any]] = {}

    @property
    def start_abs(self) -> float:
        """Absolute ``perf_counter`` instant this tracer started at.

        On Linux ``perf_counter`` is CLOCK_MONOTONIC — one epoch for all
        processes — so worker-tracer records can be aligned onto this
        tracer's timeline by shifting with the difference of start
        instants (see :meth:`absorb_worker`).
        """
        return self._t0

    def span(self, name: str, family: str = "other", **attrs) -> _Span:
        """Open a nested span; use as ``with tracer.span("pcs.commit"): ...``."""
        parent = self._stack[-1] if self._stack else None
        rec = SpanRecord(
            name=name,
            family=family if family in FAMILIES else "other",
            depth=len(self._stack),
            parent=parent,
            start_s=time.perf_counter() - self._t0,
            attrs=dict(attrs),
        )
        self._records.append(rec)
        return _Span(self, len(self._records) - 1)

    def finish(self) -> "Tracer":
        """Close out the trace: snapshot metrics and the peak-RSS gauge."""
        self.metrics.gauge("process.peak_rss_bytes", peak_rss_bytes())
        self.metrics_snapshot = self.metrics.snapshot()
        return self

    # -- worker merge ------------------------------------------------------
    def absorb_worker(self, worker_pid: int, records: List[SpanRecord],
                      counters: Optional[Dict[str, Any]] = None,
                      start_abs: Optional[float] = None,
                      histograms: Optional[List[Any]] = None) -> None:
        """Merge one worker-process trace fragment into this tracer.

        ``records`` come from a worker-local :class:`Tracer` (spans
        shipped back by :class:`~repro.parallel.pool.ProverPool`); they
        are kept in a per-worker side table — not the main span tree, to
        avoid double counting the wall time the parent span already
        covers — and rendered as extra pids by the Chrome-trace exporter.
        ``counters`` (the worker's metric deltas) are added to this
        tracer's registry, so kernel counts stay exact at any worker
        count and land in whichever span is currently open.
        ``start_abs`` (the worker tracer's absolute start instant) shifts
        the fragment onto this tracer's timeline.
        ``histograms`` are worker-side histogram snapshots as
        ``(name, labels, data)`` triples (see
        :meth:`~repro.obs.metrics.Histogram.to_dict`); they merge
        bucket-wise into this tracer's registry, same enabled gate as
        the counter deltas.
        """
        offset = (start_abs - self._t0) if start_abs is not None else 0.0
        shifted = []
        for rec in records:
            rec.start_s += offset
            shifted.append(rec)
        self._worker_records.setdefault(int(worker_pid), []).extend(shifted)
        for name, delta in (counters or {}).items():
            self.metrics.inc(name, delta)
        for name, labels, data in (histograms or []):
            self.metrics.merge_histogram(
                name, tuple((str(k), str(v)) for k, v in labels), data)

    def worker_records(self) -> Dict[int, List[SpanRecord]]:
        """Span fragments merged from worker processes, keyed by OS pid."""
        return {pid: list(recs)
                for pid, recs in self._worker_records.items()}

    # -- aggregation -------------------------------------------------------
    def records(self) -> List[SpanRecord]:
        return list(self._records)

    def record_index(self) -> int:
        """Number of records so far.  Snapshot it before a job, then pass
        it as ``start_index`` to :meth:`family_seconds` to aggregate only
        that job's spans — a whole-trace roll-up would double count when
        several proves share one trace."""
        return len(self._records)

    def _descendant_mask(self, root_name: Optional[str]) -> List[bool]:
        """Which records sit at-or-under a span named ``root_name``
        (all of them when ``root_name`` is None or never appears)."""
        if root_name is None:
            return [True] * len(self._records)
        mask = [False] * len(self._records)
        hit = False
        for i, rec in enumerate(self._records):
            if rec.name == root_name or (
                    rec.parent is not None and mask[rec.parent]):
                mask[i] = True
                hit = True
        return mask if hit else [True] * len(self._records)

    def family_seconds(self, root_name: Optional[str] = None,
                       start_index: int = 0) -> Dict[str, float]:
        """Exclusive ("self") wall seconds per family.

        Each span's own time is its wall time minus its children's, so
        families never double count nested work.  ``root_name`` restricts
        the roll-up to one subtree (e.g. ``"snark.prove"``);
        ``start_index`` (see :meth:`record_index`) restricts it to spans
        opened at or after that record index.
        """
        mask = self._descendant_mask(root_name)
        if start_index > 0:
            mask = [m and i >= start_index for i, m in enumerate(mask)]
        child_wall = [0.0] * len(self._records)
        for rec in self._records:
            if rec.parent is not None and rec.wall_s is not None:
                child_wall[rec.parent] += rec.wall_s
        out: Dict[str, float] = {}
        for i, rec in enumerate(self._records):
            if not mask[i] or rec.wall_s is None:
                continue
            self_s = max(0.0, rec.wall_s - child_wall[i])
            out[rec.family] = out.get(rec.family, 0.0) + self_s
        return out

    def total_seconds(self, root_name: Optional[str] = None) -> float:
        """Wall seconds covered by the (filtered) root spans."""
        mask = self._descendant_mask(root_name)
        total = 0.0
        for i, rec in enumerate(self._records):
            if not mask[i] or rec.wall_s is None:
                continue
            if rec.parent is None or not mask[rec.parent]:
                total += rec.wall_s
        return total

    def format_tree(self, max_depth: int = 6) -> str:
        """Human-readable phase tree (one line per span)."""
        lines = []
        for rec in self._records:
            if rec.depth > max_depth:
                continue
            wall = f"{rec.wall_s * 1e3:9.2f} ms" if rec.wall_s is not None                 else "   (open)  "
            attrs = "".join(
                f" {k}={v}" for k, v in rec.attrs.items() if k != "error")
            err = "  [error]" if "error" in rec.attrs else ""
            lines.append(f"{wall}  {'  ' * rec.depth}{rec.name}"
                         f" [{rec.family}]{attrs}{err}")
        return "\n".join(lines)
