"""Flight recorder: a bounded ring buffer of structured prover events.

Where the tracer answers "where did *this* run's time go", the flight
recorder answers "what has this *process* been doing" — the last N
proving jobs and every supervision incident (worker restart, dispatch
stall, degradation to serial, retry, spent deadline) in one bounded,
always-on log.  It is the service-grade complement to per-run tracing:
a long-running prover keeps the recorder warm across thousands of jobs
at O(1) memory, and a post-mortem reads the tail instead of re-running.

Two record shapes share the ring:

* :class:`FlightEvent` — one incident: ``kind`` (see
  :data:`EVENT_KINDS`), a monotonic sequence number, a wall-clock
  timestamp, and a small ``data`` dict.
* :class:`JobReport` — one completed (or failed) prove/verify job,
  recorded as a ``kind="job"`` event whose ``data`` is the report: job
  id, operation, preset, circuit id, worker count, dispatch mode,
  duration, proof size, peak-RSS delta, outcome, and the *per-job
  deltas* of supervision incidents (computed from the event sequence
  numbers spanning the job — never from absolute counter values, so a
  second batch in the same process starts its report at zero).

The recorder is cheap enough to leave on — one small object append per
*job* or *incident*, nothing per kernel call — but it honors a
``disabled`` switch so the bench harness can assert the fully-disabled
configuration too.  Set ``REPRO_FLIGHT_LOG=PATH`` (or
:meth:`FlightRecorder.spool_to`) to append each record as a JSON line,
giving ``repro report`` a cross-process view; the in-memory ring is
otherwise private to the process.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Environment variable naming the JSONL spool file (optional).
FLIGHT_LOG_ENV = "REPRO_FLIGHT_LOG"

#: Default ring capacity (events + job reports combined).
DEFAULT_CAPACITY = 512

#: Every kind the recorder emits.  ``job`` wraps a :class:`JobReport`;
#: the rest are supervision incidents from :mod:`repro.parallel`.
EVENT_KINDS = (
    "job",              # one completed/failed prove or verify job
    "worker_restart",   # supervisor rebuilt a broken/hung executor
    "dispatch_stall",   # watchdog fired: nothing completed in the window
    "task_error",       # an in-task exception surfaced from a worker
    "retry",            # failed chunks resubmitted after a fault
    "degradation",      # kernel fell back to the in-process serial path
    "timeout",          # a cooperative deadline expired
    "janitor",          # orphaned shm segments reclaimed
)

#: Incident kinds summed into JobReport per-job fault deltas.
_FAULT_KINDS = ("worker_restart", "dispatch_stall", "task_error", "retry",
                "degradation", "timeout")


@dataclass
class FlightEvent:
    """One ring-buffer record."""

    kind: str
    seq: int
    ts: float                      # wall clock (time.time)
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "seq": self.seq, "ts": self.ts,
                "data": dict(self.data)}


@dataclass
class JobReport:
    """Structured telemetry for one proving (or verification) job.

    ``events`` holds the per-job *deltas* of supervision incidents — how
    many worker restarts, stalls, degradations, retries, and timeouts
    fired while this job ran — computed by diffing recorder sequence
    numbers, so reports never inherit a previous batch's incidents.
    """

    job_id: str
    op: str                         # "prove" | "prove_many" | "verify"
    preset: str = ""
    circuit_id: str = ""
    workers: int = 1
    dispatch: str = "serial"        # "serial" | "shm" | "pickle"
    jobs: int = 1                   # batch size (1 for single prove)
    duration_s: float = 0.0
    proof_size_bytes: int = 0
    peak_rss_delta_bytes: int = 0
    ok: bool = True
    error: str = ""
    events: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id, "op": self.op, "preset": self.preset,
            "circuit_id": self.circuit_id, "workers": self.workers,
            "dispatch": self.dispatch, "jobs": self.jobs,
            "duration_s": round(self.duration_s, 6),
            "proof_size_bytes": self.proof_size_bytes,
            "peak_rss_delta_bytes": self.peak_rss_delta_bytes,
            "ok": self.ok, "error": self.error,
            "events": dict(self.events),
        }


class FlightRecorder:
    """Bounded, append-only event ring with an optional JSONL spool."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 spool_path: Optional[str] = None):
        self.enabled = True
        self._ring: "deque[FlightEvent]" = deque(maxlen=max(1, capacity))
        self._seq = 0
        self._job_counter = 0
        self.spool_path = spool_path

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    @property
    def seq(self) -> int:
        """Sequence number of the next event (monotonic, never reused)."""
        return self._seq

    def spool_to(self, path: Optional[str]) -> None:
        """Start (or with None, stop) appending records to a JSONL file."""
        self.spool_path = path

    def next_job_id(self) -> str:
        """A process-unique job id: ``<pid>-<n>``."""
        self._job_counter += 1
        return f"{os.getpid()}-{self._job_counter}"

    # -- write side --------------------------------------------------------
    def record(self, kind: str, **data: Any) -> Optional[FlightEvent]:
        """Append one incident (no-op while disabled)."""
        if not self.enabled:
            return None
        event = FlightEvent(kind=kind, seq=self._seq, ts=time.time(),
                            data=data)
        self._seq += 1
        self._ring.append(event)
        self._spool(event)
        return event

    def record_job(self, report: JobReport) -> Optional[FlightEvent]:
        """Append one :class:`JobReport` as a ``kind="job"`` event."""
        if not self.enabled:
            return None
        return self.record("job", **report.to_dict())

    def _spool(self, event: FlightEvent) -> None:
        path = self.spool_path
        if path is None:
            return
        try:
            with open(path, "a") as fh:
                fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        except OSError:
            # A broken spool must never take the prover down; the
            # in-memory ring still has the record.
            pass

    # -- read side ---------------------------------------------------------
    def events(self) -> List[FlightEvent]:
        return list(self._ring)

    def last(self, n: int) -> List[FlightEvent]:
        """The most recent ``n`` events, oldest first."""
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def since(self, seq: int) -> List[FlightEvent]:
        """Events recorded at or after sequence number ``seq``.

        The per-job delta primitive: snapshot :attr:`seq` when a job
        starts, then count what arrived while it ran.  Correct even for
        back-to-back batches in one process — unlike reading absolute
        counter values, which accumulate for the process lifetime.
        """
        return [e for e in self._ring if e.seq >= seq]

    def fault_deltas(self, seq: int) -> Dict[str, int]:
        """Count supervision incidents recorded at or after ``seq``."""
        deltas: Dict[str, int] = {}
        for event in self.since(seq):
            if event.kind in _FAULT_KINDS:
                deltas[event.kind] = deltas.get(event.kind, 0) + 1
        return deltas

    def job_reports(self, n: Optional[int] = None) -> List[JobReport]:
        """The last ``n`` job reports (all when ``n`` is None)."""
        reports = [JobReport(**{k: v for k, v in e.data.items()})
                   for e in self._ring if e.kind == "job"]
        return reports if n is None else reports[-n:]

    def clear(self) -> None:
        self._ring.clear()


def read_spool(path: str, last: Optional[int] = None) -> List[dict]:
    """Parse a JSONL spool file back into event dicts (oldest first).

    Malformed lines (a crash mid-append) are skipped, not fatal.
    """
    events: List[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue
            if isinstance(obj, dict) and "kind" in obj:
                events.append(obj)
    return events if last is None else events[-last:]


def format_events(events: Iterable[dict]) -> str:
    """Human-readable one-line-per-event rendering for ``repro report``."""
    lines = []
    for ev in events:
        ts = time.strftime("%H:%M:%S", time.localtime(ev.get("ts", 0)))
        data = ev.get("data", {})
        if ev.get("kind") == "job":
            faults = data.get("events") or {}
            fault_str = ("" if not faults else " faults=" + ",".join(
                f"{k}:{v}" for k, v in sorted(faults.items())))
            status = "ok" if data.get("ok") else f"FAIL({data.get('error')})"
            lines.append(
                f"{ts} job {data.get('job_id', '?'):<12} "
                f"{data.get('op', '?'):<10} {data.get('circuit_id') or '-':<10}"
                f" preset={data.get('preset') or '-':<10}"
                f" workers={data.get('workers', 1)}"
                f" dispatch={data.get('dispatch', '?'):<6}"
                f" {data.get('duration_s', 0.0):8.3f}s"
                f" proof={data.get('proof_size_bytes', 0):>8}B"
                f" rss+={data.get('peak_rss_delta_bytes', 0):>10}B"
                f" {status}{fault_str}")
        else:
            extras = " ".join(f"{k}={v}" for k, v in sorted(data.items()))
            lines.append(f"{ts} {ev.get('kind', '?'):<16} {extras}")
    return "\n".join(lines)


#: The process-wide flight recorder (module state, like METRICS).
FLIGHT = FlightRecorder(spool_path=os.environ.get(FLIGHT_LOG_ENV) or None)
