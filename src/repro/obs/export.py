"""Exporters: Chrome trace-event JSON and the ``BENCH_phases.json`` schema.

Two render targets from one instrumentation layer:

* :func:`chrome_trace` — a ``chrome://tracing`` / Perfetto-loadable JSON
  object holding the *measured* functional-prover span tree (pid 1) and
  the *modeled* NoCap task timeline (pid 2), one track per task family,
  so model-vs-reality drift is visible on a single timeline.
* :func:`phases_payload` — the machine-readable per-phase breakdown
  (``BENCH_phases.json``): family-labeled seconds/fractions on both
  sides, counters, gauges, and the raw span list.

Both formats ship with lightweight validators (:func:`validate_chrome_trace`,
:func:`validate_phases`) used by the tests and the CI trace step — no
external jsonschema dependency.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from .tracer import FAMILIES, SpanRecord, Tracer

#: Version of the ``BENCH_phases.json`` schema.
PHASES_SCHEMA = "repro/bench-phases"
PHASES_SCHEMA_VERSION = 1

#: pid labels in the combined Chrome trace.
FUNCTIONAL_PID = 1
SIMULATED_PID = 2
#: Worker-process span fragments get pids from this base upward, one per
#: worker (see :meth:`repro.obs.tracer.Tracer.absorb_worker`).
WORKER_PID_BASE = 100


# -- Chrome trace events -----------------------------------------------------

def _process_name(pid: int, name: str) -> dict:
    return {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name}}


def _thread_name(pid: int, tid: int, name: str) -> dict:
    return {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name}}


def spans_to_trace_events(records: Iterable[SpanRecord],
                          pid: int = FUNCTIONAL_PID,
                          tid: int = 1,
                          process_label: str = "repro functional prover",
                          thread_label: str = "functional prover (measured)",
                          ) -> List[dict]:
    """Render a span tree as Chrome "X" (complete) events, one per span."""
    events = [_thread_name(pid, tid, thread_label),
              _process_name(pid, process_label)]
    for rec in records:
        if rec.wall_s is None:
            continue  # span never closed (crash mid-trace): skip
        args: Dict[str, Any] = {"depth": rec.depth}
        args.update(rec.attrs)
        if rec.counters:
            args["counters"] = dict(rec.counters)
        if rec.cpu_s is not None:
            args["cpu_ms"] = round(rec.cpu_s * 1e3, 6)
        events.append({
            "name": rec.name,
            "cat": rec.family,
            "ph": "X",
            "ts": round(rec.start_s * 1e6, 3),
            "dur": round(rec.wall_s * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return events


def report_to_trace_events(report, pid: int = SIMULATED_PID) -> List[dict]:
    """Render a :class:`~repro.nocap.simulator.SimulationReport` as serial
    task slices, one Perfetto track per family (stable `FAMILIES` order)."""
    events = [_process_name(pid, "NoCap simulator (modeled)")]
    tids = {fam: i + 1 for i, fam in enumerate(FAMILIES)}
    for fam, tid in tids.items():
        events.append(_thread_name(pid, tid, f"family: {fam}"))
    clock = 0.0
    for task in report.task_times:
        name, family, seconds = tuple(task)
        args: Dict[str, Any] = {"family": family}
        bytes_moved = getattr(task, "mem_bytes", None)
        bound = getattr(task, "bound", None)
        if bytes_moved is not None:
            args["mem_bytes"] = bytes_moved
        if bound is not None:
            args["bound"] = bound
        events.append({
            "name": name,
            "cat": family,
            "ph": "X",
            "ts": round(clock * 1e6, 3),
            "dur": round(seconds * 1e6, 3),
            "pid": pid,
            "tid": tids.get(family, len(FAMILIES) + 1),
            "args": args,
        })
        clock += seconds
    return events


def chrome_trace(records: Optional[Iterable[SpanRecord]] = None,
                 report=None,
                 metadata: Optional[dict] = None,
                 worker_records: Optional[Dict[int, List[SpanRecord]]] = None,
                 ) -> dict:
    """Assemble the combined Chrome trace object (JSON Object Format).

    ``worker_records`` maps worker OS pids to the span fragments merged
    back by :meth:`~repro.obs.tracer.Tracer.absorb_worker`; each worker
    renders as its own process (pid ``WORKER_PID_BASE + k``) alongside
    the main prover timeline.
    """
    events: List[dict] = []
    if records is not None:
        events += spans_to_trace_events(records)
    for k, (os_pid, recs) in enumerate(sorted((worker_records or {}).items())):
        events += spans_to_trace_events(
            recs, pid=WORKER_PID_BASE + k, tid=1,
            process_label=f"repro prover worker (os pid {os_pid})",
            thread_label=f"pool worker {k}")
    if report is not None:
        events += report_to_trace_events(report)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def write_chrome_trace(path, records=None, report=None, metadata=None,
                       worker_records=None) -> dict:
    """Write :func:`chrome_trace` output to ``path``; returns the object."""
    obj = chrome_trace(records=records, report=report, metadata=metadata,
                       worker_records=worker_records)
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=1)
        fh.write("\n")
    return obj


def validate_chrome_trace(obj) -> List[str]:
    """Validate the trace-event JSON shape; returns a list of problems
    (empty means valid).  Covers what Perfetto actually requires: the
    ``traceEvents`` array and, per event, name/ph/ts/pid/tid types plus a
    non-negative ``dur`` for complete ("X") events."""
    errs: List[str] = []
    if not isinstance(obj, dict):
        return ["trace must be a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        errs.append("traceEvents is empty")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errs.append(f"{where}: not an object")
            continue
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            errs.append(f"{where}: missing name")
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "M", "C", "I"):
            errs.append(f"{where}: bad ph {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errs.append(f"{where}: {key} must be an int")
        if ph == "M":
            continue  # metadata events carry no timestamp requirements
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errs.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errs.append(f"{where}: dur must be a non-negative number")
    return errs


# -- BENCH_phases.json -------------------------------------------------------

def _full_family_map(partial: Dict[str, float]) -> Dict[str, float]:
    """Every family present, stable order, extras folded into 'other'."""
    out = {fam: float(partial.get(fam, 0.0)) for fam in FAMILIES}
    for key, val in partial.items():
        if key not in out:
            out["other"] += float(val)
    return out


def _fractions(seconds: Dict[str, float]) -> Dict[str, float]:
    total = sum(seconds.values()) or 1.0
    return {fam: s / total for fam, s in seconds.items()}


def phases_payload(tracer: Optional[Tracer] = None,
                   report=None,
                   workload: Optional[str] = None,
                   root_span: str = "snark.prove") -> dict:
    """Build the machine-readable per-phase breakdown.

    ``functional`` aggregates the tracer's spans under ``root_span`` (the
    prover subtree, so verify time does not pollute the profile);
    ``simulated`` summarizes a :class:`SimulationReport`.  Either side may
    be absent (``None``).
    """
    payload: Dict[str, Any] = {
        "schema": PHASES_SCHEMA,
        "schema_version": PHASES_SCHEMA_VERSION,
        "workload": workload,
        "families": list(FAMILIES),
    }
    if tracer is not None:
        fam_s = _full_family_map(tracer.family_seconds(root_span))
        snapshot = tracer.metrics_snapshot or tracer.metrics.snapshot()
        payload["functional"] = {
            "total_s": tracer.total_seconds(root_span),
            "seconds_by_family": fam_s,
            "fractions_by_family": _fractions(fam_s),
            "counters": snapshot.get("counters", {}),
            "gauges": snapshot.get("gauges", {}),
            "spans": [
                {
                    "name": r.name,
                    "family": r.family,
                    "depth": r.depth,
                    "parent": r.parent,
                    "start_s": r.start_s,
                    "wall_s": r.wall_s,
                    "cpu_s": r.cpu_s,
                    "attrs": dict(r.attrs),
                    "counters": dict(r.counters),
                }
                for r in tracer.records() if r.wall_s is not None
            ],
        }
    if report is not None:
        time_by_family = _full_family_map(report.time_by_family)
        traffic = _full_family_map(report.traffic_by_family)
        payload["simulated"] = {
            "padded_constraints": report.padded_constraints,
            "total_s": report.total_seconds,
            "seconds_by_family": time_by_family,
            "fractions_by_family": _fractions(time_by_family),
            "traffic_bytes_by_family": traffic,
            "traffic_fractions_by_family": _fractions(traffic),
            "compute_utilization": report.compute_utilization(),
            "memory_utilization": report.memory_utilization(),
        }
    return payload


def write_phases(path, **kwargs) -> dict:
    obj = phases_payload(**kwargs)
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=2)
        fh.write("\n")
    return obj


def validate_phases(obj) -> List[str]:
    """Validate a ``BENCH_phases.json`` payload; empty list means valid."""
    errs: List[str] = []
    if not isinstance(obj, dict):
        return ["phases payload must be a JSON object"]
    if obj.get("schema") != PHASES_SCHEMA:
        errs.append(f"schema must be {PHASES_SCHEMA!r}")
    if obj.get("schema_version") != PHASES_SCHEMA_VERSION:
        errs.append(f"schema_version must be {PHASES_SCHEMA_VERSION}")
    if obj.get("families") != list(FAMILIES):
        errs.append("families must list the canonical family taxonomy")
    if "functional" not in obj and "simulated" not in obj:
        errs.append("need at least one of functional/simulated sections")
    for section in ("functional", "simulated"):
        sec = obj.get(section)
        if sec is None:
            continue
        if not isinstance(sec, dict):
            errs.append(f"{section} must be an object")
            continue
        total = sec.get("total_s")
        if not isinstance(total, (int, float)) or total < 0:
            errs.append(f"{section}.total_s must be a non-negative number")
        for key in ("seconds_by_family", "fractions_by_family"):
            m = sec.get(key)
            if not isinstance(m, dict):
                errs.append(f"{section}.{key} must be an object")
                continue
            if set(m) != set(FAMILIES):
                errs.append(f"{section}.{key} keys must match FAMILIES")
            if not all(isinstance(v, (int, float)) and v >= 0
                       for v in m.values()):
                errs.append(f"{section}.{key} values must be non-negative")
        fracs = sec.get("fractions_by_family")
        if isinstance(fracs, dict) and fracs and all(
                isinstance(v, (int, float)) for v in fracs.values()):
            total_frac = sum(fracs.values())
            if total_frac and abs(total_frac - 1.0) > 1e-6:
                errs.append(f"{section}.fractions_by_family must sum to 1")
    func = obj.get("functional")
    if isinstance(func, dict):
        spans = func.get("spans")
        if not isinstance(spans, list):
            errs.append("functional.spans must be a list")
        else:
            for i, s in enumerate(spans):
                if not isinstance(s, dict) or not isinstance(
                        s.get("name"), str):
                    errs.append(f"functional.spans[{i}] malformed")
                    break
                if s.get("family") not in FAMILIES:
                    errs.append(
                        f"functional.spans[{i}] family not in FAMILIES")
                    break
    return errs
