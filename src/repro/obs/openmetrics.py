"""OpenMetrics / Prometheus text exposition for the metrics registry.

Zero-dependency renderer from a :class:`~repro.obs.metrics.MetricsRegistry`
snapshot to the OpenMetrics text format (the subset Prometheus scrapes):

* counters  -> ``# TYPE name counter`` + ``name_total <v>``
* gauges    -> ``# TYPE name gauge``   + ``name <v>``
* histograms-> ``# TYPE name histogram`` + cumulative ``name_bucket``
  series with ``le`` labels, then ``name_count`` / ``name_sum``
* terminated by ``# EOF``

Metric names are sanitized (dots become underscores, invalid leading
characters prefixed) and histogram label sets pass through, so
``phase_seconds{family="merkle"}`` renders as a labeled series family.

The module also ships :func:`parse` — a **strict** parser used by the
tests and CI to validate every emitted exposition round-trip: it rejects
unknown line shapes, samples without a preceding ``# TYPE``, duplicate
series, non-cumulative or ``+Inf``-less histograms, ``_count``/``_sum``
mismatches, and a missing ``# EOF`` terminator.  Rendering and parsing
share no state, so a bug in one cannot hide in the other.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from .metrics import METRICS, Histogram, MetricsRegistry

#: OpenMetrics metric-name grammar (we generate and accept this subset).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(?:\s+(\S+))?$")


def sanitize_name(name: str) -> str:
    """Make an arbitrary registry name a legal OpenMetrics metric name."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = "_" + out
    return out


def _fmt(value) -> str:
    """Canonical sample-value rendering (ints stay ints; +Inf spelled
    the OpenMetrics way)."""
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n")


def _label_str(labels: Tuple[Tuple[str, str], ...],
               extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels) + ([extra] if extra is not None else [])
    if not pairs:
        return ""
    return "{" + ",".join(f'{sanitize_name(k)}="{_escape(str(v))}"'
                          for k, v in pairs) + "}"


def render(registry: Optional[MetricsRegistry] = None,
           prefix: str = "repro_") -> str:
    """Render a registry (default: the process-wide ``METRICS``) as
    OpenMetrics text.  Deterministic: series are sorted by name."""
    registry = registry if registry is not None else METRICS
    lines: List[str] = []

    for name, value in sorted(registry.counters().items()):
        metric = prefix + sanitize_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_fmt(value)}")

    for name, value in sorted(registry.gauges().items()):
        metric = prefix + sanitize_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")

    # Histograms sharing a base name (labeled series) share one TYPE line.
    by_name: Dict[str, List[Tuple[Tuple[Tuple[str, str], ...], Histogram]]]
    by_name = {}
    for (name, labels), hist in registry.histograms().items():
        by_name.setdefault(prefix + sanitize_name(name), []).append(
            (labels, hist))
    for metric in sorted(by_name):
        lines.append(f"# TYPE {metric} histogram")
        for labels, hist in sorted(by_name[metric], key=lambda lh: lh[0]):
            for le, cum in hist.cumulative():
                lines.append(
                    f"{metric}_bucket"
                    f"{_label_str(labels, ('le', _fmt(float(le))))} {cum}")
            lines.append(f"{metric}_count{_label_str(labels)} {hist.count}")
            lines.append(
                f"{metric}_sum{_label_str(labels)} {_fmt(hist.sum)}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path, registry: Optional[MetricsRegistry] = None,
                      prefix: str = "repro_") -> str:
    """Render and write to ``path``; returns the text."""
    text = render(registry, prefix=prefix)
    with open(path, "w") as fh:
        fh.write(text)
    return text


# ---------------------------------------------------------------------------
# Strict parser (test/CI-side validation)
# ---------------------------------------------------------------------------

def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)  # raises ValueError on garbage


def _parse_labels(raw: Optional[str]) -> Tuple[Tuple[str, str], ...]:
    if not raw:
        return ()
    body = raw[1:-1]
    if not body:
        return ()
    labels = tuple((k, v) for k, v in _LABEL_RE.findall(body))
    # Re-rendering must reproduce the input exactly — otherwise the label
    # body contained something the grammar does not allow.
    rendered = ",".join(f'{k}="{v}"' for k, v in labels)
    if rendered != body:
        raise ValueError(f"malformed label set {raw!r}")
    return labels


def parse(text: str) -> Dict[str, dict]:
    """Strictly parse OpenMetrics text; returns ``{metric: family}``.

    Each family is ``{"type": ..., "samples": {series_key: value}}``
    where ``series_key`` is ``(sample_name, labels)``.  Raises
    :class:`ValueError` on any violation (see module docstring for the
    list).  Histogram families are additionally checked for cumulative
    buckets, a ``+Inf`` bucket equal to ``_count``, and sample
    completeness.
    """
    families: Dict[str, dict] = {}
    declared: Dict[str, str] = {}
    seen_series = set()
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    else:
        raise ValueError("exposition must end with a newline")
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must terminate with '# EOF'")
    for lineno, line in enumerate(lines[:-1], 1):
        if not line:
            raise ValueError(f"line {lineno}: blank lines are not allowed")
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            _, _, metric, mtype = parts
            if not _NAME_RE.match(metric):
                raise ValueError(f"line {lineno}: bad metric name "
                                 f"{metric!r}")
            if mtype not in ("counter", "gauge", "histogram"):
                raise ValueError(f"line {lineno}: unknown type {mtype!r}")
            if metric in declared:
                raise ValueError(f"line {lineno}: duplicate TYPE for "
                                 f"{metric}")
            declared[metric] = mtype
            families[metric] = {"type": mtype, "samples": {}}
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment line {line!r}")
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        sample_name, labels_raw, value_raw, _ts = m.groups()
        labels = _parse_labels(labels_raw)
        value = _parse_value(value_raw)
        metric = _metric_for_sample(sample_name, declared)
        if metric is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no preceding "
                "# TYPE declaration")
        series = (sample_name, labels)
        if series in seen_series:
            raise ValueError(f"line {lineno}: duplicate series {series!r}")
        seen_series.add(series)
        families[metric]["samples"][series] = value
    for metric, family in families.items():
        if family["type"] == "histogram":
            _check_histogram(metric, family["samples"])
        elif family["type"] == "counter":
            _check_counter(metric, family["samples"])
    return families


def _metric_for_sample(sample_name: str,
                       declared: Dict[str, str]) -> Optional[str]:
    """Resolve a sample line back to its declared metric family."""
    if sample_name in declared and declared[sample_name] == "gauge":
        return sample_name
    for suffix, types in (("_total", ("counter",)),
                          ("_bucket", ("histogram",)),
                          ("_count", ("histogram",)),
                          ("_sum", ("histogram",))):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in declared and declared[base] in types:
                return base
    return None


def _check_counter(metric: str, samples: dict) -> None:
    for (_, _labels), value in samples.items():
        if value < 0:
            raise ValueError(f"{metric}: counter value {value} is negative")


def _check_histogram(metric: str, samples: dict) -> None:
    """Per label-set: buckets cumulative, +Inf present and == _count."""
    series: Dict[Tuple[Tuple[str, str], ...], dict] = {}
    for (sample_name, labels), value in samples.items():
        if sample_name == f"{metric}_bucket":
            le_pairs = [v for k, v in labels if k == "le"]
            if len(le_pairs) != 1:
                raise ValueError(
                    f"{metric}: bucket series needs exactly one 'le' label")
            rest = tuple(p for p in labels if p[0] != "le")
            entry = series.setdefault(rest, {"buckets": [], "count": None,
                                             "sum": None})
            entry["buckets"].append((_parse_value(le_pairs[0]), value))
        elif sample_name == f"{metric}_count":
            series.setdefault(labels, {"buckets": [], "count": None,
                                       "sum": None})["count"] = value
        elif sample_name == f"{metric}_sum":
            series.setdefault(labels, {"buckets": [], "count": None,
                                       "sum": None})["sum"] = value
    if not series:
        raise ValueError(f"{metric}: histogram family has no samples")
    for labels, entry in series.items():
        buckets, count, total = (entry["buckets"], entry["count"],
                                 entry["sum"])
        if count is None or total is None:
            raise ValueError(
                f"{metric}{dict(labels)}: missing _count or _sum")
        if not buckets:
            raise ValueError(f"{metric}{dict(labels)}: no _bucket samples")
        les = [le for le, _ in buckets]
        if les != sorted(les):
            raise ValueError(
                f"{metric}{dict(labels)}: bucket le values not sorted")
        cums = [c for _, c in buckets]
        if any(b > a for b, a in zip(cums, cums[1:])):
            # cums must be non-decreasing (cumulative counts)
            pass
        if cums != sorted(cums):
            raise ValueError(
                f"{metric}{dict(labels)}: bucket counts not cumulative")
        if not math.isinf(les[-1]):
            raise ValueError(f"{metric}{dict(labels)}: missing +Inf bucket")
        if cums[-1] != count:
            raise ValueError(
                f"{metric}{dict(labels)}: +Inf bucket {cums[-1]} != "
                f"_count {count}")
