"""Process-wide Counter/Gauge/Histogram metrics registry.

A single module-level :data:`METRICS` registry collects operation counts
(``field.mul_batches``, ``merkle.hashes``, ``ntt.butterflies``, ...),
point-in-time gauges (``process.peak_rss_bytes``), and — since Metrics v2
— latency **histograms** (``prove_seconds``, ``verify_seconds``,
``dispatch_seconds``, per-family phase seconds).  Instrumented code calls
``METRICS.inc`` / ``METRICS.gauge`` / ``METRICS.observe``
unconditionally; when the registry is disabled (the default) each call
returns after one attribute check, so the hot loops stay within noise of
the uninstrumented code.

Histograms use **fixed log-spaced buckets** shared by every instance
(:data:`DEFAULT_LATENCY_BOUNDS`), which makes them mergeable across
processes: a worker-side histogram ships back as a plain dict
(:meth:`Histogram.to_dict`) and adds bucket-wise into the parent's
(:meth:`Histogram.merge`) with no loss — exactly the contract the
OpenMetrics exposition format (:mod:`repro.obs.openmetrics`) requires of
``_bucket``/``_count``/``_sum`` series.

The registry is plain module state, matching the single-threaded prover:
enable it with :func:`repro.obs.tracing` (which also resets it) or by
setting ``METRICS.enabled`` directly in a ``try/finally``.
"""

from __future__ import annotations

import math
import sys
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple, Union

Number = Union[int, float]

#: Canonical latency bucket upper bounds (seconds): log-spaced at factor
#: 10^(1/4) ≈ 1.78 from 10 µs to 1000 s.  Fixed — never derived from the
#: data — so histograms recorded by different processes (or different
#: runs) always merge and diff bucket by bucket.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = tuple(
    round(10.0 ** (k / 4.0), 12) for k in range(-20, 13))

#: Structured histogram key: (name, sorted (label, value) pairs).
HistKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def labels_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    """Canonical, hashable form of a label set (sorted items)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Histogram:
    """A fixed-bucket distribution with exact count and sum.

    ``bounds`` are strictly increasing upper bucket edges; an implicit
    ``+Inf`` bucket catches overflow, so :attr:`counts` has
    ``len(bounds) + 1`` entries and every observation lands somewhere.
    Bucket membership follows OpenMetrics ``le`` semantics: bucket ``i``
    holds values ``bounds[i-1] < v <= bounds[i]``.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS):
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count: int = 0
        self.sum: float = 0.0

    def observe(self, value: Number) -> None:
        value = float(value)
        if math.isnan(value):
            return  # NaN has no bucket; dropping beats corrupting the sum
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``(+Inf, count)``."""
        out, running = [], 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (0 <= q <= 1).

        Returns the upper edge of the bucket containing the q-th
        observation — an upper bound, like Prometheus's
        ``histogram_quantile`` without interpolation.  0.0 when empty.
        """
        if not self.count:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            if running >= target:
                return bound
        return math.inf

    def merge(self, other: "Histogram") -> None:
        """Add ``other``'s buckets into this histogram (same bounds only)."""
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum

    # -- wire form (worker shipping, JSON snapshots) -----------------------
    def to_dict(self) -> dict:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "sum": self.sum}

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        hist = cls(data["bounds"])
        counts = [int(n) for n in data["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError("histogram counts length does not match bounds")
        if any(n < 0 for n in counts):
            raise ValueError("histogram counts must be non-negative")
        hist.counts = counts
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        return hist


def render_hist_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Human/JSON-readable key: ``name`` or ``name{k="v",...}``."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Named monotonic counters, last-value gauges, and histograms.

    ``inc``/``gauge``/``observe`` are no-ops while ``enabled`` is False —
    that check is the only cost instrumented code pays in normal
    operation.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self.enabled = False
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}
        self._histograms: Dict[HistKey, Histogram] = {}

    # -- write side (hot path) --------------------------------------------
    def inc(self, name: str, amount: Number = 1) -> None:
        """Add ``amount`` to counter ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: Number) -> None:
        """Record the latest value of gauge ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        self._gauges[name] = value

    def observe(self, name: str, value: Number, **labels: str) -> None:
        """Record one observation into histogram ``name`` (no-op when
        disabled).  ``labels`` distinguish series under one name, e.g.
        ``observe("phase_seconds", dt, family="merkle")``."""
        if not self.enabled:
            return
        key = (name, labels_key(labels) if labels else ())
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram()
        hist.observe(value)

    def merge_histogram(self, name: str,
                        labels: Tuple[Tuple[str, str], ...],
                        data: dict) -> None:
        """Merge a serialized histogram (a worker's) into this registry.

        Follows the same enabled gate as :meth:`inc`, mirroring how
        worker counter deltas merge through
        :meth:`~repro.obs.tracer.Tracer.absorb_worker`.
        """
        if not self.enabled:
            return
        key = (name, tuple((str(k), str(v)) for k, v in labels))
        hist = self._histograms.get(key)
        if hist is None:
            self._histograms[key] = Histogram.from_dict(data)
        else:
            hist.merge(Histogram.from_dict(data))

    # -- read side ---------------------------------------------------------
    def counters(self) -> Dict[str, Number]:
        return dict(self._counters)

    def gauges(self) -> Dict[str, Number]:
        return dict(self._gauges)

    def histograms(self) -> Dict[HistKey, Histogram]:
        """Live histogram objects keyed by ``(name, labels)`` (structured
        form; use :func:`render_hist_key` for display keys)."""
        return dict(self._histograms)

    def histogram(self, name: str, **labels: str) -> Optional[Histogram]:
        """One histogram by name and labels, or None if never observed."""
        return self._histograms.get(
            (name, labels_key(labels) if labels else ()))

    def snapshot(self) -> Dict[str, dict]:
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {render_hist_key(name, labels): hist.to_dict()
                           for (name, labels), hist
                           in self._histograms.items()},
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The process-wide registry every instrumented kernel reports to.
METRICS = MetricsRegistry()


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown).

    Uses :func:`resource.getrusage`; Linux reports ``ru_maxrss`` in KiB,
    macOS in bytes.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(ru)
    return int(ru) * 1024
