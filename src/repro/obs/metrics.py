"""Process-wide Counter/Gauge metrics registry.

A single module-level :data:`METRICS` registry collects operation counts
(``field.mul_batches``, ``merkle.hashes``, ``ntt.butterflies``, ...) and
point-in-time gauges (``process.peak_rss_bytes``).  Instrumented kernels
call ``METRICS.inc(name, amount)`` unconditionally; when the registry is
disabled (the default) the call returns after one attribute check, so the
hot loops stay within noise of the uninstrumented code.

The registry is plain module state, matching the single-threaded prover:
enable it with :func:`repro.obs.tracing` (which also resets it) or by
setting ``METRICS.enabled`` directly in a ``try/finally``.
"""

from __future__ import annotations

import sys
from typing import Dict, Union

Number = Union[int, float]


class MetricsRegistry:
    """Named monotonic counters plus last-value gauges.

    ``inc``/``gauge`` are no-ops while ``enabled`` is False — that check
    is the only cost instrumented kernels pay in normal operation.
    """

    __slots__ = ("enabled", "_counters", "_gauges")

    def __init__(self) -> None:
        self.enabled = False
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}

    # -- write side (hot path) --------------------------------------------
    def inc(self, name: str, amount: Number = 1) -> None:
        """Add ``amount`` to counter ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: Number) -> None:
        """Record the latest value of gauge ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        self._gauges[name] = value

    # -- read side ---------------------------------------------------------
    def counters(self) -> Dict[str, Number]:
        return dict(self._counters)

    def gauges(self) -> Dict[str, Number]:
        return dict(self._gauges)

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        return {"counters": self.counters(), "gauges": self.gauges()}

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()


#: The process-wide registry every instrumented kernel reports to.
METRICS = MetricsRegistry()


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown).

    Uses :func:`resource.getrusage`; Linux reports ``ru_maxrss`` in KiB,
    macOS in bytes.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(ru)
    return int(ru) * 1024
