"""Worker-side kernel entry points for :class:`~repro.parallel.pool.ProverPool`.

Every function here is a module-level callable (so it pickles by reference)
that computes one *chunk* of an embarrassingly parallel prover kernel —
the three hot paths the paper's vector FUs exploit (Sec. IV/V):

* :func:`hash_columns_chunk` — Merkle leaf hashing for a column slice,
* :func:`hash_layer_chunk` — one contiguous slice of a Merkle layer,
* :func:`encode_chunk` — per-row Reed-Solomon NTT encodes for a row slice,
* :func:`prove_job` — one complete independent proof (the
  :func:`repro.snark.api.prove_many` batch path).

Chunks are pure functions of their arguments, so assembling their results
in submission order is bit-identical to the serial computation at any
worker count.  Each kernel opens an observability span; when the parent
process is tracing, the pool runs the chunk under a worker-local tracer
and merges the resulting spans and counters back into the main
:class:`~repro.obs.tracer.Tracer` (the worker appears as an extra pid in
the exported Chrome trace).
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np

from .. import obs
from ..hashing.fieldhash import DIGEST_BYTES, hash_columns


def hash_columns_chunk(matrix: np.ndarray) -> List[bytes]:
    """Merkle leaf digests for a contiguous slice of codeword columns."""
    with obs.span("worker.merkle_leaves", "merkle", cols=matrix.shape[1]):
        return hash_columns(matrix)


def hash_layer_chunk(pairs: bytes) -> bytes:
    """Hash a contiguous run of sibling pairs from one Merkle layer.

    ``pairs`` is a 64-byte-aligned slice of the layer's flat digest
    buffer; the result is the corresponding slice of the next layer.
    Byte-identical to the serial loop in
    :class:`~repro.hashing.merkle.MerkleTree`.
    """
    with obs.span("worker.merkle_layer", "merkle",
                  nodes=len(pairs) // (2 * DIGEST_BYTES)):
        _sha3 = hashlib.sha3_256
        out = bytearray(len(pairs) // 2)
        for i in range(0, len(out), DIGEST_BYTES):
            out[i : i + DIGEST_BYTES] = _sha3(
                pairs[2 * i : 2 * i + 2 * DIGEST_BYTES]).digest()
        return bytes(out)


def encode_chunk(code, rows: np.ndarray) -> np.ndarray:
    """Reed-Solomon-encode a contiguous slice of message rows.

    ``code`` is the (picklable) :class:`~repro.code.base.LinearCode`;
    per-row encodes are independent, so a row slice encodes exactly as it
    would inside the full-matrix batched call.
    """
    with obs.span("worker.rs_encode", "rs_encode", rows=rows.shape[0]):
        return code.encode_rows(rows)


def prove_job(r1cs, preset, public, witness, seed_seq, circuit_id: str) -> bytes:
    """Generate one complete proof and return its envelope wire bytes.

    The job-level parallel path of :func:`repro.snark.api.prove_many`:
    each worker proves one statement end to end with *serial* kernels
    (no nested pools) and ships the self-describing envelope back, so
    the parent only pays one deserialization per job and the bytes are
    exactly what :meth:`ProofBundle.to_bytes` would produce in-process.

    ``seed_seq`` is a :class:`numpy.random.SeedSequence` derived
    deterministically in the parent, making the zk-mask — the proof's
    only randomness — independent of the worker count.
    """
    from ..snark.api import ProvingKey, prove

    pk = ProvingKey(r1cs=r1cs, preset=preset)
    bundle = prove(pk, public, witness,
                   rng=np.random.default_rng(seed_seq),
                   circuit_id=circuit_id)
    return bundle.to_bytes()
