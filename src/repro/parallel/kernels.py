"""Worker-side kernel entry points for :class:`~repro.parallel.pool.ProverPool`.

Every function here is a module-level callable (so it pickles by reference)
that computes one *chunk* of an embarrassingly parallel prover kernel —
the three hot paths the paper's vector FUs exploit (Sec. IV/V):

* :func:`hash_columns_chunk` — Merkle leaf hashing for a column slice,
* :func:`hash_layer_chunk` — one contiguous slice of a Merkle layer,
* :func:`encode_chunk` — per-row Reed-Solomon NTT encodes for a row slice,
* :func:`prove_job` — one complete independent proof (the
  :func:`repro.snark.api.prove_many` batch path).

Chunks are pure functions of their arguments, so assembling their results
in submission order is bit-identical to the serial computation at any
worker count.  Each kernel opens an observability span; when the parent
process is tracing, the pool runs the chunk under a worker-local tracer
and merges the resulting spans and counters back into the main
:class:`~repro.obs.tracer.Tracer` (the worker appears as an extra pid in
the exported Chrome trace).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import List

import numpy as np

import os as _os

from .. import obs
from ..hashing.fieldhash import DIGEST_BYTES, fold_chunk, hash_columns
from . import shm


def _maybe_fault(site: str, desc=None) -> None:
    """Chaos-harness injection point (see :mod:`repro.fuzz.faults`).

    Deliberately one env-dict lookup on the no-fault path: the faults
    module is only imported once a plan is actually armed, so production
    kernels pay nothing.
    """
    if "REPRO_FAULTS" not in _os.environ:
        return
    from ..fuzz import faults

    faults.maybe_fault(site, desc=desc)


def hash_columns_chunk(matrix: np.ndarray) -> List[bytes]:
    """Merkle leaf digests for a contiguous slice of codeword columns."""
    _maybe_fault("hash_columns")
    with obs.span("worker.merkle_leaves", "merkle", cols=matrix.shape[1]):
        return hash_columns(matrix)


def hash_layer_chunk(pairs: bytes) -> bytes:
    """Hash a contiguous run of sibling pairs from one Merkle layer.

    ``pairs`` is a 64-byte-aligned slice of the layer's flat digest
    buffer; the result is the corresponding slice of the next layer.
    Byte-identical to the serial loop in
    :class:`~repro.hashing.merkle.MerkleTree`.
    """
    _maybe_fault("hash_layer")
    with obs.span("worker.merkle_layer", "merkle",
                  nodes=len(pairs) // (2 * DIGEST_BYTES)):
        _sha3 = hashlib.sha3_256
        out = bytearray(len(pairs) // 2)
        for i in range(0, len(out), DIGEST_BYTES):
            out[i : i + DIGEST_BYTES] = _sha3(
                pairs[2 * i : 2 * i + 2 * DIGEST_BYTES]).digest()
        return bytes(out)


def encode_chunk(code, rows: np.ndarray) -> np.ndarray:
    """Reed-Solomon-encode a contiguous slice of message rows.

    ``code`` is the (picklable) :class:`~repro.code.base.LinearCode`;
    per-row encodes are independent, so a row slice encodes exactly as it
    would inside the full-matrix batched call.
    """
    _maybe_fault("encode")
    with obs.span("worker.rs_encode", "rs_encode", rows=rows.shape[0]):
        return code.encode_rows(rows)


def prove_job(r1cs, preset, public, witness, seed_seq, circuit_id: str,
              timeout_s=None) -> bytes:
    """Generate one complete proof and return its envelope wire bytes.

    The job-level parallel path of :func:`repro.snark.api.prove_many`:
    each worker proves one statement end to end with *serial* kernels
    (no nested pools) and ships the self-describing envelope back, so
    the parent only pays one deserialization per job and the bytes are
    exactly what :meth:`ProofBundle.to_bytes` would produce in-process.

    ``seed_seq`` is a :class:`numpy.random.SeedSequence` derived
    deterministically in the parent, making the zk-mask — the proof's
    only randomness — independent of the worker count.  ``timeout_s``
    installs a per-job cooperative deadline inside the worker
    (:mod:`repro.parallel.deadline`), so one runaway statement cannot
    stall a whole batch from the inside.
    """
    from ..snark.api import ProvingKey, prove

    _maybe_fault("prove_job")
    pk = ProvingKey(r1cs=r1cs, preset=preset)
    bundle = prove(pk, public, witness,
                   rng=np.random.default_rng(seed_seq),
                   circuit_id=circuit_id, timeout_s=timeout_s)
    return bundle.to_bytes()


# ---------------------------------------------------------------------------
# Zero-copy (shared-memory) kernel variants
# ---------------------------------------------------------------------------
#
# Same computations as above, but operands arrive as shm *descriptors* and
# results are written into preallocated shared output buffers — the only
# bytes crossing the executor pipe are the descriptors themselves.  Each
# returns None; the parent reads the output segment after the fan-out.

def probe_noop() -> int:
    """Dispatch-cost probe body: measures pure round-trip overhead."""
    return 0


def encode_chunk_shm(code, in_desc, out_desc, lo: int, hi: int) -> None:
    """RS-encode message rows ``lo:hi`` of the shared input matrix into
    the same row range of the shared codeword buffer."""
    _maybe_fault("encode", desc=in_desc)
    with obs.span("worker.rs_encode", "rs_encode", rows=hi - lo):
        with shm.attached(in_desc) as msg, shm.attached(out_desc) as out:
            out[lo:hi] = code.encode_rows(np.ascontiguousarray(msg[lo:hi]))


def hash_columns_chunk_shm(in_desc, out_desc, lo: int, hi: int) -> None:
    """Merkle leaf digests for columns ``lo:hi``, written into the shared
    ``(cols, 32)`` uint8 digest buffer."""
    _maybe_fault("hash_columns", desc=in_desc)
    with obs.span("worker.merkle_leaves", "merkle", cols=hi - lo):
        with shm.attached(in_desc) as matrix, shm.attached(out_desc) as out:
            digests = hash_columns(np.ascontiguousarray(matrix[:, lo:hi]))
            out[lo:hi] = np.frombuffer(b"".join(digests),
                                       dtype=np.uint8).reshape(hi - lo,
                                                               DIGEST_BYTES)


def hash_layer_chunk_shm(in_desc, out_desc, lo: int, hi: int) -> None:
    """One Merkle layer combine for output nodes ``lo:hi`` (byte views)."""
    _maybe_fault("hash_layer", desc=in_desc)
    with obs.span("worker.merkle_layer", "merkle", nodes=hi - lo):
        pair = 2 * DIGEST_BYTES
        with shm.attached(in_desc) as raw_in, shm.attached(out_desc) as raw_out:
            pairs = raw_in[lo * pair : hi * pair].tobytes()
            _sha3 = hashlib.sha3_256
            out = bytearray((hi - lo) * DIGEST_BYTES)
            for i in range(0, len(out), DIGEST_BYTES):
                out[i : i + DIGEST_BYTES] = _sha3(
                    pairs[2 * i : 2 * i + 2 * DIGEST_BYTES]).digest()
            raw_out[lo * DIGEST_BYTES : hi * DIGEST_BYTES] = \
                np.frombuffer(bytes(out), dtype=np.uint8)


def fold_chunk_shm(tile_desc, state_desc, lo: int, hi: int,
                   tile_rows: int, words_done: int) -> None:
    """Streaming column-hash fold: chain columns ``lo:hi`` of a codeword
    row tile into the shared per-column chain state (see
    :class:`~repro.hashing.fieldhash.ColumnChainHasher`)."""
    _maybe_fault("fold", desc=tile_desc)
    with obs.span("worker.merkle_fold", "merkle", cols=hi - lo):
        with shm.attached(tile_desc) as tile, shm.attached(state_desc) as st:
            fold_chunk(st[lo:hi],
                       np.ascontiguousarray(tile[:tile_rows, lo:hi]),
                       words_done)


#: Worker-resident proving keys, keyed by broadcast token.  A key is
#: unpickled from its shared blob ONCE per worker and reused for every
#: job of every batch that broadcasts the same key (amortized keygen).
_PK_CACHE: "OrderedDict[str, object]" = OrderedDict()
_PK_CACHE_MAX = 4


def _cached_pk(token: str, blob_desc):
    pk = _PK_CACHE.get(token)
    if pk is None:
        pk = shm.read_pickle(blob_desc)
        _PK_CACHE[token] = pk
        while len(_PK_CACHE) > _PK_CACHE_MAX:
            _PK_CACHE.popitem(last=False)
    else:
        _PK_CACHE.move_to_end(token)
    return pk


def prove_job_shm(token: str, blob_desc, pub_desc, wit_desc, job: int,
                  seed_seq, circuit_id: str, timeout_s=None) -> bytes:
    """Zero-copy variant of :func:`prove_job`.

    The proving key arrives as a shared pickled blob broadcast once per
    batch (and cached per worker across batches); the job's public inputs
    and witness are rows of two stacked shared matrices.  Only the
    envelope bytes travel back through the pipe.
    """
    from ..snark.api import prove

    _maybe_fault("prove_job", desc=blob_desc)
    pk = _cached_pk(token, blob_desc)
    with shm.attached(pub_desc) as pubs, shm.attached(wit_desc) as wits:
        public = np.array(pubs[job])
        witness = np.array(wits[job])
    bundle = prove(pk, public, witness,
                   rng=np.random.default_rng(seed_seq),
                   circuit_id=circuit_id, timeout_s=timeout_s)
    return bundle.to_bytes()
