"""Process-pool parallelism for the functional prover.

The prover's hot kernels — Merkle column/layer hashing, per-row
Reed-Solomon NTT encodes, and whole independent proof jobs — are
embarrassingly parallel (the very structure NoCap's vector FUs exploit).
:class:`ProverPool` fans them out over worker processes with zero-copy
shared-memory dispatch (:mod:`repro.parallel.shm`) and a serial fallback
that is bit-identical at any worker count; :func:`get_pool` returns the
persistent process-wide pool that stays warm across ``prove`` /
``prove_many`` calls.  See ``docs/API.md`` for usage and
``docs/PERFORMANCE.md`` for the dispatch model.
"""

from . import deadline, kernels, shm
from .deadline import check_deadline, deadline_scope
from .pool import FaultPolicy, ProverPool, get_pool, shutdown
from .shm import (ArrayDesc, BlobDesc, ShmArena, ShmError, reclaim_orphans,
                  scan_orphans, shm_enabled)

__all__ = [
    "ProverPool",
    "FaultPolicy",
    "get_pool",
    "shutdown",
    "ShmArena",
    "ShmError",
    "ArrayDesc",
    "BlobDesc",
    "shm_enabled",
    "scan_orphans",
    "reclaim_orphans",
    "check_deadline",
    "deadline_scope",
    "deadline",
    "kernels",
    "shm",
]
