"""Process-pool parallelism for the functional prover.

The prover's hot kernels — Merkle column/layer hashing, per-row
Reed-Solomon NTT encodes, and whole independent proof jobs — are
embarrassingly parallel (the very structure NoCap's vector FUs exploit).
:class:`ProverPool` fans them out over worker processes with a serial
fallback that is bit-identical at any worker count; see
``docs/API.md`` for usage.
"""

from .pool import ProverPool

__all__ = ["ProverPool"]
