"""Process-pool executor for the prover's embarrassingly parallel kernels.

The paper's whole acceleration argument (Sec. IV/V) rests on the
Spartan+Orion workload being data-parallel: Merkle column hashes are
independent, per-row RS encodes are independent, and whole proof jobs
share nothing.  :class:`ProverPool` exploits the same structure in the
functional layer with a pool of worker *processes* (the kernels are
CPU-bound Python/numpy, so threads would serialize on the GIL):

* :meth:`hash_columns` / :meth:`hash_layer` — Merkle leaf and layer
  hashing, chunked by column / node range,
* :meth:`encode_rows` — per-row Reed-Solomon NTT encodes, chunked by row
  range,
* :meth:`stream_encode_hash` — the tiled commit pipeline: row tiles are
  encoded into a shared ring buffer and folded straight into per-column
  hash chains, so the full codeword matrix is never materialized,
* :meth:`run` — the generic ordered fan-out used by
  :func:`repro.snark.api.prove_many` for independent proof jobs.

Dispatch is **zero-copy** by default: operands live in named
shared-memory segments (:mod:`repro.parallel.shm`) and workers attach by
``(name, shape, dtype)`` descriptor, writing results into preallocated
shared output buffers.  ``REPRO_PARALLEL_NO_SHM=1`` falls back to the
original pickled dispatch (for platforms without usable POSIX shm); both
paths are bit-identical.

Pools are meant to be **persistent**: :func:`get_pool` returns a lazily
created process-wide pool that stays warm across ``prove`` /
``prove_many`` / bench runs (module :func:`shutdown` and an ``atexit``
hook tear it down).  A pool calibrates itself with a one-shot per-worker
dispatch-cost probe and then *auto-selects chunk sizes*: a kernel call
whose estimated serial time cannot amortize at least
:data:`BREAK_EVEN_DISPATCHES` probe round-trips per chunk simply runs
inline — fan-out never makes a call slower than serial by more than the
probe's own noise.

Determinism contract: every kernel chunk is a pure function and results
are assembled in submission order, so outputs — and therefore proof
bytes — are **bit-identical at any worker count**, including the serial
fallback taken when ``workers <= 1`` and the auto-chunk inline fallback.

Dispatch is **supervised** (see :class:`FaultPolicy` and
``docs/ROBUSTNESS.md``): worker death, hung dispatches, and in-task
exceptions are detected by :meth:`ProverPool._supervised_map`, which
restarts the executor with capped exponential backoff and retries the
failed chunks.  When the retry budget is exhausted the kernel entry
points *degrade* — they rerun the whole call on the in-process serial
path, which is bit-identical, so a crashing worker fleet costs latency
but never correctness.  Deadlines (:mod:`repro.parallel.deadline`) are
the one thing degradation never overrides: an expired budget raises
:class:`~repro.errors.ProverTimeoutError` and stops the engine.
Orphaned shared-memory segments left by SIGKILLed former selves are
reclaimed by a janitor sweep (:func:`repro.parallel.shm.reclaim_orphans`)
every time an executor is (re)built.

When the parent is tracing (:func:`repro.obs.tracing`), each chunk runs
under a worker-local tracer; its spans and counter deltas are shipped
back with the result and merged into the parent tracer, where the worker
appears as an extra pid in the exported Chrome trace.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                ProcessPoolExecutor, wait)
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..errors import ProverTimeoutError, WorkerCrashError
from ..hashing import fieldhash
from ..obs.events import FLIGHT as _FLIGHT
from ..obs.metrics import METRICS as _METRICS
from . import kernels, shm
from .deadline import check_deadline
from .deadline import remaining as _deadline_remaining

#: Smallest per-chunk work units below which fan-out overhead (descriptor
#: dispatch, attach) exceeds the kernel time; chunks never shrink below
#: these even when the dispatch probe suggests smaller.
MIN_ENCODE_ROWS_PER_CHUNK = 4
MIN_HASH_COLS_PER_CHUNK = 64
#: Minimum *output* nodes for a Merkle layer to be worth fanning out.
MIN_LAYER_NODES = 2048

#: A dispatched chunk must carry at least this many dispatch round-trips
#: worth of estimated kernel work, or the call stays serial (break-even
#: model; see docs/PERFORMANCE.md).
BREAK_EVEN_DISPATCHES = 4.0

#: Fallback dispatch cost before the probe has run (a conservative 1 ms).
DEFAULT_DISPATCH_COST_S = 1e-3

#: Calibration constants for the break-even model: rough serial cost per
#: item element on commodity CPUs.  Order-of-magnitude is all the model
#: needs — the measured dispatch cost is the precise side of the ratio.
EST_ENCODE_S_PER_CELL = 2.5e-7    # per message matrix cell (NTT amortized)
EST_HASH_S_PER_CELL = 3.0e-7      # per matrix cell hashed into a leaf
EST_LAYER_S_PER_NODE = 1.2e-6     # per Merkle combine output node

#: Row tiles of the streaming commit pipeline (multiple of the 4-element
#: hash word so chain folds never straddle a tile boundary; sized so the
#: NTT's transient temporaries stay far below the avoided matrix).
STREAM_TILE_ROWS = 16
#: Ring slots reused across tiles (allocate-once, stream-forever).
STREAM_RING_SLOTS = 2


@dataclass(frozen=True)
class FaultPolicy:
    """How the pool supervisor reacts to worker failures.

    ``max_retries`` bounds how many times a failed chunk batch is
    resubmitted (each broken-executor round costs one restart with
    ``min(backoff_cap_s, backoff_base_s * 2**attempt)`` of backoff)
    before the failure escalates as
    :class:`~repro.errors.WorkerCrashError` and the kernel wrappers
    degrade to serial.  ``dispatch_timeout_s`` is the stall watchdog: if
    *nothing* completes for that long the outstanding workers are
    presumed hung and killed.  It is deliberately generous — any single
    completion resets the clock, so a slow-but-progressing batch is
    never shot — and the per-job/per-call deadline
    (:mod:`repro.parallel.deadline`) clamps every wait anyway.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    dispatch_timeout_s: float = 600.0


#: Default supervision policy shared by every pool that does not ask for
#: a custom one.
DEFAULT_FAULT_POLICY = FaultPolicy()


def _worker_init(root_sizes: Tuple[int, ...]) -> None:
    """Warm a worker: import kernel modules and prime NTT root caches.

    Under ``fork`` this is mostly a no-op (state is inherited); under
    ``spawn`` it front-loads the import and twiddle-table cost so the
    first real chunk is not an outlier.
    """
    from ..ntt import roots

    for n in root_sizes:
        roots.primitive_root(n)
        roots.bit_reverse_indices(n)


def _call_task(payload):
    """Run one (fn, args, trace) task, optionally under a local tracer."""
    fn, args, trace = payload
    if not trace:
        return fn(*args), None
    tracer = obs.start_trace()
    try:
        result = fn(*args)
    finally:
        obs.stop_trace()
    counters = tracer.metrics_snapshot.get("counters", {})
    # Histograms observed worker-side (a worker's own prove_seconds in
    # job fan-out) ship as (name, labels, dict) triples for bucket-wise
    # merge into the parent registry.
    hists = [(name, list(labels), hist.to_dict())
             for (name, labels), hist in obs.METRICS.histograms().items()]
    return result, (os.getpid(), tracer.records(), counters,
                    tracer.start_abs, hists)


class ProverPool:
    """A pool of prover worker processes with a bit-identical serial fallback.

    Long-lived use goes through :func:`get_pool` (process-wide warm pool);
    scoped use works as a context manager::

        with ProverPool(workers=4) as pool:
            bundle = prove(pk, public, witness, pool=pool)

    ``workers=None`` uses ``os.cpu_count()``; ``workers <= 1`` makes
    every method execute inline on the calling process — the exact serial
    code path, byte for byte.  ``auto_chunk=False`` disables the
    break-even model so every eligible call fans out (tests use this to
    force worker traffic at small sizes).
    """

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 warm_root_sizes: Tuple[int, ...] = (1 << 10, 1 << 12),
                 auto_chunk: bool = True,
                 fault_policy: Optional[FaultPolicy] = None):
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        self.auto_chunk = auto_chunk
        self.fault_policy = (fault_policy if fault_policy is not None
                             else DEFAULT_FAULT_POLICY)
        self._start_method = start_method
        self._warm_root_sizes = tuple(warm_root_sizes)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._arena: Optional[shm.ShmArena] = None
        self._dispatch_cost_s: Optional[float] = None
        self._warm_s: Optional[float] = None
        self._broadcasts: dict = {}   # id(obj) -> (obj, token, BlobDesc)

    # -- lifecycle ---------------------------------------------------------
    @property
    def is_serial(self) -> bool:
        return self.workers <= 1

    @property
    def job_fanout_pays(self) -> bool:
        """Whether dispatching whole proof jobs to workers can win here.

        Proof jobs are CPU-bound, so job-level fan-out needs real cores:
        on a single-core host concurrent resident provers just
        time-slice the one core and pay context-switch plus
        cache-interference costs (measured ~15-20% at 2^20), so
        ``prove_many`` stays inline there.  ``auto_chunk=False`` forces
        fan-out regardless, mirroring its meaning for kernel chunking
        (tests use it to exercise the dispatch machinery on any host).
        """
        if self.is_serial:
            return False
        return not self.auto_chunk or (os.cpu_count() or 1) >= 2

    @property
    def use_shm(self) -> bool:
        """True when this pool dispatches via shared memory (re-read per
        call so ``REPRO_PARALLEL_NO_SHM`` can flip at runtime)."""
        return shm.shm_enabled()

    @property
    def dispatch_cost_s(self) -> float:
        """Measured per-task round-trip cost (probe), or the default."""
        return (self._dispatch_cost_s if self._dispatch_cost_s is not None
                else DEFAULT_DISPATCH_COST_S)

    @property
    def warm_s(self) -> Optional[float]:
        """Wall seconds the one-time warm-up (spawn + probe) took."""
        return self._warm_s

    def _mp_context(self):
        import multiprocessing as mp

        if self._start_method is not None:
            return mp.get_context(self._start_method)
        # fork shares the parent's imported modules and twiddle caches as
        # read-only pages; fall back to spawn (+ pickled init) elsewhere.
        methods = mp.get_all_start_methods()
        return mp.get_context("fork" if "fork" in methods else "spawn")

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Sweep segments orphaned by SIGKILLed predecessors before
            # starting workers, so a crash-looping service cannot leak
            # /dev/shm to exhaustion across its own restarts.
            shm.reclaim_orphans()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._mp_context(),
                initializer=_worker_init,
                initargs=(self._warm_root_sizes,))
        return self._executor

    def _kill_executor(self) -> None:
        """Tear the executor down *hard* (SIGKILL), tolerating any state.

        Used by the supervisor when workers are dead or presumed hung —
        a graceful ``shutdown(wait=True)`` would block forever on a
        stalled worker.  The arena (and any broadcast blobs in it) is
        deliberately preserved: in-flight descriptors must stay valid so
        the retry path can resubmit the same chunks.
        """
        ex, self._executor = self._executor, None
        if ex is None:
            return
        procs = list((getattr(ex, "_processes", None) or {}).values())
        for proc in procs:
            try:
                proc.kill()
            except (OSError, ValueError, AttributeError):
                pass
        try:
            ex.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - executor may be broken mid-way
            pass
        for proc in procs:
            try:
                proc.join(timeout=1.0)
            except (OSError, ValueError, AssertionError):
                pass

    def _restart_workers(self, attempt: int) -> None:
        """Replace a broken/hung executor, backing off exponentially."""
        self._kill_executor()
        delay = min(self.fault_policy.backoff_cap_s,
                    self.fault_policy.backoff_base_s * (2 ** attempt))
        if delay > 0:
            time.sleep(delay)
        _METRICS.inc("parallel.worker_restarts")
        _FLIGHT.record("worker_restart", attempt=attempt, backoff_s=delay,
                       workers=self.workers)
        self._ensure_executor()

    def arena(self) -> shm.ShmArena:
        """The pool-owned shared-memory arena (created on first use)."""
        if self._arena is None or self._arena.closed:
            self._arena = shm.ShmArena(prefix="repro_pool")
        return self._arena

    def warm(self) -> None:
        """Spawn the workers and run the one-shot dispatch-cost probe.

        Idempotent; a warm pool answers its first real kernel call at
        steady-state cost.  The probe times ``2 * workers`` no-op tasks
        round-trip and records the per-task cost that the break-even
        chunk model divides against.
        """
        if self.is_serial or self._dispatch_cost_s is not None:
            return
        t0 = time.perf_counter()
        ex = self._ensure_executor()
        n_tasks = 2 * self.workers
        list(ex.map(_call_task,
                    [(kernels.probe_noop, (), False)] * n_tasks))
        elapsed = time.perf_counter() - t0
        # First tasks pay process spawn; probe again on the warm workers.
        t0 = time.perf_counter()
        list(ex.map(_call_task,
                    [(kernels.probe_noop, (), False)] * n_tasks))
        self._dispatch_cost_s = max(1e-6,
                                    (time.perf_counter() - t0) / n_tasks)
        self._warm_s = elapsed + (time.perf_counter() - t0)
        _METRICS.gauge("parallel.dispatch_cost_s", self._dispatch_cost_s)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        self._broadcasts.clear()
        self._dispatch_cost_s = None
        self._warm_s = None

    #: Alias used by the lifecycle docs; identical to :meth:`close`.
    shutdown = close

    def __enter__(self) -> "ProverPool":
        if not self.is_serial:
            self._ensure_executor()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- chunk selection ---------------------------------------------------
    def chunk_ranges(self, n: int, min_per_chunk: int = 1
                     ) -> List[Tuple[int, int]]:
        """Split ``range(n)`` into at most ``workers`` contiguous,
        near-equal ranges of at least ``min_per_chunk`` items."""
        if n <= 0:
            return []
        num = min(self.workers, max(1, n // max(1, min_per_chunk)))
        base, extra = divmod(n, num)
        ranges, lo = [], 0
        for k in range(num):
            hi = lo + base + (1 if k < extra else 0)
            ranges.append((lo, hi))
            lo = hi
        return ranges

    def auto_chunk_ranges(self, n: int, item_cost_s: float,
                          min_per_chunk: int = 1
                          ) -> Optional[List[Tuple[int, int]]]:
        """Break-even chunking: ranges worth dispatching, or ``None``.

        Using the probe's measured dispatch cost ``d``, the call fans out
        only if the estimated serial time ``n * item_cost_s`` funds at
        least two chunks each carrying :data:`BREAK_EVEN_DISPATCHES`
        dispatches' worth of work; below that, ``None`` tells the caller
        to run inline.  The chunk count is monotone non-decreasing in
        ``n`` (for fixed costs), so growing inputs never fan out *less*.
        """
        if n <= 0:
            return []
        if not self.auto_chunk:
            return self.chunk_ranges(n, min_per_chunk)
        self.warm()
        budget = BREAK_EVEN_DISPATCHES * self.dispatch_cost_s
        max_chunks = int(n * max(item_cost_s, 1e-12) // budget)
        if max_chunks < 2:
            return None
        num = min(self.workers, max_chunks)
        per_chunk = max(min_per_chunk, -(-n // num))
        return self.chunk_ranges(n, per_chunk)

    # -- generic fan-out ---------------------------------------------------
    def run(self, fn: Callable, tasks: Sequence[tuple],
            return_exceptions: bool = False) -> List:
        """Execute ``fn(*task)`` for every task, returning results in
        submission order.

        Serial pools — and single-task calls, where fan-out buys nothing —
        execute inline so the active tracer and metrics registry see the
        work directly.  Parallel execution ships each chunk's worker-side
        spans/counters back and merges them into the active tracer.

        Dispatch is supervised (worker death, stalls, and in-task
        exceptions are retried under :attr:`fault_policy`); a failure
        that survives the retry budget raises
        :class:`~repro.errors.WorkerCrashError` — or, with
        ``return_exceptions=True``, is returned *positionally* as the
        exception object so batch callers can report per-task outcomes.
        """
        check_deadline("parallel.run")
        if self.is_serial or len(tasks) <= 1:
            if not return_exceptions:
                return [fn(*task) for task in tasks]
            results = []
            for task in tasks:
                try:
                    results.append(fn(*task))
                except Exception as exc:  # noqa: BLE001 - reported per task
                    results.append(exc)
            return results
        # Workers run under a local tracer whenever the parent wants any
        # telemetry back — a full trace, or just the metrics registry
        # (e.g. ``repro prove --metrics-out`` without --trace).
        trace = obs.get_tracer() is not None or _METRICS.enabled
        payloads = [(fn, task, trace) for task in tasks]
        _METRICS.inc("parallel.dispatches", len(tasks))
        t0 = time.perf_counter()
        outs = self._supervised_map(payloads,
                                    return_exceptions=return_exceptions)
        _METRICS.observe("dispatch_seconds", time.perf_counter() - t0)
        tracer = obs.get_tracer()
        results = []
        for out in outs:
            if isinstance(out, BaseException):
                results.append(out)
                continue
            result, meta = out
            if meta is not None:
                worker_pid, records, counters, t0_abs, hists = meta
                if tracer is not None:
                    tracer.absorb_worker(worker_pid, records, counters,
                                         start_abs=t0_abs, histograms=hists)
                elif _METRICS.enabled:
                    # Metrics-only mode: no span tree to hang worker
                    # records on, but counters and histograms still merge.
                    for name, delta in counters.items():
                        _METRICS.inc(name, delta)
                    for name, labels, data in hists:
                        _METRICS.merge_histogram(
                            name, tuple((str(k), str(v))
                                        for k, v in labels), data)
            results.append(result)
        return results

    def _supervised_map(self, payloads: Sequence, *,
                        return_exceptions: bool = False) -> List:
        """Submit every payload and shepherd the batch to completion.

        The loop distinguishes three failure classes:

        * **broken executor** (a worker died — SIGKILL, OOM, segfault):
          every in-flight future fails with ``BrokenProcessPool``; the
          executor is killed, rebuilt after backoff, and the lost chunks
          are resubmitted.
        * **stall**: nothing at all completes within
          ``fault_policy.dispatch_timeout_s`` (any single completion
          resets the watchdog).  The outstanding workers are presumed
          hung, killed, and the chunks retried on a fresh fleet.
        * **in-task exception**: the chunk itself raised.  Retried
          without a restart (transient faults — and the chaos harness's
          injected ones — fire once); a *persistent* exception exhausts
          the retry budget and escalates.

        Escalation wraps the last underlying failure in
        :class:`~repro.errors.WorkerCrashError` so kernel wrappers can
        catch one type and degrade to serial.  An active deadline clamps
        every wait; expiry kills the executor (abandoned chunks must not
        linger) and raises :class:`~repro.errors.ProverTimeoutError`.
        """
        policy = self.fault_policy
        n = len(payloads)
        results: List = [None] * n
        last_exc: List[Optional[BaseException]] = [None] * n
        failed = list(range(n))
        for attempt in range(policy.max_retries + 1):
            if attempt:
                _METRICS.inc("parallel.retries", len(failed))
                _FLIGHT.record("retry", attempt=attempt,
                               chunks=len(failed))
            ex = self._ensure_executor()
            try:
                pending = {ex.submit(_call_task, payloads[i]): i
                           for i in failed}
            except (BrokenExecutor, RuntimeError) as exc:
                # Executor broke between creation and submit.
                for i in failed:
                    last_exc[i] = exc
                self._restart_workers(attempt)
                continue
            failed = []
            broken = False
            while pending:
                timeout = policy.dispatch_timeout_s
                rem = _deadline_remaining()
                if rem is not None:
                    timeout = min(timeout, max(0.0, rem))
                done, _ = wait(pending, timeout=timeout,
                               return_when=FIRST_COMPLETED)
                if not done:
                    try:
                        check_deadline("parallel.dispatch")
                    except ProverTimeoutError:
                        self._kill_executor()
                        raise
                    # A genuine stall: nothing finished inside the
                    # watchdog window.  Presume the workers hung.
                    _METRICS.inc("parallel.dispatch_stalls")
                    _FLIGHT.record("dispatch_stall",
                                   pending=len(pending),
                                   window_s=policy.dispatch_timeout_s)
                    for fut, i in pending.items():
                        fut.cancel()
                        failed.append(i)
                    broken = True
                    break
                for fut in done:
                    i = pending.pop(fut)
                    try:
                        results[i] = fut.result()
                    except BrokenExecutor as exc:
                        broken = True
                        last_exc[i] = exc
                        failed.append(i)
                    except (shm.ShmError, pickle.PickleError) as exc:
                        # Deterministic data-path damage (torn segment,
                        # poisoned blob): retrying replays the failure,
                        # so fail fast and let the caller degrade.
                        last_exc[i] = exc
                        failed.append(i)
                        if not return_exceptions:
                            for f in pending:
                                f.cancel()
                            raise WorkerCrashError(
                                "parallel dispatch hit unrecoverable "
                                "data corruption",
                                retries=attempt, cause=exc)
                    except Exception as exc:  # noqa: BLE001 - retried
                        last_exc[i] = exc
                        failed.append(i)
                        _FLIGHT.record("task_error",
                                       error=type(exc).__name__)
            if not failed:
                return results
            failed = sorted(set(failed))
            # Data-corruption failures under return_exceptions skip the
            # retry loop too: replaying them cannot change the outcome.
            if return_exceptions and all(
                    isinstance(last_exc[i],
                               (shm.ShmError, pickle.PickleError))
                    for i in failed):
                break
            if broken:
                if attempt < policy.max_retries:
                    self._restart_workers(attempt)
                else:
                    # Out of retries: still never hand a hung/broken
                    # executor to the next caller.
                    self._kill_executor()
        for i in failed:
            exc = last_exc[i]
            if not isinstance(exc, (shm.ShmError, pickle.PickleError)):
                exc = WorkerCrashError(
                    "parallel task failed despite supervision"
                    if exc is not None else
                    "parallel task lost to worker crash or stall",
                    retries=policy.max_retries, cause=exc)
            if not return_exceptions:
                raise exc
            results[i] = exc
        return results

    def _degraded(self, kernel: str, exc: BaseException) -> None:
        """Account one graceful degradation to the in-process serial path
        (the serial rerun is bit-identical, so this costs latency only)."""
        _METRICS.inc("parallel.degradations")
        _METRICS.inc(f"parallel.degradations.{kernel}")
        _FLIGHT.record("degradation", kernel=kernel,
                       error=type(exc).__name__)

    # -- broadcast (amortized keygen) --------------------------------------
    def broadcast(self, obj) -> Tuple[str, shm.BlobDesc]:
        """Pickle ``obj`` into shared memory ONCE and return a worker
        token + blob descriptor.

        Repeat broadcasts of the same object (``prove_many`` batches
        reusing one :class:`~repro.snark.api.ProvingKey`) return the
        cached descriptor — the pickling and placement cost is paid once
        per pool lifetime, not once per job.  A strong reference to the
        object is kept so its identity stays valid for the cache key.
        """
        key = id(obj)
        hit = self._broadcasts.get(key)
        if hit is not None and hit[0] is obj:
            return hit[1], hit[2]
        desc = self.arena().share_pickle(obj)
        kernels._maybe_fault("broadcast", desc=desc)
        token = desc.name
        self._broadcasts[key] = (obj, token, desc)
        _METRICS.inc("parallel.broadcasts")
        return token, desc

    def drop_broadcast(self, obj) -> None:
        """Evict one object's cached broadcast blob (and free its
        segment).  Called when workers report the blob unreadable —
        poisoned or torn — so the next batch re-broadcasts a clean copy
        instead of replaying the corruption forever."""
        entry = self._broadcasts.pop(id(obj), None)
        if entry is not None and self._arena is not None:
            self._arena.free(entry[2])

    # -- kernel-specific entry points --------------------------------------
    def encode_rows(self, code, matrix: np.ndarray) -> np.ndarray:
        """Reed-Solomon-encode every matrix row, chunked across workers.

        Falls back to the in-process batched encode when the pool is
        serial or the break-even model says the matrix is too small to
        amortize the fan-out.  The shm path shares the message matrix
        once and has workers write into a preallocated shared codeword
        buffer; only descriptors cross the pipe.
        """
        matrix = np.asarray(matrix, dtype=np.uint64)
        rows = matrix.shape[0] if matrix.ndim == 2 else 0
        if self.is_serial or rows < 2 * MIN_ENCODE_ROWS_PER_CHUNK:
            return code.encode_rows(matrix)
        ranges = self.auto_chunk_ranges(
            rows, EST_ENCODE_S_PER_CELL * matrix.shape[1],
            MIN_ENCODE_ROWS_PER_CHUNK)
        if ranges is None:
            return code.encode_rows(matrix)
        try:
            if not self.use_shm:
                _METRICS.inc("parallel.bytes_pickled",
                             matrix.nbytes + code.blowup * matrix.nbytes)
                parts = self.run(kernels.encode_chunk,
                                 [(code, matrix[lo:hi])
                                  for lo, hi in ranges])
                return np.vstack(parts)
            arena = self.arena()
            in_desc = arena.share_array(matrix)
            out_desc = arena.alloc_array(
                (rows, code.codeword_length(matrix.shape[1])), "uint64")
            try:
                self.run(kernels.encode_chunk_shm,
                         [(code, in_desc, out_desc, lo, hi)
                          for lo, hi in ranges])
                return np.array(arena.view(out_desc))
            finally:
                arena.free(in_desc)
                arena.free(out_desc)
        except (WorkerCrashError, shm.ShmError) as exc:
            self._degraded("rs_encode", exc)
            return code.encode_rows(matrix)

    def hash_columns(self, matrix: np.ndarray) -> List[bytes]:
        """Merkle leaf digests of every matrix column, chunked by column."""
        matrix = np.asarray(matrix, dtype=np.uint64)
        cols = matrix.shape[1] if matrix.ndim == 2 else 0
        if self.is_serial or cols < 2 * MIN_HASH_COLS_PER_CHUNK:
            return fieldhash.hash_columns(matrix)
        ranges = self.auto_chunk_ranges(
            cols, EST_HASH_S_PER_CELL * matrix.shape[0],
            MIN_HASH_COLS_PER_CHUNK)
        if ranges is None:
            return fieldhash.hash_columns(matrix)
        try:
            if not self.use_shm:
                _METRICS.inc("parallel.bytes_pickled", matrix.nbytes)
                parts = self.run(kernels.hash_columns_chunk,
                                 [(np.ascontiguousarray(matrix[:, lo:hi]),)
                                  for lo, hi in ranges])
                return [d for part in parts for d in part]
            arena = self.arena()
            in_desc = arena.share_array(matrix)
            out_desc = arena.alloc_array((cols, fieldhash.DIGEST_BYTES),
                                         "uint8")
            try:
                self.run(kernels.hash_columns_chunk_shm,
                         [(in_desc, out_desc, lo, hi) for lo, hi in ranges])
                raw = arena.view(out_desc).tobytes()
            finally:
                arena.free(in_desc)
                arena.free(out_desc)
            return [raw[i : i + fieldhash.DIGEST_BYTES]
                    for i in range(0, len(raw), fieldhash.DIGEST_BYTES)]
        except (WorkerCrashError, shm.ShmError) as exc:
            self._degraded("merkle_leaves", exc)
            return fieldhash.hash_columns(matrix)

    def hash_layer(self, raw: bytes) -> Optional[bytes]:
        """One Merkle layer combine step, chunked by output-node range.

        Returns ``None`` when the layer is below the fan-out threshold so
        the caller's serial loop (which also does the metrics accounting)
        handles it.
        """
        out_nodes = len(raw) // (2 * fieldhash.DIGEST_BYTES)
        if self.is_serial or out_nodes < MIN_LAYER_NODES:
            return None
        ranges = self.auto_chunk_ranges(out_nodes, EST_LAYER_S_PER_NODE,
                                        MIN_LAYER_NODES // self.workers)
        if ranges is None:
            return None
        pair = 2 * fieldhash.DIGEST_BYTES
        try:
            if not self.use_shm:
                _METRICS.inc("parallel.bytes_pickled", len(raw) * 3 // 2)
                parts = self.run(kernels.hash_layer_chunk,
                                 [(raw[lo * pair : hi * pair],)
                                  for lo, hi in ranges])
                return b"".join(parts)
            arena = self.arena()
            in_desc = arena.share_array(np.frombuffer(raw, dtype=np.uint8))
            out_desc = arena.alloc_array((len(raw) // 2,), "uint8")
            try:
                self.run(kernels.hash_layer_chunk_shm,
                         [(in_desc, out_desc, lo, hi) for lo, hi in ranges])
                return arena.view(out_desc).tobytes()
            finally:
                arena.free(in_desc)
                arena.free(out_desc)
        except (WorkerCrashError, shm.ShmError) as exc:
            # None = "caller's serial loop handles this layer" — the
            # same degradation contract the size threshold already uses.
            self._degraded("merkle_layer", exc)
            return None

    # -- streaming commit pipeline -----------------------------------------
    def stream_encode_hash(self, code, matrix: np.ndarray,
                           tile_rows: int = STREAM_TILE_ROWS) -> bytes:
        """Tiled RS-encode + column-hash without the full codeword matrix.

        Encodes ``tile_rows``-row tiles of the message matrix into a
        shared ring buffer (slots reused round-robin) and folds each tile
        straight into per-column hash chains; returns the flat leaf
        digests :func:`~repro.hashing.fieldhash.hash_columns` would have
        produced for the full codeword matrix.  Peak transient memory is
        ``O(ring slots * tile bytes + 32 bytes/column)`` regardless of
        the committed table size.

        Serial pools run the identical tile loop inline (no shm); either
        way the digests are byte-identical to the one-shot path.
        """
        matrix = np.asarray(matrix, dtype=np.uint64)
        rows, msg_cols = matrix.shape
        cw_len = code.codeword_length(msg_cols)
        tile_rows = max(fieldhash.ELEMENTS_PER_WORD,
                        (tile_rows // fieldhash.ELEMENTS_PER_WORD)
                        * fieldhash.ELEMENTS_PER_WORD)
        chains = fieldhash.ColumnChainHasher(cw_len, rows)
        tile_bytes = tile_rows * cw_len * 8
        _METRICS.gauge("pcs.stream_tile_bytes", tile_bytes)
        if self.is_serial or not self.use_shm:
            for lo in range(0, rows, tile_rows):
                hi = min(rows, lo + tile_rows)
                chains.update(code.encode_rows(matrix[lo:hi]))
            return chains.finalize()
        try:
            self.warm()
            arena = self.arena()
            slots = [arena.alloc_array((tile_rows, cw_len), "uint64")
                     for _ in range(STREAM_RING_SLOTS)]
            state_desc = arena.alloc_array((cw_len, fieldhash.DIGEST_BYTES),
                                           "uint8")
            try:
                col_ranges = self.chunk_ranges(cw_len,
                                               MIN_HASH_COLS_PER_CHUNK)
                for t, lo in enumerate(range(0, rows, tile_rows)):
                    hi = min(rows, lo + tile_rows)
                    slot = slots[t % STREAM_RING_SLOTS]
                    # Encode the tile's rows into the ring slot...
                    row_ranges = self.chunk_ranges(hi - lo,
                                                   MIN_ENCODE_ROWS_PER_CHUNK)
                    in_desc = arena.share_array(matrix[lo:hi])
                    try:
                        self.run(kernels.encode_chunk_shm,
                                 [(code, in_desc, slot, rlo, rhi)
                                  for rlo, rhi in row_ranges])
                    finally:
                        arena.free(in_desc)
                    # ...and fold it into the shared chain state by columns.
                    self.run(kernels.fold_chunk_shm,
                             [(slot, state_desc, clo, chi, hi - lo,
                               chains.words_done) for clo, chi in col_ranges])
                    chains.state[...] = arena.view(state_desc)
                    chains.rows_fed += hi - lo
                    chains.words_done += -(-(hi - lo)
                                           // fieldhash.ELEMENTS_PER_WORD)
                return chains.finalize()
            finally:
                for slot in slots:
                    arena.free(slot)
                arena.free(state_desc)
        except (WorkerCrashError, shm.ShmError) as exc:
            # A chain fold may have been half-applied when the fleet
            # died, so the partial state is unusable: restart from a
            # fresh hasher and run the identical tile loop in-process.
            self._degraded("stream_commit", exc)
            chains = fieldhash.ColumnChainHasher(cw_len, rows)
            for lo in range(0, rows, tile_rows):
                hi = min(rows, lo + tile_rows)
                chains.update(code.encode_rows(matrix[lo:hi]))
            return chains.finalize()


# ---------------------------------------------------------------------------
# The persistent process-wide pool
# ---------------------------------------------------------------------------

_GLOBAL_POOL: Optional[ProverPool] = None


def get_pool(workers: Optional[int] = None) -> Optional[ProverPool]:
    """The process-wide warm :class:`ProverPool`, created lazily.

    Successive calls with the same effective worker count return the SAME
    pool — worker processes, NTT caches, the dispatch-probe calibration,
    and broadcast proving keys all stay warm across ``prove`` /
    ``prove_many`` / bench invocations.  Asking for a different count
    shuts the old pool down and builds a new one.  ``workers`` of 0 or 1
    returns ``None`` (the serial path needs no pool).  Tear down
    explicitly with :func:`shutdown`; an ``atexit`` hook guarantees it
    regardless.
    """
    global _GLOBAL_POOL
    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, int(workers))
    if workers <= 1:
        return None
    if _GLOBAL_POOL is not None and _GLOBAL_POOL.workers == workers:
        return _GLOBAL_POOL
    if _GLOBAL_POOL is not None:
        _GLOBAL_POOL.close()
    _GLOBAL_POOL = ProverPool(workers)
    return _GLOBAL_POOL


def shutdown() -> None:
    """Tear down the process-wide pool (workers, arena, broadcasts)."""
    global _GLOBAL_POOL
    if _GLOBAL_POOL is not None:
        _GLOBAL_POOL.close()
        _GLOBAL_POOL = None


atexit.register(shutdown)
