"""Process-pool executor for the prover's embarrassingly parallel kernels.

The paper's whole acceleration argument (Sec. IV/V) rests on the
Spartan+Orion workload being data-parallel: Merkle column hashes are
independent, per-row RS encodes are independent, and whole proof jobs
share nothing.  :class:`ProverPool` exploits the same structure in the
functional layer with a pool of worker *processes* (the kernels are
CPU-bound Python/numpy, so threads would serialize on the GIL):

* :meth:`hash_columns` / :meth:`hash_layer` — Merkle leaf and layer
  hashing, chunked by column / node range,
* :meth:`encode_rows` — per-row Reed-Solomon NTT encodes, chunked by row
  range,
* :meth:`run` — the generic ordered fan-out used by
  :func:`repro.snark.api.prove_many` for independent proof jobs.

Determinism contract: every kernel chunk is a pure function and results
are assembled in submission order, so outputs — and therefore proof
bytes — are **bit-identical at any worker count**, including the serial
fallback taken when ``workers <= 1`` (which executes inline, adding zero
overhead and zero behavioral difference to single-process operation).

Workers are warmed up at pool start: under the ``fork`` start method the
child inherits the parent's imported modules and NTT twiddle caches as
shared read-only pages; under ``spawn`` a pickled initializer imports the
kernel modules and primes the root tables so the first real task does not
pay the cold-start cost.

When the parent is tracing (:func:`repro.obs.tracing`), each chunk runs
under a worker-local tracer; its spans and counter deltas are shipped
back with the result and merged into the parent tracer, where the worker
appears as an extra pid in the exported Chrome trace.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..hashing import fieldhash
from . import kernels

#: Smallest per-chunk work units below which fan-out overhead (pickling,
#: IPC) exceeds the kernel time; chunks never shrink below these.
MIN_ENCODE_ROWS_PER_CHUNK = 4
MIN_HASH_COLS_PER_CHUNK = 64
#: Minimum *output* nodes for a Merkle layer to be worth fanning out.
MIN_LAYER_NODES = 2048


def _worker_init(root_sizes: Tuple[int, ...]) -> None:
    """Warm a worker: import kernel modules and prime NTT root caches.

    Under ``fork`` this is mostly a no-op (state is inherited); under
    ``spawn`` it front-loads the import and twiddle-table cost so the
    first real chunk is not an outlier.
    """
    from ..ntt import roots

    for n in root_sizes:
        roots.primitive_root(n)
        roots.bit_reverse_indices(n)


def _call_task(payload):
    """Run one (fn, args, trace) task, optionally under a local tracer."""
    fn, args, trace = payload
    if not trace:
        return fn(*args), None
    tracer = obs.start_trace()
    try:
        result = fn(*args)
    finally:
        obs.stop_trace()
    counters = tracer.metrics_snapshot.get("counters", {})
    return result, (os.getpid(), tracer.records(), counters, tracer.start_abs)


class ProverPool:
    """A pool of prover worker processes with a bit-identical serial fallback.

    Use as a context manager (workers are real OS processes)::

        with ProverPool(workers=4) as pool:
            bundle = prove(pk, public, witness, pool=pool)

    ``workers=None`` uses ``os.cpu_count()``; ``workers <= 1`` makes
    every method execute inline on the calling process — the exact serial
    code path, byte for byte.
    """

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 warm_root_sizes: Tuple[int, ...] = (1 << 10, 1 << 12)):
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        self._start_method = start_method
        self._warm_root_sizes = tuple(warm_root_sizes)
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def is_serial(self) -> bool:
        return self.workers <= 1

    def _mp_context(self):
        import multiprocessing as mp

        if self._start_method is not None:
            return mp.get_context(self._start_method)
        # fork shares the parent's imported modules and twiddle caches as
        # read-only pages; fall back to spawn (+ pickled init) elsewhere.
        methods = mp.get_all_start_methods()
        return mp.get_context("fork" if "fork" in methods else "spawn")

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._mp_context(),
                initializer=_worker_init,
                initargs=(self._warm_root_sizes,))
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ProverPool":
        if not self.is_serial:
            self._ensure_executor()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- generic fan-out ---------------------------------------------------
    def chunk_ranges(self, n: int, min_per_chunk: int = 1
                     ) -> List[Tuple[int, int]]:
        """Split ``range(n)`` into at most ``workers`` contiguous,
        near-equal ranges of at least ``min_per_chunk`` items."""
        if n <= 0:
            return []
        num = min(self.workers, max(1, n // max(1, min_per_chunk)))
        base, extra = divmod(n, num)
        ranges, lo = [], 0
        for k in range(num):
            hi = lo + base + (1 if k < extra else 0)
            ranges.append((lo, hi))
            lo = hi
        return ranges

    def run(self, fn: Callable, tasks: Sequence[tuple]) -> List:
        """Execute ``fn(*task)`` for every task, returning results in
        submission order.

        Serial pools — and single-task calls, where fan-out buys nothing —
        execute inline so the active tracer and metrics registry see the
        work directly.  Parallel execution ships each chunk's worker-side
        spans/counters back and merges them into the active tracer.
        """
        if self.is_serial or len(tasks) <= 1:
            return [fn(*task) for task in tasks]
        trace = obs.get_tracer() is not None
        payloads = [(fn, task, trace) for task in tasks]
        outs = list(self._ensure_executor().map(_call_task, payloads))
        tracer = obs.get_tracer()
        results = []
        for result, meta in outs:
            if meta is not None and tracer is not None:
                worker_pid, records, counters, t0_abs = meta
                tracer.absorb_worker(worker_pid, records, counters,
                                     start_abs=t0_abs)
            results.append(result)
        return results

    # -- kernel-specific entry points --------------------------------------
    def encode_rows(self, code, matrix: np.ndarray) -> np.ndarray:
        """Reed-Solomon-encode every matrix row, chunked across workers.

        Falls back to the in-process batched encode when the pool is
        serial or the matrix is too small to amortize the fan-out.
        """
        matrix = np.asarray(matrix, dtype=np.uint64)
        rows = matrix.shape[0] if matrix.ndim == 2 else 0
        if self.is_serial or rows < 2 * MIN_ENCODE_ROWS_PER_CHUNK:
            return code.encode_rows(matrix)
        ranges = self.chunk_ranges(rows, MIN_ENCODE_ROWS_PER_CHUNK)
        parts = self.run(kernels.encode_chunk,
                         [(code, matrix[lo:hi]) for lo, hi in ranges])
        return np.vstack(parts)

    def hash_columns(self, matrix: np.ndarray) -> List[bytes]:
        """Merkle leaf digests of every matrix column, chunked by column."""
        matrix = np.asarray(matrix, dtype=np.uint64)
        cols = matrix.shape[1] if matrix.ndim == 2 else 0
        if self.is_serial or cols < 2 * MIN_HASH_COLS_PER_CHUNK:
            return fieldhash.hash_columns(matrix)
        ranges = self.chunk_ranges(cols, MIN_HASH_COLS_PER_CHUNK)
        parts = self.run(kernels.hash_columns_chunk,
                         [(np.ascontiguousarray(matrix[:, lo:hi]),)
                          for lo, hi in ranges])
        return [d for part in parts for d in part]

    def hash_layer(self, raw: bytes) -> Optional[bytes]:
        """One Merkle layer combine step, chunked by output-node range.

        Returns ``None`` when the layer is below the fan-out threshold so
        the caller's serial loop (which also does the metrics accounting)
        handles it.
        """
        out_nodes = len(raw) // (2 * fieldhash.DIGEST_BYTES)
        if self.is_serial or out_nodes < MIN_LAYER_NODES:
            return None
        pair = 2 * fieldhash.DIGEST_BYTES
        ranges = self.chunk_ranges(out_nodes, MIN_LAYER_NODES // self.workers)
        parts = self.run(kernels.hash_layer_chunk,
                         [(raw[lo * pair : hi * pair],) for lo, hi in ranges])
        return b"".join(parts)
