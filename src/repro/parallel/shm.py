"""Zero-copy transfer between prover processes via POSIX shared memory.

The pickled-dispatch path that :class:`~repro.parallel.pool.ProverPool`
originally used serialized whole witness and codeword matrices into the
executor pipe for every chunk — at 2^16 constraints a single
``prove_many`` job shipped a ~27 MB proving key, and the batch path
measured a 0.32x *slowdown* against serial.  This module replaces the
pipe with named ``multiprocessing.shared_memory`` segments:

* the parent places an ndarray (or a pickled blob) in a segment ONCE and
  hands workers a tiny :class:`ArrayDesc`/:class:`BlobDesc` —
  ``(name, shape, dtype)`` — instead of the data;
* workers attach by name (:func:`attached` / :func:`read_blob`), compute
  on a view of the same physical pages, and write results into
  preallocated shared *output* buffers, so neither direction pays a copy
  beyond the initial placement;
* every segment is owned by a :class:`ShmArena` whose cleanup is
  guaranteed three ways — explicit :meth:`ShmArena.close` (also the
  context-manager exit), a module ``atexit`` hook, and a chained SIGTERM
  handler — so the test suite and a killed prover both leave ``/dev/shm``
  empty.

Set ``REPRO_PARALLEL_NO_SHM=1`` to disable the shared-memory path
entirely (platforms without ``/dev/shm`` semantics); the pool then falls
back to the original pickled dispatch, which remains bit-identical.
"""

from __future__ import annotations

import atexit
import os
import pickle
import re
import signal
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..obs.events import FLIGHT as _FLIGHT
from ..obs.metrics import METRICS as _METRICS

#: Environment switch for the pickled-dispatch fallback.
NO_SHM_ENV = "REPRO_PARALLEL_NO_SHM"


class ShmError(RuntimeError):
    """A shared-memory segment could not be created, attached, or mapped
    (most commonly: attaching a descriptor whose segment was torn down)."""


def shm_supported() -> bool:
    """True when named shared memory is importable on this platform."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - exotic platforms
        return False
    return True


def shm_enabled() -> bool:
    """True when the zero-copy path should be used (read per call, so
    tests and deployments can flip ``REPRO_PARALLEL_NO_SHM`` at runtime)."""
    if os.environ.get(NO_SHM_ENV, "") == "1":
        return False
    return shm_supported()


@dataclass(frozen=True)
class ArrayDesc:
    """Everything a worker needs to attach an ndarray by name."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class BlobDesc:
    """A raw byte blob (e.g. a pickled proving key) in a named segment.

    ``size`` is the logical length — the segment itself may be rounded up
    to a page boundary by the OS.
    """

    name: str
    size: int


def _attach_untracked(name: str):
    """Attach an existing segment WITHOUT registering it with the
    resource tracker.

    ``SharedMemory`` registers every *attach* (not just creation) with
    the ``multiprocessing`` resource tracker (CPython bpo-39959).  Under
    ``fork`` the tracker process is shared, so a worker's registration —
    or a later compensating ``unregister`` — collides with the creating
    process's own bookkeeping (double-unlink attempts, KeyError noise at
    exit).  Ownership and cleanup live solely in the creating process's
    :class:`ShmArena`, so attaches must be invisible to the tracker:
    Python 3.13 exposes ``track=False`` for exactly this; on older
    versions the ``register`` call is suppressed for the duration of the
    attach.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, create=False,
                                          track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        pass
    from multiprocessing import resource_tracker

    orig_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = orig_register


# ---------------------------------------------------------------------------
# Owning side
# ---------------------------------------------------------------------------

#: Live arenas in this process, for the atexit/SIGTERM safety nets.
_LIVE_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()
_CLEANUP_INSTALLED = False


def _cleanup_all_arenas() -> None:
    """Unlink every segment still owned by this process (safety net)."""
    for arena in list(_LIVE_ARENAS):
        try:
            arena.close()
        except Exception:  # noqa: BLE001 - never raise during teardown
            pass


def _sigterm_cleanup(signum, frame):  # pragma: no cover - signal path
    _cleanup_all_arenas()
    # Restore and re-raise so the process still dies with SIGTERM status.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.kill(os.getpid(), signal.SIGTERM)


def _install_cleanup_hooks() -> None:
    """Register the atexit hook and (if free) a chaining SIGTERM handler."""
    global _CLEANUP_INSTALLED
    if _CLEANUP_INSTALLED:
        return
    _CLEANUP_INSTALLED = True
    atexit.register(_cleanup_all_arenas)
    try:
        if signal.getsignal(signal.SIGTERM) == signal.SIG_DFL:
            signal.signal(signal.SIGTERM, _sigterm_cleanup)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


class ShmArena:
    """Owner of a family of named shared-memory segments.

    One arena per :class:`~repro.parallel.pool.ProverPool`: it creates
    input/output segments for kernel calls, hands out descriptors, and
    guarantees every segment is closed *and unlinked* — via
    :meth:`close`, the context-manager protocol, ``atexit``, or SIGTERM.
    """

    def __init__(self, prefix: str = "repro"):
        if not shm_supported():
            raise ShmError("shared memory is not available on this platform")
        self._prefix = f"{prefix}_{os.getpid()}"
        self._counter = 0
        self._segments: Dict[str, object] = {}  # name -> SharedMemory
        self._closed = False
        _LIVE_ARENAS.add(self)
        _install_cleanup_hooks()

    # -- allocation --------------------------------------------------------
    def _new_segment(self, nbytes: int):
        from multiprocessing import shared_memory

        self._counter += 1
        name = f"{self._prefix}_{self._counter}"
        try:
            shm = shared_memory.SharedMemory(name=name, create=True,
                                             size=max(1, nbytes))
        except (OSError, ValueError) as exc:
            raise ShmError(f"cannot create segment {name!r}: {exc}") from exc
        self._segments[name] = shm
        _METRICS.inc("parallel.shm_bytes_shared", nbytes)
        _METRICS.gauge("parallel.shm_in_use_bytes", self.bytes_in_use)
        return shm

    def alloc_array(self, shape: Tuple[int, ...],
                    dtype: str = "uint64") -> ArrayDesc:
        """Preallocate a zero-initialized shared output buffer."""
        desc = ArrayDesc(name="", shape=tuple(int(s) for s in shape),
                         dtype=str(np.dtype(dtype)))
        shm = self._new_segment(desc.nbytes)
        return ArrayDesc(shm.name.lstrip("/"), desc.shape, desc.dtype)

    def share_array(self, arr: np.ndarray) -> ArrayDesc:
        """Place one ndarray into a fresh segment (the single copy the
        zero-copy protocol pays) and return its descriptor."""
        arr = np.ascontiguousarray(arr)
        shm = self._new_segment(arr.nbytes)
        desc = ArrayDesc(shm.name.lstrip("/"), tuple(arr.shape),
                         str(arr.dtype))
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        del view
        return desc

    def share_blob(self, data: bytes) -> BlobDesc:
        """Place raw bytes (e.g. ``pickle.dumps(pk)``) into a segment."""
        shm = self._new_segment(len(data))
        shm.buf[: len(data)] = data
        return BlobDesc(shm.name.lstrip("/"), len(data))

    def share_pickle(self, obj) -> BlobDesc:
        return self.share_blob(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))

    # -- parent-side access ------------------------------------------------
    def view(self, desc: ArrayDesc) -> np.ndarray:
        """Writable parent-side view of an arena-owned segment."""
        shm = self._segments.get(desc.name)
        if shm is None:
            raise ShmError(f"segment {desc.name!r} is not owned by this arena")
        return np.ndarray(desc.shape, dtype=desc.dtype, buffer=shm.buf)

    @staticmethod
    def _release(shm) -> None:
        """Close and unlink one SharedMemory handle, tolerating every
        already-gone / already-closed state (idempotent by construction:
        a segment is released at most once because callers *pop* it out
        of ``_segments`` first, and the unlink itself swallows
        ``FileNotFoundError`` in case an external janitor or a racing
        cleanup chain got there before us)."""
        try:
            shm.close()
        except (BufferError, OSError):  # pragma: no cover - exotic states
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - platform-specific teardown
            pass

    def free(self, desc) -> None:
        """Close and unlink one segment before the arena itself closes
        (idempotent: freeing a descriptor twice is a no-op)."""
        shm = self._segments.pop(desc.name, None)
        if shm is None:
            return
        self._release(shm)
        _METRICS.gauge("parallel.shm_in_use_bytes", self.bytes_in_use)

    @property
    def bytes_in_use(self) -> int:
        return sum(shm.size for shm in self._segments.values())

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Close and unlink every owned segment.

        Idempotent AND reentrancy-safe: segments are *popped* out of the
        ownership dict before being released, so when the cleanup chain
        fires twice — explicit ``shutdown()`` plus the ``atexit`` hook,
        or a SIGTERM handler interrupting a close already in progress —
        the second pass sees an empty dict and each segment is unlinked
        exactly once.  (The old early-return-on-closed guard could skip
        the *rest* of the segments when a signal landed mid-loop.)
        """
        while self._segments:
            try:
                _, shm = self._segments.popitem()
            except KeyError:  # pragma: no cover - lost a race to a reentry
                break
            self._release(shm)
        self._closed = True
        _METRICS.gauge("parallel.shm_in_use_bytes", 0)
        _LIVE_ARENAS.discard(self)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self):  # pragma: no cover - GC order dependent
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass


# ---------------------------------------------------------------------------
# Attaching side (workers)
# ---------------------------------------------------------------------------

@contextmanager
def attached(desc: ArrayDesc) -> Iterator[np.ndarray]:
    """Attach a descriptor and yield a writable ndarray view.

    The mapping is closed (NOT unlinked — the owning arena does that) when
    the block exits; callers must not let views escape the block.  A
    descriptor whose segment was already torn down raises
    :class:`ShmError` rather than a bare ``FileNotFoundError``.
    """
    try:
        shm = _attach_untracked(desc.name)
    except FileNotFoundError as exc:
        raise ShmError(
            f"segment {desc.name!r} does not exist (torn down?)") from exc
    try:
        arr = np.ndarray(desc.shape, dtype=desc.dtype, buffer=shm.buf)
        yield arr
        del arr
    finally:
        shm.close()


def read_blob(desc: BlobDesc) -> bytes:
    """Copy a blob segment's logical contents out (then detach)."""
    try:
        shm = _attach_untracked(desc.name)
    except FileNotFoundError as exc:
        raise ShmError(
            f"segment {desc.name!r} does not exist (torn down?)") from exc
    try:
        return bytes(shm.buf[: desc.size])
    finally:
        shm.close()


def read_pickle(desc: BlobDesc):
    return pickle.loads(read_blob(desc))


# ---------------------------------------------------------------------------
# The janitor: reclaiming orphaned segments
# ---------------------------------------------------------------------------
#
# The cleanup chain above (close / atexit / SIGTERM) covers every exit a
# Python handler can observe — but SIGKILL, a hard OOM kill, or a power
# cut leave named ``repro*`` segments behind in /dev/shm, silently eating
# host memory until reboot.  Arena names embed the owning pid
# (``<prefix>_<pid>_<counter>``), so orphans are detectable: a segment
# whose owner is no longer alive belongs to nobody and can be unlinked.
# The janitor runs on pool startup and via ``repro doctor``.

#: Segment names owned by this module: prefix, owner pid, counter.
_SEGMENT_NAME_RE = re.compile(r"^repro[A-Za-z0-9_.]*?_(\d+)_\d+$")

#: Where POSIX named segments live on Linux (the only platform where the
#: janitor can enumerate them; elsewhere scan/reclaim return empty).
SHM_DIR = "/dev/shm"


def _pid_alive(pid: int) -> bool:
    """True when ``pid`` names a live process we can see."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    except OSError:  # pragma: no cover - conservative: assume alive
        return True
    return True


def segment_owner_pid(name: str) -> Optional[int]:
    """The pid embedded in a repro segment name, or None if the name is
    not ours (never touch segments other software owns)."""
    m = _SEGMENT_NAME_RE.match(name)
    return int(m.group(1)) if m else None


def scan_orphans(shm_dir: str = SHM_DIR) -> List[str]:
    """Names of repro-owned segments whose owning process is dead."""
    try:
        names = os.listdir(shm_dir)
    except OSError:  # non-Linux or no tmpfs: nothing to scan
        return []
    orphans = []
    for name in sorted(names):
        pid = segment_owner_pid(name)
        if pid is not None and pid != os.getpid() and not _pid_alive(pid):
            orphans.append(name)
    return orphans


def reclaim_orphans(shm_dir: str = SHM_DIR) -> List[str]:
    """Unlink every orphaned repro segment; returns the reclaimed names.

    Unlink races are expected (two pools starting at once, a doctor run
    next to a pool): ``FileNotFoundError`` means someone else already
    reclaimed it, which is success, not failure.
    """
    reclaimed = []
    for name in scan_orphans(shm_dir):
        try:
            os.unlink(os.path.join(shm_dir, name))
        except FileNotFoundError:
            continue  # lost the race: already reclaimed
        except OSError:  # pragma: no cover - permissions of foreign user
            continue
        reclaimed.append(name)
    if reclaimed:
        _METRICS.inc("parallel.janitor_reclaimed", len(reclaimed))
        _FLIGHT.record("janitor", reclaimed=len(reclaimed),
                       names=reclaimed[:8])
    return reclaimed
