"""Cooperative deadlines for the proving engine.

A proof has no natural preemption points a supervisor could interrupt —
the kernels are long numpy calls — so cancellation is *cooperative*: the
caller opens a :func:`deadline_scope`, and instrumented chokepoints
(phase boundaries in :mod:`repro.spartan.protocol`, every pooled kernel
entry, every dispatch wait in :class:`~repro.parallel.pool.ProverPool`)
call :func:`check_deadline`, which raises
:class:`~repro.errors.ProverTimeoutError` once the budget is spent.

The active deadline is module state, matching the single-threaded
prover.  Scopes nest: an inner scope can only *tighten* the deadline
(its expiry is clamped to the enclosing one), so a per-job budget inside
a batch budget never extends the batch.

The fast path is one ``is None`` check — proving without a deadline pays
nothing.  Worker processes inherit no deadline; the parent enforces
dispatch-level budgets by bounding its waits with :func:`remaining`
(see ``ProverPool._supervised_map``) and killing workers that overrun.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import ProverTimeoutError

__all__ = [
    "Deadline",
    "active_deadline",
    "check_deadline",
    "deadline_scope",
    "remaining",
]


class Deadline:
    """An absolute expiry on the monotonic clock plus its original budget."""

    __slots__ = ("expires_at", "budget_s", "label")

    def __init__(self, budget_s: float, label: str = ""):
        if budget_s is None or budget_s < 0:
            raise ValueError(f"deadline budget must be >= 0, got {budget_s}")
        self.budget_s = float(budget_s)
        self.expires_at = time.monotonic() + self.budget_s
        self.label = label

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, phase: str = "") -> None:
        """Raise :class:`ProverTimeoutError` if the budget is spent."""
        if self.expired:
            what = self.label or "prover deadline"
            from ..obs.events import FLIGHT
            FLIGHT.record("timeout", label=what, phase=phase,
                          budget_s=self.budget_s)
            raise ProverTimeoutError(f"{what} expired",
                                     budget_s=self.budget_s, phase=phase)


#: The active deadline (None = unbounded); module state like the tracer.
_ACTIVE: Optional[Deadline] = None


def active_deadline() -> Optional[Deadline]:
    """The deadline currently in force, or None."""
    return _ACTIVE


def remaining() -> Optional[float]:
    """Seconds left on the active deadline, or None when unbounded."""
    return None if _ACTIVE is None else _ACTIVE.remaining()


def check_deadline(phase: str = "") -> None:
    """Cooperative cancellation point: no-op when no deadline is active,
    raises :class:`~repro.errors.ProverTimeoutError` once expired."""
    if _ACTIVE is not None:
        _ACTIVE.check(phase)


@contextmanager
def deadline_scope(budget_s: Optional[float],
                   label: str = "") -> Iterator[Optional[Deadline]]:
    """Install a deadline for the duration of the block.

    ``budget_s=None`` is a no-op scope (unbounded).  Nested scopes clamp:
    the effective expiry is the *earlier* of the new budget and any
    enclosing deadline, so callers cannot accidentally extend a budget
    set above them.  The previous deadline is restored on exit even when
    the block raises.
    """
    global _ACTIVE
    if budget_s is None:
        yield _ACTIVE
        return
    deadline = Deadline(budget_s, label=label)
    prev = _ACTIVE
    if prev is not None and prev.expires_at < deadline.expires_at:
        deadline.expires_at = prev.expires_at
    _ACTIVE = deadline
    try:
        yield deadline
    finally:
        _ACTIVE = prev
