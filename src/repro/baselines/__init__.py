"""Baseline cost models: CPU Spartan+Orion, Groth16 CPU/GPU, PipeZK."""

from .cpu import DEFAULT_CPU, CpuModel, unoptimized_speedup
from .groth16 import Groth16Cpu, Groth16Gpu
from .pipezk import PipeZkModel

__all__ = [
    "DEFAULT_CPU",
    "CpuModel",
    "unoptimized_speedup",
    "Groth16Cpu",
    "Groth16Gpu",
    "PipeZkModel",
]
