"""CPU cost model for the Spartan+Orion prover (the paper's software
baseline: a 32-core 3.5 GHz Threadripper 3975WX running the authors'
enhanced Orion + multicore-Spartan codebase, Sec. VII).

Table IV shows CPU proving time is linear in the *padded* constraint
count (94.2 s at 2^24, doubling per log step); Fig. 6a gives the task
split; Sec. VIII-C quantifies the protocol optimizations the baseline
includes (Goldilocks64: 1.7x, Reed-Solomon: 1.2x) and the one it omits
(sumcheck recomputation: 1% slower on CPU).  This module encodes exactly
those measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..ntt.polymul import next_pow2

#: Table IV AES row: 94.2 s at 2^24 padded constraints.
SECONDS_PER_PADDED_CONSTRAINT = 94.2 / (1 << 24)

#: Fig. 6a CPU runtime fractions.
CPU_TIME_FRACTIONS: Dict[str, float] = {
    "sumcheck": 0.70,
    "rs_encode": 0.19,
    "polyarith": 0.06,
    "merkle": 0.03,
    "spmv": 0.02,
}

#: Sec. VIII-C protocol-optimization factors (speedups the enhanced
#: baseline gains over the original codebases).
GOLDILOCKS_SPEEDUP = 1.7
REED_SOLOMON_SPEEDUP = 1.2
#: Recomputation on the CPU *hurts* by 1% (it is not memory-bound).
RECOMPUTE_CPU_SLOWDOWN = 1.01

#: Sec. III parallel-scaling measurements at 32 cores.
PARALLEL_SPEEDUP_32C = 2.7
GROTH16_PARALLEL_SPEEDUP_32C = 5.0
#: Sec. III: serial multiply-rate deficit vs the Groth16 CPU implementation.
SERIAL_MULT_RATE_RATIO = 4.66


@dataclass
class CpuModel:
    """Spartan+Orion prover on the reference 32-core CPU."""

    use_goldilocks: bool = True
    use_reed_solomon: bool = True
    use_recompute: bool = False  # left off in the paper's CPU version

    def prover_seconds(self, raw_constraints: int) -> float:
        """Proving time for a raw (unpadded) statement."""
        padded = next_pow2(raw_constraints)
        t = SECONDS_PER_PADDED_CONSTRAINT * padded
        if not self.use_goldilocks:
            t *= GOLDILOCKS_SPEEDUP
        if not self.use_reed_solomon:
            t *= REED_SOLOMON_SPEEDUP
        if self.use_recompute:
            t *= RECOMPUTE_CPU_SLOWDOWN
        return t

    def prover_seconds_serial(self, raw_constraints: int) -> float:
        """Single-core time (undoing the measured 2.7x parallel speedup)."""
        return self.prover_seconds(raw_constraints) * PARALLEL_SPEEDUP_32C

    def time_by_family(self, raw_constraints: int) -> Dict[str, float]:
        """Fig. 6a: per-task CPU time."""
        total = self.prover_seconds(raw_constraints)
        return {fam: frac * total for fam, frac in CPU_TIME_FRACTIONS.items()}


#: The default (fully enhanced) software baseline.
DEFAULT_CPU = CpuModel()


def unoptimized_speedup() -> float:
    """Sec. VIII-C: overall speedup of the enhanced baseline over naively
    combining the original Spartan and Orion codebases (~2.1x)."""
    return GOLDILOCKS_SPEEDUP * REED_SOLOMON_SPEEDUP
