"""PipeZK cost model: the state-of-the-art Groth16 ASIC the paper
compares against (Sec. III, Sec. VII).

Per the paper's methodology, PipeZK is optimistically scaled to NoCap's
14nm technology, area, frequency and memory bandwidth, and moved from
MNT4-753 to the 4-10x faster BLS12-381 curve.  None of that helps its
end-to-end time, because PipeZK offloads the MSM G2 phase to the CPU and
is CPU-bound (Sec. III item 3): its proving time is linear in the raw
constraint count at ~0.501 s per million constraints (Table IV column).

Sec. III also reports the split at 16M constraints: the accelerated
portion runs in 1.43 s (a 32x speedup over the CPU for that part), while
the CPU portion caps the end-to-end speedup at 6.7x.
"""

from __future__ import annotations

from dataclasses import dataclass

from .groth16 import PROOF_BYTES, VERIFY_SECONDS

#: Table IV: 8.02 s at 16M constraints, linear in raw constraints.
SECONDS_PER_CONSTRAINT = 8.02 / 16e6

#: Sec. III: the ASIC-accelerated portion at 16M constraints.
ACCELERATED_SECONDS_AT_16M = 1.43
#: Speedup of the accelerated portion over the CPU.
ACCELERATED_PART_SPEEDUP = 32.0
#: End-to-end speedup cap imposed by the CPU-resident MSM G2 phase.
END_TO_END_SPEEDUP_CAP = 6.7


@dataclass
class PipeZkModel:
    """Iso-resource-scaled PipeZK running Groth16 over BLS12-381."""

    def prover_seconds(self, raw_constraints: int) -> float:
        return SECONDS_PER_CONSTRAINT * raw_constraints

    def accelerated_part_seconds(self, raw_constraints: int) -> float:
        """Time of the ASIC-resident portion alone."""
        return ACCELERATED_SECONDS_AT_16M * raw_constraints / 16e6

    def cpu_part_seconds(self, raw_constraints: int) -> float:
        """Time of the CPU-resident MSM G2 phase (the bottleneck)."""
        return (self.prover_seconds(raw_constraints)
                - self.accelerated_part_seconds(raw_constraints))

    def proof_bytes(self, raw_constraints: int) -> int:
        return PROOF_BYTES

    def verify_seconds(self, raw_constraints: int) -> float:
        return VERIFY_SECONDS
