"""Groth16 cost models: the zk-SNARK prior accelerators target (Sec. III).

Groth16 proving is dominated by multi-scalar multiplications (MSMs) over
BLS12-381 plus large NTTs; its cost is linear in the constraint count
(no power-of-two padding requirement for the MSMs).  Calibration points
are Table I at 16M constraints: 53.99 s on the 32-core CPU (libsnark),
37.44 s on a V100 GPU (GZKP); proofs are ~0.2 KB and verify in ~10 ms
regardless of circuit size.

The operation-count side of Sec. III's analysis lives in
:mod:`repro.analysis.opcounts`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Table I calibration: Groth16 on the 32-core CPU, 16M constraints.
CPU_SECONDS_PER_CONSTRAINT = 53.99 / 16e6
#: Table I: GZKP on an NVIDIA V100.
GPU_SECONDS_PER_CONSTRAINT = 37.44 / 16e6

#: Groth16 proofs: 3 group elements (~0.2 KB, Table I caption).
PROOF_BYTES = 200
#: Pairing-based verification, independent of circuit size.
VERIFY_SECONDS = 0.01

#: Sec. IX-B: generously-scaled GZKP estimate for the Auction benchmark,
#: derived by the paper from published Goldilocks-NTT GPU throughput.
GZKP_AUCTION_SECONDS = 513.0
GZKP_VS_NOCAP_SLOWDOWN = 47.5

#: Fraction of a BLS12-381 Groth16 prover spent in the MSM G2 phase that
#: PipeZK leaves on the CPU (Sec. III item 3 back-solves this).
MSM_G2_CPU_FRACTION = 8.02 / 53.99 * (1 - 1.43 / 8.02)


@dataclass
class Groth16Cpu:
    """libsnark-style parallel Groth16 prover on the reference CPU."""

    def prover_seconds(self, raw_constraints: int) -> float:
        return CPU_SECONDS_PER_CONSTRAINT * raw_constraints

    def proof_bytes(self, raw_constraints: int) -> int:
        return PROOF_BYTES

    def verify_seconds(self, raw_constraints: int) -> float:
        return VERIFY_SECONDS


@dataclass
class Groth16Gpu:
    """GZKP (V100 GPU) Groth16 prover."""

    def prover_seconds(self, raw_constraints: int) -> float:
        return GPU_SECONDS_PER_CONSTRAINT * raw_constraints

    def proof_bytes(self, raw_constraints: int) -> int:
        return PROOF_BYTES

    def verify_seconds(self, raw_constraints: int) -> float:
        return VERIFY_SECONDS
