"""Benchmark workloads: the paper's five applications plus synthetic R1CS."""

from .aes import aes_circuit, aes_demo_circuit
from .auction import auction_circuit, auction_demo_circuit
from .litmus import (
    Access,
    Transaction,
    litmus_circuit,
    litmus_demo_circuit,
    random_transactions,
)
from .rsa import rsa_circuit, rsa_demo_circuit
from .sha import sha_circuit, sha_demo_circuit
from .spec import (
    AES,
    AUCTION,
    LITMUS,
    PAPER_WORKLOADS,
    REFERENCE_CONSTRAINTS,
    RSA,
    SHA,
    WORKLOADS_BY_NAME,
    WorkloadSpec,
)
from .synthetic import synthetic_r1cs

__all__ = [
    "aes_circuit", "aes_demo_circuit",
    "auction_circuit", "auction_demo_circuit",
    "Access", "Transaction", "litmus_circuit", "litmus_demo_circuit",
    "random_transactions",
    "rsa_circuit", "rsa_demo_circuit",
    "sha_circuit", "sha_demo_circuit",
    "AES", "AUCTION", "LITMUS", "PAPER_WORKLOADS", "REFERENCE_CONSTRAINTS",
    "RSA", "SHA", "WORKLOADS_BY_NAME", "WorkloadSpec",
    "synthetic_r1cs",
]
