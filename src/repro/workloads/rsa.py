"""The RSA benchmark circuit (Table III: 98.0M constraints at paper scale).

Proves: "I know m such that m^e mod N = c" for public (N, e, c) — e.g.
knowledge of a plaintext/signature without revealing it (Sec. VII-B).
Paper scale uses 2048-bit moduli and 1,000 instances; the functional
circuit here is parameterized by modulus width, with tests running
64-256-bit instances (same limb machinery, linearly fewer constraints).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..r1cs.bignum import LIMB_BITS, BigNum, modexp
from ..r1cs.builder import Circuit

#: The standard RSA public exponent; tests may use smaller ones for speed.
DEFAULT_EXPONENT = 65537


def rsa_circuit(messages: List[int], modulus: int,
                exponent: int = DEFAULT_EXPONENT) -> Tuple[Circuit, List[int]]:
    """Build the RSA knowledge-of-preimage circuit.

    Public: modulus limbs (implicit constants), ciphertexts c_i.
    Witness: messages m_i with proof that m_i^e mod N = c_i.
    Returns (circuit, ciphertexts).
    """
    bits = modulus.bit_length()
    num_limbs = -(-bits // LIMB_BITS)
    ciphertexts = [pow(m, exponent, modulus) for m in messages]

    circuit = Circuit()
    ct_nums = [BigNum.public(circuit, c, num_limbs) for c in ciphertexts]
    for m, ct in zip(messages, ct_nums):
        if not 0 <= m < modulus:
            raise ValueError("message must be in [0, modulus)")
        m_num = BigNum.witness(circuit, m, num_limbs)
        result = modexp(circuit, m_num, exponent, modulus)
        result.assert_equal(ct)
    return circuit, ciphertexts


def _random_modulus(bits: int, rng: random.Random) -> int:
    """A random odd modulus of the requested width (product of two primes
    for realism at small sizes; primality by Miller-Rabin)."""

    def is_prime(n: int) -> bool:
        if n < 2:
            return False
        for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
            if n % p == 0:
                return n == p
        d, s = n - 1, 0
        while d % 2 == 0:
            d //= 2
            s += 1
        for _ in range(24):
            a = rng.randrange(2, n - 1)
            x = pow(a, d, n)
            if x in (1, n - 1):
                continue
            for _ in range(s - 1):
                x = x * x % n
                if x == n - 1:
                    break
            else:
                return False
        return True

    half = bits // 2
    while True:
        p = rng.getrandbits(half) | (1 << (half - 1)) | 1
        if is_prime(p):
            break
    while True:
        q = rng.getrandbits(bits - half) | (1 << (bits - half - 1)) | 1
        if is_prime(q) and q != p:
            break
    return p * q


def rsa_demo_circuit(num_messages: int = 1, modulus_bits: int = 64,
                     exponent: int = 17,
                     seed: int = 0x25A) -> Tuple[Circuit, List[int]]:
    """Deterministic small RSA instance for tests and examples."""
    rng = random.Random(seed)
    modulus = _random_modulus(modulus_bits, rng)
    messages = [rng.randrange(1, modulus) for _ in range(num_messages)]
    return rsa_circuit(messages, modulus, exponent)
