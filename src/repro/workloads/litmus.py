"""The Litmus benchmark circuit: verifiable database transactions
(Table III: 268.4M constraints at paper scale).

Litmus [84] proves transactional correctness (atomicity, serializability)
of a DBMS.  The circuit here models its verified execution core: a table
of rows, a serial schedule of YCSB-style transactions each touching two
rows (read or write with equal probability, as in Sec. VII-B), with

* one-hot address selectors proving each access touched the claimed row,
* state threading proving every write landed, and
* a running log accumulator (a multiset-hash-style fold, echoing
  Spartan's 4-gamma multiset hashes) binding the access log.

Public inputs: initial table, final table, final log accumulator.
Witness: the transaction stream (addresses, ops, values).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..field.goldilocks import MODULUS
from ..r1cs.builder import Circuit, Wire

#: Fixed public fold constant for the log accumulator.
LOG_GAMMA = 0x5151515151


@dataclass
class Access:
    """One row access: read (op=0) or write (op=1) of ``value`` at ``addr``."""

    addr: int
    op: int
    value: int


@dataclass
class Transaction:
    """A YCSB-style transaction touching two rows."""

    accesses: Tuple[Access, Access]


def _one_hot(circuit: Circuit, addr_bits: List[Wire], num_rows: int) -> List[Wire]:
    """Selectors sel[i] = 1 iff addr == i, from the address bits."""
    selectors = []
    log_r = len(addr_bits)
    for row in range(num_rows):
        acc: Wire | None = None
        for b in range(log_r):
            lit = addr_bits[b] if (row >> b) & 1 else circuit.not_(addr_bits[b])
            acc = lit if acc is None else circuit.mul(acc, lit)
        selectors.append(acc if acc is not None else circuit.one)
    return selectors


def litmus_circuit(transactions: List[Transaction], initial_table: List[int],
                   ) -> Tuple[Circuit, List[int], int]:
    """Build the verified-transaction circuit.

    Returns (circuit, final_table, final_log_accumulator); the last two
    are also the circuit's trailing public inputs.
    """
    num_rows = len(initial_table)
    if num_rows & (num_rows - 1):
        raise ValueError("table size must be a power of two")
    log_r = num_rows.bit_length() - 1

    # Execute natively to learn the public outputs.
    table = [v % MODULUS for v in initial_table]
    log_acc = 0
    for txn in transactions:
        for acc in txn.accesses:
            observed = table[acc.addr]
            if acc.op == 1:
                table[acc.addr] = acc.value % MODULUS
            payload = (acc.addr + 2 * acc.op
                       + 4 * (acc.value if acc.op else observed)) % MODULUS
            log_acc = (log_acc * LOG_GAMMA + payload) % MODULUS
    final_table = list(table)
    final_log = log_acc

    circuit = Circuit()
    init_pub = [circuit.public(v) for v in initial_table]
    final_pub = [circuit.public(v) for v in final_table]
    log_pub = circuit.public(final_log)

    state: List[Wire] = list(init_pub)
    log_wire: Wire = circuit.constant(0)
    for txn in transactions:
        for acc in txn.accesses:
            addr_bits = [circuit.witness((acc.addr >> b) & 1)
                         for b in range(log_r)]
            for b in addr_bits:
                circuit.assert_bool(b)
            op = circuit.witness(acc.op)
            circuit.assert_bool(op)
            val = circuit.witness(acc.value if acc.op else 0)
            sel = _one_hot(circuit, addr_bits, num_rows)

            # Observed value at the addressed row.
            observed = circuit.constant(0)
            for s, row in zip(sel, state):
                observed = observed + circuit.mul(s, row)

            # Write: state'[i] = state[i] + sel[i]*op*(val - state[i]).
            write_gate = circuit.mul(op, val - observed)
            state = [row + circuit.mul(s, write_gate)
                     for s, row in zip(sel, state)]

            # Log fold: payload = addr + 2*op + 4*(op ? val : observed).
            addr_wire = circuit.from_bits(addr_bits)
            logged_val = circuit.select(op, val, observed)
            payload = addr_wire + op * 2 + logged_val * 4
            log_wire = log_wire * LOG_GAMMA + payload

    for row, pub in zip(state, final_pub):
        circuit.assert_equal(row, pub)
    circuit.assert_equal(log_wire, log_pub)
    return circuit, final_table, final_log


def random_transactions(count: int, num_rows: int,
                        seed: int = 0x117) -> List[Transaction]:
    """YCSB-style workload: each transaction touches two random rows,
    reading or writing with equal probability (Sec. VII-B)."""
    rng = random.Random(seed)
    txns = []
    for _ in range(count):
        accs = []
        for _ in range(2):
            accs.append(Access(addr=rng.randrange(num_rows),
                               op=rng.randrange(2),
                               value=rng.randrange(1 << 32)))
        txns.append(Transaction(accesses=(accs[0], accs[1])))
    return txns


def litmus_demo_circuit(num_transactions: int = 8, num_rows: int = 8,
                        seed: int = 0x117):
    """Deterministic small Litmus instance for tests and examples."""
    rng = random.Random(seed ^ 0xABC)
    initial = [rng.randrange(1 << 32) for _ in range(num_rows)]
    txns = random_transactions(num_transactions, num_rows, seed)
    return litmus_circuit(txns, initial)
