"""The SHA benchmark circuit (Table III: 32.0M constraints at paper scale).

Proves: "I know a message whose SHA-256 digest is D" — ownership of a
digital object without revealing it (Sec. VII-B).  32-bit words travel as
bit vectors; rotations are free rewirings, XOR/AND cost one constraint per
bit, and each modular addition re-decomposes its sum (the dominant cost).

Paper scale hashes 1,000 512-bit blocks (a 64 KB file); tests use fewer
blocks/rounds — the structure is identical and constraint counts scale
linearly.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..r1cs.builder import Circuit
from ..r1cs.gadgets import (
    Bits,
    add_mod,
    bits_and,
    bits_not,
    bits_rotr,
    bits_shr,
    bits_xor,
    const_bits,
    witness_bits,
)
from .sha256_reference import IV, K, compress

Word = Bits  # 32 boolean wires, LSB first

WIDTH = 32


def _sigma0(c: Circuit, x: Word) -> Word:
    return bits_xor(c, bits_xor(c, bits_rotr(x, 7), bits_rotr(x, 18)),
                    bits_shr(c, x, 3))


def _sigma1(c: Circuit, x: Word) -> Word:
    return bits_xor(c, bits_xor(c, bits_rotr(x, 17), bits_rotr(x, 19)),
                    bits_shr(c, x, 10))


def _big_sigma0(c: Circuit, x: Word) -> Word:
    return bits_xor(c, bits_xor(c, bits_rotr(x, 2), bits_rotr(x, 13)),
                    bits_rotr(x, 22))


def _big_sigma1(c: Circuit, x: Word) -> Word:
    return bits_xor(c, bits_xor(c, bits_rotr(x, 6), bits_rotr(x, 11)),
                    bits_rotr(x, 25))


def _ch(c: Circuit, e: Word, f: Word, g: Word) -> Word:
    return bits_xor(c, bits_and(c, e, f), bits_and(c, bits_not(c, e), g))


def _maj(c: Circuit, a: Word, b: Word, d: Word) -> Word:
    ab = bits_and(c, a, b)
    ad = bits_and(c, a, d)
    bd = bits_and(c, b, d)
    return bits_xor(c, bits_xor(c, ab, ad), bd)


def compression_circuit(circuit: Circuit, state_words: List[Word],
                        block_words: List[Word],
                        num_rounds: int = 64) -> List[Word]:
    """In-circuit SHA-256 compression of one block into the running state."""
    w = list(block_words)
    for t in range(16, num_rounds):
        w.append(add_mod(circuit,
                         [w[t - 16], _sigma0(circuit, w[t - 15]),
                          w[t - 7], _sigma1(circuit, w[t - 2])], WIDTH))

    a, b, c, d, e, f, g, h = state_words
    for t in range(num_rounds):
        k_t = const_bits(circuit, K[t], WIDTH)
        t1 = add_mod(circuit,
                     [h, _big_sigma1(circuit, e), _ch(circuit, e, f, g),
                      k_t, w[t]], WIDTH)
        t2 = add_mod(circuit,
                     [_big_sigma0(circuit, a), _maj(circuit, a, b, c)], WIDTH)
        h, g, f = g, f, e
        e = add_mod(circuit, [d, t1], WIDTH)
        d, c, b = c, b, a
        a = add_mod(circuit, [t1, t2], WIDTH)
    return [add_mod(circuit, [s, v], WIDTH)
            for s, v in zip(state_words, [a, b, c, d, e, f, g, h])]


def sha_circuit(blocks: Sequence[Sequence[int]],
                num_rounds: int = 64) -> Tuple[Circuit, List[int]]:
    """Prove knowledge of message blocks hashing (from IV) to a public digest.

    Public inputs: the 8 final state words.  Witness: the 16 x 32-bit
    message words of every block.  Returns (circuit, final state words).
    """
    state_vals = list(IV)
    for block in blocks:
        state_vals = compress(state_vals, block, num_rounds)

    circuit = Circuit()
    digest_wires = [circuit.public(wv) for wv in state_vals]

    state = [const_bits(circuit, v, WIDTH) for v in IV]
    for block in blocks:
        block_bits = [witness_bits(circuit, wv, WIDTH) for wv in block]
        state = compression_circuit(circuit, state, block_bits, num_rounds)

    for word_bits, pub in zip(state, digest_wires):
        circuit.assert_equal(circuit.from_bits(word_bits), pub)
    return circuit, state_vals


def sha_demo_circuit(num_blocks: int = 1, num_rounds: int = 8,
                     seed: int = 0x5A) -> Tuple[Circuit, List[int]]:
    """Deterministic small SHA instance for tests and examples."""
    import random

    rng = random.Random(seed)
    blocks = [[rng.getrandbits(32) for _ in range(16)]
              for _ in range(num_blocks)]
    return sha_circuit(blocks, num_rounds)
