"""The Auction benchmark circuit: verifiable sealed-bid auction
(Table III: 550.0M constraints at paper scale).

After Galal & Youssef [33]: the auctioneer proves to all participants
that the announced winner really submitted the highest bid, without
revealing any losing bid (Sec. VII-B).

Public inputs: number of bids, winner index, winning amount.
Witness: all bids.  Constraints: the winner's bid equals the announced
amount, and every other bid is strictly smaller (bit-decomposition
comparisons, the dominant cost).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..r1cs.builder import Circuit

DEFAULT_BID_BITS = 32


def auction_circuit(bids: List[int], winner: int,
                    bid_bits: int = DEFAULT_BID_BITS) -> Tuple[Circuit, int]:
    """Build the sealed-bid auction circuit.

    Returns (circuit, winning_amount).  Raises if ``winner`` does not
    actually hold the strict maximum (ties with earlier bidders allowed
    only if the winner is the first maximal bidder).
    """
    if not bids:
        raise ValueError("auction needs at least one bid")
    if any(b >= (1 << bid_bits) for b in bids):
        raise ValueError("bid exceeds bid_bits")
    amount = bids[winner]
    if max(bids) != amount:
        raise ValueError("declared winner does not hold the maximum bid")

    circuit = Circuit()
    winner_pub = circuit.public(winner)
    amount_pub = circuit.public(amount)

    bid_wires = [circuit.witness(b) for b in bids]
    for w in bid_wires:
        circuit.to_bits(w, bid_bits)  # range check every bid

    # The winner's bid matches the announcement.
    circuit.assert_equal(bid_wires[winner], amount_pub)
    # Bind the winner index (it is baked into the wiring above).
    circuit.assert_equal(circuit.constant(winner), winner_pub)

    # Every other bid is <= the winning amount.
    for i, w in enumerate(bid_wires):
        if i == winner:
            continue
        is_less_or_eq = circuit.less_than(w, amount_pub + 1, bid_bits + 1)
        circuit.assert_equal(is_less_or_eq, 1)
    return circuit, amount


def auction_demo_circuit(num_bids: int = 16, bid_bits: int = 16,
                         seed: int = 0xB1D) -> Tuple[Circuit, int]:
    """Deterministic small auction instance for tests and examples."""
    rng = random.Random(seed)
    bids = [rng.randrange(1 << bid_bits) for _ in range(num_bids)]
    winner = max(range(num_bids), key=lambda i: bids[i])
    return auction_circuit(bids, winner, bid_bits)
