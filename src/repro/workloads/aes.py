"""The AES benchmark circuit (Table III: 16.0M constraints at paper scale).

The circuit proves: "I know a key k such that AES-128_k(plaintext) =
ciphertext" for public plaintext/ciphertext — e.g. proving a ciphertext is
well-formed or decrypts to a given message without revealing the key
(Sec. VII-B).  Bytes travel as 8 boolean wires; the S-box is the
interpolated degree-255 lookup polynomial; ShiftRows is free rewiring;
MixColumns is xtime + XOR structure.

At paper scale the benchmark encrypts 1,000 blocks (a 16 KB message); the
tests use reduced blocks/rounds, which scales constraints linearly without
changing the structure.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..r1cs.builder import Circuit
from ..r1cs.gadgets import (
    Bits,
    bits_xor,
    const_bits,
    witness_bits,
)
from .aes_reference import RCON, SBOX, aes128_encrypt_block

Byte = Bits  # 8 boolean wires, LSB first


def _sbox_byte(circuit: Circuit, byte: Byte) -> Byte:
    """S-box via the interpolated lookup polynomial (Sec. V of DESIGN.md)."""
    x = circuit.from_bits(byte)
    y = circuit.lookup(x, SBOX, width=8, assume_range=True)
    return circuit.to_bits(y, 8)


def _xtime(circuit: Circuit, byte: Byte) -> Byte:
    """Multiply by x in GF(2^8): shift left, conditionally XOR 0x1B.

    Free except where 0x1B has a set bit (bits 0, 1, 3, 4), which costs
    one XOR each — and bit 0, where the output *is* the carried MSB.
    """
    msb = byte[7]
    zero = circuit.constant(0)
    shifted = [zero] + byte[:7]
    out = list(shifted)
    out[0] = msb
    for i in (1, 3, 4):
        out[i] = circuit.xor(shifted[i], msb)
    return out


def _xor_bytes(circuit: Circuit, a: Byte, b: Byte) -> Byte:
    return bits_xor(circuit, a, b)


def _shift_rows(state: List[Byte]) -> List[Byte]:
    out: List[Byte] = [None] * 16  # type: ignore[list-item]
    for c in range(4):
        for r in range(4):
            out[4 * c + r] = state[4 * ((c + r) % 4) + r]
    return out


def _mix_columns(circuit: Circuit, state: List[Byte]) -> List[Byte]:
    out: List[Byte] = []
    for c in range(4):
        col = state[4 * c : 4 * c + 4]
        xt = [_xtime(circuit, b) for b in col]
        for r in range(4):
            term = _xor_bytes(circuit, xt[r],
                              _xor_bytes(circuit, xt[(r + 1) % 4], col[(r + 1) % 4]))
            term = _xor_bytes(circuit, term, col[(r + 2) % 4])
            term = _xor_bytes(circuit, term, col[(r + 3) % 4])
            out.append(term)
    return out


def _add_round_key(circuit: Circuit, state: List[Byte],
                   rk: List[Byte]) -> List[Byte]:
    return [_xor_bytes(circuit, s, k) for s, k in zip(state, rk)]


def _key_expansion_circuit(circuit: Circuit, key: List[Byte],
                           num_rounds: int) -> List[List[Byte]]:
    """In-circuit AES key schedule over byte wires."""
    words: List[List[Byte]] = [key[i : i + 4] for i in range(0, 16, 4)]
    for i in range(4, 4 * (num_rounds + 1)):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [_sbox_byte(circuit, b) for b in temp]
            rcon = const_bits(circuit, RCON[i // 4 - 1], 8)
            temp[0] = _xor_bytes(circuit, temp[0], rcon)
        words.append([_xor_bytes(circuit, a, b)
                      for a, b in zip(words[i - 4], temp)])
    return [sum(words[4 * r : 4 * r + 4], []) for r in range(num_rounds + 1)]


def aes_circuit(plaintexts: Sequence[Sequence[int]], key: Sequence[int],
                num_rounds: int = 10) -> Tuple[Circuit, List[List[int]]]:
    """Build the AES proof circuit for one or more 16-byte blocks.

    Public inputs: plaintext and ciphertext bytes of every block (as field
    wires).  Witness: the key bytes (as bits).  Returns the circuit and
    the expected ciphertexts (from the reference implementation).
    """
    circuit = Circuit()
    expected = [aes128_encrypt_block(p, key, num_rounds) for p in plaintexts]

    # Public wires first: plaintext and ciphertext bytes as field elements.
    pt_wires = [[circuit.public(b) for b in block] for block in plaintexts]
    ct_wires = [[circuit.public(b) for b in block] for block in expected]

    # Witness: key bits.
    key_bytes = [witness_bits(circuit, b, 8) for b in key]
    round_keys = _key_expansion_circuit(circuit, key_bytes, num_rounds)

    for pt_block, ct_block, block_bytes in zip(pt_wires, ct_wires, plaintexts):
        # Decompose public plaintext bytes into bits (range-checked).
        state = [circuit.to_bits(w, 8) for w in pt_block]
        state = _add_round_key(circuit, state, round_keys[0])
        for rnd in range(1, num_rounds):
            state = [_sbox_byte(circuit, b) for b in state]
            state = _shift_rows(state)
            state = _mix_columns(circuit, state)
            state = _add_round_key(circuit, state, round_keys[rnd])
        state = [_sbox_byte(circuit, b) for b in state]
        state = _shift_rows(state)
        state = _add_round_key(circuit, state, round_keys[num_rounds])
        # Bind the computed state to the public ciphertext wires.
        for byte_bits, ct_wire in zip(state, ct_block):
            circuit.assert_equal(circuit.from_bits(byte_bits), ct_wire)
    return circuit, expected


def aes_demo_circuit(num_blocks: int = 1, num_rounds: int = 2,
                     seed: int = 0xAE5) -> Tuple[Circuit, List[List[int]]]:
    """Deterministic small AES instance for tests and examples."""
    import random

    rng = random.Random(seed)
    key = [rng.randrange(256) for _ in range(16)]
    blocks = [[rng.randrange(256) for _ in range(16)] for _ in range(num_blocks)]
    return aes_circuit(blocks, key, num_rounds)
