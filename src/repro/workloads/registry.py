"""Named demo-workload circuit registry.

One canonical mapping from a circuit id (the label carried in proof
envelopes and service requests) to a builder producing the demo circuit
at CLI-scale parameters.  Both the command line (``repro prove sha``)
and the proving service (``repro serve``) resolve circuit ids here, so a
bundle proved by one is verifiable by the other.

Builders are lazy (imported on first use) and the compiled artifacts are
cheap enough to rebuild; persistent processes cache the *keys* built
from them (:mod:`repro.service.cache`), not the circuits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..errors import ConfigError

#: Circuit-id -> zero-argument builder returning the demo circuit.
_BUILDERS: Dict[str, Callable] = {}

#: Paper-name spellings accepted anywhere a circuit id is (CLI, service).
ALIASES = {"sha256": "sha", "aes128": "aes"}


def _register(name: str):
    def deco(fn):
        _BUILDERS[name] = fn
        return fn
    return deco


@_register("aes")
def _aes():
    from .aes import aes_demo_circuit
    return aes_demo_circuit(num_blocks=1, num_rounds=2)[0]


@_register("sha")
def _sha():
    from .sha import sha_demo_circuit
    return sha_demo_circuit(num_blocks=1, num_rounds=8)[0]


@_register("rsa")
def _rsa():
    from .rsa import rsa_demo_circuit
    return rsa_demo_circuit(num_messages=1, modulus_bits=64, exponent=17)[0]


@_register("litmus")
def _litmus():
    from .litmus import litmus_demo_circuit
    return litmus_demo_circuit(num_transactions=6, num_rows=8)[0]


@_register("auction")
def _auction():
    from .auction import auction_demo_circuit
    return auction_demo_circuit(num_bids=12, bid_bits=16)[0]


def workload_choices() -> List[str]:
    """Every accepted circuit id, canonical names and aliases, sorted."""
    return sorted(list(_BUILDERS) + list(ALIASES))


def resolve_workload(name: str) -> str:
    """Canonical circuit id for ``name`` (aliases folded), or
    :class:`~repro.errors.ConfigError` for unknown ids."""
    resolved = ALIASES.get(name, name)
    if resolved not in _BUILDERS:
        raise ConfigError(
            f"unknown circuit id {name!r}; known workloads: "
            f"{', '.join(workload_choices())}")
    return resolved


def build_workload(name: str) -> Tuple[str, object]:
    """Build the demo circuit for ``name``; returns (canonical id, circuit)."""
    resolved = resolve_workload(name)
    return resolved, _BUILDERS[resolved]()
