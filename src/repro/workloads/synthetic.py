"""Synthetic satisfiable R1CS instances with the paper's matrix structure.

The performance model consumes only structural properties of an instance
(padded size, non-zeros, bandedness), so paper-scale workloads are
represented by generated instances whose A, B, C have O(1) non-zeros per
row concentrated in a band around the diagonal — the "limited-bandwidth"
property Sec. V-A's SpMV mapping exploits.  The generator also produces a
satisfying assignment, so the same instances exercise the functional
prover at small scale.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import VerificationError
from ..field import vector as fv
from ..r1cs.matrices import SparseMatrix
from ..r1cs.system import R1CS


def synthetic_r1cs(log_size: int, band: int = 64, nnz_per_row: int = 3,
                   seed: int = 0xBEEF) -> Tuple[R1CS, np.ndarray, np.ndarray]:
    """Generate a satisfiable banded R1CS of 2^log_size constraints.

    Returns (r1cs, public, witness).  Row i of A and B each draw
    ``nnz_per_row`` columns within ``band`` of i; C has one non-zero per
    row whose value is solved so the row is satisfied.
    """
    if log_size < 2:
        raise ValueError("log_size must be >= 2")
    n = 1 << log_size
    half = n // 2
    rng = np.random.default_rng(seed)

    # z = [1, x | zero-pad]  ++  [witness, all non-zero].
    num_public = min(2, half)
    z = np.zeros(n, dtype=np.uint64)
    z[0] = 1
    if num_public > 1:
        z[1] = int(rng.integers(1, 1 << 32))
    wit = fv.rand_vector(half, rng)
    wit = np.where(wit == 0, np.uint64(1), wit)
    z[half:] = wit

    def banded_cols(count: int) -> np.ndarray:
        rows = np.repeat(np.arange(n, dtype=np.int64), count)
        offsets = rng.integers(-band, band + 1, size=rows.size)
        cols = np.clip(rows + offsets, 0, n - 1)
        return rows, cols

    rows_a, cols_a = banded_cols(nnz_per_row)
    rows_b, cols_b = banded_cols(nnz_per_row)
    vals_a = fv.rand_vector(rows_a.size, rng)
    vals_b = fv.rand_vector(rows_b.size, rng)

    a = SparseMatrix(n, n, rows_a, cols_a, vals_a)
    b = SparseMatrix(n, n, rows_b, cols_b, vals_b)

    az = a.matvec(z)
    bz = b.matvec(z)
    target = fv.mul(az, bz)

    # C: one entry per row at a witness column with a non-zero z value;
    # use column half + (i mod half), whose z entry is never zero.
    rows_c = np.arange(n, dtype=np.int64)
    cols_c = half + (rows_c % half)
    z_at = z[cols_c]
    vals_c = fv.mul(target, fv.inv_vector(z_at))
    c = SparseMatrix(n, n, rows_c, cols_c, vals_c)

    r1cs = R1CS(a, b, c, num_public=num_public, num_witness=half)
    public = z[:num_public].copy()
    if not r1cs.is_satisfied(z):
        # Explicit check: a bare assert would vanish under python -O.
        raise VerificationError("synthetic R1CS generator produced an "
                                "unsatisfied instance")
    return r1cs, public, wit
