"""Pure-Python SHA-256 reference (compression function exposed).

The circuit in :mod:`repro.workloads.sha` proves knowledge of a message
block hashing to a public digest; this module supplies the expected
values, and the test-suite cross-checks full-message hashing against
``hashlib``.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

K = [
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
]

IV = [
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
]

_M32 = 0xFFFFFFFF


def rotr(x: int, k: int) -> int:
    return ((x >> k) | (x << (32 - k))) & _M32


def compress(state: Sequence[int], block_words: Sequence[int],
             num_rounds: int = 64) -> List[int]:
    """One SHA-256 compression of a 16-word block into an 8-word state.

    ``num_rounds`` < 64 gives the reduced-round variant used by fast tests
    (structurally identical, cryptographically weak).
    """
    if len(block_words) != 16 or len(state) != 8:
        raise ValueError("compress needs 16 message words and 8 state words")
    w = list(block_words)
    for t in range(16, num_rounds):
        s0 = rotr(w[t - 15], 7) ^ rotr(w[t - 15], 18) ^ (w[t - 15] >> 3)
        s1 = rotr(w[t - 2], 17) ^ rotr(w[t - 2], 19) ^ (w[t - 2] >> 10)
        w.append((w[t - 16] + s0 + w[t - 7] + s1) & _M32)

    a, b, c, d, e, f, g, h = state
    for t in range(num_rounds):
        big_s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        t1 = (h + big_s1 + ch + K[t] + w[t]) & _M32
        big_s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        t2 = (big_s0 + maj) & _M32
        h, g, f, e, d, c, b, a = g, f, e, (d + t1) & _M32, c, b, a, (t1 + t2) & _M32
    return [(x + y) & _M32 for x, y in zip(state, [a, b, c, d, e, f, g, h])]


def sha256(message: bytes) -> bytes:
    """Full SHA-256 (padding + iterated compression); matches hashlib."""
    length = len(message) * 8
    message += b"\x80"
    message += b"\x00" * ((56 - len(message)) % 64)
    message += struct.pack(">Q", length)
    state = list(IV)
    for off in range(0, len(message), 64):
        words = list(struct.unpack(">16I", message[off : off + 64]))
        state = compress(state, words)
    return struct.pack(">8I", *state)
