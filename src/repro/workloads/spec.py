"""The paper's benchmark suite (Table III) as workload specifications.

Each spec carries the paper-scale R1CS size (raw constraints before
power-of-two padding) plus a builder for a structurally identical small
functional instance.  Performance models consume the paper-scale
dimensions; the functional layer proves the small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..ntt.polymul import next_pow2


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of Table III."""

    name: str
    raw_constraints: int           # Table III "R1CS Size"
    description: str
    paper_proof_mb: float          # Table III "Proof [MB]"
    paper_verify_ms: float         # Table III "V time [ms]"
    paper_nocap_s: float           # Table IV NoCap proving time (seconds)
    paper_cpu_s: float             # Table IV CPU proving time (seconds)
    paper_pipezk_s: float          # Table IV PipeZK proving time (seconds)
    build_demo: Optional[Callable] = None

    @property
    def padded_constraints(self) -> int:
        return next_pow2(self.raw_constraints)

    @property
    def log_padded(self) -> int:
        return self.padded_constraints.bit_length() - 1


def _demo_aes():
    from .aes import aes_demo_circuit

    return aes_demo_circuit(num_blocks=1, num_rounds=2)[0]


def _demo_sha():
    from .sha import sha_demo_circuit

    return sha_demo_circuit(num_blocks=1, num_rounds=8)[0]


def _demo_rsa():
    from .rsa import rsa_demo_circuit

    return rsa_demo_circuit(num_messages=1, modulus_bits=64, exponent=17)[0]


def _demo_litmus():
    from .litmus import litmus_demo_circuit

    return litmus_demo_circuit(num_transactions=8, num_rows=8)[0]


def _demo_auction():
    from .auction import auction_demo_circuit

    return auction_demo_circuit(num_bids=16, bid_bits=16)[0]


#: Table III / Table IV, verbatim paper numbers.
AES = WorkloadSpec(
    name="AES", raw_constraints=16_000_000,
    description="AES-128 encryption of 1,000 blocks (16 KB message)",
    paper_proof_mb=8.1, paper_verify_ms=134.0,
    paper_nocap_s=0.1513, paper_cpu_s=94.2, paper_pipezk_s=8.0,
    build_demo=_demo_aes)

SHA = WorkloadSpec(
    name="SHA", raw_constraints=32_000_000,
    description="SHA-256 over 1,000 512-bit blocks (64 KB file)",
    paper_proof_mb=8.7, paper_verify_ms=153.7,
    paper_nocap_s=0.311, paper_cpu_s=188.4, paper_pipezk_s=16.0,
    build_demo=_demo_sha)

RSA = WorkloadSpec(
    name="RSA", raw_constraints=98_000_000,
    description="RSA-2048 exponentiation of 1,000 256-byte messages",
    paper_proof_mb=10.1, paper_verify_ms=198.0,
    paper_nocap_s=1.3, paper_cpu_s=753.6, paper_pipezk_s=49.1,
    build_demo=_demo_rsa)

LITMUS = WorkloadSpec(
    name="Litmus", raw_constraints=268_400_000,
    description="Verifiable DBMS: 10,000 YCSB transactions, 2 rows each",
    paper_proof_mb=10.9, paper_verify_ms=222.4,
    paper_nocap_s=2.6, paper_cpu_s=1507.2, paper_pipezk_s=134.6,
    build_demo=_demo_litmus)

AUCTION = WorkloadSpec(
    name="Auction", raw_constraints=550_000_000,
    description="Verifiable sealed-bid auction, 100x the bids of [33]",
    paper_proof_mb=12.5, paper_verify_ms=276.1,
    paper_nocap_s=10.8, paper_cpu_s=6120.0, paper_pipezk_s=275.8,
    build_demo=_demo_auction)

PAPER_WORKLOADS: List[WorkloadSpec] = [AES, SHA, RSA, LITMUS, AUCTION]

WORKLOADS_BY_NAME: Dict[str, WorkloadSpec] = {w.name: w for w in PAPER_WORKLOADS}

#: The Table I / Fig. 5 / Fig. 6 reference statement size.
REFERENCE_CONSTRAINTS = 16_000_000
