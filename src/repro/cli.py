"""Command-line interface: ``python -m repro <command>``.

Commands
--------
tables       Print Tables I, IV and V (end-to-end, proving, speedups).
simulate     Simulate one NoCap proof (size, breakdowns, power).
area         Print the Table II area breakdown.
sensitivity  Print the Fig. 7 sensitivity sweep.
prove        Build, prove and verify a demo workload circuit; ``--out``
             writes the proof as a self-describing envelope, ``--workers``
             fans the prover kernels across processes.
verify       Verify a proof envelope written by ``prove --out`` (exit
             codes per docs/ROBUSTNESS.md).
trace        Prove a workload under the tracer, simulate it on NoCap, and
             export a Chrome trace plus a per-phase breakdown
             (see docs/OBSERVABILITY.md).
doctor       Inspect /dev/shm for repro-owned shared-memory segments and
             reclaim orphans left by killed provers.
metrics      Render the process metrics registry as OpenMetrics text
             (counters, gauges, latency histograms).
report       Dump the flight recorder's recent job reports and
             supervision events (reads the in-memory ring, or a JSONL
             spool written via ``prove --flight-log`` / REPRO_FLIGHT_LOG).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional


def _cmd_tables(args: argparse.Namespace) -> int:
    from .analysis import gmean, table1_rows, table5_rows
    from .analysis.tables import format_table
    from .baselines import DEFAULT_CPU, PipeZkModel
    from .nocap.simulator import prover_seconds
    from .workloads.spec import PAPER_WORKLOADS

    rows = table1_rows()
    print(format_table(
        ["zkSNARK / prover", "Prover (s)", "Send (s)", "Verifier (s)", "Total (s)"],
        [(r.label, r.prover_s, r.send_s, r.verifier_s, r.total_s) for r in rows],
        "Table I: end-to-end, 16M constraints, 10 MB/s link"))

    pipezk = PipeZkModel()
    t4 = []
    for w in PAPER_WORKLOADS:
        t = prover_seconds(w.raw_constraints)
        t4.append((w.name, t, DEFAULT_CPU.prover_seconds(w.raw_constraints) / t,
                   pipezk.prover_seconds(w.raw_constraints) / t))
    print()
    print(format_table(["Workload", "NoCap (s)", "vs CPU", "vs PipeZK"], t4,
                       "Table IV: proving time and speedups"))
    print(f"gmean: {gmean([r[2] for r in t4]):.0f}x vs CPU, "
          f"{gmean([r[3] for r in t4]):.0f}x vs PipeZK")

    t5 = table5_rows()
    print()
    print(format_table(
        ["Workload", "Total (s)", "vs PipeZK"],
        [(r.workload, r.total_s, r.speedup_vs_pipezk) for r in t5],
        "Table V: end-to-end vs PipeZK"))
    print(f"gmean: {gmean([r.speedup_vs_pipezk for r in t5]):.1f}x")
    return 0


def _simulate_payload(report, power, log_n: int) -> dict:
    """Machine-readable summary of one simulation (``simulate --json``)."""
    from .obs import FAMILIES

    time_fracs = report.time_fractions()
    traffic_fracs = report.traffic_fractions()
    return {
        "schema": "repro/simulate",
        "schema_version": 1,
        "log_n": log_n,
        "padded_constraints": report.padded_constraints,
        "total_seconds": report.total_seconds,
        "total_traffic_bytes": report.total_traffic_bytes,
        "compute_utilization": report.compute_utilization(),
        "memory_utilization": report.memory_utilization(),
        "power_watts": {
            "total": power.total_watts,
            "fu": power.fu_watts,
            "rf": power.rf_watts,
            "hbm": power.hbm_watts,
        },
        # Stable column ordering: the canonical FAMILIES taxonomy.
        "time_fractions": {f: time_fracs.get(f, 0.0) for f in FAMILIES},
        "traffic_fractions": {f: traffic_fracs.get(f, 0.0)
                              for f in FAMILIES},
        "tasks": [
            {"name": t.name, "family": t.family, "seconds": t.seconds,
             "mem_bytes": t.mem_bytes, "bound": t.bound}
            for t in report.task_times
        ],
    }


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .nocap import DEFAULT_CONFIG, NoCapSimulator, power_model
    from .obs import FAMILIES

    cfg = DEFAULT_CONFIG
    scales = {}
    for resource in ("arith", "hash", "ntt", "hbm", "rf"):
        factor = getattr(args, resource)
        if factor != 1.0:
            scales[resource] = factor
    if scales:
        cfg = cfg.scale(**scales)
    sim = NoCapSimulator(cfg)
    report = sim.simulate(1 << args.log_n, recompute=not args.no_recompute)
    power = power_model(report)
    if args.trace_out:
        from .obs.export import write_chrome_trace

        write_chrome_trace(args.trace_out, report=report,
                           metadata={"command": "simulate",
                                     "log_n": args.log_n})
    if args.json:
        print(json.dumps(_simulate_payload(report, power, args.log_n),
                         indent=2))
        return 0
    print(f"NoCap proof of 2^{args.log_n} constraints: "
          f"{report.total_seconds * 1e3:.2f} ms")
    print(f"  HBM traffic: {report.total_traffic_bytes / 1e9:.2f} GB "
          f"({report.memory_utilization():.0%} of bandwidth-time)")
    print(f"  compute utilization: {report.compute_utilization():.0%}")
    print(f"  power: {power.total_watts:.1f} W "
          f"(FUs {power.fu_watts:.1f}, RF {power.rf_watts:.1f}, "
          f"HBM {power.hbm_watts:.1f})")
    # Stable FAMILIES ordering so successive runs diff cleanly.
    time_fracs = report.time_fractions()
    traffic_fracs = report.traffic_fractions()
    print(f"  {'family':<10} {'time':>7} {'traffic':>8}")
    for fam in FAMILIES:
        print(f"    {fam:<10} {time_fracs.get(fam, 0.0):6.1%} "
              f"{traffic_fracs.get(fam, 0.0):7.1%}")
    if args.trace_out:
        print(f"  task timeline written to {args.trace_out}")
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    from .nocap import area_model

    for name, mm2 in area_model().as_table().items():
        print(f"  {name:<35} {mm2:6.2f} mm^2")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from .analysis.tables import format_table
    from .nocap import sensitivity_sweep

    factors = (0.25, 0.5, 1.0, 2.0, 4.0)
    points = sensitivity_sweep(factors=factors)
    perf = {}
    for p in points:
        perf.setdefault(p.resource, {})[p.factor] = p.relative_performance
    print(format_table(
        ["Resource"] + [f"x{f}" for f in factors],
        [(res,) + tuple(perf[res][f] for f in factors) for res in perf],
        "Fig. 7: relative gmean performance"))
    return 0


def _workload_choices() -> List[str]:
    from .workloads.registry import workload_choices

    return workload_choices()


def _build_workload(name: str):
    from .workloads.registry import build_workload

    return build_workload(name)


def _print_metrics(snapshot: dict) -> None:
    print("metrics:")
    for name, value in sorted(snapshot.get("counters", {}).items()):
        print(f"  {name:<28} {value:>14,}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        print(f"  {name:<28} {value:>14,}")


def _make_pool(args: argparse.Namespace):
    """The persistent ProverPool when ``--workers N>1`` was given, else
    None.  The pool is process-wide (repro.parallel.get_pool) and is torn
    down by its atexit hook — commands must not close it mid-process."""
    workers = getattr(args, "workers", None)
    if workers is None or workers <= 1:
        return None
    from .parallel import get_pool

    return get_pool(workers)


def _cmd_prove(args: argparse.Namespace) -> int:
    from .snark import preset_by_name, prove, setup, verify

    preset = preset_by_name(args.preset)
    name, circuit = _build_workload(args.workload)
    print(f"{name}: {circuit.num_constraints} constraints")
    r1cs, public, witness = circuit.compile()
    pk, vk = setup(r1cs, preset)
    pool = _make_pool(args)
    if args.flight_log:
        from .obs import FLIGHT

        FLIGHT.spool_to(args.flight_log)

    def run():
        t0 = time.perf_counter()
        bundle = prove(pk, public, witness, pool=pool, circuit_id=name,
                       timeout_s=args.timeout, attach_report=True)
        t1 = time.perf_counter()
        ok = verify(vk, bundle)
        t2 = time.perf_counter()
        return bundle, ok, t0, t1, t2

    tracer = None
    if args.trace or args.trace_out or args.metrics or args.metrics_out:
        from . import obs

        with obs.tracing() as tracer:
            bundle, ok, t0, t1, t2 = run()
    else:
        bundle, ok, t0, t1, t2 = run()
    print(f"prove: {t1 - t0:.2f} s | verify: {t2 - t1:.2f} s | "
          f"proof: {bundle.size_bytes()} bytes | valid: {ok}")
    if bundle.report is not None:
        ev = bundle.report.events
        print(f"job {bundle.report.job_id}: dispatch="
              f"{bundle.report.dispatch}"
              + (f" incidents={ev}" if ev else ""))
    if args.metrics_out:
        from .obs.openmetrics import write_openmetrics

        write_openmetrics(args.metrics_out)
        print(f"OpenMetrics exposition written to {args.metrics_out}")
    if tracer is not None and (args.trace or args.trace_out):
        print("\nphase tree:")
        print(tracer.format_tree())
    if tracer is not None and args.metrics:
        print()
        _print_metrics(tracer.metrics_snapshot)
    if tracer is not None and args.trace_out:
        from .obs.export import write_chrome_trace

        write_chrome_trace(args.trace_out, records=tracer.records(),
                           metadata={"command": "prove", "workload": name},
                           worker_records=tracer.worker_records())
        print(f"\ntrace written to {args.trace_out}")
    if args.out:
        raw = bundle.to_bytes()
        with open(args.out, "wb") as fh:
            fh.write(raw)
        print(f"proof bundle ({len(raw)} bytes, preset {preset.name}) "
              f"written to {args.out}")
    from .analysis import estimate

    print("\nprojection at paper parameters:")
    print(estimate(circuit).summary())
    return 0 if ok else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    """Verify a serialized proof bundle against its embedded statement.

    Exit codes follow docs/ROBUSTNESS.md: 0 valid, 4 malformed envelope
    (DeserializationError), 5 proof invalid, 3 configuration problems
    (unknown preset / unresolvable circuit id).
    """
    from .errors import ConfigError
    from .snark import ProofBundle, preset_by_name, setup, verify

    with open(args.bundle, "rb") as fh:
        raw = fh.read()
    # Strict parse: DeserializationError propagates to main() -> exit 4.
    bundle = ProofBundle.from_bytes(raw)
    workload = args.workload or bundle.circuit_id
    if not workload:
        raise ConfigError(
            "bundle carries no circuit id; pass --workload to name the "
            "statement it proves")
    # Unknown ids raise ConfigError -> exit 3 via main().
    name, circuit = _build_workload(workload)
    r1cs, _, _ = circuit.compile()
    _, vk = setup(r1cs, preset_by_name(bundle.preset_name))
    print(f"{args.bundle}: preset {bundle.preset_name}, circuit {name}, "
          f"{len(bundle.public)} public inputs, {len(raw)} bytes")
    if verify(vk, bundle):
        print("proof valid")
        return 0
    print("proof INVALID", file=sys.stderr)
    return EXIT_VERIFICATION_ERROR


def _cmd_trace(args: argparse.Namespace) -> int:
    """Prove under the tracer, simulate the same statement on NoCap, and
    emit Chrome trace + BENCH_phases.json with a drift table."""
    from . import obs
    from .nocap import NoCapSimulator
    from .obs.export import write_chrome_trace, write_phases
    from .snark import preset_by_name, prove, setup, verify

    preset = preset_by_name(args.preset)
    name, circuit = _build_workload(args.workload)
    print(f"{name}: {circuit.num_constraints} constraints")
    r1cs, public, witness = circuit.compile()
    pk, vk = setup(r1cs, preset)
    pool = _make_pool(args)
    if args.flight_log:
        from .obs import FLIGHT

        FLIGHT.spool_to(args.flight_log)
    with obs.tracing() as tracer:
        bundle = prove(pk, public, witness, pool=pool, circuit_id=name,
                       timeout_s=args.timeout)
        ok = verify(vk, bundle)
    if args.metrics_out:
        from .obs.openmetrics import write_openmetrics

        write_openmetrics(args.metrics_out)
        print(f"OpenMetrics exposition written to {args.metrics_out}")
    if not ok:
        print("proof failed to verify", file=sys.stderr)
        return 1

    padded = 1 << r1cs.shape.log_size
    report = NoCapSimulator().simulate(padded)

    write_chrome_trace(args.trace_out, records=tracer.records(),
                       report=report,
                       metadata={"command": "trace", "workload": name,
                                 "padded_constraints": padded},
                       worker_records=tracer.worker_records())
    payload = write_phases(args.phases_out, tracer=tracer, report=report,
                           workload=name)

    func = payload["functional"]
    sim = payload["simulated"]
    print(f"functional prove: {func['total_s'] * 1e3:.1f} ms (measured) | "
          f"NoCap: {sim['total_s'] * 1e3:.3f} ms (simulated, 2^"
          f"{r1cs.shape.log_size})")
    print(f"\n  {'family':<10} {'measured':>10} {'meas %':>7} "
          f"{'sim %':>7} {'drift':>7}")
    for fam in obs.FAMILIES:
        meas_s = func["seconds_by_family"][fam]
        meas_f = func["fractions_by_family"][fam]
        sim_f = sim["fractions_by_family"][fam]
        print(f"  {fam:<10} {meas_s * 1e3:8.1f}ms {meas_f:6.1%} "
              f"{sim_f:6.1%} {meas_f - sim_f:+6.1%}")
    print("\n(drift = measured share - simulated share; large positive "
          "values mark phases where\n the software prover is slower than "
          "the hardware model expects)")
    if args.metrics:
        print()
        _print_metrics(tracer.metrics_snapshot)
    print(f"\ntrace written to {args.trace_out} "
          f"(open in https://ui.perfetto.dev)")
    print(f"phase breakdown written to {args.phases_out}")
    return 0


#: Distinct exit codes per error class, so scripted callers can tell a
#: malformed proof from a bad configuration without parsing stderr.
EXIT_CONFIG_ERROR = 3
EXIT_DESERIALIZATION_ERROR = 4
EXIT_VERIFICATION_ERROR = 5
EXIT_TIMEOUT = 6


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Render the process metrics registry as OpenMetrics text.

    The registry is process-local, so in a fresh CLI process the
    exposition is empty until something records into it; long-running
    embedders (or tests) call :func:`repro.obs.openmetrics.render`
    directly after proving.  ``prove --metrics-out`` is the one-shot
    equivalent: prove, then snapshot.
    """
    from .obs.openmetrics import render, write_openmetrics

    if args.out:
        write_openmetrics(args.out)
        print(f"OpenMetrics exposition written to {args.out}")
        return 0
    sys.stdout.write(render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Dump recent flight-recorder records (jobs + supervision events).

    Reads the JSONL spool when one is named (``--log``, or the
    ``REPRO_FLIGHT_LOG`` environment variable — the recorder in any
    prover process with that variable set appends every record there);
    otherwise falls back to this process's in-memory ring.
    """
    import os

    from .obs import FLIGHT
    from .obs.events import FLIGHT_LOG_ENV, format_events, read_spool

    path = args.log or os.environ.get(FLIGHT_LOG_ENV)
    if path:
        try:
            events = read_spool(path, last=args.last)
        except OSError as exc:
            print(f"cannot read flight log {path}: {exc}", file=sys.stderr)
            return 1
        source = path
    else:
        events = [e.to_dict() for e in FLIGHT.last(args.last)]
        source = "in-memory ring (set REPRO_FLIGHT_LOG or pass --log for "\
                 "cross-process history)"
    if args.json:
        print(json.dumps(events, indent=2))
        return 0
    print(f"flight recorder: {len(events)} record(s) from {source}")
    if events:
        print(format_events(events))
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Scan /dev/shm for repro-owned segments; reclaim orphans.

    A prover that dies by SIGKILL (OOM killer, ``kill -9``) cannot run
    its cleanup hooks, leaving named segments behind to eat host memory.
    Segment names embed the owning pid, so orphans are identifiable and
    safe to unlink.  ``--dry-run`` reports without unlinking.
    """
    import os

    from .parallel import shm

    try:
        names = sorted(os.listdir(shm.SHM_DIR))
    except OSError:
        print(f"{shm.SHM_DIR} is not available on this platform; "
              "nothing to inspect")
        return 0
    owned = [n for n in names if shm.segment_owner_pid(n) is not None]
    orphans = set(shm.scan_orphans())
    live = [n for n in owned if n not in orphans]
    print(f"{shm.SHM_DIR}: {len(owned)} repro segment(s) "
          f"({len(live)} owned by live processes, {len(orphans)} orphaned)")
    for name in live:
        path = os.path.join(shm.SHM_DIR, name)
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        print(f"  live    {name}  pid={shm.segment_owner_pid(name)} "
              f"{size:,} bytes")
    for name in sorted(orphans):
        print(f"  orphan  {name}  pid={shm.segment_owner_pid(name)} (dead)")
    if not orphans:
        return 0
    if args.dry_run:
        print(f"dry run: {len(orphans)} orphan(s) left in place")
        return 0
    reclaimed = shm.reclaim_orphans()
    print(f"reclaimed {len(reclaimed)} orphaned segment(s)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the proving service daemon (see docs/SERVICE.md)."""
    from .service import ServiceConfig, serve_forever

    kwargs = dict(
        host=args.host, port=args.port, unix_socket=args.unix_socket,
        queue_depth=args.queue_depth, max_per_client=args.max_per_client,
        job_slots=args.job_slots, workers=args.workers,
        preset=args.preset,
        key_cache_bytes=args.key_cache_mb * 1024 * 1024,
        proof_cache_bytes=args.proof_cache_mb * 1024 * 1024)
    if args.timeout is not None:
        kwargs["timeout_s"] = args.timeout  # else keep the config default
    config = ServiceConfig(**kwargs)
    if args.flight_log:
        from .obs import FLIGHT

        FLIGHT.spool_to(args.flight_log)
    return serve_forever(config)


def _client_from(args: argparse.Namespace):
    from .service import ServiceClient

    address = args.unix_socket if args.unix_socket else args.connect
    return ServiceClient(address)


def _cmd_client(args: argparse.Namespace) -> int:
    """Talk to a running ``repro serve`` daemon.

    Server-side failures surface as the same typed errors local commands
    raise, so the exit-code table (docs/API.md) applies unchanged.
    """
    with _client_from(args) as svc:
        if args.action == "prove":
            envelope = svc.prove(args.workload, preset=args.preset,
                                 seed=args.seed, priority=args.priority,
                                 timeout_s=args.timeout)
            print(f"proof: {len(envelope)} bytes")
            if args.out:
                with open(args.out, "wb") as fh:
                    fh.write(envelope)
                print(f"proof bundle written to {args.out}")
            return 0
        if args.action == "verify":
            with open(args.bundle, "rb") as fh:
                envelope = fh.read()
            ok = svc.verify(envelope, circuit_id=args.workload or "",
                            timeout_s=args.timeout)
            if ok:
                print("proof valid")
                return 0
            print("proof INVALID", file=sys.stderr)
            return EXIT_VERIFICATION_ERROR
        if args.action == "status":
            print(json.dumps(svc.status(args.job_id), indent=2))
            return 0
        if args.action == "stats":
            print(json.dumps(svc.stats(), indent=2))
            return 0
        if args.action == "shutdown":
            svc.shutdown_server()
            print("server draining")
            return 0
    raise AssertionError(f"unhandled client action {args.action!r}")


#: One exit-code contract for every command, local or via the service.
EXIT_CODE_TABLE = """\
exit codes: 0 success | 1 generic failure | 2 usage error |
3 configuration (ConfigError) | 4 malformed input (DeserializationError) |
5 proof invalid (VerificationError) | 6 deadline expired
(ProverTimeoutError).  `repro client` maps server-side errors onto the
same codes."""


def build_parser() -> argparse.ArgumentParser:
    from .snark.params import PRESETS

    # Shared option vocabulary (one spelling everywhere): commands opt in
    # to exactly the parents they support.
    preset_p = argparse.ArgumentParser(add_help=False)
    preset_p.add_argument("--preset", choices=sorted(PRESETS),
                          default="test-fast",
                          help="security preset (default %(default)s)")
    workers_p = argparse.ArgumentParser(add_help=False)
    workers_p.add_argument("--workers", type=int, default=None, metavar="N",
                           help="fan prover kernels out across N worker "
                                "processes (proof bytes are identical at "
                                "any N)")
    timeout_p = argparse.ArgumentParser(add_help=False)
    timeout_p.add_argument("--timeout", type=float, default=None,
                           metavar="SECS",
                           help="cooperative proving deadline; on expiry "
                                f"exit {EXIT_TIMEOUT} (ProverTimeoutError)")
    telemetry_p = argparse.ArgumentParser(add_help=False)
    telemetry_p.add_argument("--metrics-out", metavar="PATH", default=None,
                             help="write counters/gauges/latency histograms "
                                  "as OpenMetrics text")
    telemetry_p.add_argument("--flight-log", metavar="PATH", default=None,
                             help="append flight-recorder records to PATH "
                                  "as JSON lines (read back with `repro "
                                  "report --log PATH`)")
    connect_p = argparse.ArgumentParser(add_help=False)
    connect_p.add_argument("--connect", metavar="HOST:PORT",
                           default="127.0.0.1:7464",
                           help="service TCP address "
                                "(default %(default)s)")
    connect_p.add_argument("--unix-socket", metavar="PATH", default=None,
                           help="connect over a unix socket instead of TCP")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="NoCap (MICRO 2024) reproduction: hash-based ZKPs with "
                    "a co-designed accelerator model",
        epilog=EXIT_CODE_TABLE + "  Pass --strict to re-raise typed input "
               "errors with a full traceback instead of the one-line "
               "message.")
    parser.add_argument("--strict", action="store_true",
                        help="re-raise typed input errors with a traceback "
                             "instead of the one-line message")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I/IV/V").set_defaults(
        func=_cmd_tables)

    sim = sub.add_parser("simulate", help="simulate one NoCap proof")
    sim.add_argument("--log-n", type=int, default=24,
                     help="log2 of the padded constraint count (default 24)")
    sim.add_argument("--no-recompute", action="store_true",
                     help="disable the sumcheck recomputation optimization")
    for resource in ("arith", "hash", "ntt", "hbm", "rf"):
        sim.add_argument(f"--{resource}", type=float, default=1.0,
                         help=f"scale factor for {resource} (default 1.0)")
    sim.add_argument("--json", action="store_true",
                     help="print a machine-readable summary instead of text")
    sim.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write the simulated task timeline as Chrome "
                          "trace-event JSON")
    sim.set_defaults(func=_cmd_simulate)

    sub.add_parser("area", help="print the Table II area breakdown"
                   ).set_defaults(func=_cmd_area)
    sub.add_parser("sensitivity", help="print the Fig. 7 sweep"
                   ).set_defaults(func=_cmd_sensitivity)

    prove = sub.add_parser(
        "prove", help="prove+verify a demo workload",
        parents=[preset_p, workers_p, timeout_p, telemetry_p])
    prove.add_argument("workload", choices=_workload_choices())
    prove.add_argument("--out", metavar="PATH", default=None,
                       help="write the proof as a self-describing envelope "
                            "(verify it with `repro verify PATH`)")
    prove.add_argument("--trace", action="store_true",
                       help="record prover phase spans and print the tree")
    prove.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write the span tree as Chrome trace-event JSON "
                            "(implies --trace)")
    prove.add_argument("--metrics", action="store_true",
                       help="print kernel counters (hashes, butterflies, ...)")
    prove.set_defaults(func=_cmd_prove)

    ver = sub.add_parser(
        "verify",
        help="verify a proof bundle written by `repro prove --out`")
    ver.add_argument("bundle", metavar="BUNDLE",
                     help="path to a serialized proof envelope")
    ver.add_argument("--workload", choices=_workload_choices(), default=None,
                     help="statement the proof claims (default: the circuit "
                          "id embedded in the envelope)")
    ver.set_defaults(func=_cmd_verify)

    trace = sub.add_parser(
        "trace",
        help="prove under the tracer + simulate on NoCap, export Chrome "
             "trace and per-phase breakdown",
        parents=[preset_p, workers_p, timeout_p, telemetry_p])
    trace.add_argument("workload", choices=_workload_choices())
    trace.add_argument("--trace-out", metavar="PATH", default="trace.json",
                       help="Chrome trace-event JSON output path "
                            "(default trace.json)")
    trace.add_argument("--phases-out", metavar="PATH",
                       default="BENCH_phases.json",
                       help="per-phase breakdown output path "
                            "(default BENCH_phases.json)")
    trace.add_argument("--metrics", action="store_true",
                       help="also print kernel counters")
    trace.set_defaults(func=_cmd_trace)

    serve = sub.add_parser(
        "serve",
        help="run the proving service daemon (docs/SERVICE.md)",
        parents=[preset_p, workers_p, timeout_p, telemetry_p])
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (default %(default)s)")
    serve.add_argument("--port", type=int, default=7464,
                       help="TCP port; 0 picks a free one "
                            "(default %(default)s)")
    serve.add_argument("--unix-socket", metavar="PATH", default=None,
                       help="listen on a unix socket instead of TCP")
    serve.add_argument("--queue-depth", type=int, default=64, metavar="N",
                       help="bounded job-queue depth; submissions past it "
                            "are rejected with the 429-style queue-full "
                            "error (default %(default)s)")
    serve.add_argument("--max-per-client", type=int, default=16, metavar="N",
                       help="per-client fairness cap on queued jobs "
                            "(default %(default)s)")
    serve.add_argument("--job-slots", type=int, default=1, metavar="N",
                       help="concurrent proving jobs; must stay 1 when "
                            "--workers > 1 (default %(default)s)")
    serve.add_argument("--key-cache-mb", type=int, default=256,
                       metavar="MB",
                       help="proving/verifying-key cache budget "
                            "(default %(default)s)")
    serve.add_argument("--proof-cache-mb", type=int, default=64,
                       metavar="MB",
                       help="content-addressed proof cache budget "
                            "(default %(default)s)")
    serve.set_defaults(func=_cmd_serve)

    client = sub.add_parser(
        "client",
        help="submit work to a running `repro serve` daemon")
    csub = client.add_subparsers(dest="action", required=True)
    cprove = csub.add_parser(
        "prove", help="prove a workload on the service",
        parents=[connect_p, preset_p, timeout_p])
    cprove.add_argument("workload", choices=_workload_choices())
    cprove.add_argument("--seed", type=int, default=None,
                        help="zk-mask seed (fixed seed => deterministic, "
                             "cacheable proof bytes)")
    cprove.add_argument("--priority", type=int, default=0,
                        help="queue priority, lower runs sooner "
                             "(default %(default)s)")
    cprove.add_argument("--out", metavar="PATH", default=None,
                        help="write the returned proof envelope "
                             "(verify with `repro verify PATH`)")
    cprove.set_defaults(func=_cmd_client)
    cverify = csub.add_parser(
        "verify", help="verify a proof envelope on the service",
        parents=[connect_p, timeout_p])
    cverify.add_argument("bundle", metavar="BUNDLE",
                         help="path to a serialized proof envelope")
    cverify.add_argument("--workload", choices=_workload_choices(),
                         default=None,
                         help="statement the proof claims (default: the "
                              "circuit id embedded in the envelope)")
    cverify.set_defaults(func=_cmd_client)
    cstatus = csub.add_parser(
        "status", help="query one job's state", parents=[connect_p])
    cstatus.add_argument("job_id", metavar="JOB_ID")
    cstatus.set_defaults(func=_cmd_client)
    cstats = csub.add_parser(
        "stats", help="dump service queue/cache/job statistics",
        parents=[connect_p])
    cstats.set_defaults(func=_cmd_client)
    cshutdown = csub.add_parser(
        "shutdown", help="ask the daemon to drain and exit",
        parents=[connect_p])
    cshutdown.set_defaults(func=_cmd_client)

    doctor = sub.add_parser(
        "doctor",
        help="list repro shared-memory segments and reclaim orphans "
             "left by killed provers")
    doctor.add_argument("--dry-run", action="store_true",
                        help="report orphans without unlinking them")
    doctor.set_defaults(func=_cmd_doctor)

    metrics = sub.add_parser(
        "metrics",
        help="render the process metrics registry as OpenMetrics text")
    metrics.add_argument("--out", metavar="PATH", default=None,
                         help="write to PATH instead of stdout")
    metrics.set_defaults(func=_cmd_metrics)

    report = sub.add_parser(
        "report",
        help="dump recent flight-recorder job reports and supervision "
             "events")
    report.add_argument("--last", type=int, default=20, metavar="N",
                        help="show the most recent N records "
                             "(default: %(default)s)")
    report.add_argument("--json", action="store_true",
                        help="emit raw JSON records instead of the "
                             "one-line-per-event rendering")
    report.add_argument("--log", metavar="PATH", default=None,
                        help="read records from a JSONL flight log "
                             "(default: $REPRO_FLIGHT_LOG, else the "
                             "in-memory ring)")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from .errors import (
        ConfigError,
        DeserializationError,
        ProverTimeoutError,
        ReproError,
        TranscriptError,
        VerificationError,
    )

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): not an error.
        return 0
    except ReproError as exc:
        # User-input errors get a one-line message and a distinct exit
        # code, not a traceback (unless --strict asks for one).  The
        # mapping is the same whether the error was raised locally or
        # relayed from a `repro serve` daemon by `repro client`.
        if args.strict:
            raise
        if isinstance(exc, ConfigError):
            code = EXIT_CONFIG_ERROR
        elif isinstance(exc, DeserializationError):
            code = EXIT_DESERIALIZATION_ERROR
        elif isinstance(exc, ProverTimeoutError):
            code = EXIT_TIMEOUT
        elif isinstance(exc, (VerificationError, TranscriptError)):
            code = EXIT_VERIFICATION_ERROR
        else:
            # Service/transport errors (queue full, server unreachable):
            # transient operational failures, not input errors.
            code = 1
        print(f"error ({type(exc).__name__}): {exc}", file=sys.stderr)
        return code


if __name__ == "__main__":
    sys.exit(main())
