"""Command-line interface: ``python -m repro <command>``.

Commands
--------
tables       Print Tables I, IV and V (end-to-end, proving, speedups).
simulate     Simulate one NoCap proof (size, breakdowns, power).
area         Print the Table II area breakdown.
sensitivity  Print the Fig. 7 sensitivity sweep.
prove        Build, prove and verify a demo workload circuit.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _cmd_tables(args: argparse.Namespace) -> int:
    from .analysis import gmean, table1_rows, table5_rows
    from .analysis.tables import format_table
    from .baselines import DEFAULT_CPU, PipeZkModel
    from .nocap.simulator import prover_seconds
    from .workloads.spec import PAPER_WORKLOADS

    rows = table1_rows()
    print(format_table(
        ["zkSNARK / prover", "Prover (s)", "Send (s)", "Verifier (s)", "Total (s)"],
        [(r.label, r.prover_s, r.send_s, r.verifier_s, r.total_s) for r in rows],
        "Table I: end-to-end, 16M constraints, 10 MB/s link"))

    pipezk = PipeZkModel()
    t4 = []
    for w in PAPER_WORKLOADS:
        t = prover_seconds(w.raw_constraints)
        t4.append((w.name, t, DEFAULT_CPU.prover_seconds(w.raw_constraints) / t,
                   pipezk.prover_seconds(w.raw_constraints) / t))
    print()
    print(format_table(["Workload", "NoCap (s)", "vs CPU", "vs PipeZK"], t4,
                       "Table IV: proving time and speedups"))
    print(f"gmean: {gmean([r[2] for r in t4]):.0f}x vs CPU, "
          f"{gmean([r[3] for r in t4]):.0f}x vs PipeZK")

    t5 = table5_rows()
    print()
    print(format_table(
        ["Workload", "Total (s)", "vs PipeZK"],
        [(r.workload, r.total_s, r.speedup_vs_pipezk) for r in t5],
        "Table V: end-to-end vs PipeZK"))
    print(f"gmean: {gmean([r.speedup_vs_pipezk for r in t5]):.1f}x")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .nocap import DEFAULT_CONFIG, NoCapSimulator, power_model

    cfg = DEFAULT_CONFIG
    scales = {}
    for resource in ("arith", "hash", "ntt", "hbm", "rf"):
        factor = getattr(args, resource)
        if factor != 1.0:
            scales[resource] = factor
    if scales:
        cfg = cfg.scale(**scales)
    sim = NoCapSimulator(cfg)
    report = sim.simulate(1 << args.log_n, recompute=not args.no_recompute)
    power = power_model(report)
    print(f"NoCap proof of 2^{args.log_n} constraints: "
          f"{report.total_seconds * 1e3:.2f} ms")
    print(f"  HBM traffic: {report.total_traffic_bytes / 1e9:.2f} GB "
          f"({report.memory_utilization():.0%} of bandwidth-time)")
    print(f"  compute utilization: {report.compute_utilization():.0%}")
    print(f"  power: {power.total_watts:.1f} W "
          f"(FUs {power.fu_watts:.1f}, RF {power.rf_watts:.1f}, "
          f"HBM {power.hbm_watts:.1f})")
    print("  time by task family:")
    for fam, frac in sorted(report.time_fractions().items(),
                            key=lambda kv: -kv[1]):
        print(f"    {fam:<10} {frac:6.1%}")
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    from .nocap import area_model

    for name, mm2 in area_model().as_table().items():
        print(f"  {name:<35} {mm2:6.2f} mm^2")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from .analysis.tables import format_table
    from .nocap import sensitivity_sweep

    factors = (0.25, 0.5, 1.0, 2.0, 4.0)
    points = sensitivity_sweep(factors=factors)
    perf = {}
    for p in points:
        perf.setdefault(p.resource, {})[p.factor] = p.relative_performance
    print(format_table(
        ["Resource"] + [f"x{f}" for f in factors],
        [(res,) + tuple(perf[res][f] for f in factors) for res in perf],
        "Fig. 7: relative gmean performance"))
    return 0


_WORKLOAD_BUILDERS = {
    "aes": lambda: __import__("repro.workloads", fromlist=["aes_demo_circuit"])
    .aes_demo_circuit(num_blocks=1, num_rounds=2)[0],
    "sha": lambda: __import__("repro.workloads", fromlist=["sha_demo_circuit"])
    .sha_demo_circuit(num_blocks=1, num_rounds=8)[0],
    "rsa": lambda: __import__("repro.workloads", fromlist=["rsa_demo_circuit"])
    .rsa_demo_circuit(num_messages=1, modulus_bits=64, exponent=17)[0],
    "litmus": lambda: __import__("repro.workloads",
                                 fromlist=["litmus_demo_circuit"])
    .litmus_demo_circuit(num_transactions=6, num_rows=8)[0],
    "auction": lambda: __import__("repro.workloads",
                                  fromlist=["auction_demo_circuit"])
    .auction_demo_circuit(num_bids=12, bid_bits=16)[0],
}


def _cmd_prove(args: argparse.Namespace) -> int:
    from .snark import Snark, TEST

    circuit = _WORKLOAD_BUILDERS[args.workload]()
    print(f"{args.workload}: {circuit.num_constraints} constraints")
    snark = Snark.from_circuit(circuit, preset=TEST)
    t0 = time.perf_counter()
    bundle = snark.prove()
    t1 = time.perf_counter()
    ok = snark.verify(bundle)
    t2 = time.perf_counter()
    print(f"prove: {t1 - t0:.2f} s | verify: {t2 - t1:.2f} s | "
          f"proof: {bundle.size_bytes()} bytes | valid: {ok}")
    from .analysis import estimate

    print("\nprojection at paper parameters:")
    print(estimate(circuit).summary())
    return 0 if ok else 1


#: Distinct exit codes per error class, so scripted callers can tell a
#: malformed proof from a bad configuration without parsing stderr.
EXIT_CONFIG_ERROR = 3
EXIT_DESERIALIZATION_ERROR = 4
EXIT_VERIFICATION_ERROR = 5


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NoCap (MICRO 2024) reproduction: hash-based ZKPs with "
                    "a co-designed accelerator model",
        epilog="Input errors (malformed proofs, impossible configurations) "
               "print a one-line message and exit with a distinct nonzero "
               "code (config=3, deserialization=4, verification=5); pass "
               "--strict to re-raise them with a full traceback instead.")
    parser.add_argument("--strict", action="store_true",
                        help="re-raise typed input errors with a traceback "
                             "instead of the one-line message")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I/IV/V").set_defaults(
        func=_cmd_tables)

    sim = sub.add_parser("simulate", help="simulate one NoCap proof")
    sim.add_argument("--log-n", type=int, default=24,
                     help="log2 of the padded constraint count (default 24)")
    sim.add_argument("--no-recompute", action="store_true",
                     help="disable the sumcheck recomputation optimization")
    for resource in ("arith", "hash", "ntt", "hbm", "rf"):
        sim.add_argument(f"--{resource}", type=float, default=1.0,
                         help=f"scale factor for {resource} (default 1.0)")
    sim.set_defaults(func=_cmd_simulate)

    sub.add_parser("area", help="print the Table II area breakdown"
                   ).set_defaults(func=_cmd_area)
    sub.add_parser("sensitivity", help="print the Fig. 7 sweep"
                   ).set_defaults(func=_cmd_sensitivity)

    prove = sub.add_parser("prove", help="prove+verify a demo workload")
    prove.add_argument("workload", choices=sorted(_WORKLOAD_BUILDERS))
    prove.set_defaults(func=_cmd_prove)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from .errors import (
        ConfigError,
        DeserializationError,
        ReproError,
        VerificationError,
    )

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): not an error.
        return 0
    except ReproError as exc:
        # User-input errors get a one-line message and a distinct exit
        # code, not a traceback (unless --strict asks for one).
        if args.strict:
            raise
        if isinstance(exc, ConfigError):
            code = EXIT_CONFIG_ERROR
        elif isinstance(exc, DeserializationError):
            code = EXIT_DESERIALIZATION_ERROR
        else:
            code = EXIT_VERIFICATION_ERROR
        print(f"error ({type(exc).__name__}): {exc}", file=sys.stderr)
        return code


if __name__ == "__main__":
    sys.exit(main())
