"""NoCap hardware configuration (Sec. IV, Table II).

The default values are the paper's chosen design point: a 1 GHz vector
processor with heterogeneous-width functional units (2,048-lane modular
multiply/add, 128-lane hash and shuffle, 64-lane NTT), an 8 MB banked
register file, and 1 TB/s of HBM.  Sensitivity and design-space studies
(Figs. 7 and 8) sweep these fields.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import ConfigError


@dataclass(frozen=True)
class NoCapConfig:
    """One NoCap design point.

    Impossible design points (zero lanes, negative bandwidth, a
    non-power-of-two NTT base kernel) fail fast at construction with a
    :class:`~repro.errors.ConfigError` naming the offending field, so a
    misconfigured sweep dies with an actionable message instead of
    producing nonsense simulation results downstream.
    """

    frequency_hz: float = 1e9          # Sec. VI: 1 GHz in 14nm
    mul_lanes: int = 2048              # modular multiply FU
    add_lanes: int = 2048              # modular add FU
    hash_lanes: int = 128              # SHA3 FU: 1 KB/cycle = 128 elem/cycle
    shuffle_lanes: int = 128           # Benes network width
    ntt_lanes: int = 64                # NTT FU throughput (elements/cycle)
    ntt_base_size: int = 1 << 12       # max single-pass NTT (two 64-pt pipes)
    register_file_bytes: int = 8 << 20 # 8 MB scratchpad
    hbm_bytes_per_s: float = 1e12      # 1 TB/s (2 x 512 GB/s PHYs)
    recompute_sumcheck: bool = True    # Sec. V-A optimization

    def __post_init__(self):
        for name in ("mul_lanes", "add_lanes", "hash_lanes", "shuffle_lanes",
                     "ntt_lanes", "ntt_base_size", "register_file_bytes"):
            v = getattr(self, name)
            if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                raise ConfigError(
                    f"{name} must be a positive integer, got {v!r}")
        for name in ("frequency_hz", "hbm_bytes_per_s"):
            v = getattr(self, name)
            if (not isinstance(v, (int, float)) or isinstance(v, bool)
                    or not math.isfinite(v) or v <= 0):
                raise ConfigError(
                    f"{name} must be a positive finite number, got {v!r}")
        if self.ntt_base_size & (self.ntt_base_size - 1):
            raise ConfigError(
                f"ntt_base_size must be a power of two, "
                f"got {self.ntt_base_size}")
        if self.register_file_bytes < 8:
            raise ConfigError("register file must hold at least one "
                              "8-byte element")

    @property
    def register_file_elements(self) -> int:
        return self.register_file_bytes // 8

    def scale(self, **factors: float) -> "NoCapConfig":
        """Return a config with named resources scaled by the given factors.

        Keys: 'mul', 'add', 'arith' (both), 'hash', 'shuffle', 'ntt',
        'hbm', 'rf'.  Used by the Fig. 7 sensitivity sweep.
        """
        for key, factor in factors.items():
            if (not isinstance(factor, (int, float))
                    or isinstance(factor, bool)
                    or not math.isfinite(factor) or factor <= 0):
                raise ConfigError(f"scale factor for {key!r} must be a "
                                  f"positive finite number, got {factor!r}")
        changes = {}
        if "arith" in factors:
            changes["mul_lanes"] = max(1, int(self.mul_lanes * factors["arith"]))
            changes["add_lanes"] = max(1, int(self.add_lanes * factors["arith"]))
        if "mul" in factors:
            changes["mul_lanes"] = max(1, int(self.mul_lanes * factors["mul"]))
        if "add" in factors:
            changes["add_lanes"] = max(1, int(self.add_lanes * factors["add"]))
        if "hash" in factors:
            changes["hash_lanes"] = max(1, int(self.hash_lanes * factors["hash"]))
        if "shuffle" in factors:
            changes["shuffle_lanes"] = max(
                1, int(self.shuffle_lanes * factors["shuffle"]))
        if "ntt" in factors:
            changes["ntt_lanes"] = max(1, int(self.ntt_lanes * factors["ntt"]))
        if "hbm" in factors:
            changes["hbm_bytes_per_s"] = self.hbm_bytes_per_s * factors["hbm"]
        if "rf" in factors:
            changes["register_file_bytes"] = max(
                1 << 12, int(self.register_file_bytes * factors["rf"]))
        unknown = set(factors) - {"arith", "mul", "add", "hash", "shuffle",
                                  "ntt", "hbm", "rf"}
        if unknown:
            raise ConfigError(f"unknown resources: {sorted(unknown)}")
        return replace(self, **changes)


#: The paper's design point.
DEFAULT_CONFIG = NoCapConfig()
