"""Static scheduling of macro-op programs (Sec. IV-A "Static scheduling").

NoCap exposes fixed instruction latencies to the compiler, which
schedules instructions to respect data dependencies and structural
hazards; each FU has its own instruction stream (distributed control).
This module implements that scheduler: a list scheduler that assigns each
instruction a start cycle honoring

* RAW/WAW/WAR dependencies through vector registers,
* full pipelining (an FU accepts a new macro-op once the previous one's
  *occupancy* — vector length / lanes — has drained), and
* HBM bandwidth for loads/stores.

The result is a cycle-accurate schedule for small programs plus per-FU
utilization — the same quantities the task-level model aggregates, which
the test-suite cross-checks on kernels scheduled both ways.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError
from .config import DEFAULT_CONFIG, NoCapConfig
from .isa import Instruction, Opcode, Program, validate_program

#: Pipeline depth (cycles from issue to writeback) per FU.
PIPELINE_LATENCY = {
    "add": 2,
    "mul": 6,
    "hash": 48,    # SHA3 rounds
    "shuffle": 14, # Benes stages (2 log2(128) - 1)
    "ntt": 96,     # four-step pipeline through the transpose SRAM
    "mem": 64,     # worst-case HBM latency, buffered (Sec. IV-A)
}


@dataclass
class ScheduledOp:
    instruction: Instruction
    start_cycle: int
    occupancy: int       # cycles the FU is busy accepting this op
    done_cycle: int      # result available (start + occupancy + latency)


@dataclass
class Schedule:
    ops: List[ScheduledOp]
    makespan: int
    busy_cycles: Dict[str, int]

    def utilization(self, unit: str) -> float:
        if self.makespan == 0:
            return 0.0
        return self.busy_cycles.get(unit, 0) / self.makespan


def _lanes(cfg: NoCapConfig, unit: str) -> float:
    return {
        "add": cfg.add_lanes,
        "mul": cfg.mul_lanes,
        "hash": cfg.hash_lanes,
        "shuffle": cfg.shuffle_lanes,
        "ntt": cfg.ntt_lanes,
        "mem": cfg.hbm_bytes_per_s / cfg.frequency_hz / 8.0,  # elements/cycle
    }[unit]


def occupancy_cycles(ins: Instruction, cfg: NoCapConfig) -> int:
    """Cycles the target FU spends accepting this macro-op."""
    unit = ins.functional_unit
    if unit is None:
        return 0
    per_cycle = _lanes(cfg, unit)
    if ins.opcode is Opcode.VNTT and ins.length > cfg.ntt_base_size:
        raise ConfigError("VNTT macro-ops are limited to the FU base size; "
                          "larger NTTs are four-step sequences of VNTTs")
    return max(1, math.ceil(ins.length / per_cycle))


def schedule_program(program: Program,
                     config: Optional[NoCapConfig] = None) -> Schedule:
    """Produce the static schedule for a straight-line program.

    In-order list scheduling: each instruction issues at the earliest
    cycle when (a) its source registers are written, (b) its destination's
    previous writer and readers are done (WAW/WAR), and (c) its FU has
    drained earlier macro-ops.
    """
    cfg = config or DEFAULT_CONFIG
    # Fail fast on structurally impossible programs (typed ConfigError);
    # sources may be preloaded registers, so definedness is not required.
    validate_program(program, cfg)
    reg_ready: Dict[str, int] = {}      # register -> cycle its value is ready
    reg_last_read: Dict[str, int] = {}  # register -> last read completion
    fu_free: Dict[str, int] = {}        # unit -> next cycle it can accept
    busy: Dict[str, int] = {}
    ops: List[ScheduledOp] = []
    makespan = 0

    for ins in program.instructions:
        if ins.opcode is Opcode.DELAY:
            base = max(fu_free.values(), default=0)
            for unit in fu_free:
                fu_free[unit] = base + (ins.imm or 0)
            continue
        if ins.opcode is Opcode.BRANCH:
            raise ValueError("schedule_program expects unrolled programs")
        unit = ins.functional_unit
        occ = occupancy_cycles(ins, cfg)
        latency = PIPELINE_LATENCY[unit]

        start = fu_free.get(unit, 0)
        for src in ins.srcs:
            start = max(start, reg_ready.get(src, 0))
        if ins.dst is not None:
            start = max(start, reg_last_read.get(ins.dst, 0))
            start = max(start, reg_ready.get(ins.dst, 0))

        done = start + occ + latency
        fu_free[unit] = start + occ
        busy[unit] = busy.get(unit, 0) + occ
        if ins.dst is not None:
            reg_ready[ins.dst] = done
        for src in ins.srcs:
            reg_last_read[src] = max(reg_last_read.get(src, 0), start + occ)
        ops.append(ScheduledOp(ins, start, occ, done))
        makespan = max(makespan, done)

    return Schedule(ops=ops, makespan=makespan, busy_cycles=busy)


def vector_chain_program(length: int, depth: int) -> Program:
    """Test helper: a dependent chain of VMULs (no parallelism)."""
    prog = Program()
    prog.append(Instruction(Opcode.VLOAD, length, dst="v0", addr=0))
    for i in range(depth):
        prog.append(Instruction(Opcode.VMUL, length,
                                dst=f"v{i+1}", srcs=(f"v{i}", f"v{i}")))
    prog.append(Instruction(Opcode.VSTORE, length, srcs=(f"v{depth}",),
                            addr=8 * length))
    return prog


def sumcheck_round_program(length: int, degree: int = 3) -> Program:
    """A single sumcheck round as a macro-op program: sample, multiply
    across factors, reduce, fold — the schedule NoCap's compiler emits for
    Listing 1's inner loop."""
    prog = Program()
    half = max(1, length // 2)
    for f in range(degree):
        prog.append(Instruction(Opcode.VLOAD, half, dst=f"bot{f}", addr=f * 8 * length))
        prog.append(Instruction(Opcode.VLOAD, half, dst=f"top{f}",
                                addr=f * 8 * length + 4 * length))
    for t in range(degree + 1):
        prod_reg = None
        for f in range(degree):
            sample = f"s{t}_{f}"
            # bottom + t * (top - bottom): one add + one mul macro-op
            prog.append(Instruction(Opcode.VADD, half, dst=f"d{t}_{f}",
                                    srcs=(f"top{f}", f"bot{f}")))
            prog.append(Instruction(Opcode.VMUL, half, dst=sample,
                                    srcs=(f"d{t}_{f}", f"d{t}_{f}")))
            if prod_reg is None:
                prod_reg = sample
            else:
                prog.append(Instruction(Opcode.VMUL, half, dst=f"p{t}_{f}",
                                        srcs=(prod_reg, sample)))
                prod_reg = f"p{t}_{f}"
        # tree reduction via shuffle + add
        prog.append(Instruction(Opcode.VSHUF, half, dst=f"r{t}", srcs=(prod_reg,)))
        prog.append(Instruction(Opcode.VADD, half, dst=f"sum{t}",
                                srcs=(f"r{t}", prod_reg)))
    # fold all factor tables by the round challenge
    for f in range(degree):
        prog.append(Instruction(Opcode.VMUL, half, dst=f"fold{f}",
                                srcs=(f"top{f}", f"bot{f}")))
        prog.append(Instruction(Opcode.VSTORE, half, srcs=(f"fold{f}",),
                                addr=f * 8 * length))
    return prog
