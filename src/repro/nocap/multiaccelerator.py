"""Rack-scale multi-accelerator projection (Sec. X "Conclusion and
Future Work").

The paper closes by observing that recursive/incremental/folding proofs
would let "large proofs be parallelized across many accelerators, with
little communication among them, which would enable rack-scale ZKP
accelerator systems."  This module models that extension on top of the
single-chip simulator:

* a statement of N constraints is split into S shards;
* each shard is proven independently on its own NoCap (embarrassingly
  parallel — folding schemes need only tiny cross-shard messages);
* one aggregation proof, sized ``aggregation_overhead`` x a shard,
  combines the shard proofs (run on one accelerator after the shards).

Because NoCap's per-proof time is mildly *superlinear* in padded size
(register-file spill rounds grow with log N), sharding is better than
linear: S accelerators give more than S-fold speedup until the
aggregation step and padding overheads dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ntt.polymul import next_pow2
from .config import DEFAULT_CONFIG, NoCapConfig
from .simulator import NoCapSimulator

#: The final proof folds S shard claims; folding verifiers are small
#: fixed circuits, so the aggregation statement costs this many
#: constraints per folded shard (Nova-style verifier circuits are on the
#: order of a million constraints).
FOLD_CONSTRAINTS_PER_SHARD = 1 << 21
#: Folding messages per shard (commitments + challenges), bytes.
FOLD_MESSAGE_BYTES = 4096
#: Rack interconnect for the folding messages.
INTERCONNECT_BYTES_PER_S = 10e9


@dataclass
class RackOperatingPoint:
    """One (statement, shard-count) configuration."""

    raw_constraints: int
    num_accelerators: int
    shard_seconds: float          # parallel shard proving time
    aggregation_seconds: float    # final folding proof
    communication_seconds: float  # cross-shard folding messages
    single_chip_seconds: float    # baseline: one NoCap proves it all

    @property
    def total_seconds(self) -> float:
        return (self.shard_seconds + self.aggregation_seconds
                + self.communication_seconds)

    @property
    def speedup(self) -> float:
        return self.single_chip_seconds / self.total_seconds

    @property
    def efficiency(self) -> float:
        """Speedup per accelerator (1.0 = perfect scaling)."""
        return self.speedup / self.num_accelerators


def rack_scale(raw_constraints: int, num_accelerators: int,
               config: Optional[NoCapConfig] = None,
               fold_constraints_per_shard: int = FOLD_CONSTRAINTS_PER_SHARD,
               ) -> RackOperatingPoint:
    """Project proving time for a statement sharded over a rack."""
    if num_accelerators < 1:
        raise ValueError("need at least one accelerator")
    sim = NoCapSimulator(config or DEFAULT_CONFIG)

    single = sim.simulate(next_pow2(raw_constraints)).total_seconds

    shard_raw = -(-raw_constraints // num_accelerators)
    shard_padded = next_pow2(max(shard_raw, 1 << 12))
    shard_time = sim.simulate(shard_padded).total_seconds

    if num_accelerators == 1:
        return RackOperatingPoint(raw_constraints, 1, single, 0.0, 0.0, single)

    agg_padded = next_pow2(max(
        num_accelerators * fold_constraints_per_shard, 1 << 12))
    agg_time = sim.simulate(agg_padded).total_seconds
    comm_time = (num_accelerators * FOLD_MESSAGE_BYTES
                 / INTERCONNECT_BYTES_PER_S)
    return RackOperatingPoint(raw_constraints, num_accelerators,
                              shard_time, agg_time, comm_time, single)


def scaling_curve(raw_constraints: int,
                  accelerator_counts: List[int] = (1, 2, 4, 8, 16, 32, 64),
                  config: Optional[NoCapConfig] = None
                  ) -> List[RackOperatingPoint]:
    """Strong-scaling curve for one statement size."""
    return [rack_scale(raw_constraints, s, config)
            for s in accelerator_counts]
