"""Calibration constants for the NoCap performance model.

The paper's simulator is driven by RTL-synthesis timings and measured CPU
baselines (Sec. VII).  We cannot re-synthesize, so the structural cost
model (operation/traffic counts derived from the protocol, in
:mod:`repro.nocap.tasks`) is anchored to the paper's reported numbers
through the per-family scale factors below — exactly one constant per
task family, fit once at the Table I reference point (2^24 constraints)
and then *fixed*: every other size, workload, sweep and breakdown is
produced by the structural model.

Each constant stands in for protocol constant-factors the paper does not
fully enumerate (multiset-hash instantiations, zero-knowledge masking,
grand-product circuit shapes, control overheads).  See EXPERIMENTS.md for
the paper-vs-model residuals across all sizes.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Task-family calibration scales (dimensionless multipliers on the
# structural compute/traffic formulas).  Fit at N = 2^24, reps = 3 against
# Fig. 6a's task split of the 151.3 ms Table IV AES run; see
# tools/fit_constants.py-style derivation in EXPERIMENTS.md.
# ---------------------------------------------------------------------------
SUMCHECK_COMPUTE_SCALE = 117.95
SUMCHECK_TRAFFIC_SCALE = 1.0027
RS_ENCODE_SCALE = 0.9989
MERKLE_SCALE = 1.1099
POLYARITH_SCALE = 0.9394
SPMV_SCALE = 1.1273
#: Register-file capacity the recompute fast-forward was sized for; below
#: this its intermediates spill (Fig. 7's sharp RF downside).
RECOMPUTE_RF_REFERENCE_BYTES = 8 << 20
#: Extra multiplies per streamed source element in the recomputation
#: optimization's fast-forward (Sec. V-A).
RECOMPUTE_MULS_PER_ELEMENT = 4.0
#: Large polynomial products per sumcheck repetition (masking +
#: composition polynomials).
POLYARITH_PRODUCTS_PER_REP = 2

# ---------------------------------------------------------------------------
# Protocol inventory (Sec. V-A, Sec. VII-A).
# ---------------------------------------------------------------------------
#: Sumcheck repetitions for 128-bit soundness.
SUMCHECK_REPETITIONS = 3
#: Multiset-hash instantiations in Spartan's memory checking.
MULTISET_HASH_INSTANCES = 4
#: Spark / memory-checking auxiliary sumchecks: (size_factor, degree,
#: streamed tables).  Total size 18N ("sumchecks ... up to size 18N").
SPARK_SUMCHECKS = (
    (6, 2, 3),
    (4, 2, 3),
    (4, 2, 3),
    (2, 2, 3),
    (2, 2, 3),
)
#: Relative compute intensity of the Spark sumchecks vs the core ones:
#: their degree-2 DP over sparse/counter data does fewer multiplies per
#: element, which is why they are the memory-bound part of the family
#: (and why the recomputation optimization pays off there).
SPARK_COMPUTE_FACTOR = 0.0763
#: Committed data per constraint, in field elements: the witness half
#: (0.5) plus Spark's sparse-matrix commitments (row/col/val MLEs for A,
#: B, C plus timestamp counters).
COMMITTED_ELEMENTS_PER_CONSTRAINT = 6.5
#: Orion matrix rows (Sec. VII-A).
ORION_ROWS = 128
#: Non-zeros per R1CS matrix row (A, B, C are near-permutations).
NNZ_PER_ROW = 1.0

# ---------------------------------------------------------------------------
# Area model (Table II, 14nm, mm^2) at the default configuration.
# ---------------------------------------------------------------------------
AREA_NTT_FU = 1.80        # 64 lanes
AREA_MUL_FU = 6.34        # 2,048 lanes
AREA_ADD_FU = 0.96        # 2,048 lanes
AREA_HASH_FU = 0.84       # 128 lanes
AREA_REGISTER_FILE = 6.01 # 8 MB (2,048 x 4 KB banks)
AREA_BENES = 0.11         # 128-wide
AREA_MEM_PHY = 29.80      # 2 x HBM2E PHY (512 GB/s each)
AREA_TOTAL = 45.87

# ---------------------------------------------------------------------------
# Power model (Fig. 5): 62 W total at the 16M-constraint reference run,
# split 13% FUs / 44% register file / 42% HBM (~1% Benes & control).
# ---------------------------------------------------------------------------
POWER_TOTAL_W = 62.0
POWER_FRACTION_FU = 0.13
POWER_FRACTION_RF = 0.44
POWER_FRACTION_HBM = 0.42
POWER_FRACTION_OTHER = 0.01

# ---------------------------------------------------------------------------
# Reference measurements the scales are fit against (Table IV AES row and
# Fig. 6 percentages).
# ---------------------------------------------------------------------------
REFERENCE_LOG_N = 24
REFERENCE_TOTAL_S = 0.1513
#: Fig. 6a NoCap runtime fractions (normalized to sum to 1).
REFERENCE_TIME_FRACTIONS = {
    "sumcheck": 0.70,
    "polyarith": 0.12,
    "rs_encode": 0.09,
    "merkle": 0.05,
    "spmv": 0.005,
    "other": 0.035,
}
#: Fig. 6b NoCap memory-traffic fractions.
REFERENCE_TRAFFIC_FRACTIONS = {
    "sumcheck": 0.55,
    "polyarith": 0.25,
    "merkle": 0.09,
    "rs_encode": 0.09,
    "spmv": 0.01,
    "other": 0.01,
}
#: Fig. 6b: "Overall utilization of compute resources is 60%".
REFERENCE_COMPUTE_UTILIZATION = 0.60
