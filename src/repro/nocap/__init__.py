"""The NoCap accelerator model: configuration, ISA, scheduler, task-level
simulator, area/power models, and design-space exploration."""

from .area import AreaBreakdown, area_model
from .benes import BenesRouting, apply_routing
from .benes import permute as benes_permute
from .benes import route as benes_route
from .config import DEFAULT_CONFIG, NoCapConfig
from .designspace import (
    DesignPoint,
    SensitivityPoint,
    design_space_sweep,
    gmean_prover_seconds,
    pareto_frontier,
    sensitivity_sweep,
)
from .isa import Instruction, Opcode, Program
from .linker import link_prover_program, simulate_linked_prover
from .multiaccelerator import RackOperatingPoint, rack_scale, scaling_curve
from .permutations import grouped_interleave, wide_rotate
from .power import PowerBreakdown, power_model
from .scheduler import Schedule, schedule_program
from .simulator import (
    FAMILIES,
    NoCapSimulator,
    SimulationReport,
    TaskRecord,
    prover_seconds,
)
from .tasks import TaskCost, build_prover_tasks

__all__ = [
    "AreaBreakdown", "area_model",
    "BenesRouting", "apply_routing", "benes_permute", "benes_route",
    "RackOperatingPoint", "rack_scale", "scaling_curve",
    "grouped_interleave", "wide_rotate",
    "DEFAULT_CONFIG", "NoCapConfig",
    "DesignPoint", "SensitivityPoint", "design_space_sweep",
    "gmean_prover_seconds", "pareto_frontier", "sensitivity_sweep",
    "Instruction", "Opcode", "Program",
    "link_prover_program", "simulate_linked_prover",
    "PowerBreakdown", "power_model",
    "Schedule", "schedule_program",
    "FAMILIES", "NoCapSimulator", "SimulationReport", "TaskRecord",
    "prover_seconds",
    "TaskCost", "build_prover_tasks",
]
