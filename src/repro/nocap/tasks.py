"""Task-level cost models for the Spartan+Orion prover on NoCap.

The paper's simulator "models the timing of each task by using timing
models for the functional units and main memory" (Sec. VII); tasks run
serially and each task's time is the maximum over its bottleneck
resources, because decoupled data orchestration overlaps loads with
compute (Sec. IV-C).

Each builder below derives *structural* operation and traffic counts from
the protocol (sumcheck inventory of Sec. V-A and VII-A, Reed-Solomon
encode via the four-step NTT, Merkle hashing, output-stationary SpMV),
scaled by the per-family calibration constants of
:mod:`repro.nocap.constants`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from . import constants as C
from .config import NoCapConfig


@dataclass
class TaskCost:
    """Resource demands of one task (work, not cycles; the simulator
    divides by the configured lane counts)."""

    name: str
    family: str
    mul_ops: float = 0.0
    add_ops: float = 0.0
    hash_elements: float = 0.0      # elements through the 1 KB/cycle hash FU
    shuffle_elements: float = 0.0   # elements routed through the Benes network
    ntt_element_passes: float = 0.0 # elements x four-step passes through NTT FU
    mem_bytes: float = 0.0

    def compute_cycles(self, cfg: NoCapConfig) -> Dict[str, float]:
        return {
            "mul": self.mul_ops / cfg.mul_lanes,
            "add": self.add_ops / cfg.add_lanes,
            "hash": self.hash_elements / cfg.hash_lanes,
            "shuffle": self.shuffle_elements / cfg.shuffle_lanes,
            "ntt": self.ntt_element_passes / cfg.ntt_lanes,
        }

    def time_seconds(self, cfg: NoCapConfig) -> float:
        compute = max(self.compute_cycles(cfg).values()) / cfg.frequency_hz
        memory = self.mem_bytes / cfg.hbm_bytes_per_s
        return max(compute, memory)


def _dp_op_factor(degree: int) -> float:
    """Multiplies per table element of the sumcheck DP, summed over rounds.

    Per round over m remaining entries: (degree-1) extra sample points
    each costing degree muls on m/2 entries, (degree+1) cross-factor
    product chains of (degree-1) muls on m/2 entries, and degree folds of
    one mul per entry.  Summing m = M, M/2, ... gives a constant factor.
    """
    per_round_half = ((degree - 1) * degree            # extra sample points
                      + (degree + 1) * (degree - 1))   # product chains
    fold = degree  # one mul per entry per factor (on m/2 after restructuring)
    return 2.0 * (per_round_half / 2.0 + fold / 2.0)


def ntt_passes(length: int, base_size: int) -> int:
    """Four-step passes to transform ``length`` points with a base kernel
    of ``base_size`` (Sec. V-A: one pass per recursion level)."""
    if length <= 1:
        return 1
    return max(1, math.ceil(math.log2(length) / math.log2(base_size)))


def _spill_rounds(table_elements: float, tables: int, cfg: NoCapConfig) -> int:
    """Sumcheck rounds whose working set exceeds the register file.

    With ``tables`` live arrays (double-buffered), the DP fits on chip
    once tables * 2 * m <= RF capacity; earlier rounds stream from HBM.
    """
    capacity = cfg.register_file_elements / (2 * tables)
    if capacity < 1:
        return max(1, math.ceil(math.log2(max(table_elements, 2))))
    if table_elements <= capacity:
        return 0
    return max(0, math.ceil(math.log2(table_elements / capacity)))


def sumcheck_tasks(n: int, cfg: NoCapConfig,
                   repetitions: int = C.SUMCHECK_REPETITIONS,
                   recompute: bool | None = None) -> List[TaskCost]:
    """The sumcheck inventory: Spartan's two core sumchecks plus the
    Spark/memory-checking ones totalling 18N (Sec. V-A, VII-A), all run
    ``repetitions`` times.

    ``recompute`` selects NoCap's DP-recomputation optimization
    (default: the config's flag): spill rounds stream the 61-bit circuit
    plus witness (2N values) instead of every DP table, at the cost of
    re-deriving table entries with extra multiplies.
    """
    if recompute is None:
        recompute = cfg.recompute_sumcheck
    instances = [("sc1", 1, 3, 4, 1.0), ("sc2", 1, 2, 2, 1.0)]
    instances += [("spark%d" % i, s, d, t, C.SPARK_COMPUTE_FACTOR)
                  for i, (s, d, t) in enumerate(C.SPARK_SUMCHECKS)]

    tasks: List[TaskCost] = []
    for name, size_factor, degree, streams, compute_factor in instances:
        m = size_factor * n
        dp_muls = (C.SUMCHECK_COMPUTE_SCALE * compute_factor
                   * _dp_op_factor(degree) * m)
        # Adds issue alongside multiplies; the add FU runs somewhat below
        # the multiply FU (linear accumulations vs multiply-heavy samples).
        dp_adds = 0.65 * dp_muls
        spill = _spill_rounds(m, streams, cfg)
        # Streaming option A — recompute (Sec. V-A): spill rounds stream the
        # 61-bit circuit plus witness (2N values) and re-derive DP entries
        # with the rx fast-forward, costing extra multiplies.  The
        # fast-forward keeps many intermediates live ("this recomputation
        # uses many intermediates, which is why NoCap requires an 8 MB
        # scratchpad", Sec. V-A): below the reference capacity they spill,
        # multiplying the recompute traffic.
        rf_deficit = max(1.0, C.RECOMPUTE_RF_REFERENCE_BYTES
                         / cfg.register_file_bytes)
        mem_recompute = (C.SUMCHECK_TRAFFIC_SCALE * 8.0 * 2 * n * spill
                         * rf_deficit)
        extra_muls = C.RECOMPUTE_MULS_PER_ELEMENT * n * spill
        # Streaming option B — materialize: stream every live table each
        # spill round (reads, plus the fraction of folded write-backs that
        # cannot be kept on chip).
        streamed = 0.0
        live = float(m)
        for _ in range(spill):
            streamed += streams * live * 1.2
            live /= 2
        # Below the reference capacity, double-buffering and reduction
        # intermediates spill in this option too.
        mem_materialize = C.SUMCHECK_TRAFFIC_SCALE * 8.0 * streamed * rf_deficit

        option_a = TaskCost(
            name=name, family="sumcheck",
            mul_ops=dp_muls + extra_muls, add_ops=dp_adds + extra_muls,
            hash_elements=4.0 * math.log2(max(m, 2)),
            mem_bytes=mem_recompute)
        option_b = TaskCost(
            name=name, family="sumcheck",
            mul_ops=dp_muls, add_ops=dp_adds,
            hash_elements=4.0 * math.log2(max(m, 2)),
            mem_bytes=mem_materialize)
        if recompute and option_a.time_seconds(cfg) < option_b.time_seconds(cfg):
            task = option_a
        else:
            task = option_b
        tasks.append(task)
    # Repetitions re-run every instance with fresh challenges.
    out: List[TaskCost] = []
    for rep in range(repetitions):
        for t in tasks:
            out.append(TaskCost(
                name=f"{t.name}/rep{rep}", family=t.family,
                mul_ops=t.mul_ops, add_ops=t.add_ops,
                hash_elements=t.hash_elements,
                shuffle_elements=t.shuffle_elements,
                ntt_element_passes=t.ntt_element_passes,
                mem_bytes=t.mem_bytes))
    return out


def commit_tasks(n: int, cfg: NoCapConfig) -> List[TaskCost]:
    """Orion commitment work: Reed-Solomon row encodes (NTT FU) and the
    Merkle tree over codeword columns (hash FU)."""
    committed = C.COMMITTED_ELEMENTS_PER_CONSTRAINT * n
    codeword = 4.0 * committed
    row_len = max(2, int(committed / C.ORION_ROWS))
    passes = ntt_passes(4 * row_len, cfg.ntt_base_size)

    rs = TaskCost(
        name="rs-encode", family="rs_encode",
        ntt_element_passes=C.RS_ENCODE_SCALE * codeword * passes,
        mul_ops=C.RS_ENCODE_SCALE * codeword * math.log2(max(4 * row_len, 2)) / 2,
        add_ops=C.RS_ENCODE_SCALE * codeword * math.log2(max(4 * row_len, 2)),
        mem_bytes=C.RS_ENCODE_SCALE * 8.0 * (committed + 1.5 * codeword),
    )
    merkle = TaskCost(
        name="merkle", family="merkle",
        hash_elements=C.MERKLE_SCALE * 2.0 * codeword,
        mem_bytes=C.MERKLE_SCALE * 8.0 * 1.75 * codeword,
    )
    return [rs, merkle]


POLY_NTTS_PER_PRODUCT = 3  # two forward NTTs + one inverse
#: Pure-streaming polynomial passes (random combinations, masked sums) per
#: repetition: add-only traffic with negligible compute.
POLY_LINEAR_PASSES_PER_REP = 12


def polyarith_tasks(n: int, cfg: NoCapConfig,
                    repetitions: int = C.SUMCHECK_REPETITIONS) -> List[TaskCost]:
    """Polynomial arithmetic (masking polynomials, composition products):
    NTT-based multiplies plus streaming linear combinations.  Large NTTs
    are intrinsically balanced between the 64-lane NTT FU and HBM; the
    linear passes push the family memory-bound, matching Fig. 6."""
    tasks = []
    products_per_rep = C.POLYARITH_PRODUCTS_PER_REP
    size = n  # product length (witness-sized operands)
    passes = ntt_passes(size, cfg.ntt_base_size)
    for rep in range(repetitions):
        ntt_elements = POLY_NTTS_PER_PRODUCT * products_per_rep * size * passes
        linear_elements = POLY_LINEAR_PASSES_PER_REP * n
        tasks.append(TaskCost(
            name=f"polyarith/rep{rep}", family="polyarith",
            ntt_element_passes=C.POLYARITH_SCALE * ntt_elements,
            mul_ops=C.POLYARITH_SCALE * products_per_rep * size * 2,
            add_ops=C.POLYARITH_SCALE * (products_per_rep * size * 2
                                         + linear_elements),
            mem_bytes=(C.POLYARITH_SCALE * 8.0
                       * (2 * ntt_elements + 2 * linear_elements)),
        ))
    return tasks



def spmv_tasks(n: int, cfg: NoCapConfig) -> List[TaskCost]:
    """Output-stationary SpMV for A z, B z, C z: each matrix streamed
    exactly once, input vector reused via the banded structure, Benes
    network aligning operands (Sec. V-A)."""
    nnz = 3 * C.NNZ_PER_ROW * n
    return [TaskCost(
        name="spmv", family="spmv",
        mul_ops=C.SPMV_SCALE * nnz,
        add_ops=C.SPMV_SCALE * nnz,
        shuffle_elements=C.SPMV_SCALE * nnz,
        mem_bytes=C.SPMV_SCALE * 8.0 * (nnz + 2 * n),
    )]


def host_tasks(n: int, cfg: NoCapConfig) -> List[TaskCost]:
    """Wire-value ingest over PCIe 5.0 (Sec. IV-D) and misc control."""
    pcie_bytes_per_s = 64e9
    ingest_s = 8.0 * n / pcie_bytes_per_s
    # Modeled as a memory-time-only task at equivalent HBM bytes.
    return [TaskCost(name="host-ingest", family="other",
                     mem_bytes=ingest_s * cfg.hbm_bytes_per_s)]


def build_prover_tasks(n: int, cfg: NoCapConfig,
                       repetitions: int = C.SUMCHECK_REPETITIONS,
                       recompute: bool | None = None) -> List[TaskCost]:
    """The full serial task list for one Spartan+Orion proof of a padded
    2^L = n constraint statement."""
    if n & (n - 1):
        raise ValueError("n must be the padded (power-of-two) size")
    tasks: List[TaskCost] = []
    tasks += spmv_tasks(n, cfg)
    tasks += commit_tasks(n, cfg)
    tasks += sumcheck_tasks(n, cfg, repetitions, recompute)
    tasks += polyarith_tasks(n, cfg, repetitions)
    tasks += host_tasks(n, cfg)
    return tasks
