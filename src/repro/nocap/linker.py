"""The task linker (Sec. VII "Modeled system"): composes parameterized
task kernels into one macro-op program implementing the Spartan+Orion
prover, "executed one at a time, following program order".

Where :mod:`repro.nocap.tasks` charges aggregate costs, the linker emits
the *instructions*: vector loads, NTT passes, hash sweeps, shuffle-aligned
SpMV and sumcheck rounds — which the static scheduler
(:mod:`repro.nocap.scheduler`) then timing-simulates cycle by cycle.
This is tractable for on-chip-sized statements (up to ~2^16 constraints)
and the test-suite cross-checks it against the task-level model there;
paper-scale runs use the task model.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .config import DEFAULT_CONFIG, NoCapConfig
from .isa import MAX_VECTOR, Instruction, Opcode, Program
from .scheduler import Schedule, schedule_program

#: Largest macro-op vector the linker emits.
_CHUNK = MAX_VECTOR


def _chunks(total: int) -> List[int]:
    """Split ``total`` elements into macro-op-sized vector lengths."""
    out = []
    remaining = total
    while remaining > 0:
        size = min(_CHUNK, remaining)
        out.append(size)
        remaining -= size
    return out


def link_spmv(program: Program, n: int, tag: str) -> None:
    """Output-stationary SpMV: load x chunk, Benes-align, multiply by the
    streamed matrix values, accumulate, store y chunk (Sec. V-A)."""
    for k, size in enumerate(_chunks(n)):
        x, vals = f"{tag}_x{k}", f"{tag}_v{k}"
        program.append(Instruction(Opcode.VLOAD, size, dst=x, addr=8 * k * _CHUNK))
        program.append(Instruction(Opcode.VLOAD, size, dst=vals,
                                   addr=8 * (n + k * _CHUNK)))
        program.append(Instruction(Opcode.VSHUF, min(size, 128),
                                   dst=f"{tag}_a{k}", srcs=(x,)))
        program.append(Instruction(Opcode.VMUL, size, dst=f"{tag}_p{k}",
                                   srcs=(f"{tag}_a{k}", vals)))
        program.append(Instruction(Opcode.VADD, size, dst=f"{tag}_y{k}",
                                   srcs=(f"{tag}_p{k}", f"{tag}_p{k}")))
        program.append(Instruction(Opcode.VSTORE, size,
                                   srcs=(f"{tag}_y{k}",),
                                   addr=8 * (2 * n + k * _CHUNK)))


def link_rs_encode(program: Program, message_len: int, tag: str,
                   base_size: int, blowup: int = 4) -> None:
    """Reed-Solomon encode: zero-pad then four-step NTT passes of
    base-kernel VNTTs (Sec. V-A)."""
    codeword = blowup * message_len
    passes = 1
    length = codeword
    while length > base_size:
        passes += 1
        length = (length + base_size - 1) // base_size
    for p in range(passes):
        for k, size in enumerate(_chunks(codeword)):
            reg_in = f"{tag}_p{p}_c{k}"
            program.append(Instruction(Opcode.VLOAD, size, dst=reg_in,
                                       addr=8 * k * _CHUNK))
            # One VNTT per base-size block within the chunk.
            blocks = max(1, size // base_size)
            for b in range(blocks):
                program.append(Instruction(
                    Opcode.VNTT, min(base_size, size),
                    dst=f"{reg_in}_n{b}", srcs=(reg_in,)))
            program.append(Instruction(Opcode.VSTORE, size,
                                       srcs=(f"{reg_in}_n0",),
                                       addr=8 * k * _CHUNK))


def link_merkle(program: Program, leaves: int, tag: str) -> None:
    """Merkle tree: hash each layer, interleave survivors (Sec. V-A)."""
    layer = leaves
    level = 0
    prev: Optional[str] = None
    while layer >= 2:
        for k, size in enumerate(_chunks(layer)):
            reg = f"{tag}_l{level}_c{k}"
            if prev is None:
                program.append(Instruction(Opcode.VLOAD, size, dst=reg,
                                           addr=8 * k * _CHUNK))
            else:
                program.append(Instruction(Opcode.VSHUF, min(size, 128),
                                           dst=reg, srcs=(prev,)))
            program.append(Instruction(Opcode.VHASH, size,
                                       dst=f"{tag}_h{level}_c{k}",
                                       srcs=(reg, reg)))
        prev = f"{tag}_h{level}_c0"
        layer //= 2
        level += 1
    if prev is not None:
        program.append(Instruction(Opcode.VSTORE, 128, srcs=(prev,), addr=0))


def link_sumcheck(program: Program, n: int, degree: int, tag: str) -> None:
    """All rounds of one sumcheck instance, Listing-1 style."""
    size = n
    rnd = 0
    while size >= 2:
        half = max(1, size // 2)
        for k, chunk in enumerate(_chunks(half)):
            base = f"{tag}_r{rnd}_c{k}"
            for f in range(degree):
                program.append(Instruction(Opcode.VLOAD, chunk,
                                           dst=f"{base}_b{f}", addr=8 * f * n))
                program.append(Instruction(Opcode.VLOAD, chunk,
                                           dst=f"{base}_t{f}",
                                           addr=8 * (f * n + half)))
            prod = None
            for t in range(degree + 1):
                for f in range(degree):
                    s = f"{base}_s{t}_{f}"
                    program.append(Instruction(Opcode.VADD, chunk, dst=f"{base}_d{t}_{f}",
                                               srcs=(f"{base}_t{f}", f"{base}_b{f}")))
                    program.append(Instruction(Opcode.VMUL, chunk, dst=s,
                                               srcs=(f"{base}_d{t}_{f}",
                                                     f"{base}_d{t}_{f}")))
                    prod = s if prod is None else prod
            # reduction + fold
            program.append(Instruction(Opcode.VSHUF, min(chunk, 128),
                                       dst=f"{base}_red", srcs=(prod,)))
            program.append(Instruction(Opcode.VADD, chunk, dst=f"{base}_sum",
                                       srcs=(f"{base}_red", prod)))
            program.append(Instruction(Opcode.VHASH, 128, dst=f"{base}_fs",
                                       srcs=(f"{base}_sum", f"{base}_sum")))
            for f in range(degree):
                program.append(Instruction(Opcode.VMUL, chunk,
                                           dst=f"{base}_fold{f}",
                                           srcs=(f"{base}_t{f}", f"{base}_b{f}")))
                program.append(Instruction(Opcode.VSTORE, chunk,
                                           srcs=(f"{base}_fold{f}",),
                                           addr=8 * f * n))
        size = half
        rnd += 1


def link_prover_program(n: int, config: Optional[NoCapConfig] = None,
                        repetitions: int = 1) -> Program:
    """Compose the full prover for an on-chip-sized 2^L = n statement.

    Tasks follow program order (SpMV, commit, sumchecks, poly arith),
    matching the serial task execution of Sec. V.
    """
    cfg = config or DEFAULT_CONFIG
    if n & (n - 1):
        raise ValueError("n must be a power of two")
    if n > (1 << 16):
        raise ValueError("the linker targets on-chip statements (<= 2^16); "
                         "use the task-level model for larger runs")
    program = Program()
    for m in ("A", "B", "C"):
        link_spmv(program, n, f"spmv{m}")
    link_rs_encode(program, n, "rs", cfg.ntt_base_size)
    link_merkle(program, 4 * n, "mk")
    for rep in range(repetitions):
        link_sumcheck(program, n, 3, f"sc1r{rep}")
        link_sumcheck(program, n, 2, f"sc2r{rep}")
    link_rs_encode(program, n, "poly", cfg.ntt_base_size)
    return program


def simulate_linked_prover(n: int, config: Optional[NoCapConfig] = None,
                           repetitions: int = 1) -> Tuple[Program, Schedule]:
    """Link and statically schedule the prover; returns both artifacts."""
    cfg = config or DEFAULT_CONFIG
    program = link_prover_program(n, cfg, repetitions)
    return program, schedule_program(program, cfg)
