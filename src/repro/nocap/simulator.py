"""The NoCap task simulator (Sec. VII "Modeled system").

Reproduces the paper's evaluation methodology: tasks execute one at a
time; each task's latency is the maximum of its per-FU compute time and
its memory time (decoupled data orchestration hides load latency); the
simulator tracks FU and bandwidth usage and activity factors for the
power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from . import constants as C
from ..obs import FAMILIES  # canonical task-family taxonomy (Fig. 6)
from .config import DEFAULT_CONFIG, NoCapConfig
from .tasks import TaskCost, build_prover_tasks

COMPUTE_UNITS = ("mul", "add", "hash", "shuffle", "ntt")


@dataclass
class TaskRecord:
    """One simulated task's outcome: what ran, for how long, and why.

    ``bound`` records which side of the max(compute, memory) latency model
    won — the paper's memory-bound vs compute-bound classification per
    family (Fig. 6).  Iterating (or indexing) a record yields the legacy
    ``(name, family, seconds)`` tuple so pre-existing consumers of
    ``SimulationReport.task_times`` keep working unchanged.
    """

    name: str
    family: str
    seconds: float
    mem_bytes: float = 0.0
    bound: str = "compute"              # "compute" | "memory"
    fu_cycles: Dict[str, float] = field(default_factory=dict)

    def _legacy_tuple(self) -> tuple:
        return (self.name, self.family, self.seconds)

    def __iter__(self) -> Iterator:
        return iter(self._legacy_tuple())

    def __getitem__(self, i):
        return self._legacy_tuple()[i]

    def __len__(self) -> int:
        return 3


@dataclass
class SimulationReport:
    """Outcome of simulating one proof generation."""

    config: NoCapConfig
    padded_constraints: int
    total_seconds: float
    time_by_family: Dict[str, float]
    traffic_by_family: Dict[str, float]
    busy_cycles_by_unit: Dict[str, float]
    task_times: List[TaskRecord]

    @property
    def total_traffic_bytes(self) -> float:
        return sum(self.traffic_by_family.values())

    @property
    def total_cycles(self) -> float:
        return self.total_seconds * self.config.frequency_hz

    def compute_utilization(self, units: tuple = ("mul", "add")) -> float:
        """Busy fraction of the (wide arithmetic) compute resources,
        averaged over the run — the paper's Fig. 6 utilization metric."""
        if self.total_cycles == 0:
            return 0.0
        busy = sum(self.busy_cycles_by_unit[u] for u in units) / len(units)
        return busy / self.total_cycles

    def memory_utilization(self) -> float:
        limit = self.total_seconds * self.config.hbm_bytes_per_s
        return self.total_traffic_bytes / limit if limit else 0.0

    def time_fractions(self) -> Dict[str, float]:
        total = self.total_seconds or 1.0
        return {f: t / total for f, t in self.time_by_family.items()}

    def traffic_fractions(self) -> Dict[str, float]:
        total = self.total_traffic_bytes or 1.0
        return {f: b / total for f, b in self.traffic_by_family.items()}


class NoCapSimulator:
    """Task-level timing simulator for the Spartan+Orion prover."""

    def __init__(self, config: Optional[NoCapConfig] = None):
        self.config = config or DEFAULT_CONFIG

    def simulate_tasks(self, tasks: List[TaskCost],
                       padded_constraints: int) -> SimulationReport:
        cfg = self.config
        time_by_family = {f: 0.0 for f in FAMILIES}
        traffic_by_family = {f: 0.0 for f in FAMILIES}
        busy = {u: 0.0 for u in COMPUTE_UNITS}
        task_times: List[TaskRecord] = []
        total = 0.0
        for task in tasks:
            seconds = task.time_seconds(cfg)
            total += seconds
            time_by_family[task.family] = (
                time_by_family.get(task.family, 0.0) + seconds)
            traffic_by_family[task.family] = (
                traffic_by_family.get(task.family, 0.0) + task.mem_bytes)
            cycles = task.compute_cycles(cfg)
            for unit, c in cycles.items():
                busy[unit] += c
            compute_s = max(cycles.values()) / cfg.frequency_hz
            memory_s = task.mem_bytes / cfg.hbm_bytes_per_s
            task_times.append(TaskRecord(
                name=task.name,
                family=task.family,
                seconds=seconds,
                mem_bytes=task.mem_bytes,
                bound="memory" if memory_s >= compute_s else "compute",
                fu_cycles=cycles,
            ))
        return SimulationReport(
            config=cfg,
            padded_constraints=padded_constraints,
            total_seconds=total,
            time_by_family=time_by_family,
            traffic_by_family=traffic_by_family,
            busy_cycles_by_unit=busy,
            task_times=task_times,
        )

    def simulate(self, padded_constraints: int,
                 repetitions: int = C.SUMCHECK_REPETITIONS,
                 recompute: Optional[bool] = None) -> SimulationReport:
        """Simulate one proof of a padded power-of-two statement."""
        tasks = build_prover_tasks(padded_constraints, self.config,
                                   repetitions, recompute)
        return self.simulate_tasks(tasks, padded_constraints)


def prover_seconds(raw_constraints: int,
                   config: Optional[NoCapConfig] = None,
                   repetitions: int = C.SUMCHECK_REPETITIONS,
                   recompute: Optional[bool] = None) -> float:
    """Convenience: NoCap proving time for a raw (unpadded) statement."""
    from ..ntt.polymul import next_pow2

    n = next_pow2(raw_constraints)
    return NoCapSimulator(config).simulate(n, repetitions, recompute).total_seconds
