"""Design-space exploration: the Fig. 7 sensitivity study and the Fig. 8
area-performance Pareto sweep.

Fig. 7 sweeps the throughput of each hardware building block individually
(hash FU, arithmetic FUs, NTT FU, HBM bandwidth, register-file size)
around the chosen design point and reports gmean performance over the
benchmark suite.  Fig. 8 sweeps whole configurations, prices them with
the area model, and extracts the Pareto frontier for 1 TB/s and 2 TB/s
HBM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import List, Optional, Sequence

from ..ntt.polymul import next_pow2
from .area import area_model
from .config import DEFAULT_CONFIG, NoCapConfig
from .simulator import NoCapSimulator

#: Fig. 7 x-axis: relative scaling factors applied to one resource at a time.
SENSITIVITY_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)
#: Fig. 7 series: the resources swept.
SENSITIVITY_RESOURCES = ("arith", "hash", "ntt", "hbm", "rf")


def _gmean(values: Sequence[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def gmean_prover_seconds(config: NoCapConfig,
                         workload_sizes: Optional[Sequence[int]] = None) -> float:
    """Geometric-mean proving time over the benchmark suite."""
    if workload_sizes is None:
        from ..workloads.spec import PAPER_WORKLOADS

        workload_sizes = [w.raw_constraints for w in PAPER_WORKLOADS]
    sim = NoCapSimulator(config)
    times = [sim.simulate(next_pow2(n)).total_seconds for n in workload_sizes]
    return _gmean(times)


@dataclass
class SensitivityPoint:
    resource: str
    factor: float
    gmean_seconds: float
    relative_performance: float  # vs the default configuration (higher = better)


def sensitivity_sweep(base: NoCapConfig = DEFAULT_CONFIG,
                      resources: Sequence[str] = SENSITIVITY_RESOURCES,
                      factors: Sequence[float] = SENSITIVITY_FACTORS,
                      workload_sizes: Optional[Sequence[int]] = None,
                      ) -> List[SensitivityPoint]:
    """Reproduce Fig. 7: scale each resource individually."""
    baseline = gmean_prover_seconds(base, workload_sizes)
    points = []
    for resource in resources:
        for factor in factors:
            cfg = base.scale(**{resource: factor})
            t = gmean_prover_seconds(cfg, workload_sizes)
            points.append(SensitivityPoint(
                resource=resource, factor=factor, gmean_seconds=t,
                relative_performance=baseline / t))
    return points


@dataclass
class DesignPoint:
    config: NoCapConfig
    area_mm2: float
    gmean_seconds: float

    @property
    def performance(self) -> float:
        return 1.0 / self.gmean_seconds


def design_space_sweep(hbm_bytes_per_s: float = 1e12,
                       arith_factors: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
                       ntt_factors: Sequence[float] = (0.5, 1.0, 2.0),
                       hash_factors: Sequence[float] = (0.5, 1.0, 2.0),
                       rf_factors: Sequence[float] = (0.5, 1.0, 2.0),
                       workload_sizes: Optional[Sequence[int]] = None,
                       ) -> List[DesignPoint]:
    """Reproduce one Fig. 8 scatter: all combinations of FU/RF scalings at
    a fixed HBM bandwidth, priced by the area model."""
    points = []
    base = NoCapConfig(hbm_bytes_per_s=hbm_bytes_per_s)
    for fa, fn, fh, fr in product(arith_factors, ntt_factors, hash_factors,
                                  rf_factors):
        cfg = base.scale(arith=fa, ntt=fn, hash=fh, rf=fr)
        points.append(DesignPoint(
            config=cfg,
            area_mm2=area_model(cfg).total,
            gmean_seconds=gmean_prover_seconds(cfg, workload_sizes)))
    return points


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Points not dominated in (area, time): smaller is better in both."""
    frontier = []
    for p in points:
        dominated = any(q.area_mm2 <= p.area_mm2 and
                        q.gmean_seconds < p.gmean_seconds or
                        q.area_mm2 < p.area_mm2 and
                        q.gmean_seconds <= p.gmean_seconds
                        for q in points)
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda p: p.area_mm2)
