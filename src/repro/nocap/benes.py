"""The Benes permutation network behind NoCap's Shuffle FU (Sec. IV-B).

A Benes network on N = 2^k inputs has 2 log2(N) - 1 stages of N/2 2x2
switches and can realize *any* permutation.  Routing is famously
non-trivial at runtime, but "because all dependencies in ZKP are known at
compile time, we determine the network's routing control bits at compile
time, and embed them in the instruction" — this module implements exactly
that: the classic looping algorithm computes the switch settings for a
given permutation, and a functional simulator applies them.

Control-state cost matches the paper: ~N log2 N bits per N-element
network, i.e. ~7 bits per 64-bit element at N = 128.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass
class BenesRouting:
    """Switch settings for one Benes network instance.

    ``first`` and ``last`` are the outer switch columns (True = crossed);
    ``upper`` / ``lower`` are the recursively-routed half-size networks
    (None at the recursion base).
    """

    size: int
    first: List[bool]
    last: List[bool]
    upper: "BenesRouting | None"
    lower: "BenesRouting | None"

    def control_bits(self) -> int:
        """Total switch-setting bits (the instruction-embedded state)."""
        bits = len(self.first) + len(self.last)
        if self.upper is not None:
            bits += self.upper.control_bits()
        if self.lower is not None:
            bits += self.lower.control_bits()
        return bits


def _validate_perm(perm: Sequence[int]) -> List[int]:
    perm = [int(p) for p in perm]
    n = len(perm)
    if n < 2 or n & (n - 1):
        raise ValueError("permutation size must be a power of two >= 2")
    if sorted(perm) != list(range(n)):
        raise ValueError("not a permutation")
    return perm


def route(perm: Sequence[int]) -> BenesRouting:
    """Compute switch settings so that output[perm[i]] = input[i].

    Uses the looping (2-coloring) algorithm: paired inputs (2k, 2k+1)
    must enter different subnetworks, paired outputs (2k, 2k+1) must
    leave different subnetworks; following these constraints around each
    cycle yields a consistent coloring.
    """
    perm = _validate_perm(perm)
    n = len(perm)
    if n == 2:
        # A single switch; crossed iff input 0 goes to output 1.
        return BenesRouting(size=2, first=[perm[0] == 1], last=[],
                            upper=None, lower=None)

    inv = [0] * n
    for i, p in enumerate(perm):
        inv[p] = i

    color = [-1] * n  # subnetwork (0 = upper, 1 = lower) per *input*
    for start in range(n):
        if color[start] != -1:
            continue
        i, c = start, 0
        while color[i] == -1:
            color[i] = c
            color[i ^ 1] = 1 - c
            # The partner input i^1 exits at output perm[i^1]; the output
            # paired with it must come from the other subnetwork, so its
            # source input j takes the same color as input i.
            j = inv[perm[i ^ 1] ^ 1]
            c = 1 - color[i ^ 1]
            i = j

    half = n // 2
    # First-column switch k handles inputs (2k, 2k+1): crossed iff input
    # 2k was colored lower.
    first = [color[2 * k] == 1 for k in range(half)]
    # Last-column switch k handles outputs (2k, 2k+1): crossed iff output
    # 2k is produced by the lower subnetwork.
    last = [color[inv[2 * k]] == 1 for k in range(half)]

    # Build the half-size permutations.  Input i enters subnetwork
    # color[i] at position i//2 and must reach subnetwork-local output
    # perm[i]//2.
    upper_perm = [0] * half
    lower_perm = [0] * half
    for i, p in enumerate(perm):
        if color[i] == 0:
            upper_perm[i // 2] = p // 2
        else:
            lower_perm[i // 2] = p // 2
    return BenesRouting(size=n, first=first, last=last,
                        upper=route(upper_perm), lower=route(lower_perm))


def apply_routing(routing: BenesRouting, data: np.ndarray) -> np.ndarray:
    """Push a vector through the switched network (functional simulator)."""
    data = np.asarray(data)
    n = routing.size
    if data.shape[-1] != n:
        raise ValueError("data length does not match network size")
    if n == 2:
        if routing.first[0]:
            return data[..., ::-1].copy()
        return data.copy()

    half = n // 2
    upper_in = np.empty(data.shape[:-1] + (half,), dtype=data.dtype)
    lower_in = np.empty_like(upper_in)
    for k in range(half):
        a, b = data[..., 2 * k], data[..., 2 * k + 1]
        if routing.first[k]:
            a, b = b, a
        upper_in[..., k] = a
        lower_in[..., k] = b

    upper_out = apply_routing(routing.upper, upper_in)
    lower_out = apply_routing(routing.lower, lower_in)

    out = np.empty_like(data)
    for k in range(half):
        a, b = upper_out[..., k], lower_out[..., k]
        if routing.last[k]:
            a, b = b, a
        out[..., 2 * k] = a
        out[..., 2 * k + 1] = b
    return out


def permute(perm: Sequence[int], data: np.ndarray) -> np.ndarray:
    """Route and apply in one step: out[perm[i]] = data[i]."""
    return apply_routing(route(perm), data)


def num_stages(n: int) -> int:
    """Switch columns in an N-input Benes network: 2 log2 N - 1."""
    if n < 2 or n & (n - 1):
        raise ValueError("size must be a power of two >= 2")
    return 2 * int(math.log2(n)) - 1


def control_bits_per_element(n: int) -> float:
    """Control bits divided by elements — the paper cites ~7 bits per
    64-bit element for the 128-wide network."""
    return num_stages(n) / 2.0
