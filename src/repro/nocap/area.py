"""Area model (Table II): 14nm component areas and their scaling.

Reference areas come from the paper's RTL synthesis (Table II); scaling
with configuration follows first-order rules — FU area proportional to
lane count, register file to capacity, memory PHY to bandwidth — which is
how the design-space sweep (Fig. 8) prices candidate configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from . import constants as C
from .config import DEFAULT_CONFIG, NoCapConfig


@dataclass
class AreaBreakdown:
    """Component areas in mm^2 (Table II rows)."""

    ntt_fu: float
    mul_fu: float
    add_fu: float
    hash_fu: float
    register_file: float
    benes: float
    memory_phy: float

    @property
    def total_compute(self) -> float:
        return self.ntt_fu + self.mul_fu + self.add_fu + self.hash_fu

    @property
    def total_memory_system(self) -> float:
        return self.register_file + self.benes + self.memory_phy

    @property
    def total(self) -> float:
        return self.total_compute + self.total_memory_system

    def as_table(self) -> Dict[str, float]:
        return {
            "NTT FU": self.ntt_fu,
            "Multiply FU": self.mul_fu,
            "Add FU": self.add_fu,
            "Hash FU": self.hash_fu,
            "Total Compute": self.total_compute,
            "Reg. file (2,048 x 4 KB banks)": self.register_file,
            "Benes network": self.benes,
            "Memory interface (2 x PHY)": self.memory_phy,
            "Total memory system": self.total_memory_system,
            "Total NoCap": self.total,
        }


def area_model(config: NoCapConfig = DEFAULT_CONFIG) -> AreaBreakdown:
    """Area of a NoCap configuration, scaled from the Table II reference."""
    ref = DEFAULT_CONFIG
    return AreaBreakdown(
        ntt_fu=C.AREA_NTT_FU * config.ntt_lanes / ref.ntt_lanes,
        mul_fu=C.AREA_MUL_FU * config.mul_lanes / ref.mul_lanes,
        add_fu=C.AREA_ADD_FU * config.add_lanes / ref.add_lanes,
        hash_fu=C.AREA_HASH_FU * config.hash_lanes / ref.hash_lanes,
        register_file=(C.AREA_REGISTER_FILE
                       * config.register_file_bytes / ref.register_file_bytes),
        benes=C.AREA_BENES * config.shuffle_lanes / ref.shuffle_lanes,
        memory_phy=(C.AREA_MEM_PHY
                    * config.hbm_bytes_per_s / ref.hbm_bytes_per_s),
    )
