"""NoCap's vector ISA (Sec. IV-A) as macro-operations.

Each instruction operates on a k-element vector (k a power of two from
2^7 to 2^16).  Compute opcodes map one-to-one to the functional units;
LOAD/STORE move vectors between HBM and the register file; DELAY and
BRANCH are the two control instructions of the distributed-control
scheme.  The static scheduler (:mod:`repro.nocap.scheduler`) executes
these with fixed, compiler-visible latencies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ConfigError

MIN_VECTOR = 1 << 7
MAX_VECTOR = 1 << 16


class Opcode(enum.Enum):
    VLOAD = "vload"     # HBM -> register file
    VSTORE = "vstore"   # register file -> HBM
    VADD = "vadd"       # element-wise modular add
    VMUL = "vmul"       # element-wise modular multiply
    VHASH = "vhash"     # SHA3 over packed 256-bit words
    VNTT = "vntt"       # forward/inverse NTT (<= 2^12 points per pass)
    VSHUF = "vshuf"     # Benes-network permutation
    DELAY = "delay"     # wait a fixed number of cycles
    BRANCH = "branch"   # fixed-trip-count loop back-edge


#: Which functional unit executes each compute opcode.
FU_FOR_OPCODE = {
    Opcode.VADD: "add",
    Opcode.VMUL: "mul",
    Opcode.VHASH: "hash",
    Opcode.VSHUF: "shuffle",
    Opcode.VNTT: "ntt",
    Opcode.VLOAD: "mem",
    Opcode.VSTORE: "mem",
}


@dataclass(frozen=True)
class Instruction:
    """One macro-op over a ``length``-element vector.

    ``dst`` and ``srcs`` name vector registers; LOAD/STORE also carry an
    ``addr`` (HBM address, bytes).  The Benes control bits of a VSHUF and
    the NTT direction are compile-time immediates (``imm``), as in the
    paper's compile-time-routed shuffle network.
    """

    opcode: Opcode
    length: int
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    addr: Optional[int] = None
    imm: Optional[int] = None

    def __post_init__(self):
        if not isinstance(self.opcode, Opcode):
            raise ConfigError(f"invalid opcode {self.opcode!r}")
        if self.opcode in (Opcode.DELAY, Opcode.BRANCH):
            return
        if not isinstance(self.length, int) or isinstance(self.length, bool):
            raise ConfigError(
                f"vector length must be an integer, got {self.length!r}")
        if self.length < 1 or self.length > MAX_VECTOR:
            raise ConfigError(f"vector length {self.length} out of range")
        if self.addr is not None and (not isinstance(self.addr, int)
                                      or self.addr < 0):
            raise ConfigError(f"HBM address must be a non-negative "
                              f"integer, got {self.addr!r}")

    @property
    def functional_unit(self) -> Optional[str]:
        return FU_FOR_OPCODE.get(self.opcode)


def vload(dst: str, addr: int, length: int) -> Instruction:
    return Instruction(Opcode.VLOAD, length, dst=dst, addr=addr)


def vstore(src: str, addr: int, length: int) -> Instruction:
    return Instruction(Opcode.VSTORE, length, srcs=(src,), addr=addr)


def vadd(dst: str, a: str, b: str, length: int) -> Instruction:
    return Instruction(Opcode.VADD, length, dst=dst, srcs=(a, b))


def vmul(dst: str, a: str, b: str, length: int) -> Instruction:
    return Instruction(Opcode.VMUL, length, dst=dst, srcs=(a, b))


def vhash(dst: str, a: str, b: str, length: int) -> Instruction:
    return Instruction(Opcode.VHASH, length, dst=dst, srcs=(a, b))


def vntt(dst: str, src: str, length: int, inverse: bool = False) -> Instruction:
    return Instruction(Opcode.VNTT, length, dst=dst, srcs=(src,),
                       imm=1 if inverse else 0)


def vshuf(dst: str, src: str, length: int, route: int = 0) -> Instruction:
    return Instruction(Opcode.VSHUF, length, dst=dst, srcs=(src,), imm=route)


@dataclass
class Program:
    """A straight-line macro-op program (loops already unrolled, as the
    compiler's fixed-trip-count branches allow)."""

    instructions: List[Instruction] = field(default_factory=list)

    def append(self, ins: Instruction) -> None:
        self.instructions.append(ins)

    def __len__(self) -> int:
        return len(self.instructions)

    def registers(self) -> set:
        regs = set()
        for ins in self.instructions:
            if ins.dst:
                regs.add(ins.dst)
            regs.update(ins.srcs)
        return regs

    def validate(self, config=None, *,
                 require_defined_sources: bool = True) -> None:
        """Raise :class:`~repro.errors.ConfigError` if the program is
        structurally impossible (see :func:`validate_program`)."""
        validate_program(self, config,
                         require_defined_sources=require_defined_sources)


#: Operand shape per compute opcode: (number of sources, needs dst,
#: needs addr).
_OPERAND_SHAPE = {
    Opcode.VLOAD: (0, True, True),
    Opcode.VSTORE: (1, False, True),
    Opcode.VADD: (2, True, False),
    Opcode.VMUL: (2, True, False),
    Opcode.VHASH: (2, True, False),
    Opcode.VNTT: (1, True, False),
    Opcode.VSHUF: (1, True, False),
}


def validate_program(program: Program, config=None, *,
                     require_defined_sources: bool = False) -> None:
    """Check a macro-op program against the ISA contract, failing fast
    with an actionable :class:`~repro.errors.ConfigError`.

    Checks per instruction: operand shape for the opcode (source count,
    destination, HBM address), register names are strings, and — when a
    ``config`` is given — VNTT lengths within the NTT FU base size.  With
    ``require_defined_sources`` every source register must be written by
    an earlier instruction (no reads of undefined registers).
    """
    if not isinstance(program, Program):
        raise ConfigError(
            f"expected a Program, got {type(program).__name__}")
    written: set = set()
    for pos, ins in enumerate(program.instructions):
        if not isinstance(ins, Instruction):
            raise ConfigError(f"instruction {pos} is not an Instruction: "
                              f"{ins!r}")
        where = f"instruction {pos} ({ins.opcode.value})"
        if ins.opcode is Opcode.DELAY:
            if ins.imm is not None and (not isinstance(ins.imm, int)
                                        or ins.imm < 0):
                raise ConfigError(f"{where}: DELAY cycles must be a "
                                  f"non-negative integer, got {ins.imm!r}")
            continue
        if ins.opcode is Opcode.BRANCH:
            if not isinstance(ins.imm, int):
                raise ConfigError(f"{where}: BRANCH needs an integer "
                                  "back-edge offset")
            continue
        n_srcs, needs_dst, needs_addr = _OPERAND_SHAPE[ins.opcode]
        if len(ins.srcs) != n_srcs:
            raise ConfigError(f"{where}: expected {n_srcs} source "
                              f"register(s), got {len(ins.srcs)}")
        if not all(isinstance(s, str) and s for s in ins.srcs):
            raise ConfigError(f"{where}: source registers must be "
                              "non-empty strings")
        if needs_dst and not (isinstance(ins.dst, str) and ins.dst):
            raise ConfigError(f"{where}: missing destination register")
        if needs_addr and ins.addr is None:
            raise ConfigError(f"{where}: missing HBM address")
        if (config is not None and ins.opcode is Opcode.VNTT
                and ins.length > config.ntt_base_size):
            raise ConfigError(
                f"{where}: VNTT length {ins.length} exceeds the FU base "
                f"size {config.ntt_base_size}; larger NTTs must be "
                "four-step sequences of base-size VNTTs")
        if require_defined_sources:
            for s in ins.srcs:
                if s not in written:
                    raise ConfigError(f"{where}: reads register {s!r} "
                                      "before any instruction writes it")
        if ins.dst:
            written.add(ins.dst)
