"""NoCap's vector ISA (Sec. IV-A) as macro-operations.

Each instruction operates on a k-element vector (k a power of two from
2^7 to 2^16).  Compute opcodes map one-to-one to the functional units;
LOAD/STORE move vectors between HBM and the register file; DELAY and
BRANCH are the two control instructions of the distributed-control
scheme.  The static scheduler (:mod:`repro.nocap.scheduler`) executes
these with fixed, compiler-visible latencies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

MIN_VECTOR = 1 << 7
MAX_VECTOR = 1 << 16


class Opcode(enum.Enum):
    VLOAD = "vload"     # HBM -> register file
    VSTORE = "vstore"   # register file -> HBM
    VADD = "vadd"       # element-wise modular add
    VMUL = "vmul"       # element-wise modular multiply
    VHASH = "vhash"     # SHA3 over packed 256-bit words
    VNTT = "vntt"       # forward/inverse NTT (<= 2^12 points per pass)
    VSHUF = "vshuf"     # Benes-network permutation
    DELAY = "delay"     # wait a fixed number of cycles
    BRANCH = "branch"   # fixed-trip-count loop back-edge


#: Which functional unit executes each compute opcode.
FU_FOR_OPCODE = {
    Opcode.VADD: "add",
    Opcode.VMUL: "mul",
    Opcode.VHASH: "hash",
    Opcode.VSHUF: "shuffle",
    Opcode.VNTT: "ntt",
    Opcode.VLOAD: "mem",
    Opcode.VSTORE: "mem",
}


@dataclass(frozen=True)
class Instruction:
    """One macro-op over a ``length``-element vector.

    ``dst`` and ``srcs`` name vector registers; LOAD/STORE also carry an
    ``addr`` (HBM address, bytes).  The Benes control bits of a VSHUF and
    the NTT direction are compile-time immediates (``imm``), as in the
    paper's compile-time-routed shuffle network.
    """

    opcode: Opcode
    length: int
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    addr: Optional[int] = None
    imm: Optional[int] = None

    def __post_init__(self):
        if self.opcode in (Opcode.DELAY, Opcode.BRANCH):
            return
        if self.length < 1 or self.length > MAX_VECTOR:
            raise ValueError(f"vector length {self.length} out of range")

    @property
    def functional_unit(self) -> Optional[str]:
        return FU_FOR_OPCODE.get(self.opcode)


def vload(dst: str, addr: int, length: int) -> Instruction:
    return Instruction(Opcode.VLOAD, length, dst=dst, addr=addr)


def vstore(src: str, addr: int, length: int) -> Instruction:
    return Instruction(Opcode.VSTORE, length, srcs=(src,), addr=addr)


def vadd(dst: str, a: str, b: str, length: int) -> Instruction:
    return Instruction(Opcode.VADD, length, dst=dst, srcs=(a, b))


def vmul(dst: str, a: str, b: str, length: int) -> Instruction:
    return Instruction(Opcode.VMUL, length, dst=dst, srcs=(a, b))


def vhash(dst: str, a: str, b: str, length: int) -> Instruction:
    return Instruction(Opcode.VHASH, length, dst=dst, srcs=(a, b))


def vntt(dst: str, src: str, length: int, inverse: bool = False) -> Instruction:
    return Instruction(Opcode.VNTT, length, dst=dst, srcs=(src,),
                       imm=1 if inverse else 0)


def vshuf(dst: str, src: str, length: int, route: int = 0) -> Instruction:
    return Instruction(Opcode.VSHUF, length, dst=dst, srcs=(src,), imm=route)


@dataclass
class Program:
    """A straight-line macro-op program (loops already unrolled, as the
    compiler's fixed-trip-count branches allow)."""

    instructions: List[Instruction] = field(default_factory=list)

    def append(self, ins: Instruction) -> None:
        self.instructions.append(ins)

    def __len__(self) -> int:
        return len(self.instructions)

    def registers(self) -> set:
        regs = set()
        for ins in self.instructions:
            if ins.dst:
                regs.add(ins.dst)
            regs.update(ins.srcs)
        return regs
