"""Wide-vector permutations (Sec. IV-B "Implementing wide permutations").

NoCap's shuffle FU is only 128 lanes wide, but two structured permutation
families on wider vectors are needed:

* **cyclic rotations** — used for the reduction folds in sumcheck; and
* **grouped interleavings** — used to compact hashes into adjacent lanes
  when Merkle layers shrink below the vector width.

Both decompose into one pass through the 128-wide Benes network plus
bank-offset writes across PE rows (the paper's example: a rotation by
520 = 8 + 512 is a lane rotation by 8 combined with writing 4 PEs
ahead).  This module implements the decomposition functionally (verified
against ``np.roll``/slicing oracles) and reports its pass/write cost for
the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Shuffle FU width (Sec. IV-B).
SHUFFLE_LANES = 128


@dataclass
class WidePermutationCost:
    """Cost of one wide permutation on the shuffle FU."""

    shuffle_passes: int       # passes through the Benes network
    elements: int             # elements routed per pass
    bank_writes: int          # distinct bank-offset write groups


def wide_rotate(vector: np.ndarray, amount: int,
                lanes: int = SHUFFLE_LANES) -> Tuple[np.ndarray, WidePermutationCost]:
    """Cyclic rotation of a wide vector: out[(i + amount) % n] = in[i].

    Decomposition: the output lane of element i depends only on
    (i + amount) mod lanes, so a single lane-rotation pass through the
    Benes network fixes all lane positions; the remaining movement is a
    whole-group offset absorbed into the write addressing, with wrapped
    elements landing one group further (two write targets per group).
    """
    vector = np.asarray(vector)
    n = vector.shape[-1]
    if n % lanes and n > lanes:
        raise ValueError("vector width must be a multiple of the lane count")
    lanes = min(lanes, n)
    amount %= n

    lane_shift = amount % lanes
    group_shift = amount // lanes
    num_groups = n // lanes

    groups = vector.reshape(num_groups, lanes)
    # One Benes pass: rotate every group by lane_shift.
    rotated = np.roll(groups, lane_shift, axis=1)

    out = np.empty_like(groups)
    # Non-wrapped lanes of group g land in group (g + group_shift);
    # wrapped lanes (the first lane_shift positions after rotation) came
    # from the group's tail and land one group further.
    for g in range(num_groups):
        base = (g + group_shift) % num_groups
        nxt = (base + 1) % num_groups
        out[base, lane_shift:] = rotated[g, lane_shift:]
        out[nxt, :lane_shift] = rotated[g, :lane_shift]

    cost = WidePermutationCost(
        shuffle_passes=1, elements=n,
        bank_writes=num_groups * (2 if lane_shift else 1))
    return out.reshape(vector.shape), cost


def grouped_interleave(vector: np.ndarray, group_log2: int
                       ) -> Tuple[np.ndarray, WidePermutationCost]:
    """Grouped interleaving: even-indexed 2^G-element chunks to the first
    half, odd-indexed chunks to the second half."""
    vector = np.asarray(vector)
    n = vector.shape[-1]
    chunk = 1 << group_log2
    if n % (2 * chunk):
        raise ValueError("vector width must be a multiple of 2 * 2^G")
    chunks = vector.reshape(-1, chunk)
    out = np.concatenate([chunks[0::2].reshape(-1), chunks[1::2].reshape(-1)])
    cost = WidePermutationCost(shuffle_passes=1, elements=n,
                               bank_writes=max(1, n // SHUFFLE_LANES))
    return out.reshape(vector.shape), cost


def grouped_uninterleave(vector: np.ndarray, group_log2: int) -> np.ndarray:
    """Inverse of :func:`grouped_interleave` (test helper)."""
    vector = np.asarray(vector)
    n = vector.shape[-1]
    chunk = 1 << group_log2
    half = n // 2
    evens = vector[:half].reshape(-1, chunk)
    odds = vector[half:].reshape(-1, chunk)
    out = np.empty((evens.shape[0] + odds.shape[0], chunk),
                   dtype=vector.dtype)
    out[0::2] = evens
    out[1::2] = odds
    return out.reshape(vector.shape)
