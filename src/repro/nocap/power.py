"""Power model (Fig. 5): activity-based energy with per-event costs.

The paper combines simulator activity factors with per-event energies
from RTL synthesis; we fit the per-event energies once so the reference
run (16M constraints) dissipates 62 W split 13% FUs / 44% register file /
42% HBM, then apply them to any simulated run.  Because activity scales
with runtime across the benchmark range, the breakdown is "essentially
identical across benchmarks" (Sec. VIII-B), which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from . import constants as C
from .simulator import SimulationReport

# ---------------------------------------------------------------------------
# Per-event energies, fit at the reference run (N = 2^24, t = 148.2 ms,
# traffic = 73.8 GB, lane-ops below).  Values land in physically sensible
# ranges: ~52 pJ/B for HBM2E (~6.5 pJ/bit), a few pJ per 64-bit register
# access, and ~5 pJ per modular multiply in 14nm.
# ---------------------------------------------------------------------------
_REF_SECONDS = 0.14815
_REF_BYTES = 73.833e9
_REF_FU_OPS = 3.7822e11     # weighted FU ops of the reference run
_REF_RF_ACCESSES = 7.0915e11  # ~3 register-file accesses per unweighted op

ENERGY_PER_HBM_BYTE = C.POWER_TOTAL_W * C.POWER_FRACTION_HBM * _REF_SECONDS / _REF_BYTES
ENERGY_PER_RF_ACCESS = C.POWER_TOTAL_W * C.POWER_FRACTION_RF * _REF_SECONDS / _REF_RF_ACCESSES
ENERGY_PER_FU_OP = C.POWER_TOTAL_W * C.POWER_FRACTION_FU * _REF_SECONDS / _REF_FU_OPS
STATIC_WATTS = C.POWER_TOTAL_W * C.POWER_FRACTION_OTHER

#: Relative energy of one op on each FU type (multiply is the heavy one).
FU_OP_WEIGHT = {"mul": 1.6, "add": 0.25, "hash": 2.0, "shuffle": 0.3, "ntt": 2.5}


@dataclass
class PowerBreakdown:
    """Average power by component over one simulated run (Fig. 5)."""

    fu_watts: float
    rf_watts: float
    hbm_watts: float
    other_watts: float

    @property
    def total_watts(self) -> float:
        return self.fu_watts + self.rf_watts + self.hbm_watts + self.other_watts

    def fractions(self) -> Dict[str, float]:
        t = self.total_watts or 1.0
        return {"FUs": self.fu_watts / t, "Register file": self.rf_watts / t,
                "HBM": self.hbm_watts / t, "Other": self.other_watts / t}


def weighted_fu_ops(report: SimulationReport) -> float:
    """Energy-weighted count of FU operations in a run."""
    cfg = report.config
    lanes = {"mul": cfg.mul_lanes, "add": cfg.add_lanes,
             "hash": cfg.hash_lanes, "shuffle": cfg.shuffle_lanes,
             "ntt": cfg.ntt_lanes}
    total = 0.0
    for unit, busy_cycles in report.busy_cycles_by_unit.items():
        total += FU_OP_WEIGHT[unit] * busy_cycles * lanes[unit]
    return total


def power_model(report: SimulationReport) -> PowerBreakdown:
    """Average power of a simulated proof generation."""
    t = report.total_seconds or 1e-12
    fu_ops = weighted_fu_ops(report)
    rf_accesses = 3.0 * fu_ops / 1.6  # ~3 RF accesses per (unweighted) op
    return PowerBreakdown(
        fu_watts=ENERGY_PER_FU_OP * fu_ops / t,
        rf_watts=ENERGY_PER_RF_ACCESS * rf_accesses / t,
        hbm_watts=ENERGY_PER_HBM_BYTE * report.total_traffic_bytes / t,
        other_watts=STATIC_WATTS,
    )
