"""The Orion polynomial commitment scheme (Brakedown/Shockwave style)
over a linear code (Sec. II, Sec. V, Sec. VII-A).

Commitment: the 2^L-entry MLE table is reshaped into a (rows x cols)
matrix (rows = 128 at paper scale), each row is encoded with the linear
code (Reed-Solomon, blowup 4), and the codeword *columns* are committed
in a Merkle tree.

Opening at a point q uses the tensor identity
    P~(q) = eq(q_row)^T  M  eq(q_col),
so the prover sends the combined row u = eq(q_row)^T M and the verifier
completes the inner product itself.  Soundness comes from:

* a proximity test — 4 random row-combinations (Sec. VII-A) whose
  encodings must match the committed columns at 189 random positions, and
* a consistency test — the evaluation combination checked at the same
  columns (the paper follows Brakedown's observation that tests can reuse
  columns, shrinking the proof).

Zero-knowledge: one committed random mask row is folded into every
proximity response, so those responses reveal no row of M (the paper's
protocol-5 masking; the substitution is recorded in DESIGN.md).

The full Orion scheme additionally compresses this proof with an inner
SNARK ("proof composition"); prover-side cost is unchanged, so the
performance model charges for exactly what is implemented here, and the
*composed* proof sizes are modeled analytically in
:mod:`repro.analysis.proofsize`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..code.base import LinearCode
from ..field.goldilocks import MODULUS
from ..code.reed_solomon import ReedSolomonCode
from ..field import vector as fv
from ..hashing.merkle import (
    MerkleMultiProof,
    MerkleTree,
    open_many,
    verify_many,
)
from ..hashing.fieldhash import ColumnChainHasher, hash_columns
from ..hashing.transcript import Transcript
from ..multilinear.mle import combine_rows, eq_table
from ..obs import span as _span
from ..obs.metrics import METRICS as _METRICS

#: Paper parameters (Sec. VII-A).
DEFAULT_ROWS = 128
DEFAULT_PROXIMITY_VECTORS = 4

#: Codeword matrices at or above this many cells are committed with the
#: streaming (tiled) pipeline instead of materializing the full matrix —
#: at paper geometry this kicks in around 2^19 constraints, keeping the
#: 2^20 bench sweep's peak RSS bounded.
DEFAULT_STREAMING_CELLS = 1 << 21

#: Message rows per streaming tile (multiple of the 4-element hash word;
#: small enough that the NTT's ~3-4x transient temporaries stay well
#: under the codeword matrix the streaming path avoids).
STREAM_TILE_ROWS = 16


@dataclass
class PCSParams:
    """Knobs of the commitment scheme, defaulting to the paper's values."""

    num_rows: int = DEFAULT_ROWS
    num_proximity_vectors: int = DEFAULT_PROXIMITY_VECTORS
    zk_mask: bool = True

    def rows_for(self, table_len: int) -> int:
        """Actual row count: the configured value, capped for tiny tables."""
        return min(self.num_rows, table_len)


@dataclass
class OrionCommitment:
    """Public commitment: the Merkle root over codeword columns."""

    root: bytes
    table_len: int
    num_rows: int      # excluding the zk mask row
    num_cols: int

    def size_bytes(self) -> int:
        return 32


@dataclass
class _ProverState:
    matrix: np.ndarray                  # (rows [+1 mask], cols) message matrix
    codewords: Optional[np.ndarray]     # (rows [+1 mask], blowup*cols);
    tree: MerkleTree                    # None when committed streaming
    has_mask: bool
    streaming: bool = False


@dataclass
class OrionEvalProof:
    """Everything the verifier needs beyond the commitment and the claim.

    All opened columns share ONE Merkle multiproof: sibling digests common
    to several query paths ship once, which both shrinks the proof and
    removes the per-query path-building loop from ``open``.  ``columns``
    is ordered by ``merkle.indices`` (sorted, deduplicated); the raw
    transcript query order is kept in ``query_indices`` for the lockstep
    Fiat-Shamir check.
    """

    proximity_rows: List[np.ndarray]   # u_k = gamma_k^T M (+ mask)
    eval_row: np.ndarray               # u = eq(q_row)^T M
    query_indices: List[int]
    columns: List[np.ndarray]          # opened codeword columns (incl. mask row)
    merkle: MerkleMultiProof

    def size_bytes(self) -> int:
        total = sum(r.size for r in self.proximity_rows) * 8
        total += self.eval_row.size * 8
        total += sum(c.size for c in self.columns) * 8
        total += self.merkle.size_bytes()  # includes 4 bytes per query index
        return total


class OrionPCS:
    """Commit/open/verify for multilinear polynomials given as MLE tables."""

    def __init__(self, code: Optional[LinearCode] = None,
                 params: Optional[PCSParams] = None,
                 rng: Optional[np.random.Generator] = None,
                 pool=None,
                 streaming_cells: int = DEFAULT_STREAMING_CELLS):
        self.code = code or ReedSolomonCode()
        self.params = params or PCSParams()
        self._rng = rng or np.random.default_rng()
        #: Optional :class:`~repro.parallel.ProverPool`; when set, the
        #: commit-side hot kernels (row encodes, column/layer hashing) fan
        #: out across its workers.  Proof bytes do not depend on it.
        self.pool = pool
        #: Codeword-cell threshold above which :meth:`commit` streams row
        #: tiles instead of materializing the codeword matrix (tests set
        #: this low to exercise the path at small sizes).
        self.streaming_cells = streaming_cells

    # -- commit ---------------------------------------------------------------
    def commit(self, table: np.ndarray,
               pool=None) -> tuple[OrionCommitment, _ProverState]:
        pool = pool if pool is not None else self.pool
        table = np.asarray(table, dtype=np.uint64)
        n = len(table)
        if n == 0 or n & (n - 1):
            raise ValueError("table length must be a power of two")
        rows = self.params.rows_for(n)
        cols = n // rows
        workers = getattr(pool, "workers", 1)
        with _span("pcs.commit", "other", n=n, rows=rows, cols=cols,
                   workers=workers):
            matrix = table.reshape(rows, cols)
            if self.params.zk_mask:
                # The mask is drawn on the main process *before* any
                # fan-out, so randomness never depends on worker count.
                mask = fv.rand_vector(cols, self._rng).reshape(1, cols)
                matrix = np.vstack([matrix, mask])
            cw_len = self.code.codeword_length(cols)
            if matrix.shape[0] * cw_len >= self.streaming_cells:
                return self._commit_streaming(matrix, n, rows, cols, pool)
            with _span("rs.encode", "rs_encode",
                       rows=matrix.shape[0], cols=cols):
                codewords = self.code.encode_rows(matrix, pool=pool)
            with _span("merkle.build", "merkle", leaves=codewords.shape[1]):
                tree = MerkleTree.from_columns(codewords, pool=pool)
        commitment = OrionCommitment(
            root=tree.root, table_len=n, num_rows=rows, num_cols=cols)
        return commitment, _ProverState(matrix, codewords, tree,
                                        self.params.zk_mask)

    def _commit_streaming(self, matrix: np.ndarray, n: int, rows: int,
                          cols: int,
                          pool) -> tuple[OrionCommitment, _ProverState]:
        """Tiled commit: encode row tiles and fold them straight into
        per-column hash chains, never materializing the codeword matrix.

        Peak transient memory is one tile of codeword rows (two shared
        ring slots on the pooled path) plus 32 bytes of chain state per
        column, so the bench sweep's peak RSS stays bounded as the table
        grows to 2^20 and beyond.  The leaf digests — and therefore the
        root and the proof bytes — are byte-identical to the one-shot
        path (:class:`~repro.hashing.fieldhash.ColumnChainHasher`).
        """
        total_rows = matrix.shape[0]
        cw_len = self.code.codeword_length(cols)
        _METRICS.inc("pcs.streaming_commits")
        with _span("pcs.commit.stream", "rs_encode",
                   rows=total_rows, cw_len=cw_len):
            if pool is not None:
                leaves = pool.stream_encode_hash(self.code, matrix)
            else:
                chains = ColumnChainHasher(cw_len, total_rows)
                for lo in range(0, total_rows, STREAM_TILE_ROWS):
                    hi = min(total_rows, lo + STREAM_TILE_ROWS)
                    chains.update(self.code.encode_rows(matrix[lo:hi]))
                leaves = chains.finalize()
        with _span("merkle.build", "merkle", leaves=cw_len):
            tree = MerkleTree(leaves, pool=pool)
        commitment = OrionCommitment(
            root=tree.root, table_len=n, num_rows=rows, num_cols=cols)
        return commitment, _ProverState(matrix, None, tree,
                                        self.params.zk_mask, streaming=True)

    # -- open -----------------------------------------------------------------
    def open(self, state: _ProverState, commitment: OrionCommitment,
             point: Sequence[int], transcript: Transcript,
             pool=None) -> OrionEvalProof:
        """Produce an evaluation proof for P~(point); mutates the transcript.

        For a streaming commitment (no materialized codeword matrix) the
        queried columns are regenerated by re-encoding row tiles — one
        extra encode pass traded for never holding the full matrix.
        """
        pool = pool if pool is not None else self.pool
        rows, cols = commitment.num_rows, commitment.num_cols
        if (1 << len(point)) != commitment.table_len:
            raise ValueError("point dimension does not match committed table")
        transcript.absorb_digest(b"pcs/root", commitment.root)

        with _span("pcs.open", "other", rows=rows, cols=cols):
            # Proximity test rows (mask folded in with coefficient 1).
            with _span("pcs.open.proximity", "polyarith",
                       vectors=self.params.num_proximity_vectors):
                proximity_rows = []
                for k in range(self.params.num_proximity_vectors):
                    gamma = transcript.challenge_vector(
                        b"pcs/gamma%d" % k, rows)
                    coeffs = self._with_mask(gamma, state.has_mask,
                                             mask_coeff=1)
                    u = combine_rows(state.matrix, coeffs)
                    transcript.absorb_array(b"pcs/prox%d" % k, u)
                    proximity_rows.append(u)

            # Evaluation row (mask excluded: coefficient 0).
            with _span("pcs.open.eval_row", "polyarith"):
                row_point, _col_point = self._split_point(point, rows)
                r = eq_table(row_point)
                coeffs = self._with_mask(r, state.has_mask, mask_coeff=0)
                eval_row = combine_rows(state.matrix, coeffs)
                transcript.absorb_array(b"pcs/eval-row", eval_row)

            # Column queries, shared by all tests; one multiproof for all
            # paths.
            codeword_len = self.code.codeword_length(cols)
            indices = transcript.challenge_indices(
                b"pcs/queries", self.code.num_queries, codeword_len)
            with _span("merkle.open", "merkle", queries=len(indices)):
                multiproof = open_many(state.tree, indices)
                if state.codewords is not None:
                    opened = state.codewords[:, multiproof.indices]
                else:
                    opened = self._gather_columns_streaming(
                        state.matrix, multiproof.indices, pool)
                columns = [np.ascontiguousarray(opened[:, k])
                           for k in range(opened.shape[1])]
        return OrionEvalProof(proximity_rows, eval_row, indices, columns,
                              multiproof)

    def _gather_columns_streaming(self, matrix: np.ndarray,
                                  indices: Sequence[int],
                                  pool) -> np.ndarray:
        """Queried codeword columns of a streaming commitment, regenerated
        tile by tile (bit-identical to slicing the materialized matrix)."""
        total_rows = matrix.shape[0]
        qidx = np.asarray(indices, dtype=np.int64)
        out = np.empty((total_rows, len(qidx)), dtype=np.uint64)
        with _span("pcs.open.stream_gather", "rs_encode",
                   rows=total_rows, queries=len(qidx)):
            for lo in range(0, total_rows, STREAM_TILE_ROWS):
                hi = min(total_rows, lo + STREAM_TILE_ROWS)
                tile = self.code.encode_rows(matrix[lo:hi], pool=pool)
                out[lo:hi] = tile[:, qidx]
        return out

    def evaluate_from_row(self, eval_row: np.ndarray,
                          point: Sequence[int], num_rows: int) -> int:
        """P~(point) = <eval_row, eq(q_col)> — used by prover and verifier."""
        _row_point, col_point = self._split_point(point, num_rows)
        return fv.dot(eval_row, eq_table(col_point))

    # -- verify ---------------------------------------------------------------
    def verify(self, commitment: OrionCommitment, point: Sequence[int],
               value: int, proof: OrionEvalProof,
               transcript: Transcript) -> bool:
        """Check an evaluation proof; mutates the transcript identically to
        :meth:`open` so Fiat-Shamir challenges line up.

        The proof comes from an untrusted prover: structure is validated
        *before* any transcript absorption or numpy arithmetic, so a
        malformed proof is answered with ``False`` — never an
        ``IndexError``, a broadcast error, or a stuck loop.
        """
        if not self._commitment_well_formed(commitment):
            return False
        rows, cols = commitment.num_rows, commitment.num_cols
        if rows != self.params.rows_for(commitment.table_len):
            return False  # geometry must match the verifier's parameters
        if (1 << len(point)) != commitment.table_len:
            return False
        if not isinstance(proof, OrionEvalProof):
            return False
        # Count checks first: the proximity loop length and every absorbed
        # array must be attacker-independent before challenges are derived.
        if len(proof.proximity_rows) != self.params.num_proximity_vectors:
            return False
        prox_rows = [_field_array(u, cols) for u in proof.proximity_rows]
        eval_row = _field_array(proof.eval_row, cols)
        if eval_row is None or any(u is None for u in prox_rows):
            return False
        codeword_len = self.code.codeword_length(cols)
        if not isinstance(proof.query_indices, list) or not all(
                isinstance(i, int) and 0 <= i < codeword_len
                for i in proof.query_indices):
            return False

        transcript.absorb_digest(b"pcs/root", commitment.root)
        # Re-derive challenges in lockstep.
        gammas = []
        for k, u in enumerate(prox_rows):
            gamma = transcript.challenge_vector(b"pcs/gamma%d" % k, rows)
            transcript.absorb_array(b"pcs/prox%d" % k, u)
            gammas.append(gamma)
        transcript.absorb_array(b"pcs/eval-row", eval_row)
        indices = transcript.challenge_indices(
            b"pcs/queries", self.code.num_queries, codeword_len)
        if indices != proof.query_indices:
            return False
        if not isinstance(proof.merkle, MerkleMultiProof):
            return False
        if proof.merkle.indices != sorted(set(indices)):
            return False
        if len(proof.columns) != len(proof.merkle.indices):
            return False

        expected_col_rows = rows + (1 if self._mask_present(proof, rows)
                                    else 0)
        cols_list = [_field_array(c, expected_col_rows)
                     for c in proof.columns]
        if any(c is None for c in cols_list):
            return False

        # One multiproof check covers every opened column.
        cols_mat = np.stack(cols_list, axis=1)
        if not verify_many(commitment.root, hash_columns(cols_mat),
                           proof.merkle, codeword_len):
            return False

        # Encode all claimed combination rows in one batched call.
        stacked = np.stack(prox_rows + [eval_row])
        codes = self.code.encode_rows(stacked)
        prox_codes, eval_code = codes[:-1], codes[-1]

        row_point, col_point = self._split_point(point, rows)
        r = eq_table(row_point)

        qidx = np.asarray(proof.merkle.indices, dtype=np.int64)
        data = cols_mat[:rows]
        mask_syms = (cols_mat[rows] if expected_col_rows > rows
                     else fv.zeros(len(qidx)))
        # Proximity consistency at every query at once (mask coefficient 1).
        for gamma, code_row in zip(gammas, prox_codes):
            rhs = fv.add(fv.vecmat(gamma, data), mask_syms)
            if (code_row[qidx] != rhs).any():
                return False
        # Evaluation consistency (mask coefficient 0).
        if (eval_code[qidx] != fv.vecmat(r, data)).any():
            return False

        # Finally, the claimed value must follow from the evaluation row.
        if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
            return False
        expected = fv.dot(eval_row, eq_table(col_point))
        return expected == int(value) % MODULUS

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _split_point(point: Sequence[int], rows: int) -> tuple[list, list]:
        log_rows = rows.bit_length() - 1
        pt = [int(x) for x in point]
        return pt[:log_rows], pt[log_rows:]

    @staticmethod
    def _with_mask(coeffs: np.ndarray, has_mask: bool, mask_coeff: int) -> np.ndarray:
        if not has_mask:
            return coeffs
        return np.concatenate([coeffs, np.array([mask_coeff], dtype=np.uint64)])

    @staticmethod
    def _mask_present(proof: OrionEvalProof, rows: int) -> bool:
        if not proof.columns:
            return False
        first = _field_array(proof.columns[0])
        return first is not None and first.size == rows + 1

    @staticmethod
    def _commitment_well_formed(c: OrionCommitment) -> bool:
        """Geometry sanity for an untrusted commitment: 32-byte root,
        power-of-two table split exactly into rows x cols."""
        if not isinstance(c, OrionCommitment):
            return False
        if not isinstance(c.root, (bytes, bytearray)) or len(c.root) != 32:
            return False
        for n in (c.table_len, c.num_rows, c.num_cols):
            if not isinstance(n, int) or n < 1:
                return False
        if c.table_len & (c.table_len - 1) or c.num_rows & (c.num_rows - 1):
            return False
        return c.num_rows * c.num_cols == c.table_len


def _field_array(x, length: Optional[int] = None) -> Optional[np.ndarray]:
    """Coerce untrusted input to a 1-D canonical uint64 vector, or None.

    Rejects anything numpy cannot losslessly view as uint64 (negative or
    huge ints, nested/ragged data, wrong dimensionality or length) and
    any non-canonical element — all before the value touches a kernel
    that assumes well-formed operands.
    """
    try:
        arr = np.asarray(x, dtype=np.uint64)
    except (TypeError, ValueError, OverflowError):
        return None
    if arr.ndim != 1:
        return None
    if length is not None and arr.shape != (length,):
        return None
    if arr.size and int(arr.max()) >= MODULUS:
        return None
    return arr
