"""The Orion polynomial commitment scheme (Brakedown/Shockwave style)
over a linear code (Sec. II, Sec. V, Sec. VII-A).

Commitment: the 2^L-entry MLE table is reshaped into a (rows x cols)
matrix (rows = 128 at paper scale), each row is encoded with the linear
code (Reed-Solomon, blowup 4), and the codeword *columns* are committed
in a Merkle tree.

Opening at a point q uses the tensor identity
    P~(q) = eq(q_row)^T  M  eq(q_col),
so the prover sends the combined row u = eq(q_row)^T M and the verifier
completes the inner product itself.  Soundness comes from:

* a proximity test — 4 random row-combinations (Sec. VII-A) whose
  encodings must match the committed columns at 189 random positions, and
* a consistency test — the evaluation combination checked at the same
  columns (the paper follows Brakedown's observation that tests can reuse
  columns, shrinking the proof).

Zero-knowledge: one committed random mask row is folded into every
proximity response, so those responses reveal no row of M (the paper's
protocol-5 masking; the substitution is recorded in DESIGN.md).

The full Orion scheme additionally compresses this proof with an inner
SNARK ("proof composition"); prover-side cost is unchanged, so the
performance model charges for exactly what is implemented here, and the
*composed* proof sizes are modeled analytically in
:mod:`repro.analysis.proofsize`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..code.base import LinearCode
from ..field.goldilocks import MODULUS
from ..code.reed_solomon import ReedSolomonCode
from ..field import vector as fv
from ..hashing.merkle import (
    MerkleMultiProof,
    MerkleTree,
    open_many,
    verify_many,
)
from ..hashing.fieldhash import hash_columns
from ..hashing.transcript import Transcript
from ..multilinear.mle import combine_rows, eq_table

#: Paper parameters (Sec. VII-A).
DEFAULT_ROWS = 128
DEFAULT_PROXIMITY_VECTORS = 4


@dataclass
class PCSParams:
    """Knobs of the commitment scheme, defaulting to the paper's values."""

    num_rows: int = DEFAULT_ROWS
    num_proximity_vectors: int = DEFAULT_PROXIMITY_VECTORS
    zk_mask: bool = True

    def rows_for(self, table_len: int) -> int:
        """Actual row count: the configured value, capped for tiny tables."""
        return min(self.num_rows, table_len)


@dataclass
class OrionCommitment:
    """Public commitment: the Merkle root over codeword columns."""

    root: bytes
    table_len: int
    num_rows: int      # excluding the zk mask row
    num_cols: int

    def size_bytes(self) -> int:
        return 32


@dataclass
class _ProverState:
    matrix: np.ndarray        # (rows [+1 mask], cols) message matrix
    codewords: np.ndarray     # (rows [+1 mask], blowup*cols)
    tree: MerkleTree
    has_mask: bool


@dataclass
class OrionEvalProof:
    """Everything the verifier needs beyond the commitment and the claim.

    All opened columns share ONE Merkle multiproof: sibling digests common
    to several query paths ship once, which both shrinks the proof and
    removes the per-query path-building loop from ``open``.  ``columns``
    is ordered by ``merkle.indices`` (sorted, deduplicated); the raw
    transcript query order is kept in ``query_indices`` for the lockstep
    Fiat-Shamir check.
    """

    proximity_rows: List[np.ndarray]   # u_k = gamma_k^T M (+ mask)
    eval_row: np.ndarray               # u = eq(q_row)^T M
    query_indices: List[int]
    columns: List[np.ndarray]          # opened codeword columns (incl. mask row)
    merkle: MerkleMultiProof

    def size_bytes(self) -> int:
        total = sum(r.size for r in self.proximity_rows) * 8
        total += self.eval_row.size * 8
        total += sum(c.size for c in self.columns) * 8
        total += self.merkle.size_bytes()  # includes 4 bytes per query index
        return total


class OrionPCS:
    """Commit/open/verify for multilinear polynomials given as MLE tables."""

    def __init__(self, code: Optional[LinearCode] = None,
                 params: Optional[PCSParams] = None,
                 rng: Optional[np.random.Generator] = None):
        self.code = code or ReedSolomonCode()
        self.params = params or PCSParams()
        self._rng = rng or np.random.default_rng()

    # -- commit ---------------------------------------------------------------
    def commit(self, table: np.ndarray) -> tuple[OrionCommitment, _ProverState]:
        table = np.asarray(table, dtype=np.uint64)
        n = len(table)
        if n == 0 or n & (n - 1):
            raise ValueError("table length must be a power of two")
        rows = self.params.rows_for(n)
        cols = n // rows
        matrix = table.reshape(rows, cols)
        if self.params.zk_mask:
            mask = fv.rand_vector(cols, self._rng).reshape(1, cols)
            matrix = np.vstack([matrix, mask])
        codewords = self.code.encode_rows(matrix)
        tree = MerkleTree.from_columns(codewords)
        commitment = OrionCommitment(
            root=tree.root, table_len=n, num_rows=rows, num_cols=cols)
        return commitment, _ProverState(matrix, codewords, tree,
                                        self.params.zk_mask)

    # -- open -----------------------------------------------------------------
    def open(self, state: _ProverState, commitment: OrionCommitment,
             point: Sequence[int], transcript: Transcript) -> OrionEvalProof:
        """Produce an evaluation proof for P~(point); mutates the transcript."""
        rows, cols = commitment.num_rows, commitment.num_cols
        if (1 << len(point)) != commitment.table_len:
            raise ValueError("point dimension does not match committed table")
        transcript.absorb_digest(b"pcs/root", commitment.root)

        # Proximity test rows (mask folded in with coefficient 1).
        proximity_rows = []
        for k in range(self.params.num_proximity_vectors):
            gamma = transcript.challenge_vector(b"pcs/gamma%d" % k, rows)
            coeffs = self._with_mask(gamma, state.has_mask, mask_coeff=1)
            u = combine_rows(state.matrix, coeffs)
            transcript.absorb_array(b"pcs/prox%d" % k, u)
            proximity_rows.append(u)

        # Evaluation row (mask excluded: coefficient 0).
        row_point, _col_point = self._split_point(point, rows)
        r = eq_table(row_point)
        coeffs = self._with_mask(r, state.has_mask, mask_coeff=0)
        eval_row = combine_rows(state.matrix, coeffs)
        transcript.absorb_array(b"pcs/eval-row", eval_row)

        # Column queries, shared by all tests; one multiproof for all paths.
        codeword_len = self.code.codeword_length(cols)
        indices = transcript.challenge_indices(
            b"pcs/queries", self.code.num_queries, codeword_len)
        multiproof = open_many(state.tree, indices)
        opened = state.codewords[:, multiproof.indices]
        columns = [np.ascontiguousarray(opened[:, k])
                   for k in range(opened.shape[1])]
        return OrionEvalProof(proximity_rows, eval_row, indices, columns,
                              multiproof)

    def evaluate_from_row(self, eval_row: np.ndarray,
                          point: Sequence[int], num_rows: int) -> int:
        """P~(point) = <eval_row, eq(q_col)> — used by prover and verifier."""
        _row_point, col_point = self._split_point(point, num_rows)
        return fv.dot(eval_row, eq_table(col_point))

    # -- verify ---------------------------------------------------------------
    def verify(self, commitment: OrionCommitment, point: Sequence[int],
               value: int, proof: OrionEvalProof,
               transcript: Transcript) -> bool:
        """Check an evaluation proof; mutates the transcript identically to
        :meth:`open` so Fiat-Shamir challenges line up."""
        rows, cols = commitment.num_rows, commitment.num_cols
        if (1 << len(point)) != commitment.table_len:
            return False
        transcript.absorb_digest(b"pcs/root", commitment.root)

        # Re-derive challenges in lockstep.
        gammas = []
        for k, u in enumerate(proof.proximity_rows):
            gamma = transcript.challenge_vector(b"pcs/gamma%d" % k, rows)
            transcript.absorb_array(b"pcs/prox%d" % k, np.asarray(u, dtype=np.uint64))
            gammas.append(gamma)
        if len(gammas) != self.params.num_proximity_vectors:
            return False
        transcript.absorb_array(b"pcs/eval-row",
                                np.asarray(proof.eval_row, dtype=np.uint64))
        codeword_len = self.code.codeword_length(cols)
        indices = transcript.challenge_indices(
            b"pcs/queries", self.code.num_queries, codeword_len)
        if indices != proof.query_indices:
            return False
        if proof.merkle.indices != sorted(set(indices)):
            return False
        if len(proof.columns) != len(proof.merkle.indices):
            return False

        expected_col_rows = rows + (1 if self._mask_present(proof, rows) else 0)
        cols_list = [np.asarray(c, dtype=np.uint64) for c in proof.columns]
        if any(c.shape != (expected_col_rows,) for c in cols_list):
            return False
        if any(np.asarray(u, dtype=np.uint64).shape != (cols,)
               for u in proof.proximity_rows + [proof.eval_row]):
            return False

        # One multiproof check covers every opened column.
        cols_mat = np.stack(cols_list, axis=1)
        if not verify_many(commitment.root, hash_columns(cols_mat),
                           proof.merkle, codeword_len):
            return False

        # Encode all claimed combination rows in one batched call.
        stacked = np.stack([np.asarray(u, dtype=np.uint64)
                            for u in proof.proximity_rows]
                           + [np.asarray(proof.eval_row, dtype=np.uint64)])
        codes = self.code.encode_rows(stacked)
        prox_codes, eval_code = codes[:-1], codes[-1]

        row_point, col_point = self._split_point(point, rows)
        r = eq_table(row_point)

        qidx = np.asarray(proof.merkle.indices, dtype=np.int64)
        data = cols_mat[:rows]
        mask_syms = (cols_mat[rows] if expected_col_rows > rows
                     else fv.zeros(len(qidx)))
        # Proximity consistency at every query at once (mask coefficient 1).
        for gamma, code_row in zip(gammas, prox_codes):
            rhs = fv.add(fv.vecmat(gamma, data), mask_syms)
            if (code_row[qidx] != rhs).any():
                return False
        # Evaluation consistency (mask coefficient 0).
        if (eval_code[qidx] != fv.vecmat(r, data)).any():
            return False

        # Finally, the claimed value must follow from the evaluation row.
        expected = fv.dot(np.asarray(proof.eval_row, dtype=np.uint64),
                          eq_table(col_point))
        return expected == value % MODULUS

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _split_point(point: Sequence[int], rows: int) -> tuple[list, list]:
        log_rows = rows.bit_length() - 1
        pt = [int(x) for x in point]
        return pt[:log_rows], pt[log_rows:]

    @staticmethod
    def _with_mask(coeffs: np.ndarray, has_mask: bool, mask_coeff: int) -> np.ndarray:
        if not has_mask:
            return coeffs
        return np.concatenate([coeffs, np.array([mask_coeff], dtype=np.uint64)])

    @staticmethod
    def _mask_present(proof: OrionEvalProof, rows: int) -> bool:
        return bool(proof.columns) and proof.columns[0].size == rows + 1
