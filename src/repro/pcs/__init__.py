"""Polynomial commitment schemes (Orion over linear codes)."""

from .fri import FriParams, FriProof, FriProver, FriVerifier, fri_prover_tasks
from .orion import (
    DEFAULT_PROXIMITY_VECTORS,
    DEFAULT_ROWS,
    OrionCommitment,
    OrionEvalProof,
    OrionPCS,
    PCSParams,
)

__all__ = [
    "FriParams",
    "FriProof",
    "FriProver",
    "FriVerifier",
    "fri_prover_tasks",
    "DEFAULT_PROXIMITY_VECTORS",
    "DEFAULT_ROWS",
    "OrionCommitment",
    "OrionEvalProof",
    "OrionPCS",
    "PCSParams",
]
