"""FRI: the Fast Reed-Solomon IOP of Proximity (Ben-Sasson et al.),
the low-degree test behind STARKs.

The paper argues NoCap generalizes beyond Spartan+Orion because *all*
hash-based schemes build on the same primitives — "hashing, NTTs, and
modular multiplies and adds" (Sec. IV-E, citing Brakedown and STARKs).
This module makes that concrete: a complete FRI prover/verifier over
Goldilocks whose inner loops are exactly NoCap's primitive operations
(an NTT to evaluate, vector multiply/add folds, Merkle hashing), plus a
task-cost hook so the simulator can price STARK-style provers.

Protocol sketch (commit phase, then query phase):

* Evaluate the degree-< n polynomial on a domain of size N = blowup * n
  (one NTT) and Merkle-commit the evaluations.
* Repeatedly *fold*: with verifier challenge beta, combine f(x) and
  f(-x) into a half-size codeword of half the degree bound,
      f'(x^2) = (f(x) + f(-x)) / 2  +  beta * (f(x) - f(-x)) / (2x),
  committing every layer, until the degree bound reaches ``stop_degree``;
  the final layer is sent in the clear as coefficients.
* Queries: for each random index, the verifier walks the layer chain,
  checking every fold against Merkle-opened values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import VerificationError
from ..field import vector as fv
from ..field.goldilocks import MODULUS, inv
from ..hashing.merkle import MerklePath, MerkleTree, verify_path
from ..hashing.fieldhash import hash_elements
from ..hashing.transcript import Transcript
from ..ntt.polymul import next_pow2, poly_eval_domain
from ..ntt.radix2 import intt
from ..ntt.roots import primitive_root
from ..obs import span as _span

DEFAULT_BLOWUP = 4
DEFAULT_QUERIES = 30
DEFAULT_STOP_DEGREE = 4

_INV2 = inv(2)


@dataclass
class FriParams:
    blowup: int = DEFAULT_BLOWUP
    num_queries: int = DEFAULT_QUERIES
    stop_degree: int = DEFAULT_STOP_DEGREE


@dataclass
class FriQueryStep:
    """One layer's opening for one query: the paired values and paths."""

    value: int          # f(x) at the queried index
    sibling: int        # f(-x) at index + half
    path_value: MerklePath
    path_sibling: MerklePath


def _query_step_well_formed(step) -> bool:
    """Structural check for one untrusted query-chain step: canonical
    integer values and Merkle paths of the expected shape."""
    if not isinstance(step, FriQueryStep):
        return False
    for v in (step.value, step.sibling):
        if (not isinstance(v, (int, np.integer)) or isinstance(v, bool)
                or not 0 <= v < MODULUS):
            return False
    return (isinstance(step.path_value, MerklePath)
            and isinstance(step.path_sibling, MerklePath))


@dataclass
class FriProof:
    layer_roots: List[bytes]
    final_coefficients: List[int]
    queries: List[List[FriQueryStep]]   # [query][layer]

    def size_bytes(self) -> int:
        total = 32 * len(self.layer_roots)
        total += 8 * len(self.final_coefficients)
        for chain in self.queries:
            for step in chain:
                total += 16
                total += step.path_value.size_bytes()
                total += step.path_sibling.size_bytes()
        return total


def _fold_layer(values: np.ndarray, beta: int, domain_gen: int) -> np.ndarray:
    """One FRI fold: N evaluations on <g> -> N/2 evaluations on <g^2>."""
    n = len(values)
    half = n // 2
    top = values[:half]
    bot = values[half:]  # f(-x): g^(i + N/2) = -g^i
    even = fv.mul_scalar(fv.add(top, bot), _INV2)
    # odd part: (f(x) - f(-x)) / (2x) with x = g^i.
    x_invs = fv.pow_vector(fv.powers(domain_gen, half), MODULUS - 2)
    odd = fv.mul(fv.mul_scalar(fv.sub(top, bot), _INV2), x_invs)
    return fv.add(even, fv.mul_scalar(odd, beta))


class FriProver:
    """Proves a committed codeword is within the low-degree bound."""

    def __init__(self, params: FriParams | None = None):
        self.params = params or FriParams()

    def prove(self, coefficients: Sequence[int],
              transcript: Transcript) -> FriProof:
        """Prove deg < len(coefficients) (padded to a power of two)."""
        p = self.params
        coeffs = np.asarray(
            [int(c) % MODULUS for c in coefficients], dtype=np.uint64)
        degree_bound = next_pow2(len(coeffs))
        padded = np.zeros(degree_bound, dtype=np.uint64)
        padded[: len(coeffs)] = coeffs

        domain_size = p.blowup * degree_bound
        with _span("fri.prove", "other", degree_bound=degree_bound,
                   domain=domain_size):
            with _span("fri.ntt", "rs_encode", n=domain_size):
                values = poly_eval_domain(padded, domain_size)  # the NTT

            layers: List[np.ndarray] = []
            trees: List[MerkleTree] = []
            roots: List[bytes] = []
            gen = primitive_root(domain_size)
            current = values
            bound = degree_bound
            while bound > p.stop_degree:
                with _span("fri.commit_layer", "merkle", leaves=len(current)):
                    tree = MerkleTree(
                        [hash_elements(np.array([v], dtype=np.uint64))
                         for v in current])
                layers.append(current)
                trees.append(tree)
                roots.append(tree.root)
                transcript.absorb_digest(b"fri/root", tree.root)
                beta = transcript.challenge_field(b"fri/beta")
                with _span("fri.fold", "polyarith", n=len(current)):
                    current = _fold_layer(current, beta, gen)
                gen = gen * gen % MODULUS
                bound //= 2

            final_layer_coeffs = intt(current)
            if final_layer_coeffs[p.stop_degree:].any():
                # Explicit typed check (a bare assert would vanish under -O).
                raise VerificationError("final layer exceeds the degree bound")
            final_coeffs = [int(c)
                            for c in final_layer_coeffs[: p.stop_degree]]
            transcript.absorb_fields(b"fri/final", final_coeffs)

            indices = transcript.challenge_indices(
                b"fri/queries", p.num_queries, domain_size)
            with _span("fri.queries", "merkle", queries=len(indices)):
                queries = []
                for idx in indices:
                    chain = []
                    i = idx
                    for layer, tree in zip(layers, trees):
                        half = len(layer) // 2
                        i %= half
                        chain.append(FriQueryStep(
                            value=int(layer[i]),
                            sibling=int(layer[i + half]),
                            path_value=tree.open(i),
                            path_sibling=tree.open(i + half)))
                    queries.append(chain)
        return FriProof(roots, final_coeffs, queries)


class FriVerifier:
    """Checks a FRI proof against the claimed degree bound."""

    def __init__(self, params: FriParams | None = None):
        self.params = params or FriParams()

    def verify(self, degree_bound: int, proof: FriProof,
               transcript: Transcript) -> bool:
        """Check a FRI proof; adversarial structure (wrong types, bad
        digests, malformed query chains) is rejected with ``False``."""
        p = self.params
        if not isinstance(proof, FriProof):
            return False
        if not isinstance(proof.layer_roots, list) or not all(
                isinstance(r, (bytes, bytearray)) and len(r) == 32
                for r in proof.layer_roots):
            return False
        if not isinstance(proof.final_coefficients, list) or not all(
                isinstance(c, (int, np.integer)) and not isinstance(c, bool)
                and 0 <= c < MODULUS for c in proof.final_coefficients):
            return False
        if not isinstance(proof.queries, list):
            return False
        degree_bound = next_pow2(degree_bound)
        domain_size = p.blowup * degree_bound

        # Re-derive challenges.
        betas = []
        bound = degree_bound
        expected_layers = 0
        for root in proof.layer_roots:
            if bound <= p.stop_degree:
                return False
            transcript.absorb_digest(b"fri/root", root)
            betas.append(transcript.challenge_field(b"fri/beta"))
            bound //= 2
            expected_layers += 1
        if bound > p.stop_degree:
            return False  # too few layers for the claimed bound
        if len(proof.final_coefficients) != p.stop_degree:
            return False
        transcript.absorb_fields(b"fri/final", proof.final_coefficients)
        indices = transcript.challenge_indices(
            b"fri/queries", p.num_queries, domain_size)
        if len(proof.queries) != len(indices):
            return False

        base_gen = primitive_root(domain_size)
        final_coeffs = np.asarray(proof.final_coefficients, dtype=np.uint64)

        for idx, chain in zip(indices, proof.queries):
            if not isinstance(chain, list) or len(chain) != expected_layers:
                return False
            if not all(_query_step_well_formed(s) for s in chain):
                return False
            i = idx
            size = domain_size
            gen = base_gen
            carried = None  # folded value that must appear in the next layer
            for step, beta, root in zip(chain, betas, proof.layer_roots):
                half = size // 2
                entering = i  # index of the carried value within this layer
                i %= half
                # Merkle checks.
                for value, path, pos in ((step.value, step.path_value, i),
                                         (step.sibling, step.path_sibling,
                                          i + half)):
                    if path.index != pos:
                        return False
                    leaf = hash_elements(np.array([value], dtype=np.uint64))
                    if not verify_path(root, leaf, path):
                        return False
                # Consistency with the previous fold: the carried value
                # sits at `entering`, which is either the opened value
                # (bottom half) or its sibling (top half).
                if carried is not None:
                    present = step.value if entering < half else step.sibling
                    if present != carried:
                        return False
                x = pow(gen, i, MODULUS)
                even = (step.value + step.sibling) * _INV2 % MODULUS
                odd = ((step.value - step.sibling) * _INV2
                       % MODULUS * inv(x)) % MODULUS
                carried = (even + beta * odd) % MODULUS
                size = half
                gen = gen * gen % MODULUS

            if carried is None:
                # Degree bound at or below stop_degree: no layers were
                # committed, the coefficients *are* the (trivially
                # low-degree) message; nothing further to check.
                continue
            # The last fold must match the final polynomial, evaluated at
            # the query's point in the final domain (generator `gen`).
            pos = i % size
            point = pow(gen, pos, MODULUS)
            acc = 0
            for c in reversed(proof.final_coefficients):
                acc = (acc * point + int(c)) % MODULUS
            if carried != acc:
                return False
        return True


def fri_prover_tasks(degree_bound: int, cfg=None):
    """NoCap task costs for one FRI commit+fold chain (Sec. IV-E
    generality hook): an NTT, per-layer Merkle hashing, and vector folds."""
    from ..nocap.config import DEFAULT_CONFIG
    from ..nocap.tasks import TaskCost, ntt_passes

    cfg = cfg or DEFAULT_CONFIG
    p = FriParams()
    n = next_pow2(degree_bound)
    domain = p.blowup * n
    tasks = [TaskCost(
        name="fri-evaluate", family="rs_encode",
        ntt_element_passes=domain * ntt_passes(domain, cfg.ntt_base_size),
        mem_bytes=8.0 * 2 * domain)]
    size = domain
    bound = n
    while bound > p.stop_degree:
        tasks.append(TaskCost(
            name=f"fri-layer-{size}", family="merkle",
            hash_elements=2.0 * size,
            mul_ops=2.0 * size, add_ops=3.0 * size,
            mem_bytes=8.0 * 3 * size if size > cfg.register_file_elements
            else 0.0))
        size //= 2
        bound //= 2
    return tasks
