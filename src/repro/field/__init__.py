"""Goldilocks-64 finite field arithmetic (scalar, vectorized, polynomials)."""

from .goldilocks import (
    GENERATOR,
    MODULUS,
    TWO_ADICITY,
    Fp,
    add,
    batch_inv,
    inv,
    mul,
    neg,
    pow_mod,
    rand_element,
    root_of_unity,
    sub,
)
from .poly import Polynomial, interpolate, interpolate_eval
from . import vector

__all__ = [
    "GENERATOR",
    "MODULUS",
    "TWO_ADICITY",
    "Fp",
    "add",
    "batch_inv",
    "inv",
    "mul",
    "neg",
    "pow_mod",
    "rand_element",
    "root_of_unity",
    "sub",
    "Polynomial",
    "interpolate",
    "interpolate_eval",
    "vector",
]
