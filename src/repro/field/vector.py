"""Vectorized Goldilocks-64 arithmetic on numpy uint64 arrays.

These kernels are the software analogue of NoCap's 2,048-lane modular
add/multiply functional units: element-wise operations over vectors of
64-bit residues, using only 64-bit integer operations plus the Goldilocks
reduction (adds, shifts, and conditional corrections) — exactly the
structure the paper exploits in hardware (Sec. IV-A).

All functions accept and return arrays in canonical form (values < p) with
dtype ``uint64``.  Scalars may be passed wherever an array is accepted.
"""

from __future__ import annotations

import numpy as np

from .goldilocks import MODULUS

import functools


def _wrapping(fn):
    """Run ``fn`` with numpy overflow warnings suppressed.

    The kernels rely on 64-bit wraparound; numpy warns on overflow for
    0-d/scalar operands, so each kernel scopes the suppression to itself.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with np.errstate(over="ignore"):
            return fn(*args, **kwargs)

    return wrapper

_P = np.uint64(MODULUS)
_MASK32 = np.uint64(0xFFFFFFFF)
_EPS = np.uint64(0xFFFFFFFF)  # 2^64 mod p = 2^32 - 1
_SHIFT32 = np.uint64(32)
_ZERO = np.uint64(0)
_ONE = np.uint64(1)


def asfield(values: "Sequence[int] | np.ndarray | int") -> np.ndarray:
    """Coerce Python ints / sequences / arrays into canonical uint64 residues."""
    if isinstance(values, np.ndarray) and values.dtype == np.uint64:
        arr = values
    else:
        if np.isscalar(values):
            values = [values]
        arr = np.array([int(v) % MODULUS for v in np.asarray(values, dtype=object).ravel()],
                       dtype=np.uint64)
        return arr
    # Already uint64: canonicalize any values >= p.
    over = arr >= _P
    if over.any():
        arr = np.where(over, arr - _P, arr)
    return arr


def zeros(n: int) -> np.ndarray:
    return np.zeros(n, dtype=np.uint64)


def ones(n: int) -> np.ndarray:
    return np.ones(n, dtype=np.uint64)


def full(n: int, value: int) -> np.ndarray:
    return np.full(n, np.uint64(value % MODULUS), dtype=np.uint64)


@_wrapping
def rand_vector(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Sample n uniform field elements."""
    g = rng or np.random.default_rng()
    # Rejection-free: 2^64 mod p = 2^32-1 values map onto [0, 2^32-1); the
    # bias is ~2^-32 per element, negligible for tests and benchmarks.
    raw = g.integers(0, 1 << 63, size=n, dtype=np.uint64) << _ONE
    raw |= g.integers(0, 2, size=n, dtype=np.uint64)
    return np.where(raw >= _P, raw - _P, raw)


@_wrapping
def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise (a + b) mod p."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    s = a + b
    over = s < a  # 64-bit wraparound happened
    s = np.where(over, s + _EPS, s)
    s = np.where(~over & (s >= _P), s - _P, s)
    return s


@_wrapping
def sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise (a - b) mod p."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    d = a - b
    borrow = a < b
    return np.where(borrow, d - _EPS, d)


def neg(a: np.ndarray) -> np.ndarray:
    """Element-wise -a mod p."""
    a = np.asarray(a, dtype=np.uint64)
    return np.where(a == _ZERO, _ZERO, _P - a)


@_wrapping
def mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise (a * b) mod p using the Goldilocks 128-bit reduction.

    The 128-bit product is assembled from four 32x32->64 partial products;
    the high word is folded in via 2^64 = 2^32 - 1 (mod p) and
    2^96 = -1 (mod p).
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    a_lo = a & _MASK32
    a_hi = a >> _SHIFT32
    b_lo = b & _MASK32
    b_hi = b >> _SHIFT32

    ll = a_lo * b_lo
    lh = a_lo * b_hi
    hl = a_hi * b_lo
    hh = a_hi * b_hi

    mid = lh + hl
    mid_carry = (mid < lh).astype(np.uint64)  # 1 iff lh + hl wrapped

    lo = ll + (mid << _SHIFT32)
    lo_carry = (lo < ll).astype(np.uint64)
    hi = hh + (mid >> _SHIFT32) + (mid_carry << _SHIFT32) + lo_carry

    return _reduce128(hi, lo)


def _reduce128(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Reduce hi*2^64 + lo modulo p."""
    hi_lo = hi & _MASK32
    hi_hi = hi >> _SHIFT32

    # t = lo - hi_hi (mod p); a 64-bit borrow corresponds to -2^64 = -(2^32-1).
    t = lo - hi_hi
    borrow = lo < hi_hi
    t = np.where(borrow, t - _EPS, t)

    # t += hi_lo * (2^32 - 1); the product fits in 64 bits.
    add_term = (hi_lo << _SHIFT32) - hi_lo
    t2 = t + add_term
    carry = t2 < t
    t2 = np.where(carry, t2 + _EPS, t2)
    return np.where(t2 >= _P, t2 - _P, t2)


def mul_scalar(a: np.ndarray, s: int) -> np.ndarray:
    """Multiply a vector by a scalar field element."""
    return mul(a, np.uint64(s % MODULUS))


def dot(a: np.ndarray, b: np.ndarray) -> int:
    """Inner product <a, b> in GF(p), returned as a Python int."""
    prods = mul(a, b)
    return vsum(prods)


def vsum(a: np.ndarray) -> int:
    """Sum of all elements mod p (exact; accumulates in Python ints)."""
    # Sum in chunks as object ints: fast enough and overflow-free.
    total = int(np.add.reduce(np.asarray(a, dtype=object))) if len(a) else 0
    return total % MODULUS


@_wrapping
def pow_vector(a: np.ndarray, e: int) -> np.ndarray:
    """Element-wise a^e mod p via square-and-multiply."""
    a = np.asarray(a, dtype=np.uint64)
    result = np.ones_like(a)
    base = a.copy()
    while e > 0:
        if e & 1:
            result = mul(result, base)
        base = mul(base, base)
        e >>= 1
    return result


@_wrapping
def inv_vector(a: np.ndarray) -> np.ndarray:
    """Element-wise inverse via batch (Montgomery) inversion.

    Raises ZeroDivisionError if any element is zero.
    """
    a = np.asarray(a, dtype=np.uint64)
    if (a == _ZERO).any():
        raise ZeroDivisionError("inverse of zero in GF(p)")
    n = len(a)
    prefix = np.empty(n, dtype=np.uint64)
    acc = np.uint64(1)
    for i in range(n):
        prefix[i] = acc
        acc = mul(acc, a[i])
    acc_inv = np.uint64(pow(int(acc), MODULUS - 2, MODULUS))
    out = np.empty(n, dtype=np.uint64)
    for i in range(n - 1, -1, -1):
        out[i] = mul(acc_inv, prefix[i])
        acc_inv = mul(acc_inv, a[i])
    return out


def powers(base: int, n: int) -> np.ndarray:
    """Return [1, base, base^2, ..., base^(n-1)]."""
    out = np.empty(n, dtype=np.uint64)
    acc = 1
    b = base % MODULUS
    for i in range(n):
        out[i] = acc
        acc = acc * b % MODULUS
    return out


def to_ints(a: np.ndarray) -> list:
    """Convert a field vector to a list of Python ints."""
    return [int(x) for x in a]
