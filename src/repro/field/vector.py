"""Vectorized Goldilocks-64 arithmetic on numpy uint64 arrays.

These kernels are the software analogue of NoCap's 2,048-lane modular
add/multiply functional units: element-wise operations over vectors of
64-bit residues, using only 64-bit integer operations plus the Goldilocks
reduction (adds, shifts, and conditional corrections) — exactly the
structure the paper exploits in hardware (Sec. IV-A).

All functions accept and return arrays in canonical form (values < p) with
dtype ``uint64``.  Scalars may be passed wherever an array is accepted.
"""

from __future__ import annotations

import numpy as np

from .goldilocks import MODULUS
from ..obs.metrics import METRICS as _METRICS

import functools


def _wrapping(fn):
    """Run ``fn`` with numpy overflow warnings suppressed.

    The kernels rely on 64-bit wraparound; numpy warns on overflow for
    0-d/scalar operands, so each kernel scopes the suppression to itself.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with np.errstate(over="ignore"):
            return fn(*args, **kwargs)

    return wrapper

_P = np.uint64(MODULUS)
_MASK32 = np.uint64(0xFFFFFFFF)
_EPS = np.uint64(0xFFFFFFFF)  # 2^64 mod p = 2^32 - 1
_SHIFT32 = np.uint64(32)
_ZERO = np.uint64(0)
_ONE = np.uint64(1)

#: On little-endian hosts a uint64 array reinterpreted as uint32 pairs puts
#: the low halves at even offsets — split-accumulate reductions can then
#: read the halves through strided views instead of materializing mask and
#: shift temporaries.
_LE = bool(np.little_endian)


def halves(a: np.ndarray):
    """(low, high) 32-bit halves of a 1-D uint64 array, as cheap views when
    the byte order allows, else as mask/shift copies."""
    if _LE and a.flags["C_CONTIGUOUS"]:
        pairs = a.view(np.uint32)
        return pairs[0::2], pairs[1::2]
    return a & _MASK32, a >> _SHIFT32


def asfield(values: "Sequence[int] | np.ndarray | int") -> np.ndarray:
    """Coerce Python ints / sequences / arrays into canonical uint64 residues."""
    if isinstance(values, np.ndarray) and values.dtype == np.uint64:
        arr = values
    else:
        if np.isscalar(values):
            values = [values]
        arr = np.array([int(v) % MODULUS for v in np.asarray(values, dtype=object).ravel()],
                       dtype=np.uint64)
    # Canonicalize any values >= p (one subtract suffices: 2^64 - 1 < 2p).
    over = arr >= _P
    if over.any():
        arr = np.where(over, arr - _P, arr)
    return arr


def zeros(n: int) -> np.ndarray:
    return np.zeros(n, dtype=np.uint64)


def ones(n: int) -> np.ndarray:
    return np.ones(n, dtype=np.uint64)


def full(n: int, value: int) -> np.ndarray:
    return np.full(n, np.uint64(value % MODULUS), dtype=np.uint64)


@_wrapping
def rand_vector(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Sample n uniform field elements."""
    g = rng or np.random.default_rng()
    # Rejection-free: 2^64 mod p = 2^32-1 values map onto [0, 2^32-1); the
    # bias is ~2^-32 per element, negligible for tests and benchmarks.
    raw = g.integers(0, 1 << 63, size=n, dtype=np.uint64) << _ONE
    raw |= g.integers(0, 2, size=n, dtype=np.uint64)
    return np.where(raw >= _P, raw - _P, raw)


@_wrapping
def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise (a + b) mod p.

    Branch-free: ``np.where`` runs a masked inner loop that is ~10x slower
    than a plain arithmetic pass, so both carry corrections are applied by
    multiplying the carry bits (as uint64) into the correction constants.
    A 64-bit wraparound contributes +2^64 = +(2^32 - 1) mod p; one
    conditional subtract of p then canonicalizes everything.  Exact even
    when ONE operand is a non-canonical representative < 2^64 (e.g. a
    ``mul(..., canonical=False)`` result); both sides non-canonical could
    double-wrap.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    s = a + b
    over = (s < a).astype(np.uint64)
    over *= _EPS
    s += over
    exceeds = (s >= _P).astype(np.uint64)
    exceeds *= _P
    s -= exceeds
    return s


@_wrapping
def sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise (a - b) mod p (branch-free, see :func:`add`)."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    d = a - b
    borrow = (a < b).astype(np.uint64)
    borrow *= _EPS
    d -= borrow
    return d


def neg(a: np.ndarray) -> np.ndarray:
    """Element-wise -a mod p."""
    a = np.asarray(a, dtype=np.uint64)
    return np.where(a == _ZERO, _ZERO, _P - a)


#: Tile length for the blocked multiply kernel: all ~10 scratch vectors of
#: one tile (8 bytes each) fit comfortably in the L2 cache, so every pass
#: over a tile reads warm lines instead of streaming the whole operand
#: through DRAM.  This mirrors how NoCap's 2,048-lane mul FU consumes
#: register-file tiles rather than whole vectors (Sec. IV-A).
_TILE = 16384

#: Reusable per-tile scratch (single-threaded module state; the kernel
#: never calls back into user code while a tile is in flight).
_MUL_SCRATCH = [np.empty(_TILE, dtype=np.uint64) for _ in range(10)]


def _mul_tiles(x: np.ndarray, y, out: np.ndarray,
               canonical: bool = True, addend: np.ndarray | None = None) -> None:
    """Tiled branch-free Goldilocks multiply: out[i] = x[i] * y[i] mod p.

    ``x`` and ``out`` are 1-D contiguous uint64; ``y`` is either the same
    or a 0-d uint64 scalar (broadcast across the tile).  The 128-bit
    product is assembled from four 32x32->64 partial products; the high
    word is folded in via 2^64 = 2^32 - 1 (mod p) and 2^96 = -1 (mod p).
    Every step writes into preallocated tile scratch — no allocations, no
    ``np.where`` (whose masked inner loop is ~10x a plain pass); carry
    bits land directly in uint64 scratch (comparison ufuncs with an
    unsafe-cast ``out``) and are folded in arithmetically.

    ``addend`` (canonical-mode only) fuses out[i] = addend[i] + x[i]*y[i]
    mod p into the same tile pass while the product is still cache-warm —
    the sumcheck fold's multiply-accumulate.  Any uint64 addend is
    accepted (the add corrects one 2^64 wrap, and the sum is < 2p after
    it, so a single conditional subtract canonicalizes).
    """
    y_scalar = np.ndim(y) == 0
    if y_scalar:
        b_lo_s = y & _MASK32
        b_hi_s = y >> _SHIFT32
    for start in range(0, len(x), _TILE):
        end = min(start + _TILE, len(x))
        m = end - start
        al, ah, bl, bh, t0, t1, t2, t3, tc, td = [s[:m] for s in _MUL_SCRATCH]
        xa = x[start:end]
        np.bitwise_and(xa, _MASK32, out=al)
        np.right_shift(xa, _SHIFT32, out=ah)
        if y_scalar:
            bl, bh = b_lo_s, b_hi_s
        else:
            ya = y[start:end]
            np.bitwise_and(ya, _MASK32, out=bl)
            np.right_shift(ya, _SHIFT32, out=bh)
        np.multiply(al, bh, out=t0)                 # lh
        np.multiply(ah, bl, out=t1)                 # hl
        np.add(t0, t1, out=t1)                      # mid (may wrap)
        np.less(t1, t0, out=tc, casting="unsafe")   # mid carry (as uint64)
        np.multiply(al, bl, out=t2)                 # ll
        np.left_shift(t1, _SHIFT32, out=t0)
        np.add(t2, t0, out=t0)                      # lo (may wrap)
        np.less(t0, t2, out=td, casting="unsafe")   # lo carry (as uint64)
        np.multiply(ah, bh, out=t3)                 # hh
        np.right_shift(t1, _SHIFT32, out=t1)
        np.add(t3, t1, out=t3)                      # hi = hh + mid>>32
        np.left_shift(tc, _SHIFT32, out=tc)
        np.add(t3, tc, out=t3)                      # + mid_carry * 2^32
        np.add(t3, td, out=t3)                      # + lo_carry
        # Reduce t3 * 2^64 + t0 mod p.
        np.bitwise_and(t3, _MASK32, out=t1)         # hi_lo
        np.right_shift(t3, _SHIFT32, out=t3)        # hi_hi
        np.less(t0, t3, out=tc, casting="unsafe")   # borrow: -2^64 = -(2^32-1)
        np.subtract(t0, t3, out=t0)                 # t = lo - hi_hi
        np.multiply(tc, _EPS, out=tc)
        np.subtract(t0, tc, out=t0)
        np.left_shift(t1, _SHIFT32, out=t2)
        np.subtract(t2, t1, out=t2)                 # hi_lo * (2^32 - 1)
        np.add(t0, t2, out=t2)                      # t2 = t + add_term
        np.less(t2, t0, out=tc, casting="unsafe")   # carry
        np.multiply(tc, _EPS, out=tc)
        if canonical:
            np.add(t2, tc, out=t2)
            np.less_equal(_P, t2, out=tc, casting="unsafe")  # conditional -p
            np.multiply(tc, _P, out=tc)
            if addend is None:
                np.subtract(t2, tc, out=out[start:end])
            else:
                np.subtract(t2, tc, out=t2)          # canonical product
                np.add(t2, addend[start:end], out=t0)
                np.less(t0, t2, out=tc, casting="unsafe")  # 2^64 wrap
                np.multiply(tc, _EPS, out=tc)
                np.add(t0, tc, out=t0)
                np.less_equal(_P, t0, out=tc, casting="unsafe")
                np.multiply(tc, _P, out=tc)
                np.subtract(t0, tc, out=out[start:end])
        else:
            # Caller accepts any uint64 representative (mod p): skip the
            # final conditional subtract of p.
            np.add(t2, tc, out=out[start:end])


@_wrapping
def mul(a: np.ndarray, b: np.ndarray, canonical: bool = True) -> np.ndarray:
    """Element-wise (a * b) mod p using the Goldilocks 128-bit reduction.

    Dispatches to the tiled branch-free kernel (:func:`_mul_tiles`);
    broadcasting operands are materialized first so the kernel only ever
    sees equal-length contiguous vectors (or a true scalar second operand).

    The kernel is exact for ANY uint64 inputs (not just canonical ones).
    ``canonical=False`` skips the output's final conditional subtract of p,
    returning a representative < 2^64 — valid only when the result feeds a
    consumer that tolerates it (``vsum``, another ``mul``, the
    split-accumulate reductions), never ``add``/``sub``-style kernels that
    assume operands < p.
    """
    _METRICS.inc("field.mul_batches")
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.ndim == 0 and b.ndim == 0:
        return np.uint64(int(a) * int(b) % MODULUS)
    if b.ndim == 0:
        vec = a if a.flags["C_CONTIGUOUS"] else np.ascontiguousarray(a)
        other = np.uint64(b)
    elif a.ndim == 0:
        vec = b if b.flags["C_CONTIGUOUS"] else np.ascontiguousarray(b)
        other = np.uint64(a)
    elif a.shape == b.shape:
        vec = a if a.flags["C_CONTIGUOUS"] else np.ascontiguousarray(a)
        other = b if b.flags["C_CONTIGUOUS"] else np.ascontiguousarray(b)
    else:
        shape = np.broadcast_shapes(a.shape, b.shape)
        vec = np.ascontiguousarray(np.broadcast_to(a, shape))
        other = np.ascontiguousarray(np.broadcast_to(b, shape))
    out = np.empty(vec.shape, dtype=np.uint64)
    _mul_tiles(vec.ravel(), other if np.ndim(other) == 0 else other.ravel(),
               out.ravel(), canonical)
    return out


def mul_scalar(a: np.ndarray, s: int, canonical: bool = True) -> np.ndarray:
    """Multiply a vector by a scalar field element.

    ``canonical=False`` has :func:`mul` semantics: the result is any uint64
    representative, valid when the consumer tolerates values >= p (one
    operand of :func:`add`, ``vsum``, another ``mul``)."""
    return mul(a, np.uint64(s % MODULUS), canonical)


@_wrapping
def scale_add(base: np.ndarray, diff: np.ndarray, s: int) -> np.ndarray:
    """Fused (base + s * diff) mod p — the sumcheck fold's multiply-accumulate.

    One tiled pass: the scalar product is formed and the addend folded in
    while the tile is still in cache, instead of writing the product out
    and streaming it back through :func:`add`.  ``base`` may be any uint64
    representative; the result is canonical.
    """
    _METRICS.inc("field.scale_add_batches")
    base = np.asarray(base, dtype=np.uint64)
    diff = np.asarray(diff, dtype=np.uint64)
    if base.shape != diff.shape or base.ndim == 0:
        return add(base, mul(diff, np.uint64(int(s) % MODULUS)))
    if not base.flags["C_CONTIGUOUS"]:
        base = np.ascontiguousarray(base)
    if not diff.flags["C_CONTIGUOUS"]:
        diff = np.ascontiguousarray(diff)
    out = np.empty(base.shape, dtype=np.uint64)
    _mul_tiles(diff.ravel(), np.uint64(int(s) % MODULUS), out.ravel(),
               canonical=True, addend=base.ravel())
    return out


@_wrapping
def combine_halves(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Exact (lo + hi * 2^32) mod p for ANY uint64 inputs.

    The recombine step of every split-accumulate reduction (``vsum``,
    SpMV's segmented sums).  hi * 2^32 never needs a general multiply:
    with hi = hh * 2^32 + hl, it equals hl * 2^32 + hh * 2^64, and
    2^64 = 2^32 - 1 (mod p), so the whole combine is shifts and adds —
    about a third of the passes of :func:`mul`.
    """
    lo = np.asarray(lo, dtype=np.uint64)
    hi = np.asarray(hi, dtype=np.uint64)
    hl = hi & _MASK32
    hh = hi >> _SHIFT32
    hl <<= _SHIFT32                                 # hl * 2^32 < 2^64
    s = lo + hl
    carry = np.empty_like(s)
    np.less(s, hl, out=carry, casting="unsafe")     # 2^64 wrap
    np.left_shift(hh, _SHIFT32, out=hl)             # reuse: hh * 2^32
    hl -= hh                                        # hh * (2^32 - 1) < 2^64
    s += hl
    np.less(s, hl, out=hh, casting="unsafe")        # second wrap
    carry += hh
    carry *= _EPS                                   # total wrap credit < 2^33
    s += carry
    np.less(s, carry, out=hh, casting="unsafe")     # rare third wrap
    hh *= _EPS
    s += hh
    np.less_equal(_P, s, out=hh, casting="unsafe")  # s < 2p: one subtract
    hh *= _P
    s -= hh
    return s


def dot(a: np.ndarray, b: np.ndarray) -> int:
    """Inner product <a, b> in GF(p), returned as a Python int."""
    prods = mul(a, b)
    return vsum(prods)


@_wrapping
def vsum(a: np.ndarray) -> int:
    """Sum of all elements mod p (exact split-accumulate kernel).

    The 32-bit halves of each element are accumulated separately in uint64
    (exact for up to 2^32 terms — the same trick as ``SparseMatrix.matvec``)
    and recombined in Python-int arithmetic, avoiding the object-dtype
    reduction entirely.
    """
    a = np.asarray(a, dtype=np.uint64).ravel()
    if a.size == 0:
        return 0
    if a.size >= (1 << 32):  # keep the uint64 half-sums exact
        return sum(vsum(chunk) for chunk in
                   np.array_split(a, 1 + a.size // (1 << 31))) % MODULUS
    lo_half, hi_half = halves(a)
    lo = int(np.add.reduce(lo_half, dtype=np.uint64))
    hi = int(np.add.reduce(hi_half, dtype=np.uint64))
    return (lo + (hi << 32)) % MODULUS


@_wrapping
def pow_vector(a: np.ndarray, e: int) -> np.ndarray:
    """Element-wise a^e mod p via square-and-multiply."""
    a = np.asarray(a, dtype=np.uint64)
    result = np.ones_like(a)
    base = a.copy()
    while e > 0:
        if e & 1:
            result = mul(result, base)
        base = mul(base, base)
        e >>= 1
    return result


def _scan_products(a: np.ndarray) -> np.ndarray:
    """Inclusive prefix products of ``a`` via a Hillis-Steele doubling scan.

    O(n log n) multiplies, but every pass is one vectorized ``mul`` — much
    faster than the O(n) Python loop it replaces.
    """
    out = a.copy()
    shift = 1
    n = len(out)
    while shift < n:
        out[shift:] = mul(out[shift:], out[:-shift])
        shift <<= 1
    return out


@_wrapping
def inv_vector(a: np.ndarray) -> np.ndarray:
    """Element-wise inverse via batch inversion (one modular exponentiation).

    inv(a[i]) = (prod_{j<i} a_j) * (prod_{j>i} a_j) * (prod_j a_j)^-1, with
    both exclusive products built from vectorized doubling scans.

    Raises ZeroDivisionError if any element is zero.
    """
    a = np.asarray(a, dtype=np.uint64)
    if (a == _ZERO).any():
        raise ZeroDivisionError("inverse of zero in GF(p)")
    n = len(a)
    if n == 0:
        return a.copy()
    prefix = _scan_products(a)
    suffix = _scan_products(a[::-1])[::-1]
    exc_prefix = np.empty_like(prefix)
    exc_prefix[0] = _ONE
    exc_prefix[1:] = prefix[:-1]
    exc_suffix = np.empty_like(suffix)
    exc_suffix[-1] = _ONE
    exc_suffix[:-1] = suffix[1:]
    total_inv = np.uint64(pow(int(prefix[-1]), MODULUS - 2, MODULUS))
    return mul(mul(exc_prefix, exc_suffix), total_inv)


def powers(base: int, n: int) -> np.ndarray:
    """Return [1, base, base^2, ..., base^(n-1)] (vectorized doubling)."""
    out = np.empty(n, dtype=np.uint64)
    if n == 0:
        return out
    out[0] = 1
    b = base % MODULUS
    filled, step = 1, b
    while filled < n:
        take = min(filled, n - filled)
        # out[filled + i] = out[i] * base^filled for i < take.
        out[filled:filled + take] = mul(out[:take], np.uint64(step))
        filled += take
        step = step * step % MODULUS
    return out


@_wrapping
def vecmat(coeffs: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Exact coeffs^T @ matrix over GF(p) (row combination kernel).

    One vectorized multiply, then a column reduction that accumulates the
    32-bit halves of every product separately (exact for up to 2^32 rows)
    before recombining mod p — the split-accumulate trick from
    ``SparseMatrix.matvec`` applied to dense row combinations.
    """
    matrix = np.asarray(matrix, dtype=np.uint64)
    coeffs = np.asarray(coeffs, dtype=np.uint64)
    if matrix.ndim != 2:
        raise ValueError("vecmat expects a 2-D matrix")
    if coeffs.shape != (matrix.shape[0],):
        raise ValueError("coefficient count must equal row count")
    if matrix.shape[0] == 0:
        return zeros(matrix.shape[1])
    prods = mul(matrix, coeffs[:, None], canonical=False)
    # Half-sums stay below rows * (2^32 - 1) <= (2^32 - 1)^2 < p: no
    # overflow and already canonical.
    lo = np.add.reduce(prods & _MASK32, axis=0)
    hi = np.add.reduce(prods >> _SHIFT32, axis=0)
    return add(lo, mul(hi, np.uint64((1 << 32) % MODULUS)))


def to_ints(a: np.ndarray) -> list:
    """Convert a field vector to a list of Python ints."""
    return [int(x) for x in a]
