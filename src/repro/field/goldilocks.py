"""Scalar arithmetic in the Goldilocks-64 field, GF(p) with p = 2^64 - 2^32 + 1.

This is the field NoCap computes in (Sec. IV-A of the paper).  Its prime has
an especially cheap reduction: because 2^64 = 2^32 - 1 (mod p) and
2^96 = -1 (mod p), a 128-bit product reduces with a handful of additions and
shifts.  The scalar implementation here favours clarity; hot paths use the
vectorized numpy kernels in :mod:`repro.field.vector`, which implement the
identical reduction and are property-tested against this module.
"""

from __future__ import annotations

import random
from typing import Iterable, List

#: The Goldilocks prime, 2^64 - 2^32 + 1.
MODULUS = (1 << 64) - (1 << 32) + 1

#: Smallest generator of the multiplicative group GF(p)*.
GENERATOR = 7

#: p - 1 = 2^32 * (2^32 - 1): the field supports NTTs up to length 2^32.
TWO_ADICITY = 32

_MASK32 = (1 << 32) - 1
_MASK64 = (1 << 64) - 1


def add(a: int, b: int) -> int:
    """Return (a + b) mod p for canonical inputs."""
    s = a + b
    if s >= MODULUS:
        s -= MODULUS
    return s


def sub(a: int, b: int) -> int:
    """Return (a - b) mod p for canonical inputs."""
    d = a - b
    if d < 0:
        d += MODULUS
    return d


def neg(a: int) -> int:
    """Return -a mod p."""
    return 0 if a == 0 else MODULUS - a


def mul(a: int, b: int) -> int:
    """Return (a * b) mod p via the Goldilocks reduction.

    The 128-bit product n = hi * 2^64 + lo is folded using
    2^64 = 2^32 - 1 (mod p):  n = lo + hi_lo*(2^32 - 1) - hi_hi (mod p),
    where hi = hi_hi * 2^32 + hi_lo.  This mirrors, step for step, what the
    vectorized kernel and a hardware multiplier do.
    """
    n = a * b
    lo = n & _MASK64
    hi = n >> 64
    hi_lo = hi & _MASK32
    hi_hi = hi >> 32

    t = lo - hi_hi
    if t < 0:
        t += MODULUS
    t = t + hi_lo * _MASK32
    # t < 2^64 + (2^32-1)^2 < 2p^... reduce with at most two subtractions.
    while t >= MODULUS:
        t -= MODULUS
    return t


def pow_mod(a: int, e: int) -> int:
    """Return a^e mod p (e >= 0)."""
    return pow(a, e, MODULUS)


def inv(a: int) -> int:
    """Return the multiplicative inverse of a (a != 0)."""
    if a % MODULUS == 0:
        raise ZeroDivisionError("inverse of zero in GF(p)")
    return pow(a, MODULUS - 2, MODULUS)


def batch_inv(values: Iterable[int]) -> List[int]:
    """Invert many nonzero elements with Montgomery's trick (1 inversion total)."""
    vals = [v % MODULUS for v in values]
    prefix: List[int] = []
    acc = 1
    for v in vals:
        if v == 0:
            raise ZeroDivisionError("inverse of zero in GF(p)")
        prefix.append(acc)
        acc = acc * v % MODULUS
    acc_inv = inv(acc)
    out = [0] * len(vals)
    for i in range(len(vals) - 1, -1, -1):
        out[i] = prefix[i] * acc_inv % MODULUS
        acc_inv = acc_inv * vals[i] % MODULUS
    return out


def root_of_unity(order: int) -> int:
    """Return a primitive ``order``-th root of unity; order must divide 2^32."""
    if order < 1 or (order & (order - 1)) != 0:
        raise ValueError(f"order must be a power of two, got {order}")
    log_order = order.bit_length() - 1
    if log_order > TWO_ADICITY:
        raise ValueError(f"order 2^{log_order} exceeds field 2-adicity {TWO_ADICITY}")
    return pow(GENERATOR, (MODULUS - 1) >> log_order, MODULUS)


def rand_element(rng: random.Random | None = None) -> int:
    """Sample a uniform field element."""
    r = rng or random
    return r.randrange(MODULUS)


class Fp:
    """A Goldilocks field element with operator overloading.

    Convenience wrapper for non-hot-path code and tests; hot paths operate on
    raw ints or numpy arrays.
    """

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value % MODULUS

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "Fp | int") -> "Fp":
        return Fp(self.value + _val(other))

    __radd__ = __add__

    def __sub__(self, other: "Fp | int") -> "Fp":
        return Fp(self.value - _val(other))

    def __rsub__(self, other: "Fp | int") -> "Fp":
        return Fp(_val(other) - self.value)

    def __mul__(self, other: "Fp | int") -> "Fp":
        return Fp(self.value * _val(other))

    __rmul__ = __mul__

    def __truediv__(self, other: "Fp | int") -> "Fp":
        return Fp(self.value * inv(_val(other)))

    def __rtruediv__(self, other: "Fp | int") -> "Fp":
        return Fp(_val(other) * inv(self.value))

    def __pow__(self, e: int) -> "Fp":
        return Fp(pow(self.value, e, MODULUS))

    def __neg__(self) -> "Fp":
        return Fp(neg(self.value))

    def inverse(self) -> "Fp":
        return Fp(inv(self.value))

    # -- comparison / misc --------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Fp):
            return self.value == other.value
        if isinstance(other, int):
            return self.value == other % MODULUS
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.value)

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Fp({self.value})"

    def __bool__(self) -> bool:
        return self.value != 0


def _val(x: "Fp | int") -> int:
    return x.value if isinstance(x, Fp) else int(x)
