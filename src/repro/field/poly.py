"""Dense univariate polynomials over the Goldilocks field.

Used for sumcheck round polynomials (degree <= 3), Lagrange interpolation
of verifier checks, and zero-knowledge masking polynomials.  Large
polynomial products go through the NTT (:mod:`repro.ntt`); this module's
schoolbook multiply covers the small degrees on protocol critical paths.
"""

from __future__ import annotations

from typing import List, Sequence

from .goldilocks import MODULUS, batch_inv


class Polynomial:
    """A dense polynomial; ``coeffs[i]`` is the coefficient of x^i."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Sequence[int]):
        c = [int(x) % MODULUS for x in coeffs]
        while len(c) > 1 and c[-1] == 0:
            c.pop()
        self.coeffs = c or [0]

    @classmethod
    def zero(cls) -> "Polynomial":
        return cls([0])

    @classmethod
    def constant(cls, c: int) -> "Polynomial":
        return cls([c])

    @property
    def degree(self) -> int:
        """Degree with deg(0) = 0 by convention."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return self.coeffs == [0]

    def __add__(self, other: "Polynomial") -> "Polynomial":
        n = max(len(self.coeffs), len(other.coeffs))
        a = self.coeffs + [0] * (n - len(self.coeffs))
        b = other.coeffs + [0] * (n - len(other.coeffs))
        return Polynomial([(x + y) % MODULUS for x, y in zip(a, b)])

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        n = max(len(self.coeffs), len(other.coeffs))
        a = self.coeffs + [0] * (n - len(self.coeffs))
        b = other.coeffs + [0] * (n - len(other.coeffs))
        return Polynomial([(x - y) % MODULUS for x, y in zip(a, b)])

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        if self.is_zero() or other.is_zero():
            return Polynomial.zero()
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] = (out[i + j] + a * b) % MODULUS
        return Polynomial(out)

    def scale(self, s: int) -> "Polynomial":
        s %= MODULUS
        return Polynomial([c * s % MODULUS for c in self.coeffs])

    def evaluate(self, x: int) -> int:
        """Evaluate at x via Horner's rule."""
        x %= MODULUS
        acc = 0
        for c in reversed(self.coeffs):
            acc = (acc * x + c) % MODULUS
        return acc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.coeffs == other.coeffs

    def __repr__(self) -> str:
        return f"Polynomial({self.coeffs})"


def interpolate(xs: Sequence[int], ys: Sequence[int]) -> Polynomial:
    """Lagrange interpolation through distinct points (xs[i], ys[i]).

    O(n^2): builds M(x) = prod (x - x_i) once, then derives each basis
    polynomial by synthetic division M / (x - x_i); the denominator
    M'(x_i) comes out of the same division.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    xs = [x % MODULUS for x in xs]
    if len(set(xs)) != len(xs):
        raise ValueError("interpolation points must be distinct")
    n = len(xs)
    if n == 0:
        return Polynomial.zero()

    # M(x) = prod_i (x - x_i), degree n.
    m = [1] + [0] * n
    deg = 0
    for x in xs:
        neg_x = (-x) % MODULUS
        for k in range(deg, -1, -1):
            m[k + 1] = (m[k + 1] + m[k]) % MODULUS  # shift up (times x)
            m[k] = m[k] * neg_x % MODULUS
        deg += 1
    m = m[: n + 1][::-1]  # highest-degree first for synthetic division

    quotients: List[List[int]] = []
    denoms: List[int] = []
    for x in xs:
        # Divide M by (x - x_i): synthetic division on descending coeffs.
        q = [0] * n
        acc = 0
        for k in range(n):
            acc = (acc * x + m[k]) % MODULUS
            q[k] = acc
        denom = (acc * x + m[n]) % MODULUS  # this is M(x_i) = 0 ... remainder
        # Remainder is 0; the denominator M'(x_i) equals Q_i(x_i):
        d = 0
        for k in range(n):
            d = (d * x + q[k]) % MODULUS
        quotients.append(q)
        denoms.append(d)
    denom_invs = batch_inv(denoms)

    out = [0] * n
    for q, y, dinv in zip(quotients, ys, denom_invs):
        scale = y % MODULUS * dinv % MODULUS
        for k in range(n):
            out[k] = (out[k] + q[k] * scale) % MODULUS
    return Polynomial(out[::-1])


def evaluate_on_range(poly: Polynomial, count: int) -> List[int]:
    """Evaluate ``poly`` at x = 0, 1, ..., count-1."""
    return [poly.evaluate(x) for x in range(count)]


def interpolate_eval(xs: Sequence[int], ys: Sequence[int], x: int) -> int:
    """Evaluate, at ``x``, the unique polynomial through (xs[i], ys[i]).

    This is the verifier-side primitive for checking sumcheck round
    polynomials sent as evaluations: O(n^2) scalar work for tiny n.
    """
    x %= MODULUS
    n = len(xs)
    denoms = []
    for i in range(n):
        d = 1
        for j in range(n):
            if i != j:
                d = d * (xs[i] - xs[j]) % MODULUS
        denoms.append(d)
    denom_invs = batch_inv(denoms)
    total = 0
    for i in range(n):
        num = ys[i] % MODULUS
        for j in range(n):
            if i != j:
                num = num * (x - xs[j]) % MODULUS
        total = (total + num * denom_invs[i]) % MODULUS
    return total
