"""repro: a reproduction of "Accelerating Zero-Knowledge Proofs Through
Hardware-Algorithm Co-Design" (NoCap, MICRO 2024).

Two layers:

* A **functional** hash-based zk-SNARK — the Spartan IOP composed with an
  Orion-style polynomial commitment over the Goldilocks-64 field — that
  really proves and verifies R1CS statements (:mod:`repro.snark`,
  :mod:`repro.spartan`, :mod:`repro.pcs`, plus the field / NTT / hashing /
  code / R1CS substrates).
* A **performance-model** layer reproducing the paper's evaluation: the
  NoCap accelerator simulator (:mod:`repro.nocap`), CPU / Groth16 /
  PipeZK baselines (:mod:`repro.baselines`), the five benchmark workloads
  (:mod:`repro.workloads`), and the table/figure analyses
  (:mod:`repro.analysis`).

Quickstart (the canonical lifecycle surface, re-exported here)::

    from repro import setup, prove, verify
    from repro.r1cs import Circuit

    circuit = Circuit()
    out = circuit.public(35)
    x = circuit.witness(3)
    circuit.assert_equal(circuit.mul(circuit.mul(x, x), x) + x + 5, out)
    r1cs, public, witness = circuit.compile()
    pk, vk = setup(r1cs)
    bundle = prove(pk, public, witness)
    if not verify(vk, bundle):
        ...  # reject

Batches go through :func:`prove_many`; a long-running deployment runs
``repro serve`` and talks to it with :class:`ServiceClient`
(see ``docs/SERVICE.md``).
"""

__version__ = "1.0.0"

from . import errors  # noqa: F401
from . import (  # noqa: F401
    analysis,
    baselines,
    code,
    field,
    hashing,
    multilinear,
    nocap,
    ntt,
    obs,
    pcs,
    r1cs,
    snark,
    spartan,
    workloads,
)
from .errors import (  # noqa: F401
    ConfigError,
    DeserializationError,
    ReproError,
    TranscriptError,
    VerificationError,
)
from .opcount import OpCount  # noqa: F401

# Canonical API surface: the lifecycle verbs, their key/bundle types,
# and the service client, importable straight off the package.
from .snark import (  # noqa: F401
    PAPER,
    TEST,
    JobResult,
    ProofBundle,
    ProvingKey,
    VerifyingKey,
    prove,
    prove_many,
    setup,
    verify,
)
from .service import ServiceClient  # noqa: F401

__all__ = [
    "analysis", "baselines", "code", "errors", "field", "hashing",
    "multilinear", "nocap", "ntt", "obs", "pcs", "r1cs", "snark", "spartan",
    "workloads", "OpCount", "__version__",
    "ReproError", "DeserializationError", "VerificationError",
    "TranscriptError", "ConfigError",
    "setup", "prove", "prove_many", "verify",
    "ProvingKey", "VerifyingKey", "ProofBundle", "JobResult",
    "TEST", "PAPER", "ServiceClient",
]
