"""ASCII rendering of the paper's figures for terminal-first workflows.

The benchmark harness prints tables; these helpers add line/scatter plots
so Figs. 7 and 8 can be eyeballed directly in `benchmarks/out/*.txt`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple


def ascii_line_chart(series: Dict[str, List[Tuple[float, float]]],
                     width: int = 60, height: int = 16,
                     title: str = "", log_x: bool = False) -> str:
    """Plot one or more (x, y) series as an ASCII chart.

    Each series gets a distinct marker; points landing on the same cell
    show the later series' marker.
    """
    markers = "o*x+#@%&"
    all_pts = [p for pts in series.values() for p in pts]
    if not all_pts:
        return title
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]

    def fx(x: float) -> float:
        return math.log10(x) if log_x else x

    x_lo, x_hi = min(map(fx, xs)), max(map(fx, xs))
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            col = int((fx(x) - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_lo:10.3g} +" + "".join(grid[-1]))
    lines.append(" " * 12 + "-" * width)
    lines.append(f"{'':10}  {x_lo if not log_x else 10**x_lo:<12.4g}"
                 + " " * max(0, width - 26)
                 + f"{x_hi if not log_x else 10**x_hi:>12.4g}")
    legend = "   ".join(f"{marker}={name}"
                        for (name, _), marker in zip(series.items(), markers))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def ascii_bar_chart(values: Dict[str, float], width: int = 48,
                    title: str = "", unit: str = "") -> str:
    """Horizontal bar chart (e.g. the Fig. 5/6 breakdowns)."""
    if not values:
        return title
    peak = max(values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1, int(value / peak * width)) if value > 0 else ""
        lines.append(f"  {name:<{label_w}} |{bar:<{width}} {value:.3g}{unit}")
    return "\n".join(lines)
