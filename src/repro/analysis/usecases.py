"""Use-case calculators for the applications the paper's introduction
motivates: secure photo modification, differentially-private training
proofs, and the real-time verifiable database (Sec. I).

Each scenario is expressed as a constraint-count estimate fed through the
CPU and NoCap models, reproducing the headline claims ("12 minutes on a
CPU, just over a second on NoCap", "100 hours ... to less than 30
minutes").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.cpu import DEFAULT_CPU
from ..nocap.simulator import prover_seconds as nocap_prover_seconds
from .proofsize import proof_size_bytes, send_seconds, verifier_seconds

#: Secure photo modification of a 256 KB image: sized so the CPU prover
#: takes "over 12 minutes" (Sec. I) — ~2^27 padded constraints, i.e.
#: ~500 constraints per image byte (hash + crop re-hash bit logic).
PHOTO_IMAGE_BYTES = 256 * 1024
PHOTO_CONSTRAINTS_PER_BYTE = 490
#: Confidential-DPproof training run: "100 hours of computation" on CPU.
DP_TRAINING_CPU_HOURS = 100.0


@dataclass
class UseCaseEstimate:
    name: str
    raw_constraints: int
    cpu_prover_s: float
    nocap_prover_s: float
    verify_s: float
    send_s: float

    @property
    def nocap_total_s(self) -> float:
        return self.nocap_prover_s + self.send_s + self.verify_s


def photo_modification(image_bytes: int = PHOTO_IMAGE_BYTES) -> UseCaseEstimate:
    """Proving a cropped image descends from a signed original."""
    raw = image_bytes * PHOTO_CONSTRAINTS_PER_BYTE
    return UseCaseEstimate(
        name=f"photo crop ({image_bytes // 1024} KB image)",
        raw_constraints=raw,
        cpu_prover_s=DEFAULT_CPU.prover_seconds(raw),
        nocap_prover_s=nocap_prover_seconds(raw),
        verify_s=verifier_seconds(raw),
        send_s=send_seconds(proof_size_bytes(raw)))


def dp_training_proof(cpu_hours: float = DP_TRAINING_CPU_HOURS) -> UseCaseEstimate:
    """Proof of differentially-private training (Confidential-DPproof):
    sized from its CPU proving time."""
    from ..baselines.cpu import SECONDS_PER_PADDED_CONSTRAINT
    from ..ntt.polymul import next_pow2

    raw = int(cpu_hours * 3600 / SECONDS_PER_PADDED_CONSTRAINT)
    # Align with padding so the CPU time matches the spec exactly.
    raw = next_pow2(raw) // 2 + 1
    return UseCaseEstimate(
        name=f"DP training proof ({cpu_hours:.0f} CPU-hours)",
        raw_constraints=raw,
        cpu_prover_s=DEFAULT_CPU.prover_seconds(raw),
        nocap_prover_s=nocap_prover_seconds(raw),
        verify_s=verifier_seconds(raw),
        send_s=send_seconds(proof_size_bytes(raw)))
