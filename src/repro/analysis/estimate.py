"""Bridge from functional circuits to the performance model: given any
R1CS instance (or compiled circuit), project what proving it would cost
on NoCap, the 32-core CPU baseline, and PipeZK — plus proof size and
verification time at paper parameters.

This is the API a downstream user reaches for after building a circuit:
"my statement has 60k constraints — what would the accelerator buy me?"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..baselines.cpu import DEFAULT_CPU
from ..baselines.pipezk import PipeZkModel
from ..nocap.config import NoCapConfig
from ..nocap.simulator import prover_seconds as nocap_prover_seconds
from ..ntt.polymul import next_pow2
from ..r1cs.builder import Circuit
from ..r1cs.system import R1CS
from .proofsize import proof_size_bytes, send_seconds, verifier_seconds


@dataclass
class ProverEstimate:
    """Projected costs for proving one statement."""

    raw_constraints: int
    padded_constraints: int
    nocap_seconds: float
    cpu_seconds: float
    pipezk_seconds: float
    proof_bytes: float
    verify_seconds: float
    send_seconds: float

    @property
    def speedup_vs_cpu(self) -> float:
        return self.cpu_seconds / self.nocap_seconds

    @property
    def nocap_end_to_end_seconds(self) -> float:
        return self.nocap_seconds + self.send_seconds + self.verify_seconds

    def summary(self) -> str:
        return (
            f"{self.raw_constraints:,} constraints "
            f"(padded 2^{self.padded_constraints.bit_length() - 1}):\n"
            f"  NoCap prover:  {_fmt_s(self.nocap_seconds)}\n"
            f"  32-core CPU:   {_fmt_s(self.cpu_seconds)} "
            f"({self.speedup_vs_cpu:,.0f}x slower)\n"
            f"  PipeZK:        {_fmt_s(self.pipezk_seconds)}\n"
            f"  proof: {self.proof_bytes / 1e6:.1f} MB, "
            f"verify {_fmt_s(self.verify_seconds)}, "
            f"end-to-end {_fmt_s(self.nocap_end_to_end_seconds)}")


def _fmt_s(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} h"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.0f} us"


def estimate(statement: Union[int, R1CS, Circuit],
             config: Optional[NoCapConfig] = None) -> ProverEstimate:
    """Project proving costs for a constraint count, R1CS, or circuit."""
    if isinstance(statement, Circuit):
        raw = statement.num_constraints
    elif isinstance(statement, R1CS):
        raw = statement.shape.num_constraints
    else:
        raw = int(statement)
    if raw < 1:
        raise ValueError("statement must have at least one constraint")
    padded = next_pow2(raw)
    proof = proof_size_bytes(raw)
    return ProverEstimate(
        raw_constraints=raw,
        padded_constraints=padded,
        nocap_seconds=nocap_prover_seconds(raw, config),
        cpu_seconds=DEFAULT_CPU.prover_seconds(raw),
        pipezk_seconds=PipeZkModel().prover_seconds(raw),
        proof_bytes=proof,
        verify_seconds=verifier_seconds(raw),
        send_seconds=send_seconds(proof))
