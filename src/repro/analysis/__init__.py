"""Analysis: end-to-end models, proof sizes, op counts, use cases."""

from .estimate import ProverEstimate, estimate
from .endtoend import (
    CONSTRAINTS_PER_TRANSACTION,
    DatabaseOperatingPoint,
    EndToEndRow,
    Table5Row,
    database_throughput,
    gmean,
    groth16_rows,
    spartan_orion_cpu_row,
    spartan_orion_nocap_row,
    table1_rows,
    table5_rows,
)
from .opcounts import (
    GROTH16_MULT_RATIO,
    CpuEfficiencyBreakdown,
    cpu_efficiency_breakdown,
    groth16_mul_count,
    spartan_orion_mul_count,
)
from .proofsize import (
    LINK_BYTES_PER_S,
    proof_size_bytes,
    proof_size_mb,
    send_seconds,
    verifier_seconds,
)
from .figures import ascii_bar_chart, ascii_line_chart
from .tables import format_speedup, format_table
from .usecases import UseCaseEstimate, dp_training_proof, photo_modification

__all__ = [
    "ProverEstimate", "estimate",
    "CONSTRAINTS_PER_TRANSACTION", "DatabaseOperatingPoint", "EndToEndRow",
    "Table5Row", "database_throughput", "gmean", "groth16_rows",
    "spartan_orion_cpu_row", "spartan_orion_nocap_row", "table1_rows",
    "table5_rows",
    "GROTH16_MULT_RATIO", "CpuEfficiencyBreakdown",
    "cpu_efficiency_breakdown", "groth16_mul_count",
    "spartan_orion_mul_count",
    "LINK_BYTES_PER_S", "proof_size_bytes", "proof_size_mb", "send_seconds",
    "verifier_seconds",
    "ascii_bar_chart", "ascii_line_chart",
    "format_speedup", "format_table",
    "UseCaseEstimate", "dp_training_proof", "photo_modification",
]
