"""Plain-text table rendering for benchmark harness output.

The benchmark scripts print the same rows the paper's tables report;
this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append([_fmt(cell) for cell in row])
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) if i else c.ljust(w)
                          for i, (c, w) in enumerate(zip(cells, widths)))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        if abs(cell) >= 0.01:
            return f"{cell:.3f}"
        return f"{cell:.2e}"
    return str(cell)


def format_speedup(x: float) -> str:
    return f"{x:,.0f}x" if x >= 100 else f"{x:.1f}x"
