"""Proof-size and verifier-time models for Spartan+Orion (Table III).

Both quantities are O(log^2 N) in the constraint count (Sec. III, citing
Orion), with constants set by the proof-composition layer (the inner
SNARK Orion wraps around the column openings).  We model them as
quadratics in L = log2(padded N), anchored at Table III's five
measurements; the fits reproduce all five rows to within 0.1 MB / 0.5 ms:

    size_MB(L)  = 8.1   + 0.600*(L-24) + 0.0222*(L-24)^2
    verify_ms(L) = 134.0 + 18.98*(L-24) + 0.7833*(L-24)^2

The *uncomposed* proof produced by the functional layer
(:class:`repro.spartan.SpartanProof`) is larger — its ``size_bytes()`` is
measured directly in tests — because we substitute direct Brakedown-style
verification for Orion's inner-SNARK composition (see DESIGN.md).
"""

from __future__ import annotations

from ..ntt.polymul import next_pow2

#: Fit anchored at Table III (L = 24): see module docstring.
_SIZE_BASE_MB = 8.1
_SIZE_LINEAR = 0.600
_SIZE_QUAD = 0.0222

_VERIFY_BASE_MS = 134.0
_VERIFY_LINEAR = 18.98
_VERIFY_QUAD = 0.7833

#: The Table I/III scenario: a 10 MB/s prover-verifier link.
LINK_BYTES_PER_S = 10e6


def padded_log(raw_constraints: int) -> int:
    return next_pow2(raw_constraints).bit_length() - 1


def proof_size_mb(raw_constraints: int) -> float:
    """Composed Spartan+Orion proof size in MB (Table III model)."""
    x = padded_log(raw_constraints) - 24
    return _SIZE_BASE_MB + _SIZE_LINEAR * x + _SIZE_QUAD * x * x


def proof_size_bytes(raw_constraints: int) -> float:
    return proof_size_mb(raw_constraints) * 1e6


def verifier_seconds(raw_constraints: int) -> float:
    """CPU verification time in seconds (Table III model)."""
    x = padded_log(raw_constraints) - 24
    ms = _VERIFY_BASE_MS + _VERIFY_LINEAR * x + _VERIFY_QUAD * x * x
    return ms / 1e3


def send_seconds(proof_bytes: float,
                 link_bytes_per_s: float = LINK_BYTES_PER_S) -> float:
    """Time to ship a proof over the prover-verifier link."""
    return proof_bytes / link_bytes_per_s
