"""End-to-end performance analysis: Tables I and V, and the real-time
verifiable-database scenario (Sec. I / VIII-A).

End-to-end time = prover + proof transmission over a 10 MB/s link +
verification (Sec. III).  Hardware acceleration affects only the prover
term, which is why Spartan+Orion's larger proofs still win once NoCap
collapses proving time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..baselines.cpu import DEFAULT_CPU, CpuModel
from ..baselines.groth16 import Groth16Cpu, Groth16Gpu
from ..baselines.pipezk import PipeZkModel
from ..nocap.config import NoCapConfig
from ..nocap.simulator import prover_seconds as nocap_prover_seconds
from ..workloads.spec import PAPER_WORKLOADS, REFERENCE_CONSTRAINTS, WorkloadSpec
from .proofsize import (
    proof_size_bytes,
    send_seconds,
    verifier_seconds,
)


@dataclass
class EndToEndRow:
    """One row of Table I / Table V."""

    label: str
    prover_s: float
    send_s: float
    verifier_s: float

    @property
    def total_s(self) -> float:
        return self.prover_s + self.send_s + self.verifier_s


def spartan_orion_cpu_row(raw_constraints: int,
                          cpu: CpuModel = DEFAULT_CPU) -> EndToEndRow:
    return EndToEndRow(
        label="Spartan+Orion / CPU",
        prover_s=cpu.prover_seconds(raw_constraints),
        send_s=send_seconds(proof_size_bytes(raw_constraints)),
        verifier_s=verifier_seconds(raw_constraints))


def spartan_orion_nocap_row(raw_constraints: int,
                            config: Optional[NoCapConfig] = None) -> EndToEndRow:
    return EndToEndRow(
        label="Spartan+Orion / NoCap",
        prover_s=nocap_prover_seconds(raw_constraints, config),
        send_s=send_seconds(proof_size_bytes(raw_constraints)),
        verifier_s=verifier_seconds(raw_constraints))


def groth16_rows(raw_constraints: int) -> List[EndToEndRow]:
    rows = []
    for label, model in (("Groth16 / CPU", Groth16Cpu()),
                         ("Groth16 / GPU", Groth16Gpu()),
                         ("Groth16 / PipeZK", PipeZkModel())):
        rows.append(EndToEndRow(
            label=label,
            prover_s=model.prover_seconds(raw_constraints),
            send_s=send_seconds(model.proof_bytes(raw_constraints)),
            verifier_s=model.verify_seconds(raw_constraints)))
    return rows


def table1_rows(raw_constraints: int = REFERENCE_CONSTRAINTS) -> List[EndToEndRow]:
    """Table I: all five prover/hardware combinations at 16M constraints."""
    return (groth16_rows(raw_constraints)
            + [spartan_orion_cpu_row(raw_constraints),
               spartan_orion_nocap_row(raw_constraints)])


@dataclass
class Table5Row:
    workload: str
    prover_s: float
    send_s: float
    verifier_s: float
    total_s: float
    speedup_vs_pipezk: float


def table5_rows(workloads: Optional[List[WorkloadSpec]] = None,
                config: Optional[NoCapConfig] = None) -> List[Table5Row]:
    """Table V: per-benchmark end-to-end runtime and speedup vs PipeZK."""
    rows = []
    pipezk = PipeZkModel()
    for w in workloads or PAPER_WORKLOADS:
        nocap = spartan_orion_nocap_row(w.raw_constraints, config)
        pz_total = (pipezk.prover_seconds(w.raw_constraints)
                    + send_seconds(pipezk.proof_bytes(w.raw_constraints))
                    + pipezk.verify_seconds(w.raw_constraints))
        rows.append(Table5Row(
            workload=w.name,
            prover_s=nocap.prover_s,
            send_s=nocap.send_s,
            verifier_s=nocap.verifier_s,
            total_s=nocap.total_s,
            speedup_vs_pipezk=pz_total / nocap.total_s))
    return rows


def gmean(values: List[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


# ---------------------------------------------------------------------------
# Real-time verifiable database (Sec. I, Sec. VIII-A): transactions are
# batched into one proof; the transaction latency budget covers proving,
# proof transmission, and verification.  Throughput is the largest batch
# that fits the budget.
# ---------------------------------------------------------------------------

#: Litmus: 268.4M constraints for 10,000 two-access transactions.
CONSTRAINTS_PER_TRANSACTION = 268_400_000 / 10_000


@dataclass
class DatabaseOperatingPoint:
    batch_transactions: int
    latency_s: float
    throughput_tps: float


def database_throughput(prover, latency_budget_s: float = 1.0,
                        constraints_per_txn: float = CONSTRAINTS_PER_TRANSACTION,
                        max_log_batch: int = 22) -> DatabaseOperatingPoint:
    """Largest transaction batch whose end-to-end latency fits the budget.

    ``prover`` maps raw constraints -> proving seconds (e.g.
    ``DEFAULT_CPU.prover_seconds`` or ``nocap.prover_seconds``).
    """
    best = DatabaseOperatingPoint(0, 0.0, 0.0)
    batch = 1
    while batch <= (1 << max_log_batch):
        raw = max(1, int(batch * constraints_per_txn))
        latency = (prover(raw)
                   + send_seconds(proof_size_bytes(raw))
                   + verifier_seconds(raw))
        if latency <= latency_budget_s:
            tps = batch / latency
            if tps > best.throughput_tps:
                best = DatabaseOperatingPoint(batch, latency, tps)
        elif batch > 64:
            break
        batch = max(batch + 1, int(batch * 1.3))
    return best
