"""Sec. III's operation-count analysis: why Spartan+Orion accelerates so
much better than Groth16 even though their CPU times are similar.

The paper's accounting, reproduced here:

1. Spartan+Orion performs 4.94x fewer 64-bit multiplies than Groth16
   (multipliers are the dominant accelerator resource).
2. On the CPU that advantage is squandered: the Spartan+Orion code
   retires 4.66x fewer multiplies/second serially, and scales 2.7x at 32
   cores vs Groth16's 5.0x, so it ends up 4.66/4.94/(2.7/5.0) = 1.74x
   *slower* than Groth16 in wall-clock.
3. NoCap restores the algorithmic advantage with specialized,
   fully-utilized multipliers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.cpu import (
    GROTH16_PARALLEL_SPEEDUP_32C,
    PARALLEL_SPEEDUP_32C,
    SERIAL_MULT_RATE_RATIO,
)
from ..nocap.config import DEFAULT_CONFIG
from ..nocap.tasks import build_prover_tasks
from ..ntt.polymul import next_pow2

#: Sec. III: Groth16 does 4.94x more 64-bit multiplies than Spartan+Orion.
GROTH16_MULT_RATIO = 4.94


def spartan_orion_mul_count(raw_constraints: int) -> float:
    """64-bit multiplies in one Spartan+Orion proof (from the task model)."""
    n = next_pow2(raw_constraints)
    return sum(t.mul_ops for t in build_prover_tasks(n, DEFAULT_CONFIG))


def groth16_mul_count(raw_constraints: int) -> float:
    """64-bit multiply-equivalents in one Groth16 proof (Sec. III ratio)."""
    return GROTH16_MULT_RATIO * spartan_orion_mul_count(raw_constraints)


@dataclass
class CpuEfficiencyBreakdown:
    """Sec. III item 2: the decomposition of the CPU slowdown."""

    mult_count_advantage: float       # 4.94x fewer multiplies
    serial_rate_deficit: float        # 4.66x fewer multiplies/second
    parallel_scaling_deficit: float   # 2.7x vs 5.0x at 32 cores

    @property
    def net_slowdown_vs_groth16(self) -> float:
        """How much slower Spartan+Orion runs on the CPU despite doing
        less work: 4.66 / 4.94 / (2.7 / 5.0) = 1.74x."""
        return (self.serial_rate_deficit / self.mult_count_advantage
                / (self.parallel_scaling_deficit))


def cpu_efficiency_breakdown() -> CpuEfficiencyBreakdown:
    return CpuEfficiencyBreakdown(
        mult_count_advantage=GROTH16_MULT_RATIO,
        serial_rate_deficit=SERIAL_MULT_RATE_RATIO,
        parallel_scaling_deficit=(PARALLEL_SPEEDUP_32C
                                  / GROTH16_PARALLEL_SPEEDUP_32C))
