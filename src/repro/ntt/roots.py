"""Root-of-unity and twiddle-factor tables for Goldilocks NTTs.

The Goldilocks field has 2-adicity 32 (p - 1 = 2^32 * (2^32 - 1)), so NTTs
of any power-of-two length up to 2^32 exist.  Tables are cached per length;
NoCap's NTT functional unit keeps the analogous tables in SRAM.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from ..field.goldilocks import MODULUS, inv, root_of_unity


@lru_cache(maxsize=None)
def primitive_root(n: int) -> int:
    """Primitive n-th root of unity (n a power of two <= 2^32)."""
    return root_of_unity(n)


@lru_cache(maxsize=None)
def inverse_root(n: int) -> int:
    """Inverse of the primitive n-th root of unity."""
    return inv(primitive_root(n))


@lru_cache(maxsize=None)
def n_inverse(n: int) -> int:
    """n^-1 mod p, used to scale inverse NTT outputs."""
    return inv(n)


@lru_cache(maxsize=None)
def bit_reverse_indices(n: int) -> np.ndarray:
    """Bit-reversal permutation for length n (a power of two)."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.uint64)
    rev = np.zeros(n, dtype=np.uint64)
    for b in range(bits):
        rev |= ((idx >> np.uint64(b)) & np.uint64(1)) << np.uint64(bits - 1 - b)
    return rev.astype(np.int64)


@lru_cache(maxsize=None)
def twiddle_stages(n: int, inverse: bool) -> Tuple[np.ndarray, ...]:
    """Per-stage twiddle vectors for an iterative radix-2 NTT of length n.

    Stage s (block length 2^(s+1)) uses powers [w^0 .. w^(2^s - 1)] of the
    primitive 2^(s+1)-th root.
    """
    stages = []
    log_n = n.bit_length() - 1
    for s in range(log_n):
        length = 1 << (s + 1)
        w = inverse_root(length) if inverse else primitive_root(length)
        half = length // 2
        tw = np.empty(half, dtype=np.uint64)
        acc = 1
        for i in range(half):
            tw[i] = acc
            acc = acc * w % MODULUS
        stages.append(tw)
    return tuple(stages)


@lru_cache(maxsize=None)
def twiddle_matrix_row(n: int, inverse: bool) -> np.ndarray:
    """Powers [w^0 .. w^(n-1)] of the primitive n-th root (or inverse)."""
    w = inverse_root(n) if inverse else primitive_root(n)
    out = np.empty(n, dtype=np.uint64)
    acc = 1
    for i in range(n):
        out[i] = acc
        acc = acc * w % MODULUS
    return out
