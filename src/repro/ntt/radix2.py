"""Iterative radix-2 number-theoretic transform over Goldilocks.

This is the reference transform: a decimation-in-time Cooley-Tukey NTT with
fully vectorized butterflies.  It operates along the last axis, so the
four-step algorithm (:mod:`repro.ntt.fourstep`) can apply it to whole
matrices of rows at once, as NoCap's 64-lane NTT FU does.
"""

from __future__ import annotations

import numpy as np

from ..field import vector as fv
from .roots import bit_reverse_indices, n_inverse, twiddle_stages


def _check_length(n: int) -> None:
    if n < 1 or (n & (n - 1)) != 0:
        raise ValueError(f"NTT length must be a power of two, got {n}")
    if n > (1 << 32):
        raise ValueError("NTT length exceeds Goldilocks 2-adicity (2^32)")


def ntt(a: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Forward (or inverse) NTT along the last axis.

    Input is a canonical uint64 array whose last dimension is a power of
    two.  The forward transform maps coefficients to evaluations at powers
    of the primitive root in natural order; ``inverse=True`` inverts it
    (including the 1/n scaling).
    """
    a = np.asarray(a, dtype=np.uint64)
    n = a.shape[-1]
    _check_length(n)
    if n == 1:
        return a.copy()

    out = a[..., bit_reverse_indices(n)].copy()
    _butterfly_stages(out, twiddle_stages(n, inverse))
    if inverse:
        out = fv.mul(out, np.uint64(n_inverse(n)))
    return out


def _butterfly_stages(out: np.ndarray, stages, first_stage: int = 0) -> None:
    """Run the radix-2 butterfly passes in place, starting at ``first_stage``
    (callers that know earlier stages are trivial — e.g. zero padding —
    skip them)."""
    n = out.shape[-1]
    for s in range(first_stage, len(stages)):
        tw = stages[s]
        length = 1 << (s + 1)
        half = length // 2
        shaped = out.reshape(out.shape[:-1] + (n // length, length))
        u = shaped[..., :half].copy()  # copy: the in-place store below would alias it
        if s == 0:
            v = shaped[..., half:]  # stage-0 twiddle is [1]: skip the multiply
        else:
            v = fv.mul(shaped[..., half:], tw)
        shaped[..., :half] = fv.add(u, v)
        shaped[..., half:] = fv.sub(u, v)


def ntt_zero_padded(coeffs: np.ndarray, domain_size: int) -> np.ndarray:
    """Forward NTT of ``coeffs`` zero-padded to ``domain_size``.

    With a power-of-two blowup B, the bit-reversed padded input interleaves
    each coefficient with B-1 zeros, so the first log2(B) butterfly stages
    only copy values around: after them, every length-B block holds B
    copies of one coefficient (in bit-reversed coefficient order).  The
    fast path therefore starts from ``np.repeat`` of the bit-reversed
    message and runs just the remaining log2(n) stages — the padding is
    never materialized and a full mul/add/sub stage per blowup factor is
    skipped.  This is the Reed-Solomon encoding hot path.
    """
    coeffs = np.asarray(coeffs, dtype=np.uint64)
    n = coeffs.shape[-1]
    _check_length(n)
    _check_length(domain_size)
    if domain_size < n:
        raise ValueError("domain smaller than coefficient vector")
    if domain_size == n:
        return ntt(coeffs)
    blowup = domain_size // n
    out = np.repeat(coeffs[..., bit_reverse_indices(n)], blowup, axis=-1)
    _butterfly_stages(out, twiddle_stages(domain_size, False),
                      first_stage=blowup.bit_length() - 1)
    return out


def intt(a: np.ndarray) -> np.ndarray:
    """Inverse NTT along the last axis (evaluations -> coefficients)."""
    return ntt(a, inverse=True)


def ntt_slow(a: np.ndarray, inverse: bool = False) -> np.ndarray:
    """O(n^2) DFT used as a test oracle for small sizes."""
    from .roots import inverse_root, primitive_root

    a = np.asarray(a, dtype=np.uint64)
    n = a.shape[-1]
    _check_length(n)
    from ..field.goldilocks import MODULUS, inv

    w = inverse_root(n) if inverse else primitive_root(n)
    vals = [int(x) for x in a]
    out = []
    for k in range(n):
        acc = 0
        wk = pow(w, k, MODULUS)
        x = 1
        for v in vals:
            acc = (acc + v * x) % MODULUS
            x = x * wk % MODULUS
        out.append(acc)
    if inverse:
        ninv = inv(n)
        out = [(x * ninv) % MODULUS for x in out]
    return np.array(out, dtype=np.uint64)
