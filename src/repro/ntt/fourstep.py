"""The four-step (Bailey) NTT — the algorithm NoCap's NTT FU implements.

NoCap's NTT functional unit natively transforms at most 2^12 elements
(two 64-point pipelines plus a 64x64 transpose; Sec. IV-B).  Larger NTTs
decompose as N = N1 * N2: column NTTs, a twiddle multiplication, row NTTs,
and a transpose.  Applying the split recursively supports arbitrary
power-of-two lengths; transposes above the register-file capacity
(2^20 elements) go through main memory.

This module implements that exact decomposition (verified against the
radix-2 reference) and, when given a :class:`FourStepStats`, records the
pass structure the performance model charges for: base-kernel invocations,
twiddle multiplies, and on-chip vs off-chip transposes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..field import vector as fv
from ..field.goldilocks import MODULUS
from .radix2 import ntt as radix2_ntt
from .roots import inverse_root, primitive_root

#: Largest NTT the hardware FU performs in a single pass (Sec. IV-B).
HW_BASE_SIZE = 1 << 12

#: Register file capacity in field elements (8 MB / 8 B; Sec. V-A).
RF_ELEMENTS = 1 << 20


@dataclass
class FourStepStats:
    """Pass structure of a four-step NTT, consumed by the NoCap cost model."""

    base_ntt_elements: int = 0      # total elements pushed through base kernels
    twiddle_multiplies: int = 0     # element-wise twiddle-scaling multiplies
    onchip_transpose_elements: int = 0
    offchip_transpose_elements: int = 0
    levels: int = 0                 # recursion depth

    def merge(self, other: "FourStepStats") -> None:
        self.base_ntt_elements += other.base_ntt_elements
        self.twiddle_multiplies += other.twiddle_multiplies
        self.onchip_transpose_elements += other.onchip_transpose_elements
        self.offchip_transpose_elements += other.offchip_transpose_elements
        self.levels = max(self.levels, other.levels)


def _twiddle_grid(n1: int, n2: int, inverse: bool) -> np.ndarray:
    """Matrix T[k1, n2] = w_N^(k1*n2) for N = n1*n2."""
    n = n1 * n2
    w = inverse_root(n) if inverse else primitive_root(n)
    col = np.empty(n1, dtype=np.uint64)
    acc = 1
    for i in range(n1):
        col[i] = acc
        acc = acc * w % MODULUS
    # Row j of the grid is col^j computed by iterated multiply; build by
    # cumulative products along axis 1.
    grid = np.empty((n1, n2), dtype=np.uint64)
    grid[:, 0] = 1
    for j in range(1, n2):
        grid[:, j] = fv.mul(grid[:, j - 1], col)
    return grid


def four_step_ntt(
    a: np.ndarray,
    inverse: bool = False,
    base_size: int = HW_BASE_SIZE,
    stats: FourStepStats | None = None,
) -> np.ndarray:
    """Length-N NTT via recursive four-step decomposition.

    Produces output identical to :func:`repro.ntt.radix2.ntt`.
    """
    a = np.asarray(a, dtype=np.uint64)
    n = a.shape[-1]
    if a.ndim != 1:
        raise ValueError("four_step_ntt operates on 1-D vectors")
    if n & (n - 1):
        raise ValueError(f"NTT length must be a power of two, got {n}")

    return _four_step(a, inverse, base_size, stats)


def _base_ntt(a: np.ndarray, inverse: bool, stats: FourStepStats | None) -> np.ndarray:
    if stats is not None:
        stats.base_ntt_elements += a.size
    return radix2_ntt(a, inverse=inverse)


def _four_step(
    a: np.ndarray, inverse: bool, base_size: int, stats: FourStepStats | None
) -> np.ndarray:
    """Four-step transform.  For the inverse, the 1/N scaling emerges from
    the column pass (1/n1) composed with the row pass (1/n2), so no global
    correction is needed."""
    n = a.shape[-1]
    if n <= base_size:
        return _base_ntt(a, inverse, stats)

    # Split N = n1 * n2 with n1 <= base_size, recursing on n2 if needed.
    n1 = base_size
    n2 = n // n1

    if stats is not None:
        stats.levels += 1

    # Step 1: view x[n1_idx * n2 + n2_idx] as an (n1, n2) matrix and
    # transform each column (length n1).  We transpose so columns become
    # rows for the vectorized base kernel.
    mat = a.reshape(n1, n2)
    cols = np.ascontiguousarray(mat.T)  # (n2, n1)
    if stats is not None:
        if n <= RF_ELEMENTS:
            stats.onchip_transpose_elements += n
        else:
            stats.offchip_transpose_elements += n
    cols = _base_ntt(cols, inverse, stats)  # length-n1 NTT per row

    # Step 2: twiddle multiply T[k1, n2_idx] = w^(k1 * n2_idx).
    grid = _twiddle_grid(n1, n2, inverse)  # (n1, n2)
    cols = fv.mul(cols, grid.T)  # (n2, n1) layout
    if stats is not None:
        stats.twiddle_multiplies += n

    # Step 3: transform each row of the (n1, n2) matrix -> recurse on n2.
    rows = np.ascontiguousarray(cols.T)  # (n1, n2)
    if stats is not None:
        if n <= RF_ELEMENTS:
            stats.onchip_transpose_elements += n
        else:
            stats.offchip_transpose_elements += n
    if n2 <= base_size:
        rows = _base_ntt(rows, inverse, stats)
    else:
        transformed = np.empty_like(rows)
        for i in range(n1):
            transformed[i] = _four_step(rows[i], inverse, base_size, stats)
        rows = transformed

    # Step 4: output in k = k2 * n1 + k1 order -> transpose and flatten.
    if stats is not None:
        if n <= RF_ELEMENTS:
            stats.onchip_transpose_elements += n
        else:
            stats.offchip_transpose_elements += n
    return np.ascontiguousarray(rows.T).reshape(n)
