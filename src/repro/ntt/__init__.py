"""Number-theoretic transforms over the Goldilocks field."""

from .fourstep import HW_BASE_SIZE, RF_ELEMENTS, FourStepStats, four_step_ntt
from .polymul import next_pow2, poly_eval_domain, poly_mul
from .radix2 import intt, ntt, ntt_slow
from .roots import inverse_root, n_inverse, primitive_root

__all__ = [
    "HW_BASE_SIZE",
    "RF_ELEMENTS",
    "FourStepStats",
    "four_step_ntt",
    "next_pow2",
    "poly_eval_domain",
    "poly_mul",
    "intt",
    "ntt",
    "ntt_slow",
    "inverse_root",
    "n_inverse",
    "primitive_root",
]
