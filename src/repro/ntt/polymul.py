"""NTT-based polynomial multiplication (Sec. V-A, "Polynomial arithmetic").

Coefficients are transformed to the evaluation domain, multiplied
element-wise on the vector units, and transformed back — the same strategy
NoCap uses, with the NTT FU doing the transforms.
"""

from __future__ import annotations

import numpy as np

from ..field import vector as fv
from .radix2 import intt, ntt, ntt_zero_padded


def next_pow2(n: int) -> int:
    """Smallest power of two >= n (and >= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def poly_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply coefficient vectors a and b; result has len(a)+len(b)-1 coeffs."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.size == 0 or b.size == 0:
        return np.zeros(0, dtype=np.uint64)
    out_len = a.size + b.size - 1
    n = next_pow2(out_len)
    fa = np.zeros(n, dtype=np.uint64)
    fb = np.zeros(n, dtype=np.uint64)
    fa[: a.size] = a
    fb[: b.size] = b
    prod = intt(fv.mul(ntt(fa), ntt(fb)))
    return prod[:out_len]


def poly_eval_domain(coeffs: np.ndarray, domain_size: int) -> np.ndarray:
    """Evaluate coefficient vectors on the size-``domain_size`` NTT domain.

    This is the Reed-Solomon encoding primitive: zero-pad and transform.
    Accepts any leading batch dimensions — an (rows, n) matrix is padded and
    transformed along the last axis in ONE radix-2 NTT call, which is how
    the Orion commitment encodes all rows at once (NoCap's 64-lane NTT FU).
    """
    coeffs = np.asarray(coeffs, dtype=np.uint64)
    n = coeffs.shape[-1]
    if domain_size < n:
        raise ValueError("domain smaller than coefficient vector")
    # The padding is implicit: ntt_zero_padded skips the stages that would
    # only shuffle zeros around (one skipped stage per blowup factor).
    return ntt_zero_padded(coeffs, domain_size)
