"""NTT-based polynomial multiplication (Sec. V-A, "Polynomial arithmetic").

Coefficients are transformed to the evaluation domain, multiplied
element-wise on the vector units, and transformed back — the same strategy
NoCap uses, with the NTT FU doing the transforms.
"""

from __future__ import annotations

import numpy as np

from ..field import vector as fv
from .radix2 import intt, ntt


def next_pow2(n: int) -> int:
    """Smallest power of two >= n (and >= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def poly_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply coefficient vectors a and b; result has len(a)+len(b)-1 coeffs."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.size == 0 or b.size == 0:
        return np.zeros(0, dtype=np.uint64)
    out_len = a.size + b.size - 1
    n = next_pow2(out_len)
    fa = np.zeros(n, dtype=np.uint64)
    fb = np.zeros(n, dtype=np.uint64)
    fa[: a.size] = a
    fb[: b.size] = b
    prod = intt(fv.mul(ntt(fa), ntt(fb)))
    return prod[:out_len]


def poly_eval_domain(coeffs: np.ndarray, domain_size: int) -> np.ndarray:
    """Evaluate a coefficient vector on the size-``domain_size`` NTT domain.

    This is the Reed-Solomon encoding primitive: zero-pad and transform.
    """
    coeffs = np.asarray(coeffs, dtype=np.uint64)
    if domain_size < coeffs.size:
        raise ValueError("domain smaller than coefficient vector")
    padded = np.zeros(domain_size, dtype=np.uint64)
    padded[: coeffs.size] = coeffs
    return ntt(padded)
