from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of NoCap (MICRO 2024): hash-based "
                 "zero-knowledge proof system (Spartan+Orion) with a "
                 "co-designed accelerator performance model"),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
