"""Cross-module integration tests: every demo workload proven end to end
through the full Spartan+Orion pipeline, plus cross-layer consistency
between the functional layer and the performance model."""

import numpy as np
import pytest

from repro.opcount import OpCount
from repro.snark import (
    PAPER,
    TEST,
    ProofBundle,
    proof_from_bytes,
    proof_to_bytes,
    prove,
    setup,
    verify,
)
from repro.workloads import PAPER_WORKLOADS


class TestAllWorkloadsProve:
    """Each paper workload's demo circuit round-trips through the SNARK."""

    @pytest.mark.parametrize("name", ["AES", "SHA", "RSA", "Litmus", "Auction"])
    def test_prove_verify_serialize(self, name):
        spec = next(w for w in PAPER_WORKLOADS if w.name == name)
        circuit = spec.build_demo()
        r1cs, public, witness = circuit.compile()
        pk, vk = setup(r1cs, TEST)
        bundle = prove(pk, public, witness, rng=np.random.default_rng(1),
                       circuit_id=name.lower())
        assert verify(vk, bundle), name
        restored = proof_from_bytes(proof_to_bytes(bundle.proof))
        assert verify(vk, ProofBundle(proof=restored,
                                      public=bundle.public)), name


class TestPaperPreset:
    def test_paper_parameters_prove_small_circuit(self):
        """The full 128-bit parameterization (3 repetitions, 128 rows,
        189 queries) works end to end on a small instance."""
        from repro.r1cs import Circuit

        c = Circuit()
        out = c.public(35)
        x = c.witness(3)
        c.assert_equal(c.mul(c.mul(x, x), x) + x + 5, out)
        r1cs, public, witness = c.compile()
        pk, vk = setup(r1cs, PAPER)
        bundle = prove(pk, public, witness, rng=np.random.default_rng(2))
        assert verify(vk, bundle)
        assert len(bundle.proof.repetitions) == 3


class TestCrossLayerConsistency:
    def test_functional_hash_packing_matches_hash_fu_model(self):
        """The functional layer's hash packing (4 elements per 256-bit
        word) matches the Hash FU's 128-elements-per-cycle model: one
        1 KB line is 128 elements = 32 words."""
        from repro.hashing.fieldhash import ELEMENTS_PER_WORD

        assert 128 * 8 == 1024  # 1 KB/cycle
        assert ELEMENTS_PER_WORD == 4

    def test_cost_model_query_params_match_functional_defaults(self):
        """The PAPER preset and the cost-model constants agree."""
        from repro.nocap import constants as C

        assert PAPER.sumcheck_repetitions == C.SUMCHECK_REPETITIONS
        assert PAPER.pcs_rows == C.ORION_ROWS
        assert PAPER.multiset_hash_instances == C.MULTISET_HASH_INSTANCES

    def test_rs_code_cost_matches_ntt_structure(self):
        """The RS cost model's butterfly count equals the functional
        radix-2 NTT's actual multiply count."""
        from repro.code import ReedSolomonCode

        n = 1 << 10
        cost = ReedSolomonCode().encoding_cost(n)
        codeword = 4 * n
        butterflies = (codeword // 2) * (codeword.bit_length() - 1)
        assert cost.mul == butterflies

    def test_opcount_arithmetic(self):
        a = OpCount(mul=3, add=1, mem_read_bytes=10)
        b = OpCount(mul=2, hash_words=5, mem_write_bytes=4)
        s = a + b
        assert s.mul == 5 and s.add == 1 and s.hash_words == 5
        assert s.mem_bytes == 14
        assert a.scaled(3).mul == 9

    def test_sumcheck_proof_size_vs_model(self):
        """A functional sumcheck's message volume matches the analytic
        accounting (rounds x (degree+1) evaluations)."""
        from repro.field import vector as fv
        from repro.hashing import Transcript
        from repro.multilinear import prove_sumcheck

        rng = np.random.default_rng(3)
        tables = [fv.rand_vector(1 << 8, rng) for _ in range(3)]
        proof, _ = prove_sumcheck(tables, Transcript())
        assert proof.size_bytes() == 8 * (8 * 4 + 3)


class TestAlternativeCodes:
    def test_spartan_with_expander_code(self):
        """The PCS is code-agnostic: the full SNARK round-trips over the
        expander-graph code Orion originally used."""
        from repro.code import ExpanderCode
        from repro.hashing import Transcript
        from repro.pcs import OrionPCS, PCSParams
        from repro.spartan import SpartanParams, SpartanProver, SpartanVerifier
        from repro.workloads import synthetic_r1cs

        r1cs, pub, wit = synthetic_r1cs(6, band=8, seed=77)
        code = ExpanderCode()
        code.num_queries = 24  # keep the test fast
        pcs = OrionPCS(code=code, params=PCSParams(num_rows=8),
                       rng=np.random.default_rng(4))
        params = SpartanParams(repetitions=1)
        proof = SpartanProver(r1cs, pcs, params).prove(pub, wit)
        assert SpartanVerifier(r1cs, pcs, params).verify(pub, proof)


class TestConfigImmutability:
    def test_config_is_frozen(self):
        from dataclasses import FrozenInstanceError

        from repro.nocap import DEFAULT_CONFIG

        with pytest.raises(FrozenInstanceError):
            DEFAULT_CONFIG.mul_lanes = 1  # type: ignore[misc]

    def test_scale_returns_new_instance(self):
        from repro.nocap import DEFAULT_CONFIG

        scaled = DEFAULT_CONFIG.scale(hbm=2.0)
        assert scaled is not DEFAULT_CONFIG
        assert DEFAULT_CONFIG.hbm_bytes_per_s == 1e12
