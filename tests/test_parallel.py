"""Tests for the parallel proving engine (:mod:`repro.parallel`).

The load-bearing property is the determinism contract: every pooled
kernel and the batch prover must produce bytes **identical** to the
serial path at any worker count.  Worker counts are kept small (2) so the
suite stays fast on small CI machines; the contract is count-independent
by construction (pure chunks, submission-order assembly).
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.code.reed_solomon import ReedSolomonCode
from repro.hashing import fieldhash
from repro.hashing.merkle import MerkleTree
from repro.parallel import ProverPool, shm
from repro.snark import TEST, prove, prove_many, setup, verify
from repro.workloads import synthetic_r1cs


@pytest.fixture(scope="module")
def instance():
    return synthetic_r1cs(log_size=10, seed=9)


@pytest.fixture(scope="module")
def pool():
    # auto_chunk off: these tests exercise the fan-out machinery itself,
    # so the break-even model must not inline the (deliberately tiny)
    # workloads.
    with ProverPool(workers=2, auto_chunk=False) as p:
        yield p


def _repro_segments():
    """Names of live repro-owned segments in /dev/shm (Linux)."""
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith("repro"))
    except FileNotFoundError:  # non-Linux: rely on arena bookkeeping
        return []


class TestChunking:
    def test_ranges_cover_exactly(self):
        pool = ProverPool(workers=4)
        for n in (1, 3, 7, 64, 1000):
            ranges = pool.chunk_ranges(n)
            assert ranges[0][0] == 0 and ranges[-1][1] == n
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo

    def test_min_per_chunk_limits_fanout(self):
        pool = ProverPool(workers=8)
        assert len(pool.chunk_ranges(10, min_per_chunk=5)) == 2
        assert len(pool.chunk_ranges(4, min_per_chunk=8)) == 1

    def test_empty(self):
        assert ProverPool(workers=4).chunk_ranges(0) == []


class TestSerialFallback:
    def test_serial_pool_never_spawns(self):
        pool = ProverPool(workers=1)
        assert pool.is_serial
        assert pool.run(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]
        assert pool._executor is None

    def test_workers_default_is_cpu_count(self):
        import os

        assert ProverPool().workers == (os.cpu_count() or 1)


class TestKernelEquivalence:
    def test_encode_rows_matches_serial(self, pool):
        code = ReedSolomonCode(blowup=4, num_queries=8)
        rng = np.random.default_rng(5)
        matrix = rng.integers(0, 1 << 32, size=(16, 64), dtype=np.uint64)
        assert np.array_equal(code.encode_rows(matrix, pool=pool),
                              code.encode_rows(matrix))

    def test_encode_rows_small_matrix_stays_inline(self, pool):
        code = ReedSolomonCode(blowup=4, num_queries=8)
        matrix = np.arange(2 * 8, dtype=np.uint64).reshape(2, 8)
        assert np.array_equal(code.encode_rows(matrix, pool=pool),
                              code.encode_rows(matrix))

    def test_hash_columns_matches_serial(self, pool):
        rng = np.random.default_rng(6)
        matrix = rng.integers(0, 1 << 32, size=(4, 400), dtype=np.uint64)
        assert pool.hash_columns(matrix) == fieldhash.hash_columns(matrix)

    def test_merkle_tree_matches_serial(self, pool):
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 1 << 32, size=(4, 256), dtype=np.uint64)
        assert (MerkleTree.from_columns(matrix, pool=pool).root
                == MerkleTree.from_columns(matrix).root)

    def test_hash_layer_chunk_matches_serial_loop(self):
        from repro.parallel.kernels import hash_layer_chunk

        rng = np.random.default_rng(8)
        digests = [bytes(rng.integers(0, 256, 32, dtype=np.uint8))
                   for _ in range(8)]
        raw = b"".join(digests)
        expected = b"".join(
            fieldhash.hash_pair(digests[i], digests[i + 1])
            for i in range(0, 8, 2))
        assert hash_layer_chunk(raw) == expected


class TestProofDeterminism:
    def test_pooled_prove_bytes_identical(self, instance, pool):
        r1cs, public, witness = instance
        pk, vk = setup(r1cs, TEST)
        serial = prove(pk, public, witness, seed=21)
        pooled = prove(pk, public, witness, seed=21, pool=pool)
        assert pooled.to_bytes() == serial.to_bytes()
        assert verify(vk, pooled)

    def test_prove_many_worker_count_invariant(self, instance, pool):
        r1cs, public, witness = instance
        pk, vk = setup(r1cs, TEST)
        jobs = [(public, witness)] * 3
        ser = prove_many(pk, jobs, workers=1, base_seed=33, circuit_id="syn")
        par = prove_many(pk, jobs, pool=pool, base_seed=33, circuit_id="syn")
        assert [b.to_bytes() for b in ser] == [b.to_bytes() for b in par]
        assert all(verify(vk, b) for b in par)
        assert all(b.circuit_id == "syn" for b in par)

    def test_prove_many_jobs_get_distinct_masks(self, instance):
        r1cs, public, witness = instance
        pk, _ = setup(r1cs, TEST)
        a, b = prove_many(pk, [(public, witness)] * 2, workers=1, base_seed=1)
        assert a.proof.witness_commitment.root != b.proof.witness_commitment.root

    def test_prove_many_empty(self, instance):
        r1cs, _, _ = instance
        pk, _ = setup(r1cs, TEST)
        assert prove_many(pk, [], workers=2) == []


class TestWorkerTraceMerge:
    def test_worker_spans_and_counters_merge(self, instance, pool):
        r1cs, public, witness = instance
        pk, _ = setup(r1cs, TEST)
        with obs.tracing() as tracer:
            prove(pk, public, witness, seed=2, pool=pool)
        workers = tracer.worker_records()
        assert workers, "pooled prove produced no worker records"
        for records in workers.values():
            assert all(rec.name.startswith("worker.") for rec in records)
            assert all(rec.wall_s >= 0 for rec in records)
        # NTT butterflies run inside the workers; their counter deltas
        # must land in the parent registry.
        counters = tracer.metrics_snapshot.get("counters", {})
        assert counters.get("ntt.butterflies", 0) > 0

    def test_workers_render_as_extra_pids(self, instance, pool):
        from repro.obs.export import WORKER_PID_BASE, chrome_trace

        r1cs, public, witness = instance
        pk, _ = setup(r1cs, TEST)
        with obs.tracing() as tracer:
            prove(pk, public, witness, seed=2, pool=pool)
        doc = chrome_trace(tracer.records(),
                           worker_records=tracer.worker_records())
        pids = {ev["pid"] for ev in doc["traceEvents"]}
        assert any(p >= WORKER_PID_BASE for p in pids)

    def test_untraced_pooled_run_merges_nothing(self, instance, pool):
        r1cs, public, witness = instance
        pk, vk = setup(r1cs, TEST)
        bundle = prove(pk, public, witness, seed=2, pool=pool)
        assert verify(vk, bundle)  # no tracer active: plain results only


class TestShmRoundTrip:
    """Property tests for the shared-memory substrate itself."""

    def test_share_array_round_trip(self):
        rng = np.random.default_rng(11)
        with shm.ShmArena() as arena:
            for shape, dtype in [((7,), "uint64"), ((3, 5), "uint64"),
                                 ((2, 3, 4), "uint8"), ((1,), "int64")]:
                arr = rng.integers(0, 100, size=shape).astype(dtype)
                desc = arena.share_array(arr)
                assert desc.shape == tuple(shape)
                assert desc.dtype == str(np.dtype(dtype))
                assert desc.nbytes == arr.nbytes
                with shm.attached(desc) as view:
                    assert view.shape == arr.shape
                    assert view.dtype == arr.dtype
                    assert np.array_equal(view, arr)
                assert np.array_equal(arena.view(desc), arr)

    def test_worker_writes_are_visible_to_parent(self):
        with shm.ShmArena() as arena:
            desc = arena.alloc_array((4, 4), "uint64")
            with shm.attached(desc) as view:
                view[...] = np.arange(16, dtype=np.uint64).reshape(4, 4)
            assert np.array_equal(
                arena.view(desc),
                np.arange(16, dtype=np.uint64).reshape(4, 4))

    def test_blob_and_pickle_round_trip(self):
        payload = {"key": np.arange(5, dtype=np.uint64), "n": 42}
        with shm.ShmArena() as arena:
            bdesc = arena.share_blob(b"hello shm")
            assert shm.read_blob(bdesc) == b"hello shm"
            pdesc = arena.share_pickle(payload)
            loaded = shm.read_pickle(pdesc)
            assert loaded["n"] == 42
            assert np.array_equal(loaded["key"], payload["key"])

    def test_torn_down_segment_raises_shmerror(self):
        arena = shm.ShmArena()
        desc = arena.share_array(np.ones(8, dtype=np.uint64))
        arena.free(desc)
        with pytest.raises(shm.ShmError):
            with shm.attached(desc):
                pass
        arena.close()
        with pytest.raises(shm.ShmError):
            shm.read_blob(shm.BlobDesc(desc.name, 8))

    def test_close_unlinks_everything_and_is_idempotent(self):
        before = _repro_segments()
        arena = shm.ShmArena()
        descs = [arena.share_array(np.zeros(16, dtype=np.uint64))
                 for _ in range(3)]
        assert arena.bytes_in_use == 3 * 16 * 8
        arena.close()
        arena.close()
        assert arena.closed and arena.bytes_in_use == 0
        assert _repro_segments() == before
        for d in descs:
            with pytest.raises(shm.ShmError):
                with shm.attached(d):
                    pass

    def test_free_twice_is_noop(self):
        arena = shm.ShmArena()
        desc = arena.share_array(np.ones(8, dtype=np.uint64))
        arena.free(desc)
        arena.free(desc)  # second free must be a silent no-op
        assert arena.bytes_in_use == 0
        arena.close()

    def test_reentrant_close_releases_each_segment_once(self, monkeypatch):
        """Regression: a SIGTERM cleanup chain firing while close() is
        mid-loop must not skip segments or release one twice.  We model
        the reentry by having the first release call close() again."""
        before = _repro_segments()
        arena = shm.ShmArena()
        for _ in range(4):
            arena.share_array(np.zeros(8, dtype=np.uint64))
        released = []
        original = shm.ShmArena._release

        def reentrant(seg):
            released.append(seg.name)
            if len(released) == 1:  # the interrupting cleanup chain
                arena.close()
            original(seg)

        monkeypatch.setattr(shm.ShmArena, "_release",
                            staticmethod(reentrant))
        arena.close()
        assert arena.closed
        assert len(released) == 4
        assert len(set(released)) == 4, "a segment was released twice"
        assert _repro_segments() == before

    def test_pool_close_twice_and_shutdown_twice(self):
        from repro.parallel import get_pool, shutdown

        with ProverPool(workers=2, auto_chunk=False) as p:
            p.warm()
            p.close()  # __exit__ will close again: must be idempotent
        p.close()
        assert get_pool(2) is not None
        shutdown()
        shutdown()  # second process-wide teardown is a no-op

    def test_exception_inside_context_still_cleans_up(self):
        before = _repro_segments()
        with pytest.raises(RuntimeError, match="boom"):
            with shm.ShmArena() as arena:
                arena.share_array(np.zeros(64, dtype=np.uint64))
                raise RuntimeError("boom")
        assert _repro_segments() == before

    def test_sigterm_unlinks_segments(self, tmp_path):
        """A SIGTERM'd prover process must leave /dev/shm clean."""
        import signal
        import subprocess
        import sys
        import time

        script = tmp_path / "victim.py"
        script.write_text(
            "import sys, time, numpy as np\n"
            "from repro.parallel import shm\n"
            "arena = shm.ShmArena(prefix='repro_sigterm')\n"
            "desc = arena.share_array(np.zeros(1024, dtype=np.uint64))\n"
            "print(desc.name, flush=True)\n"
            "time.sleep(30)\n")
        env = dict(os.environ,
                   PYTHONPATH=os.pathsep.join(
                       filter(None, [os.path.join(os.getcwd(), "src"),
                                     os.environ.get("PYTHONPATH", "")])))
        proc = subprocess.Popen([sys.executable, str(script)],
                                stdout=subprocess.PIPE, text=True, env=env)
        try:
            name = proc.stdout.readline().strip()
            assert name, "victim never created its segment"
            assert os.path.exists(f"/dev/shm/{name}")
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)
            deadline = time.monotonic() + 5
            while os.path.exists(f"/dev/shm/{name}"):
                assert time.monotonic() < deadline, \
                    f"segment {name} leaked after SIGTERM"
                time.sleep(0.05)
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_no_leaks_after_pooled_prove(self, instance):
        before = _repro_segments()
        r1cs, public, witness = instance
        pk, vk = setup(r1cs, TEST)
        with ProverPool(workers=2, auto_chunk=False) as p:
            bundle = prove(pk, public, witness, seed=4, pool=p)
        assert verify(vk, bundle)
        assert _repro_segments() == before


class TestAutoChunk:
    def _calibrated(self, workers=4, dispatch_cost=1e-3):
        pool = ProverPool(workers=workers)
        pool._dispatch_cost_s = dispatch_cost  # skip the live probe
        return pool

    def test_below_break_even_stays_serial(self):
        pool = self._calibrated()
        # 10 items at 10 us each cannot fund two 4 ms chunks.
        assert pool.auto_chunk_ranges(10, 1e-5) is None

    def test_chunk_count_monotone_in_n(self):
        pool = self._calibrated()
        counts = []
        for n in (10, 100, 1_000, 10_000, 100_000, 1_000_000):
            ranges = pool.auto_chunk_ranges(n, 1e-5)
            counts.append(len(ranges) if ranges is not None else 1)
        assert counts == sorted(counts), counts
        assert counts[0] == 1 and counts[-1] == pool.workers

    def test_chunk_count_monotone_in_item_cost(self):
        pool = self._calibrated()
        counts = []
        for cost in (1e-8, 1e-7, 1e-6, 1e-5, 1e-4):
            ranges = pool.auto_chunk_ranges(10_000, cost)
            counts.append(len(ranges) if ranges is not None else 1)
        assert counts == sorted(counts), counts

    def test_auto_chunk_off_always_fans_out(self):
        pool = ProverPool(workers=4, auto_chunk=False)
        ranges = pool.auto_chunk_ranges(8, 1e-9)
        assert ranges is not None and len(ranges) > 1

    def test_job_fanout_policy(self):
        # Serial pools never fan out jobs; auto_chunk=False always does;
        # with the cost model on, job fan-out needs real cores (the
        # CPU-bound jobs would only time-slice a single one).
        assert not ProverPool(workers=1).job_fanout_pays
        assert ProverPool(workers=2, auto_chunk=False).job_fanout_pays
        expected = (os.cpu_count() or 1) >= 2
        assert ProverPool(workers=2).job_fanout_pays is expected

    def test_ranges_still_cover_exactly(self):
        pool = self._calibrated()
        ranges = pool.auto_chunk_ranges(100_000, 1e-5, min_per_chunk=7)
        assert ranges[0][0] == 0 and ranges[-1][1] == 100_000
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo


class TestWorkerCountInvariance:
    """Proof bytes must be identical at workers in {0, 1, 2, 4}."""

    def test_prove_bytes_identical_across_worker_counts(self, instance):
        r1cs, public, witness = instance
        pk, vk = setup(r1cs, TEST)
        reference = prove(pk, public, witness, seed=77).to_bytes()
        for w in (0, 1):
            assert prove(pk, public, witness, seed=77,
                         workers=w).to_bytes() == reference
        for w in (2, 4):
            with ProverPool(workers=w, auto_chunk=False) as p:
                assert prove(pk, public, witness, seed=77,
                             pool=p).to_bytes() == reference
        assert verify(vk, prove(pk, public, witness, seed=77))

    def test_prove_many_bytes_identical_across_worker_counts(self, instance):
        r1cs, public, witness = instance
        pk, _ = setup(r1cs, TEST)
        jobs = [(public, witness)] * 2
        reference = [b.to_bytes()
                     for b in prove_many(pk, jobs, workers=0, base_seed=13)]
        for w in (1,):
            assert [b.to_bytes() for b in
                    prove_many(pk, jobs, workers=w, base_seed=13)] == reference
        for w in (2, 4):
            with ProverPool(workers=w, auto_chunk=False) as p:
                assert [b.to_bytes() for b in
                        prove_many(pk, jobs, pool=p,
                                   base_seed=13)] == reference


class TestNoShmFallback:
    def test_env_flag_disables_shm(self, monkeypatch):
        monkeypatch.setenv(shm.NO_SHM_ENV, "1")
        assert not shm.shm_enabled()
        monkeypatch.delenv(shm.NO_SHM_ENV)
        assert shm.shm_enabled() == shm.shm_supported()

    def test_pickled_fallback_bytes_identical(self, instance, monkeypatch):
        r1cs, public, witness = instance
        pk, vk = setup(r1cs, TEST)
        jobs = [(public, witness)] * 2
        reference = [b.to_bytes()
                     for b in prove_many(pk, jobs, workers=0, base_seed=21)]
        monkeypatch.setenv(shm.NO_SHM_ENV, "1")
        with ProverPool(workers=2, auto_chunk=False) as p:
            assert not p.use_shm
            bundles = prove_many(pk, jobs, pool=p, base_seed=21)
        assert [b.to_bytes() for b in bundles] == reference
        assert all(verify(vk, b) for b in bundles)

    def test_fallback_kernels_bytes_identical(self, monkeypatch):
        code = ReedSolomonCode(blowup=4, num_queries=8)
        rng = np.random.default_rng(31)
        matrix = rng.integers(0, 1 << 32, size=(16, 128), dtype=np.uint64)
        with ProverPool(workers=2, auto_chunk=False) as p:
            shared = p.encode_rows(code, matrix)
            shared_digests = p.hash_columns(shared)
            monkeypatch.setenv(shm.NO_SHM_ENV, "1")
            pickled = p.encode_rows(code, matrix)
            pickled_digests = p.hash_columns(pickled)
        assert np.array_equal(shared, pickled)
        assert shared_digests == pickled_digests


class TestStreamingCommit:
    def _pcs(self, streaming_cells, num_rows=16, pool=None, seed=3):
        from repro.pcs.orion import OrionPCS, PCSParams

        return OrionPCS(params=PCSParams(num_rows=num_rows),
                        rng=np.random.default_rng(seed),
                        pool=pool, streaming_cells=streaming_cells)

    def test_chain_hasher_matches_hash_columns(self):
        rng = np.random.default_rng(41)
        for rows, cols, tiles in [(1, 3, [1]), (4, 8, [4]), (10, 6, [8, 2]),
                                  (17, 5, [8, 8, 1]), (32, 12, [16, 16])]:
            matrix = rng.integers(0, 1 << 63, size=(rows, cols),
                                  dtype=np.uint64)
            chains = fieldhash.ColumnChainHasher(cols, rows)
            lo = 0
            for t in tiles:
                chains.update(matrix[lo : lo + t])
                lo += t
            assert chains.finalize() == b"".join(
                fieldhash.hash_columns(matrix))

    def test_chain_hasher_rejects_bad_geometry(self):
        chains = fieldhash.ColumnChainHasher(4, 16)
        with pytest.raises(ValueError):
            chains.update(np.zeros((3, 4), dtype=np.uint64))  # partial word
        with pytest.raises(ValueError):
            chains.finalize()  # not all rows fed

    def test_streaming_commit_matches_materialized(self):
        rng = np.random.default_rng(43)
        table = rng.integers(0, 1 << 63, size=1 << 10, dtype=np.uint64)
        materialized = self._pcs(streaming_cells=1 << 60)
        streaming = self._pcs(streaming_cells=1)
        com_a, state_a = materialized.commit(table)
        com_b, state_b = streaming.commit(table)
        assert state_a.codewords is not None and not state_a.streaming
        assert state_b.codewords is None and state_b.streaming
        assert com_a.root == com_b.root

    def test_streaming_proof_bytes_identical(self, instance, pool):
        """End-to-end: a prover whose PCS streams produces the same proof
        bytes, and the verifier accepts them."""
        from repro.hashing.transcript import Transcript

        rng = np.random.default_rng(47)
        table = rng.integers(0, 1 << 63, size=1 << 10, dtype=np.uint64)
        point = [int(x) for x in rng.integers(0, 1 << 61, size=10)]
        com_m, st_m = self._pcs(1 << 60).commit(table)
        proof_m = self._pcs(1 << 60).open(st_m, com_m, point, Transcript())
        for pcs_pool in (None, pool):
            pcs = self._pcs(1, pool=pcs_pool)
            com_s, st_s = pcs.commit(table)
            proof_s = pcs.open(st_s, com_s, point, Transcript())
            assert com_s.root == com_m.root
            assert np.array_equal(proof_s.eval_row, proof_m.eval_row)
            assert all(np.array_equal(a, b) for a, b in
                       zip(proof_s.columns, proof_m.columns))
            value = pcs.evaluate_from_row(proof_s.eval_row, point,
                                          com_s.num_rows)
            assert pcs.verify(com_s, point, value, proof_s, Transcript())

    def test_streaming_bounds_peak_memory_at_2_18(self):
        """At 2^18 the streaming commit must allocate well under the full
        codeword matrix it avoids materializing."""
        import tracemalloc

        rng = np.random.default_rng(53)
        table = rng.integers(0, 1 << 63, size=1 << 18, dtype=np.uint64)
        pcs = self._pcs(streaming_cells=1, num_rows=128, seed=5)
        rows = 128 + 1  # + zk mask row
        cw_bytes = rows * pcs.code.codeword_length((1 << 18) // 128) * 8
        tracemalloc.start()
        _, state = pcs.commit(table)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert state.codewords is None
        assert peak < 0.75 * cw_bytes, \
            f"streaming peak {peak} not bounded vs {cw_bytes}"


class TestPersistentPool:
    def test_get_pool_reuses_and_shutdown_clears(self):
        from repro.parallel import get_pool, shutdown

        assert get_pool(1) is None
        a = get_pool(2)
        try:
            assert a is not None and a.workers == 2
            assert get_pool(2) is a  # same warm pool
            b = get_pool(3)
            assert b is not a and b.workers == 3
        finally:
            shutdown()
        from repro.parallel import pool as pool_mod

        assert pool_mod._GLOBAL_POOL is None

    def test_broadcast_is_cached_per_object(self):
        payload = {"weights": np.arange(64, dtype=np.uint64)}
        with ProverPool(workers=2) as p:
            t1, d1 = p.broadcast(payload)
            t2, d2 = p.broadcast(payload)
            assert t1 == t2 and d1 == d2
            other = {"weights": np.arange(64, dtype=np.uint64)}
            t3, _ = p.broadcast(other)
            assert t3 != t1

    def test_dispatch_probe_sets_cost(self):
        with ProverPool(workers=2) as p:
            p.warm()
            assert p._dispatch_cost_s is not None
            assert 0 < p.dispatch_cost_s < 1.0
            assert p.warm_s is not None and p.warm_s > 0

    def test_proving_key_pickle_drops_caches(self, instance):
        import pickle

        r1cs, public, witness = instance
        pk, _ = setup(r1cs, TEST)
        r1cs.products(r1cs.assemble_z(public, witness))  # populate caches
        assert r1cs._stacked_cache is not None
        clone = pickle.loads(pickle.dumps(pk))
        assert clone.r1cs._stacked_cache is None
        assert clone.r1cs.a._groups is None
        # the clone still proves correctly
        z = clone.r1cs.assemble_z(public, witness)
        assert clone.r1cs.is_satisfied(z)
