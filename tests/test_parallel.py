"""Tests for the parallel proving engine (:mod:`repro.parallel`).

The load-bearing property is the determinism contract: every pooled
kernel and the batch prover must produce bytes **identical** to the
serial path at any worker count.  Worker counts are kept small (2) so the
suite stays fast on small CI machines; the contract is count-independent
by construction (pure chunks, submission-order assembly).
"""

import numpy as np
import pytest

from repro import obs
from repro.code.reed_solomon import ReedSolomonCode
from repro.hashing import fieldhash
from repro.hashing.merkle import MerkleTree
from repro.parallel import ProverPool
from repro.snark import TEST, prove, prove_many, setup, verify
from repro.workloads import synthetic_r1cs


@pytest.fixture(scope="module")
def instance():
    return synthetic_r1cs(log_size=10, seed=9)


@pytest.fixture(scope="module")
def pool():
    with ProverPool(workers=2) as p:
        yield p


class TestChunking:
    def test_ranges_cover_exactly(self):
        pool = ProverPool(workers=4)
        for n in (1, 3, 7, 64, 1000):
            ranges = pool.chunk_ranges(n)
            assert ranges[0][0] == 0 and ranges[-1][1] == n
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo

    def test_min_per_chunk_limits_fanout(self):
        pool = ProverPool(workers=8)
        assert len(pool.chunk_ranges(10, min_per_chunk=5)) == 2
        assert len(pool.chunk_ranges(4, min_per_chunk=8)) == 1

    def test_empty(self):
        assert ProverPool(workers=4).chunk_ranges(0) == []


class TestSerialFallback:
    def test_serial_pool_never_spawns(self):
        pool = ProverPool(workers=1)
        assert pool.is_serial
        assert pool.run(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]
        assert pool._executor is None

    def test_workers_default_is_cpu_count(self):
        import os

        assert ProverPool().workers == (os.cpu_count() or 1)


class TestKernelEquivalence:
    def test_encode_rows_matches_serial(self, pool):
        code = ReedSolomonCode(blowup=4, num_queries=8)
        rng = np.random.default_rng(5)
        matrix = rng.integers(0, 1 << 32, size=(16, 64), dtype=np.uint64)
        assert np.array_equal(code.encode_rows(matrix, pool=pool),
                              code.encode_rows(matrix))

    def test_encode_rows_small_matrix_stays_inline(self, pool):
        code = ReedSolomonCode(blowup=4, num_queries=8)
        matrix = np.arange(2 * 8, dtype=np.uint64).reshape(2, 8)
        assert np.array_equal(code.encode_rows(matrix, pool=pool),
                              code.encode_rows(matrix))

    def test_hash_columns_matches_serial(self, pool):
        rng = np.random.default_rng(6)
        matrix = rng.integers(0, 1 << 32, size=(4, 400), dtype=np.uint64)
        assert pool.hash_columns(matrix) == fieldhash.hash_columns(matrix)

    def test_merkle_tree_matches_serial(self, pool):
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 1 << 32, size=(4, 256), dtype=np.uint64)
        assert (MerkleTree.from_columns(matrix, pool=pool).root
                == MerkleTree.from_columns(matrix).root)

    def test_hash_layer_chunk_matches_serial_loop(self):
        from repro.parallel.kernels import hash_layer_chunk

        rng = np.random.default_rng(8)
        digests = [bytes(rng.integers(0, 256, 32, dtype=np.uint8))
                   for _ in range(8)]
        raw = b"".join(digests)
        expected = b"".join(
            fieldhash.hash_pair(digests[i], digests[i + 1])
            for i in range(0, 8, 2))
        assert hash_layer_chunk(raw) == expected


class TestProofDeterminism:
    def test_pooled_prove_bytes_identical(self, instance, pool):
        r1cs, public, witness = instance
        pk, vk = setup(r1cs, TEST)
        serial = prove(pk, public, witness, seed=21)
        pooled = prove(pk, public, witness, seed=21, pool=pool)
        assert pooled.to_bytes() == serial.to_bytes()
        assert verify(vk, pooled)

    def test_prove_many_worker_count_invariant(self, instance, pool):
        r1cs, public, witness = instance
        pk, vk = setup(r1cs, TEST)
        jobs = [(public, witness)] * 3
        ser = prove_many(pk, jobs, workers=1, base_seed=33, circuit_id="syn")
        par = prove_many(pk, jobs, pool=pool, base_seed=33, circuit_id="syn")
        assert [b.to_bytes() for b in ser] == [b.to_bytes() for b in par]
        assert all(verify(vk, b) for b in par)
        assert all(b.circuit_id == "syn" for b in par)

    def test_prove_many_jobs_get_distinct_masks(self, instance):
        r1cs, public, witness = instance
        pk, _ = setup(r1cs, TEST)
        a, b = prove_many(pk, [(public, witness)] * 2, workers=1, base_seed=1)
        assert a.proof.witness_commitment.root != b.proof.witness_commitment.root

    def test_prove_many_empty(self, instance):
        r1cs, _, _ = instance
        pk, _ = setup(r1cs, TEST)
        assert prove_many(pk, [], workers=2) == []


class TestWorkerTraceMerge:
    def test_worker_spans_and_counters_merge(self, instance, pool):
        r1cs, public, witness = instance
        pk, _ = setup(r1cs, TEST)
        with obs.tracing() as tracer:
            prove(pk, public, witness, seed=2, pool=pool)
        workers = tracer.worker_records()
        assert workers, "pooled prove produced no worker records"
        for records in workers.values():
            assert all(rec.name.startswith("worker.") for rec in records)
            assert all(rec.wall_s >= 0 for rec in records)
        # NTT butterflies run inside the workers; their counter deltas
        # must land in the parent registry.
        counters = tracer.metrics_snapshot.get("counters", {})
        assert counters.get("ntt.butterflies", 0) > 0

    def test_workers_render_as_extra_pids(self, instance, pool):
        from repro.obs.export import WORKER_PID_BASE, chrome_trace

        r1cs, public, witness = instance
        pk, _ = setup(r1cs, TEST)
        with obs.tracing() as tracer:
            prove(pk, public, witness, seed=2, pool=pool)
        doc = chrome_trace(tracer.records(),
                           worker_records=tracer.worker_records())
        pids = {ev["pid"] for ev in doc["traceEvents"]}
        assert any(p >= WORKER_PID_BASE for p in pids)

    def test_untraced_pooled_run_merges_nothing(self, instance, pool):
        r1cs, public, witness = instance
        pk, vk = setup(r1cs, TEST)
        bundle = prove(pk, public, witness, seed=2, pool=pool)
        assert verify(vk, bundle)  # no tracer active: plain results only
