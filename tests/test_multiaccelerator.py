"""Tests for the rack-scale multi-accelerator projection (Sec. X)."""

import pytest

from repro.nocap.multiaccelerator import (
    RackOperatingPoint,
    rack_scale,
    scaling_curve,
)

N = 550_000_000


class TestRackScale:
    def test_single_chip_is_baseline(self):
        p = rack_scale(N, 1)
        assert p.speedup == 1.0
        assert p.aggregation_seconds == 0.0
        assert p.total_seconds == p.single_chip_seconds

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            rack_scale(N, 0)

    def test_two_chips_near_perfect(self):
        """Padding asymmetry (2^30 -> 2 x 2^29) plus mild superlinearity
        makes 2-way sharding at least ~95% efficient."""
        p = rack_scale(N, 2)
        assert p.efficiency > 0.95

    def test_speedup_monotone_to_knee(self):
        curve = scaling_curve(N, accelerator_counts=[1, 2, 4, 8, 16])
        speedups = [p.speedup for p in curve]
        assert all(b > a for a, b in zip(speedups, speedups[1:]))

    def test_efficiency_eventually_degrades(self):
        small = rack_scale(N, 4)
        big = rack_scale(N, 64)
        assert big.efficiency < small.efficiency

    def test_aggregation_grows_with_shards(self):
        assert rack_scale(N, 32).aggregation_seconds > \
            rack_scale(N, 4).aggregation_seconds

    def test_communication_negligible(self):
        """Sec. X: 'with little communication among them'."""
        p = rack_scale(N, 64)
        assert p.communication_seconds < 0.01 * p.total_seconds

    def test_total_decomposition(self):
        p = rack_scale(N, 8)
        assert p.total_seconds == pytest.approx(
            p.shard_seconds + p.aggregation_seconds + p.communication_seconds)

    def test_small_statement_does_not_shard_well(self):
        """For small statements the fixed aggregation cost dominates."""
        p = rack_scale(16_000_000, 64)
        assert p.efficiency < 0.2
