"""Cross-cutting property-based tests (hypothesis) on the protocol stack:
randomized round-trips and invariants that single-example tests miss."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import vector as fv
from repro.field.goldilocks import MODULUS
from repro.hashing import Transcript
from repro.multilinear import eq_table, fold, mle_eval, prove_sumcheck, verify_sumcheck
from repro.snark import proof_from_bytes, proof_to_bytes

felt = st.integers(0, MODULUS - 1)


class TestFieldProperties:
    @given(st.lists(felt, min_size=1, max_size=32), felt)
    def test_scalar_distributes_over_vector_sum(self, xs, k):
        v = np.array(xs, dtype=np.uint64)
        lhs = fv.vsum(fv.mul_scalar(v, k))
        rhs = k * fv.vsum(v) % MODULUS
        assert lhs == rhs

    @given(st.lists(felt, min_size=2, max_size=32))
    def test_dot_is_symmetric(self, xs):
        half = len(xs) // 2
        a = np.array(xs[:half], dtype=np.uint64)
        b = np.array(xs[half : 2 * half], dtype=np.uint64)
        assert fv.dot(a, b) == fv.dot(b, a)


class TestMLEProperties:
    @given(st.lists(felt, min_size=8, max_size=8),
           st.lists(felt, min_size=3, max_size=3))
    def test_mle_is_multilinear_in_each_variable(self, table, point):
        """P(r) is an affine function of each coordinate: evaluating at
        three collinear values of one variable is consistent."""
        t = np.array(table, dtype=np.uint64)
        r0, r1, r2 = point
        vals = {}
        for x in (0, 1, 2):
            vals[x] = mle_eval(t, [x, r1, r2])
        # Affine: f(2) = 2*f(1) - f(0).
        assert vals[2] == (2 * vals[1] - vals[0]) % MODULUS

    @given(st.lists(felt, min_size=4, max_size=4))
    def test_eq_table_is_multiplicative(self, point):
        """eq over a concatenated point is the tensor product."""
        a, b = point[:2], point[2:]
        full = eq_table(point)
        ta, tb = eq_table(a), eq_table(b)
        outer = np.array([[int(x) * int(y) % MODULUS for y in tb]
                          for x in ta], dtype=np.uint64).reshape(-1)
        assert (full == outer).all()

    @given(st.lists(felt, min_size=16, max_size=16), felt, felt)
    def test_fold_commutes_with_linearity(self, table, r, k):
        t = np.array(table, dtype=np.uint64)
        lhs = fold(fv.mul_scalar(t, k), r)
        rhs = fv.mul_scalar(fold(t, r), k)
        assert (lhs == rhs).all()


class TestSumcheckProperties:
    @settings(max_examples=10)
    @given(st.integers(2, 4), st.integers(1, 3), st.integers(0, 2**32))
    def test_random_instances_roundtrip(self, log_n, degree, seed):
        rng = np.random.default_rng(seed)
        tables = [fv.rand_vector(1 << log_n, rng) for _ in range(degree)]
        prod = tables[0]
        for t in tables[1:]:
            prod = fv.mul(prod, t)
        claim = fv.vsum(prod)
        proof, chal = prove_sumcheck(tables, Transcript())
        res = verify_sumcheck(claim, proof, degree, Transcript())
        assert res.ok
        for t, v in zip(tables, proof.final_values):
            assert mle_eval(t, chal) == v

    @settings(max_examples=10)
    @given(st.integers(0, 2**32), st.integers(1, 2**62))
    def test_wrong_claims_always_rejected(self, seed, delta):
        rng = np.random.default_rng(seed)
        tables = [fv.rand_vector(8, rng)]
        claim = fv.vsum(tables[0])
        proof, _ = prove_sumcheck(tables, Transcript())
        wrong = (claim + delta) % MODULUS
        if wrong != claim:
            assert not verify_sumcheck(wrong, proof, 1, Transcript()).ok


class TestSerializationProperties:
    @settings(max_examples=8)
    @given(st.integers(0, 2**32))
    def test_random_proofs_roundtrip(self, seed):
        from repro.pcs import OrionPCS, PCSParams
        from repro.spartan import SpartanParams, SpartanProver, SpartanVerifier
        from repro.workloads import synthetic_r1cs

        r1cs, pub, wit = synthetic_r1cs(4, band=4, seed=seed)
        pcs = OrionPCS(params=PCSParams(num_rows=4),
                       rng=np.random.default_rng(seed))
        params = SpartanParams(repetitions=1)
        proof = SpartanProver(r1cs, pcs, params).prove(pub, wit)
        restored = proof_from_bytes(proof_to_bytes(proof))
        assert proof_to_bytes(restored) == proof_to_bytes(proof)
        assert SpartanVerifier(r1cs, pcs, params).verify(pub, restored)
