"""Tests for the baseline cost models and the table/figure analyses."""

import math

import pytest

from repro.analysis import (
    cpu_efficiency_breakdown,
    database_throughput,
    dp_training_proof,
    gmean,
    groth16_mul_count,
    photo_modification,
    proof_size_mb,
    send_seconds,
    spartan_orion_mul_count,
    table1_rows,
    table5_rows,
    verifier_seconds,
)
from repro.analysis.tables import format_speedup, format_table
from repro.baselines import (
    DEFAULT_CPU,
    CpuModel,
    Groth16Cpu,
    Groth16Gpu,
    PipeZkModel,
    unoptimized_speedup,
)
from repro.nocap.simulator import prover_seconds
from repro.workloads.spec import PAPER_WORKLOADS


class TestCpuModel:
    def test_table4_cpu_times(self):
        for w in PAPER_WORKLOADS:
            assert DEFAULT_CPU.prover_seconds(w.raw_constraints) == \
                pytest.approx(w.paper_cpu_s, rel=0.02), w.name

    def test_padding_doubling(self):
        # 16M -> 2^24 and 17M -> 2^25: padding doubles the time.
        assert DEFAULT_CPU.prover_seconds(17_000_000) == pytest.approx(
            2 * DEFAULT_CPU.prover_seconds(16_000_000))

    def test_ablation_factors(self):
        base = DEFAULT_CPU.prover_seconds(16_000_000)
        no_field = CpuModel(use_goldilocks=False).prover_seconds(16_000_000)
        assert no_field / base == pytest.approx(1.7)
        no_rs = CpuModel(use_reed_solomon=False).prover_seconds(16_000_000)
        assert no_rs / base == pytest.approx(1.2)
        with_recompute = CpuModel(use_recompute=True).prover_seconds(16_000_000)
        assert with_recompute / base == pytest.approx(1.01)

    def test_overall_optimization(self):
        # Sec. VIII-C: "these improvements yield a 2.1x speedup on the CPU".
        assert unoptimized_speedup() == pytest.approx(2.1, abs=0.1)

    def test_task_split_sums_to_one(self):
        split = DEFAULT_CPU.time_by_family(16_000_000)
        assert sum(split.values()) == pytest.approx(
            DEFAULT_CPU.prover_seconds(16_000_000))
        assert split["sumcheck"] > split["rs_encode"] > split["merkle"]

    def test_serial_time(self):
        assert DEFAULT_CPU.prover_seconds_serial(16_000_000) == pytest.approx(
            2.7 * 94.2, rel=0.02)


class TestGroth16AndPipeZk:
    def test_table1_prover_times(self):
        assert Groth16Cpu().prover_seconds(16_000_000) == pytest.approx(53.99)
        assert Groth16Gpu().prover_seconds(16_000_000) == pytest.approx(37.44)
        assert PipeZkModel().prover_seconds(16_000_000) == pytest.approx(8.02)

    def test_tiny_proofs(self):
        assert Groth16Cpu().proof_bytes(10**9) == 200
        assert Groth16Cpu().verify_seconds(10**9) == pytest.approx(0.01)

    def test_pipezk_table4_column(self):
        for w in PAPER_WORKLOADS:
            assert PipeZkModel().prover_seconds(w.raw_constraints) == \
                pytest.approx(w.paper_pipezk_s, rel=0.03), w.name

    def test_pipezk_is_cpu_bound(self):
        pz = PipeZkModel()
        n = 16_000_000
        assert pz.accelerated_part_seconds(n) == pytest.approx(1.43)
        assert pz.cpu_part_seconds(n) == pytest.approx(8.02 - 1.43)
        assert pz.cpu_part_seconds(n) > pz.accelerated_part_seconds(n)


class TestProofSizeModels:
    def test_table3_proof_sizes(self):
        for w in PAPER_WORKLOADS:
            assert proof_size_mb(w.raw_constraints) == pytest.approx(
                w.paper_proof_mb, abs=0.15), w.name

    def test_table3_verifier_times(self):
        for w in PAPER_WORKLOADS:
            assert verifier_seconds(w.raw_constraints) * 1e3 == pytest.approx(
                w.paper_verify_ms, abs=2.0), w.name

    def test_growth_is_superlinear_in_log(self):
        # O(log^2): per-log-step increments grow.
        d1 = proof_size_mb(1 << 25) - proof_size_mb(1 << 24)
        d2 = proof_size_mb(1 << 30) - proof_size_mb(1 << 29)
        assert d2 > d1

    def test_send_seconds(self):
        assert send_seconds(10e6) == pytest.approx(1.0)  # 10 MB at 10 MB/s


class TestEndToEnd:
    def test_table1_reproduced(self):
        rows = {r.label: r for r in table1_rows()}
        assert rows["Groth16 / CPU"].total_s == pytest.approx(54.0, abs=0.1)
        assert rows["Groth16 / GPU"].total_s == pytest.approx(37.45, abs=0.1)
        assert rows["Groth16 / PipeZK"].total_s == pytest.approx(8.03, abs=0.05)
        assert rows["Spartan+Orion / CPU"].total_s == pytest.approx(95.14, abs=0.5)
        nocap = rows["Spartan+Orion / NoCap"]
        assert nocap.total_s == pytest.approx(1.09, abs=0.05)
        # "proof generation now takes a modest 14% of total time"
        assert nocap.prover_s / nocap.total_s == pytest.approx(0.14, abs=0.03)
        # "end-to-end performance is 7.4x better than PipeZK's"
        assert rows["Groth16 / PipeZK"].total_s / nocap.total_s == \
            pytest.approx(7.4, abs=0.4)

    def test_table5_gmean(self):
        rows = table5_rows()
        assert [r.workload for r in rows] == ["AES", "SHA", "RSA", "Litmus",
                                              "Auction"]
        g = gmean([r.speedup_vs_pipezk for r in rows])
        assert g == pytest.approx(16.8, rel=0.05)

    def test_table5_speedups_grow_then_dip(self):
        """Table V: speedups grow with circuit size through Litmus (then
        Auction dips due to the 2^30 padding)."""
        rows = table5_rows()
        s = [r.speedup_vs_pipezk for r in rows]
        assert s[0] < s[1] < s[2] < s[3]

    def test_database_throughput_regimes(self):
        cpu_pt = database_throughput(DEFAULT_CPU.prover_seconds)
        nocap_pt = database_throughput(prover_seconds)
        # Sec. VIII-A: ~2 tx/s in software vs ~1,000x more with NoCap.
        assert 1 <= cpu_pt.throughput_tps <= 10
        assert nocap_pt.throughput_tps > 100
        assert nocap_pt.throughput_tps > 50 * cpu_pt.throughput_tps
        assert nocap_pt.latency_s <= 1.0

    def test_database_latency_budget_respected(self):
        pt = database_throughput(prover_seconds, latency_budget_s=2.0)
        assert pt.latency_s <= 2.0


class TestOpCounts:
    def test_cpu_efficiency_identity(self):
        b = cpu_efficiency_breakdown()
        # 4.66 / 4.94 / (2.7/5.0) = 1.74x slower (Sec. III).
        assert b.net_slowdown_vs_groth16 == pytest.approx(1.74, abs=0.02)

    def test_mult_ratio(self):
        n = 16_000_000
        assert groth16_mul_count(n) / spartan_orion_mul_count(n) == \
            pytest.approx(4.94)

    def test_mul_count_scales_with_n(self):
        assert spartan_orion_mul_count(32_000_000) > \
            1.9 * spartan_orion_mul_count(16_000_000)


class TestUseCases:
    def test_photo_modification_claims(self):
        """Sec. I: 'over 12 minutes to prove on a CPU, but with NoCap a
        proof takes just over a second, and verification takes only 0.2
        seconds'."""
        uc = photo_modification()
        assert uc.cpu_prover_s > 12 * 60
        assert 0.5 < uc.nocap_prover_s < 2.5
        assert uc.verify_s == pytest.approx(0.2, abs=0.05)

    def test_dp_training_claims(self):
        """Sec. I: '100 hours of computation to less than 30 minutes'."""
        uc = dp_training_proof()
        assert uc.cpu_prover_s == pytest.approx(100 * 3600, rel=0.15)
        assert uc.nocap_total_s < 30 * 60


class TestTables:
    def test_format_table(self):
        out = format_table(["a", "b"], [("x", 1.5), ("y", 2.0)], "T")
        assert "T" in out and "a" in out and "x" in out
        assert out.count("\n") == 4

    def test_format_speedup(self):
        assert format_speedup(586.4) == "586x"
        assert format_speedup(7.4) == "7.4x"


class TestEstimate:
    def test_from_constraint_count(self):
        from repro.analysis import estimate

        est = estimate(16_000_000)
        assert est.padded_constraints == 1 << 24
        assert est.nocap_seconds == pytest.approx(0.148, abs=0.01)
        assert est.speedup_vs_cpu == pytest.approx(636, rel=0.05)
        assert "NoCap prover" in est.summary()

    def test_from_circuit(self):
        from repro.analysis import estimate
        from repro.r1cs import Circuit

        c = Circuit()
        out = c.public(36)
        x = c.witness(6)
        c.assert_equal(c.mul(x, x), out)
        est = estimate(c)
        assert est.raw_constraints == c.num_constraints
        assert est.nocap_seconds > 0

    def test_from_r1cs(self):
        from repro.analysis import estimate
        from repro.workloads import synthetic_r1cs

        r1cs, _, _ = synthetic_r1cs(10)
        est = estimate(r1cs)
        assert est.padded_constraints == 1 << 10

    def test_invalid(self):
        from repro.analysis import estimate

        with pytest.raises(ValueError):
            estimate(0)
