"""Tests for the radix-2 and four-step NTTs."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field import vector as fv
from repro.field.goldilocks import MODULUS
from repro.ntt import (
    FourStepStats,
    four_step_ntt,
    intt,
    next_pow2,
    ntt,
    ntt_slow,
    poly_eval_domain,
    poly_mul,
    primitive_root,
)

felt = st.integers(0, MODULUS - 1)


class TestRadix2:
    @pytest.mark.parametrize("log_n", [0, 1, 2, 4, 8, 12])
    def test_roundtrip(self, log_n, rng):
        x = fv.rand_vector(1 << log_n, rng)
        assert (intt(ntt(x)) == x).all()
        assert (ntt(intt(x)) == x).all()

    @pytest.mark.parametrize("log_n", [1, 3, 6])
    def test_matches_quadratic_oracle(self, log_n, rng):
        x = fv.rand_vector(1 << log_n, rng)
        assert (ntt(x) == ntt_slow(x)).all()
        assert (intt(x) == ntt_slow(x, inverse=True)).all()

    def test_linearity(self, rng):
        a = fv.rand_vector(64, rng)
        b = fv.rand_vector(64, rng)
        assert (ntt(fv.add(a, b)) == fv.add(ntt(a), ntt(b))).all()

    def test_constant_input(self):
        x = fv.full(16, 7)
        y = ntt(x)
        # NTT of a constant: only the DC term is non-zero.
        assert int(y[0]) == 7 * 16 % MODULUS
        assert (y[1:] == 0).all()

    def test_delta_input(self):
        x = fv.zeros(8)
        x[0] = 1
        assert (ntt(x) == 1).all()

    def test_evaluation_semantics(self, rng):
        # ntt(coeffs)[k] = poly(w^k) in natural order.
        coeffs = fv.rand_vector(8, rng)
        w = primitive_root(8)
        out = ntt(coeffs)
        for k in range(8):
            x = pow(w, k, MODULUS)
            want = 0
            for i, c in enumerate(coeffs):
                want = (want + int(c) * pow(x, i, MODULUS)) % MODULUS
            assert int(out[k]) == want

    def test_batched_2d(self, rng):
        mat = fv.rand_vector(4 * 32, rng).reshape(4, 32)
        batched = ntt(mat)
        for i in range(4):
            assert (batched[i] == ntt(mat[i])).all()

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            ntt(fv.zeros(12))

    def test_input_not_mutated(self, rng):
        x = fv.rand_vector(32, rng)
        copy = x.copy()
        ntt(x)
        assert (x == copy).all()


class TestFourStep:
    @pytest.mark.parametrize("log_n,base", [(8, 16), (10, 64), (14, 64),
                                            (13, 4096), (6, 64)])
    def test_matches_radix2(self, log_n, base, rng):
        x = fv.rand_vector(1 << log_n, rng)
        assert (four_step_ntt(x, base_size=base) == ntt(x)).all()

    @pytest.mark.parametrize("log_n,base", [(10, 64), (14, 64)])
    def test_inverse_matches(self, log_n, base, rng):
        x = fv.rand_vector(1 << log_n, rng)
        assert (four_step_ntt(x, inverse=True, base_size=base) == intt(x)).all()

    def test_stats_collection(self, rng):
        x = fv.rand_vector(1 << 12, rng)
        stats = FourStepStats()
        four_step_ntt(x, base_size=64, stats=stats)
        assert stats.levels >= 1
        assert stats.base_ntt_elements >= x.size
        assert stats.twiddle_multiplies == x.size  # one twiddle pass per level here
        assert stats.offchip_transpose_elements == 0  # fits in the RF

    def test_small_input_single_pass(self, rng):
        x = fv.rand_vector(64, rng)
        stats = FourStepStats()
        four_step_ntt(x, base_size=4096, stats=stats)
        assert stats.levels == 0
        assert stats.twiddle_multiplies == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            four_step_ntt(fv.zeros(8).reshape(2, 4))


class TestPolyMul:
    @given(st.lists(felt, min_size=1, max_size=20),
           st.lists(felt, min_size=1, max_size=20))
    def test_matches_schoolbook(self, a, b):
        ref = [0] * (len(a) + len(b) - 1)
        for i, x in enumerate(a):
            for j, y in enumerate(b):
                ref[i + j] = (ref[i + j] + x * y) % MODULUS
        got = poly_mul(np.array(a, dtype=np.uint64), np.array(b, dtype=np.uint64))
        assert got.tolist() == ref

    def test_empty_operand(self):
        assert poly_mul(np.zeros(0, dtype=np.uint64), fv.ones(3)).size == 0

    def test_identity(self, rng):
        a = fv.rand_vector(17, rng)
        one = np.array([1], dtype=np.uint64)
        assert (poly_mul(a, one) == a).all()

    def test_next_pow2(self):
        assert [next_pow2(n) for n in (0, 1, 2, 3, 4, 5, 1023, 1024, 1025)] == \
            [1, 1, 2, 4, 4, 8, 1024, 1024, 2048]

    def test_poly_eval_domain_zero_pads(self, rng):
        coeffs = fv.rand_vector(8, rng)
        out = poly_eval_domain(coeffs, 32)
        padded = np.zeros(32, dtype=np.uint64)
        padded[:8] = coeffs
        assert (out == ntt(padded)).all()

    def test_poly_eval_domain_too_small_rejected(self, rng):
        with pytest.raises(ValueError):
            poly_eval_domain(fv.rand_vector(8, rng), 4)
