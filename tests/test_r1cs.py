"""Tests for sparse matrices, R1CS systems, and the circuit builder."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field import vector as fv
from repro.field.goldilocks import MODULUS, inv
from repro.r1cs import Circuit, R1CS, SparseMatrix, pad_r1cs

felt = st.integers(0, MODULUS - 1)


class TestSparseMatrix:
    def test_matvec_matches_dense(self, rng):
        n = 32
        entries = [(int(r), int(c), int(v)) for r, c, v in zip(
            rng.integers(0, n, 100), rng.integers(0, n, 100),
            fv.rand_vector(100, rng))]
        m = SparseMatrix.from_entries(n, n, entries)
        x = fv.rand_vector(n, rng)
        dense = m.to_dense()
        want = [(sum(int(dense[i, j]) * int(x[j]) for j in range(n))) % MODULUS
                for i in range(n)]
        assert m.matvec(x).tolist() == want

    def test_duplicate_entries_sum(self):
        m = SparseMatrix.from_entries(2, 2, [(0, 0, 3), (0, 0, 4)])
        x = np.array([1, 0], dtype=np.uint64)
        assert m.matvec(x).tolist() == [7, 0]

    def test_cancelled_entries_dropped(self):
        m = SparseMatrix.from_entries(2, 2, [(0, 0, 3), (0, 0, MODULUS - 3)])
        assert m.nnz == 0

    def test_matvec_exactness_near_modulus(self):
        # Row of many max-value products: exercises the split-accumulate path.
        n = 1000
        entries = [(0, j, MODULUS - 1) for j in range(n)]
        m = SparseMatrix.from_entries(1, n, entries)
        x = np.full(n, MODULUS - 1, dtype=np.uint64)
        want = n * (MODULUS - 1) * (MODULUS - 1) % MODULUS
        assert int(m.matvec(x)[0]) == want

    def test_transpose_matvec(self, rng):
        m = SparseMatrix.from_entries(4, 6, [(0, 1, 2), (3, 5, 7), (2, 0, 1)])
        x = fv.rand_vector(4, rng)
        dense = m.to_dense()
        want = [(sum(int(dense[i, j]) * int(x[i]) for i in range(4))) % MODULUS
                for j in range(6)]
        assert m.transpose_matvec(x).tolist() == want

    def test_out_of_bounds_entry_rejected(self):
        with pytest.raises(IndexError):
            SparseMatrix.from_entries(2, 2, [(2, 0, 1)])

    def test_shape_mismatch_rejected(self, rng):
        m = SparseMatrix.from_entries(2, 3, [(0, 0, 1)])
        with pytest.raises(ValueError):
            m.matvec(fv.rand_vector(2, rng))

    def test_pad_to(self):
        m = SparseMatrix.from_entries(2, 2, [(1, 1, 5)])
        p = m.pad_to(8, 8)
        assert p.num_rows == 8 and p.nnz == 1
        with pytest.raises(ValueError):
            p.pad_to(4, 4)

    def test_bandwidth(self):
        m = SparseMatrix.from_entries(8, 8, [(0, 0, 1), (3, 5, 1)])
        assert m.bandwidth() == 2
        assert SparseMatrix(2, 2).bandwidth() == 0


class TestR1CSSystem:
    def _tiny(self):
        c = Circuit()
        out = c.public(6)
        a = c.witness(2)
        b = c.witness(3)
        c.assert_equal(c.mul(a, b), out)
        return c.compile()

    def test_satisfied(self):
        r1cs, pub, wit = self._tiny()
        assert r1cs.is_satisfied(r1cs.assemble_z(pub, wit))

    def test_wrong_witness_rejected(self):
        r1cs, pub, wit = self._tiny()
        bad = wit.copy()
        bad[0] = 5
        assert not r1cs.is_satisfied(r1cs.assemble_z(pub, bad))

    def test_assemble_z_layout(self):
        r1cs, pub, wit = self._tiny()
        z = r1cs.assemble_z(pub, wit)
        half = r1cs.shape.half
        assert int(z[0]) == 1
        assert z[len(pub):half].tolist() == [0] * (half - len(pub))
        assert z[half:half + len(wit)].tolist() == wit.tolist()

    def test_assemble_z_validates(self):
        r1cs, pub, wit = self._tiny()
        with pytest.raises(ValueError):
            r1cs.assemble_z(pub[:-1], wit)
        bad_pub = pub.copy()
        bad_pub[0] = 2
        with pytest.raises(ValueError):
            r1cs.assemble_z(bad_pub, wit)

    def test_products_consistency(self, rng):
        r1cs, pub, wit = self._tiny()
        z = r1cs.assemble_z(pub, wit)
        az, bz, cz = r1cs.products(z)
        assert (fv.mul(az, bz) == cz).all()

    def test_padding_is_power_of_two_square(self):
        r1cs, _, _ = self._tiny()
        n = r1cs.shape.num_constraints
        assert n & (n - 1) == 0
        assert r1cs.a.num_rows == r1cs.a.num_cols == n

    def test_non_square_rejected(self):
        a = SparseMatrix.from_entries(4, 8, [])
        with pytest.raises(ValueError):
            R1CS(a, a, a, 1, 1)


class TestBuilderGadgets:
    def test_boolean_truth_tables(self):
        for av in (0, 1):
            for bv in (0, 1):
                c = Circuit()
                a, b = c.witness(av), c.witness(bv)
                c.assert_bool(a)
                c.assert_bool(b)
                assert c.xor(a, b).value == av ^ bv
                assert c.and_(a, b).value == av & bv
                assert c.or_(a, b).value == av | bv
                assert c.not_(a).value == 1 - av
                r1cs, pub, wit = c.compile()
                assert r1cs.is_satisfied(r1cs.assemble_z(pub, wit))

    def test_select(self):
        c = Circuit()
        cond = c.witness(1)
        assert c.select(cond, c.constant(10), c.constant(20)).value == 10
        cond0 = c.witness(0)
        assert c.select(cond0, c.constant(10), c.constant(20)).value == 20

    @pytest.mark.parametrize("value,width", [(0, 1), (1, 1), (5, 3), (255, 8),
                                             (256, 9), (2**32 - 1, 32)])
    def test_to_from_bits(self, value, width):
        c = Circuit()
        x = c.witness(value)
        bits = c.to_bits(x, width)
        assert [b.value for b in bits] == [(value >> i) & 1 for i in range(width)]
        assert c.from_bits(bits).value == value
        r1cs, pub, wit = c.compile()
        assert r1cs.is_satisfied(r1cs.assemble_z(pub, wit))

    def test_to_bits_overflow_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.to_bits(c.witness(8), 3)

    def test_is_zero(self):
        c = Circuit()
        assert c.is_zero(c.witness(0)).value == 1
        assert c.is_zero(c.witness(7)).value == 0
        r1cs, pub, wit = c.compile()
        assert r1cs.is_satisfied(r1cs.assemble_z(pub, wit))

    def test_assert_nonzero(self):
        c = Circuit()
        invw = c.assert_nonzero(c.witness(4))
        assert invw.value == inv(4)
        with pytest.raises(ValueError):
            c.assert_nonzero(c.witness(0))

    @pytest.mark.parametrize("a,b,width,expect", [
        (3, 7, 8, 1), (7, 3, 8, 0), (5, 5, 8, 0), (0, 1, 4, 1),
        (255, 0, 8, 0), (0, 255, 8, 1)])
    def test_less_than(self, a, b, width, expect):
        c = Circuit()
        got = c.less_than(c.witness(a), c.witness(b), width)
        assert got.value == expect
        r1cs, pub, wit = c.compile()
        assert r1cs.is_satisfied(r1cs.assemble_z(pub, wit))

    def test_lookup(self):
        table = [(7 * i + 3) % 256 for i in range(256)]
        c = Circuit()
        y = c.lookup(c.witness(99), table)
        assert y.value == table[99]
        r1cs, pub, wit = c.compile()
        assert r1cs.is_satisfied(r1cs.assemble_z(pub, wit))

    def test_lookup_bad_table(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.lookup(c.witness(0), [1, 2, 3], width=8)

    def test_linear_ops_free(self):
        c = Circuit()
        x = c.witness(3)
        before = c.num_constraints
        _ = x + 5 - x * 2 + (7 * x)
        assert c.num_constraints == before  # linear combos cost nothing

    def test_mul_by_constant_free(self):
        c = Circuit()
        x = c.witness(3)
        before = c.num_constraints
        y = x * c.constant(4)
        assert y.value == 12
        assert c.num_constraints == before

    def test_public_after_witness_rejected(self):
        c = Circuit()
        c.witness(1)
        with pytest.raises(RuntimeError):
            c.public(2)

    def test_enforce_manual(self):
        c = Circuit()
        x = c.witness(4)
        c.enforce(x, x, 16)
        r1cs, pub, wit = c.compile()
        assert r1cs.is_satisfied(r1cs.assemble_z(pub, wit))

    def test_unsatisfied_constraint_detected(self):
        c = Circuit()
        x = c.witness(4)
        c.enforce(x, x, 17)  # wrong on purpose
        r1cs, pub, wit = c.compile()
        assert not r1cs.is_satisfied(r1cs.assemble_z(pub, wit))

    @given(felt, felt)
    def test_mul_gadget_matches_field(self, a, b):
        c = Circuit()
        got = c.mul(c.witness(a), c.witness(b)).value
        assert got == a * b % MODULUS
