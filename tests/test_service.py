"""End-to-end tests for the proving service (daemon, queue, caches,
client) over a real unix socket.

The daemon runs in-process on a background thread's event loop — real
frames, real sockets, real executor threads — so these tests exercise
the exact dispatch path ``repro serve`` uses while keeping direct access
to the :class:`~repro.service.server.ProvingService` internals (to plug
the executor for deterministic backpressure, and to arm ``REPRO_FAULTS``
plans the worker thread will see).
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    ConfigError,
    DeserializationError,
    ProverTimeoutError,
)
from repro.service import (
    BoundedJobQueue,
    ProvingService,
    QueueFullError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    proof_cache_key,
    protocol,
)
from repro.service.cache import LRUBytesCache


# ---------------------------------------------------------------------------
# Harness: run a ProvingService on a background event-loop thread
# ---------------------------------------------------------------------------

class _LiveService:
    """A started service plus the loop thread driving it."""

    def __init__(self, service, loop, thread):
        self.service = service
        self.loop = loop
        self.thread = thread

    @property
    def address(self):
        return self.service.address

    def stop(self, timeout=30.0):
        if not self.service._stopping:
            asyncio.run_coroutine_threadsafe(
                self.service.stop(), self.loop).result(timeout)
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "service loop thread leaked"


@contextlib.contextmanager
def running_service(sock_path, **overrides):
    overrides.setdefault("unix_socket", str(sock_path))
    overrides.setdefault("preset", "test-fast")
    config = ServiceConfig(**overrides)
    service = ProvingService(config)
    started = threading.Event()

    async def _main():
        await service.start()
        started.set()
        await service._stopped.wait()

    loop = asyncio.new_event_loop()

    def _run():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(_main())
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="svc-loop", daemon=True)
    thread.start()
    assert started.wait(15), "service failed to start"
    live = _LiveService(service, loop, thread)
    try:
        yield live
    finally:
        live.stop()


@pytest.fixture
def sock_path(tmp_path):
    return str(tmp_path / "repro.sock")


# ---------------------------------------------------------------------------
# Queue unit tests (bounds, priority, fairness)
# ---------------------------------------------------------------------------

class TestBoundedJobQueue:
    def _drain(self, q, n):
        async def pop():
            return [await q.get() for _ in range(n)]
        return asyncio.run(pop())

    def test_depth_bound_rejects(self):
        q = BoundedJobQueue(max_depth=2, max_per_client=8)
        q.put("a", client="c1")
        q.put("b", client="c2")
        with pytest.raises(QueueFullError, match="queue full"):
            q.put("c", client="c3")
        assert q.rejected_full == 1 and len(q) == 2

    def test_per_client_cap_rejects(self):
        q = BoundedJobQueue(max_depth=16, max_per_client=2)
        q.put("a", client="greedy")
        q.put("b", client="greedy")
        with pytest.raises(QueueFullError, match="cap 2"):
            q.put("c", client="greedy")
        q.put("d", client="polite")  # other clients unaffected
        assert q.rejected_client == 1

    def test_priority_order(self):
        q = BoundedJobQueue()
        q.put("normal", priority=0, client="a")
        q.put("urgent", priority=-1, client="b")
        q.put("batch", priority=5, client="c")
        assert self._drain(q, 3) == ["urgent", "normal", "batch"]

    def test_fair_interleave_across_clients(self):
        """A 3-job burst from one client must not park another client's
        single job behind the whole burst."""
        q = BoundedJobQueue()
        q.put("h1", client="hog")
        q.put("h2", client="hog")
        q.put("h3", client="hog")
        q.put("solo", client="other")
        order = self._drain(q, 4)
        assert order.index("solo") < order.index("h2")

    def test_caps_released_after_get(self):
        q = BoundedJobQueue(max_depth=16, max_per_client=1)
        q.put("a", client="c")
        assert self._drain(q, 1) == ["a"]
        q.put("b", client="c")  # cap counts queued, not lifetime


# ---------------------------------------------------------------------------
# Cache unit tests
# ---------------------------------------------------------------------------

class TestLRUBytesCache:
    def test_evicts_lru_by_bytes(self):
        c = LRUBytesCache(max_bytes=100, label="t")
        c.put("a", "A", 40)
        c.put("b", "B", 40)
        assert c.get("a") == "A"       # refresh a
        c.put("c", "C", 40)            # evicts b (LRU)
        assert c.get("b") is None
        assert c.get("a") == "A" and c.get("c") == "C"
        assert c.evictions == 1

    def test_oversized_value_skipped(self):
        c = LRUBytesCache(max_bytes=10, label="t")
        c.put("big", "x", 1000)
        assert c.get("big") is None

    def test_peek_counts_nothing(self):
        c = LRUBytesCache(max_bytes=100, label="t")
        c.put("k", "v", 1)
        hits, misses = c.hits, c.misses
        assert c.peek("k") == "v" and c.peek("nope") is None
        assert (c.hits, c.misses) == (hits, misses)

    def test_proof_cache_key_separates_inputs(self):
        import numpy as np

        pub = np.arange(4, dtype=np.uint64)
        base = proof_cache_key("test-fast", "sha", pub, 1)
        assert base == proof_cache_key("test-fast", "sha", pub, 1)
        assert base != proof_cache_key("test-fast", "sha", pub, 2)
        assert base != proof_cache_key("test-fast", "sha", pub, None)
        assert base != proof_cache_key("test-fast", "aes", pub, 1)
        assert base != proof_cache_key("paper-128bit", "sha", pub, 1)


# ---------------------------------------------------------------------------
# End-to-end over the unix socket
# ---------------------------------------------------------------------------

class TestServiceEndToEnd:
    def test_mixed_jobs_roundtrip(self, sock_path):
        """Mixed prove/verify jobs through the live daemon; the proved
        envelope verifies both through the service and locally."""
        with running_service(sock_path) as live:
            with ServiceClient(sock_path) as svc:
                pong = svc.ping()
                assert pong["version"] == protocol.PROTOCOL_VERSION

                env_a = svc.prove("litmus", seed=7)
                env_b = svc.prove("sha", seed=3)
                assert env_a[:4] == b"NCPE" and env_b[:4] == b"NCPE"
                assert svc.verify(env_a)
                assert svc.verify(env_b)

                # The service envelope is a plain NCPE bundle: the local
                # lifecycle API accepts it unchanged.
                from repro import ProofBundle, setup, verify
                from repro.snark import preset_by_name
                from repro.workloads.registry import build_workload

                _, circuit = build_workload("litmus")
                r1cs, _, _ = circuit.compile()
                _, vk = setup(r1cs, preset_by_name("test-fast"))
                assert verify(vk, ProofBundle.from_bytes(env_a))

                stats = svc.stats()
                assert stats["jobs_done"] >= 4
                assert stats["jobs_failed"] == 0
            assert live.service._jobs_failed == 0

    def test_status_lifecycle_and_unknown_job(self, sock_path):
        with running_service(sock_path) as live:
            with ServiceClient(sock_path) as svc:
                job_id = svc.submit("prove", circuit_id="litmus", seed=1)
                result = svc.result(job_id, wait_s=60)
                assert result["state"] == "done"
                status = svc.status(job_id)
                assert status["state"] == "done"
                assert status["circuit_id"] == "litmus"
                assert "run_s" in status
                with pytest.raises(ServiceError) as ei:
                    svc.status("svc-999999")
                assert ei.value.code == protocol.E_NOT_FOUND
            del live

    def test_backpressure_and_fairness_caps(self, sock_path):
        """With the lone executor slot plugged, submissions past the
        bounds are rejected with the typed 429 — distinct messages for
        queue-full vs per-client — and drain once the slot frees."""
        with running_service(sock_path, queue_depth=4,
                             max_per_client=2) as live:
            release = threading.Event()
            service = live.service
            real_run_job = service._run_job

            def plugged_run_job(job, loop):
                release.wait(30)
                real_run_job(job, loop)

            service._run_job = plugged_run_job
            try:
                with ServiceClient(sock_path, client_id="hog") as hog, \
                        ServiceClient(sock_path, client_id="bee") as bee, \
                        ServiceClient(sock_path, client_id="cat") as cat:
                    first = hog.submit("prove", circuit_id="litmus", seed=1)
                    # Wait for the dispatcher to pop it into the plugged
                    # executor so queue occupancy is deterministic.
                    deadline = time.monotonic() + 10
                    while hog.status(first)["state"] != "running":
                        assert time.monotonic() < deadline
                        time.sleep(0.01)

                    hog.submit("prove", circuit_id="litmus", seed=2)
                    hog.submit("prove", circuit_id="litmus", seed=3)
                    # hog now has 2 queued = its fairness cap (depth 2/4).
                    with pytest.raises(QueueFullError, match="cap 2"):
                        hog.submit("prove", circuit_id="litmus", seed=4)
                    # bee fills the remaining global depth.
                    bee.submit("prove", circuit_id="litmus", seed=5)
                    bee.submit("prove", circuit_id="litmus", seed=6)
                    # cat is under its own cap, but the queue (depth 4)
                    # is full: global backpressure.
                    with pytest.raises(QueueFullError, match="queue full"):
                        cat.submit("prove", circuit_id="litmus", seed=7)

                    qstats = cat.stats()["queue"]
                    assert qstats["rejected_client"] == 1
                    assert qstats["rejected_full"] == 1
                    assert qstats["depth"] == 4

                    release.set()
                    done = hog.result(first, wait_s=60)
                    assert done["state"] == "done"
            finally:
                release.set()

    def test_proof_cache_hits_byte_identical(self, sock_path):
        with running_service(sock_path) as live:
            with ServiceClient(sock_path) as svc:
                first = svc.prove("litmus", seed=11)
                again = svc.prove("litmus", seed=11)
                assert again == first  # byte-identical envelope

                # Unseeded repeats dedup to the first proof's bytes too
                # (seed-absence is part of the content address).
                free_a = svc.prove("litmus")
                free_b = svc.prove("litmus")
                assert free_a == free_b
                assert free_a != first

                stats = svc.stats()
                assert stats["proof_cache"]["hits"] >= 2
                assert stats["pk_cache"]["entries"] == 1  # keys built once
            del live

    def test_cached_submit_skips_queue(self, sock_path):
        """A submit whose proof is already cached is answered at
        admission time: the job is born done and flagged cached."""
        with running_service(sock_path) as live:
            with ServiceClient(sock_path) as svc:
                svc.prove("litmus", seed=5)
                enqueued_before = live.service.queue.enqueued
                job_id = svc.submit("prove", circuit_id="litmus", seed=5)
                status = svc.status(job_id)
                assert status["state"] == "done" and status["cached"]
                assert live.service.queue.enqueued == enqueued_before

    def test_fault_surfaces_as_typed_error_not_hang(self, sock_path):
        """An injected mid-job fault (`REPRO_FAULTS`) becomes a typed
        job error on the client — never a hung `result` call."""
        from repro.fuzz import faults

        plan = faults.FaultPlan(kind="error", site="service_job",
                                token="svc-test")
        with running_service(sock_path) as live:
            with faults.injected(plan):
                with ServiceClient(sock_path) as svc:
                    job_id = svc.submit("prove", circuit_id="litmus",
                                        seed=23)
                    t0 = time.monotonic()
                    with pytest.raises(ServiceError) as ei:
                        svc.result(job_id, wait_s=60)
                    assert time.monotonic() - t0 < 30
                    assert "injected fault" in str(ei.value)
                    assert ei.value.code == protocol.E_INTERNAL
                    status = svc.status(job_id)
                    assert status["state"] == "failed"
                    assert status["error"] == "RuntimeError"
                    # The daemon survived: the next job runs clean (the
                    # one-shot plan has already fired).
                    assert svc.prove("litmus", seed=24)[:4] == b"NCPE"
            assert live.service._jobs_failed == 1

    def test_job_timeout_is_typed(self, sock_path):
        """A hopeless per-job deadline comes back as ProverTimeoutError
        (exit code 6 through the CLI), not a hang."""
        with running_service(sock_path) as live:
            with ServiceClient(sock_path) as svc:
                job_id = svc.submit("prove", circuit_id="sha", seed=77,
                                    timeout_s=1e-4)
                with pytest.raises(ProverTimeoutError):
                    svc.result(job_id, wait_s=60)
                assert svc.status(job_id)["error"] == "ProverTimeoutError"
            del live

    def test_bad_requests_are_typed(self, sock_path):
        with running_service(sock_path):
            with ServiceClient(sock_path) as svc:
                with pytest.raises(ServiceError) as ei:
                    svc.request({"op": "frobnicate"})
                assert ei.value.code == protocol.E_BAD_REQUEST
                with pytest.raises(ConfigError):
                    svc.submit("prove", circuit_id="no-such-workload")
                with pytest.raises(ConfigError):
                    svc.submit("prove", circuit_id="litmus",
                               preset="no-such-preset")
                with pytest.raises(ServiceError):
                    svc.submit("prove")  # missing circuit_id
                with pytest.raises(ServiceError):
                    svc.submit("verify")  # missing envelope
                with pytest.raises(ServiceError):
                    svc.submit("transmute", circuit_id="litmus")
                with pytest.raises(DeserializationError):
                    svc.verify(b"NCPEgarbage")  # parse error crosses wire

    def test_malformed_frames_answered_then_dropped(self, sock_path):
        with running_service(sock_path):
            # Oversized length prefix: typed 413, then the server hangs up.
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.settimeout(10)
            raw.connect(sock_path)
            raw.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
            response = protocol.read_frame_sync(raw)
            assert response["ok"] is False
            assert response["code"] == protocol.E_TOO_LARGE
            assert protocol.read_frame_sync(raw) is None  # connection gone
            raw.close()

            # Non-JSON payload: typed 400, connection also dropped.
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.settimeout(10)
            raw.connect(sock_path)
            body = b"\xffnot json\xff"
            raw.sendall(struct.pack(">I", len(body)) + body)
            response = protocol.read_frame_sync(raw)
            assert response["ok"] is False
            assert response["code"] == protocol.E_BAD_REQUEST
            assert protocol.read_frame_sync(raw) is None
            raw.close()

            # The daemon shrugged it all off: a clean client still works.
            with ServiceClient(sock_path) as svc:
                assert svc.ping()["ok"]

    def test_shutdown_fails_queued_jobs_typed(self, sock_path):
        """In-band shutdown: queued-but-unstarted jobs fail with the
        503-style typed error instead of leaving clients polling."""
        with running_service(sock_path, queue_depth=8) as live:
            release = threading.Event()
            service = live.service
            real_run_job = service._run_job

            def plugged_run_job(job, loop):
                release.wait(30)
                real_run_job(job, loop)

            service._run_job = plugged_run_job
            try:
                with ServiceClient(sock_path) as svc:
                    running = svc.submit("prove", circuit_id="litmus",
                                         seed=1)
                    deadline = time.monotonic() + 10
                    while svc.status(running)["state"] != "running":
                        assert time.monotonic() < deadline
                        time.sleep(0.01)
                    queued = svc.submit("prove", circuit_id="litmus",
                                        seed=2)
                    svc.shutdown_server()
                    release.set()
            finally:
                release.set()
            live.stop()
            job = live.service.jobs[queued]
            assert job.state == "failed"
            assert isinstance(job.error, ServiceError)
            assert job.error.code == protocol.E_SHUTTING_DOWN
            # The running job was allowed to finish, not dropped.
            assert live.service.jobs[running].state == "done"

    def test_unix_socket_unlinked_on_stop(self, sock_path):
        import os

        with running_service(sock_path):
            assert os.path.exists(sock_path)
        assert not os.path.exists(sock_path)


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------

class TestServiceConfig:
    def test_job_slots_must_be_positive(self):
        with pytest.raises(ConfigError):
            ServiceConfig(job_slots=0)

    def test_pool_fanout_forces_single_slot(self):
        with pytest.raises(ConfigError, match="job_slots must be 1"):
            ServiceConfig(job_slots=2, workers=4)
        ServiceConfig(job_slots=2, workers=1)  # serial jobs may overlap
        ServiceConfig(job_slots=1, workers=4)  # pool is the parallelism


# ---------------------------------------------------------------------------
# CLI surface for serve/client
# ---------------------------------------------------------------------------

class TestServeClientParsers:
    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.port == 7464 and args.host == "127.0.0.1"
        assert args.queue_depth == 64 and args.max_per_client == 16
        assert args.job_slots == 1 and args.preset == "test-fast"

    def test_client_shares_connect_vocabulary(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["client", "prove", "sha", "--unix-socket", "/tmp/x.sock",
             "--seed", "9", "--preset", "test-fast"])
        assert args.unix_socket == "/tmp/x.sock"
        assert args.action == "prove" and args.workload == "sha"
        assert args.seed == 9

    def test_exit_code_table_documented(self):
        from repro.cli import EXIT_CODE_TABLE, build_parser

        for code in ("0", "3", "4", "5", "6"):
            assert code in EXIT_CODE_TABLE
        help_text = build_parser().format_help()
        assert "exit codes" in help_text.lower()
