"""Tests for field hashing, Merkle trees, and the Fiat-Shamir transcript."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field import vector as fv
from repro.field.goldilocks import MODULUS
from repro.hashing import (
    DIGEST_BYTES,
    MerkleTree,
    Transcript,
    elements_to_words,
    hash_elements,
    hash_pair,
    verify_column,
    verify_path,
)


class TestFieldHash:
    def test_word_packing(self):
        elems = np.arange(8, dtype=np.uint64)
        words = elements_to_words(elems)
        assert len(words) == 2
        assert all(len(w) == DIGEST_BYTES for w in words)
        # little-endian u64 packing
        assert words[0][:8] == (0).to_bytes(8, "little")
        assert words[1][:8] == (4).to_bytes(8, "little")

    def test_word_packing_pads_tail(self):
        words = elements_to_words(np.array([1, 2, 3, 4, 5], dtype=np.uint64))
        assert len(words) == 2
        assert words[1][8:] == b"\x00" * 24

    def test_hash_elements_deterministic(self, rng):
        v = fv.rand_vector(16, rng)
        assert hash_elements(v) == hash_elements(v.copy())

    def test_hash_elements_sensitive(self, rng):
        v = fv.rand_vector(16, rng)
        w = v.copy()
        w[7] ^= np.uint64(1)
        assert hash_elements(v) != hash_elements(w)

    def test_hash_pair_is_sha3(self):
        import hashlib

        a, b = b"x" * 32, b"y" * 32
        assert hash_pair(a, b) == hashlib.sha3_256(a + b).digest()


class TestMerkle:
    def test_single_leaf(self):
        t = MerkleTree([b"\x01" * 32])
        assert t.depth == 0
        assert verify_path(t.root, b"\x01" * 32, t.open(0))

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 17])
    def test_open_verify_all_leaves(self, n):
        leaves = [bytes([i]) * 32 for i in range(n)]
        t = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert verify_path(t.root, leaf, t.open(i)), i

    def test_wrong_leaf_rejected(self):
        leaves = [bytes([i]) * 32 for i in range(8)]
        t = MerkleTree(leaves)
        path = t.open(3)
        assert not verify_path(t.root, leaves[4], path)

    def test_wrong_index_rejected(self):
        leaves = [bytes([i]) * 32 for i in range(8)]
        t = MerkleTree(leaves)
        path = t.open(3)
        path.index = 5
        assert not verify_path(t.root, leaves[3], path)

    def test_tampered_sibling_rejected(self):
        leaves = [bytes([i]) * 32 for i in range(8)]
        t = MerkleTree(leaves)
        path = t.open(2)
        path.siblings[1] = b"\xff" * 32
        assert not verify_path(t.root, leaves[2], path)

    def test_out_of_range_open(self):
        t = MerkleTree([b"\x00" * 32] * 4)
        with pytest.raises(IndexError):
            t.open(4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_from_columns(self, rng):
        mat = fv.rand_vector(8 * 16, rng).reshape(8, 16)
        t = MerkleTree.from_columns(mat)
        assert t.num_leaves == 16
        for j in range(16):
            assert verify_column(t.root, mat[:, j], t.open(j))
        # A tampered column fails.
        bad = mat[:, 3].copy()
        bad[0] ^= np.uint64(1)
        assert not verify_column(t.root, bad, t.open(3))

    def test_total_hashes(self):
        t = MerkleTree([bytes([i]) * 32 for i in range(8)])
        # 4 + 2 + 1 internal hash layers.
        assert t.total_hashes() == 7

    def test_root_depends_on_order(self):
        a = [bytes([i]) * 32 for i in range(4)]
        t1 = MerkleTree(a)
        t2 = MerkleTree(list(reversed(a)))
        assert t1.root != t2.root


class TestTranscript:
    def test_deterministic(self):
        t1, t2 = Transcript(), Transcript()
        for t in (t1, t2):
            t.absorb_field(b"x", 42)
        assert t1.challenge_field(b"c") == t2.challenge_field(b"c")

    def test_absorption_changes_challenges(self):
        t1, t2 = Transcript(), Transcript()
        t1.absorb_field(b"x", 42)
        t2.absorb_field(b"x", 43)
        assert t1.challenge_field(b"c") != t2.challenge_field(b"c")

    def test_label_separation(self):
        t1, t2 = Transcript(), Transcript()
        t1.absorb_bytes(b"a", b"xy")
        t2.absorb_bytes(b"ax", b"y")
        assert t1.challenge_field(b"c") != t2.challenge_field(b"c")

    def test_challenges_in_field(self):
        t = Transcript()
        for c in t.challenge_fields(b"many", 100):
            assert 0 <= c < MODULUS

    def test_sequential_challenges_differ(self):
        t = Transcript()
        a = t.challenge_field(b"c")
        b = t.challenge_field(b"c")
        assert a != b

    def test_challenge_vector_matches_fields(self):
        t1, t2 = Transcript(), Transcript()
        v = t1.challenge_vector(b"v", 5)
        f = t2.challenge_fields(b"v", 5)
        assert v.tolist() == f

    def test_indices_distinct_and_bounded(self):
        t = Transcript()
        idx = t.challenge_indices(b"q", 50, 1000)
        assert len(idx) == 50
        assert len(set(idx)) == 50
        assert all(0 <= i < 1000 for i in idx)

    def test_indices_small_domain_returns_all(self):
        t = Transcript()
        assert t.challenge_indices(b"q", 50, 10) == list(range(10))

    def test_indices_bad_bound(self):
        with pytest.raises(ValueError):
            Transcript().challenge_indices(b"q", 5, 0)

    def test_fork_independence(self):
        t = Transcript()
        t.absorb_field(b"x", 1)
        f1 = t.fork(b"a")
        f2 = t.fork(b"b")
        assert f1.challenge_field(b"c") != f2.challenge_field(b"c")
        # Forking does not disturb the parent.
        t2 = Transcript()
        t2.absorb_field(b"x", 1)
        assert t.challenge_field(b"c") == t2.challenge_field(b"c")

    def test_absorb_array_matches_fields(self, rng):
        v = fv.rand_vector(8, rng)
        t1, t2 = Transcript(), Transcript()
        t1.absorb_array(b"v", v)
        t2.absorb_bytes(b"v", v.astype("<u8").tobytes())
        assert t1.challenge_field(b"c") == t2.challenge_field(b"c")


class TestKeccakFromScratch:
    """The from-scratch SHA3 (what the Hash FU computes) vs hashlib."""

    @pytest.mark.parametrize("msg", [b"", b"abc", b"a" * 135, b"a" * 136,
                                     b"a" * 137, bytes(range(200))])
    def test_matches_hashlib(self, msg):
        import hashlib

        from repro.hashing.keccak import sha3_256 as scratch

        assert scratch(msg) == hashlib.sha3_256(msg).digest()

    def test_permutation_shape_check(self):
        from repro.hashing.keccak import keccak_f1600

        with pytest.raises(ValueError):
            keccak_f1600([0] * 24)

    def test_permutation_changes_state(self):
        from repro.hashing.keccak import keccak_f1600

        out = keccak_f1600([0] * 25)
        assert out != [0] * 25
        # Deterministic.
        assert keccak_f1600([0] * 25) == out


class TestMerkleMultiProof:
    def _tree(self, n=37):
        leaves = [bytes([i]) * 32 for i in range(n)]
        return leaves, MerkleTree(leaves)

    def test_roundtrip_random_subsets(self, pyrng):
        from repro.hashing.merkle import open_many, verify_many

        leaves, tree = self._tree()
        for _ in range(10):
            idxs = sorted(set(pyrng.randrange(37)
                              for _ in range(pyrng.randrange(1, 10))))
            proof = open_many(tree, idxs)
            digests = [leaves[i] for i in proof.indices]
            assert verify_many(tree.root, digests, proof, tree.num_leaves)

    def test_single_leaf_equals_path(self):
        from repro.hashing.merkle import open_many, verify_many

        leaves, tree = self._tree(8)
        proof = open_many(tree, [3])
        assert verify_many(tree.root, [leaves[3]], proof, 8)

    def test_all_leaves_no_siblings_needed(self):
        from repro.hashing.merkle import open_many, verify_many

        leaves, tree = self._tree(8)
        proof = open_many(tree, range(8))
        assert proof.nodes == []  # everything derivable
        assert verify_many(tree.root, leaves, proof, 8)

    def test_smaller_than_individual_paths(self):
        from repro.hashing.merkle import open_many

        leaves, tree = self._tree(64)
        idxs = list(range(0, 64, 3))
        proof = open_many(tree, idxs)
        individual = sum(tree.open(i).size_bytes() for i in idxs)
        assert proof.size_bytes() < individual / 2

    def test_tampered_leaf_rejected(self):
        from repro.hashing.merkle import open_many, verify_many

        leaves, tree = self._tree()
        proof = open_many(tree, [2, 9])
        digests = [leaves[2], b"\xff" * 32]
        assert not verify_many(tree.root, digests, proof, tree.num_leaves)

    def test_wrong_count_rejected(self):
        from repro.hashing.merkle import open_many, verify_many

        leaves, tree = self._tree()
        proof = open_many(tree, [2, 9])
        assert not verify_many(tree.root, [leaves[2]], proof, tree.num_leaves)

    def test_truncated_nodes_rejected(self):
        from repro.hashing.merkle import open_many, verify_many

        leaves, tree = self._tree()
        proof = open_many(tree, [5])
        proof.nodes.pop()
        assert not verify_many(tree.root, [leaves[5]], proof, tree.num_leaves)

    def test_out_of_range_rejected(self):
        from repro.hashing.merkle import open_many

        _, tree = self._tree(8)
        with pytest.raises(IndexError):
            open_many(tree, [8])


class TestCompressionAccounting:
    """Pin the functional hash packing to the Hash-FU cost accounting."""

    @pytest.mark.parametrize("n,calls", [(1, 1), (4, 1), (5, 1), (8, 1),
                                         (9, 2), (12, 2), (16, 3), (128, 31)])
    def test_call_counts(self, n, calls):
        from repro.hashing.fieldhash import compression_calls_for_elements

        assert compression_calls_for_elements(n) == calls
