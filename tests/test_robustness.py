"""Adversarial-input hardening tests: the reject / never-crash /
never-accept contract (see docs/ROBUSTNESS.md).

Covers the typed error taxonomy, strict deserialization properties
(hypothesis), transcript domain separation across circuits, the fuzz
mutators, NoCap config/ISA validation, and the CLI's error exit codes.
"""

from __future__ import annotations

import random
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    ConfigError,
    DeserializationError,
    ReproError,
    TranscriptError,
    VerificationError,
)
from repro.fuzz.mutate import (
    random_mutants,
    splice_mutants,
    structured_mutants,
)
from repro.nocap.config import NoCapConfig
from repro.nocap.isa import Instruction, Opcode, Program, vadd, vload, vntt
from repro.nocap.scheduler import schedule_program
from repro.r1cs import Circuit
from repro.snark import (
    TEST,
    ProofBundle,
    proof_from_bytes,
    proof_to_bytes,
    prove,
    setup,
    verify,
)


def _cubic(x=3, out=35):
    c = Circuit()
    o = c.public(out)
    w = c.witness(x)
    c.assert_equal(c.mul(c.mul(w, w), w) + w + 5, o)
    return c


def _square(x=5, out=25):
    c = Circuit()
    o = c.public(out)
    w = c.witness(x)
    c.assert_equal(c.mul(w, w), o)
    return c


def _vr(vk, public, proof) -> bool:
    """Raw-parts verification via the lifecycle API."""
    return verify(vk, ProofBundle(proof=proof, public=public))


@pytest.fixture(scope="module")
def baseline():
    """One honest (vk, bundle, wire bytes) triple, proved once."""
    r1cs, public, witness = _cubic().compile()
    pk, vk = setup(r1cs, TEST)
    bundle = prove(pk, public, witness)
    return vk, bundle, proof_to_bytes(bundle.proof)


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(DeserializationError, ReproError)
        assert issubclass(VerificationError, ReproError)
        assert issubclass(TranscriptError, ReproError)
        assert issubclass(ConfigError, ReproError)
        # Back-compat: callers that caught ValueError keep working.
        assert issubclass(DeserializationError, ValueError)
        assert issubclass(ConfigError, ValueError)

    def test_offset_context(self):
        with pytest.raises(DeserializationError, match="byte offset"):
            proof_from_bytes(b"NCAP\x02" + b"\x00" * 10)

    def test_exported_from_package(self):
        import repro

        assert repro.ReproError is ReproError
        assert repro.DeserializationError is DeserializationError


class TestStrictParserProperties:
    @given(st.data())
    def test_single_byte_mutation_rejected(self, baseline, data):
        """Any single-byte change is rejected via False or a typed
        ReproError — never an IndexError, struct.error or numpy crash."""
        vk, bundle, wire = baseline
        pos = data.draw(st.integers(0, len(wire) - 1))
        delta = data.draw(st.integers(1, 255))
        buf = bytearray(wire)
        buf[pos] = (buf[pos] + delta) % 256
        try:
            proof = proof_from_bytes(bytes(buf))
        except ReproError:
            return
        assert _vr(vk, bundle.public, proof) is False

    @given(st.binary(max_size=300))
    def test_garbage_never_crashes(self, blob):
        with pytest.raises(ReproError):
            proof_from_bytes(blob)

    def test_round_trip_is_stable(self, baseline):
        vk, bundle, wire = baseline
        proof = proof_from_bytes(wire)
        assert proof_to_bytes(proof) == wire
        assert _vr(vk, bundle.public, proof)

    def test_truncation_every_prefix(self, baseline):
        _, _, wire = baseline
        for cut in range(0, len(wire), 7):
            with pytest.raises(DeserializationError):
                proof_from_bytes(wire[:cut])

    def test_trailing_bytes_rejected(self, baseline):
        _, _, wire = baseline
        with pytest.raises(DeserializationError, match="trailing"):
            proof_from_bytes(wire + b"\x00")


class TestDomainSeparation:
    def test_cross_circuit_proof_rejected(self, baseline):
        """An honest proof of x^2==25 must not verify as x^3+x+5==35."""
        vk_a, bundle_a, _ = baseline
        r1cs_b, pub_b, wit_b = _square().compile()
        pk_b, vk_b = setup(r1cs_b, TEST)
        bundle_b = prove(pk_b, pub_b, wit_b)
        assert verify(vk_b, bundle_b)  # sanity
        assert not _vr(vk_a, bundle_a.public, bundle_b.proof)
        assert not _vr(vk_b, bundle_b.public, bundle_a.proof)

    def test_spliced_sections_rejected(self, baseline):
        """Grafting commitment/sumcheck/opening sections between proofs
        of different statements must never verify: the Fiat-Shamir
        transcript binds every section to the statement."""
        vk_a, bundle_a, wire_a = baseline
        r1cs_b, pub_b, wit_b = _square().compile()
        pk_b, _ = setup(r1cs_b, TEST)
        bundle_b = prove(pk_b, pub_b, wit_b)
        wire_b = proof_to_bytes(bundle_b.proof)
        rng = random.Random(7)
        mutants = splice_mutants(wire_a, wire_b, rng)
        assert mutants
        for m in mutants:
            try:
                proof = proof_from_bytes(m.data)
            except ReproError:
                continue
            assert not _vr(vk_a, bundle_a.public, proof), m.mutator

    def test_wrong_public_inputs_rejected(self, baseline):
        vk, bundle, _ = baseline
        bad = np.array(bundle.public, copy=True)
        bad[-1] = (int(bad[-1]) + 1) % (2**64 - 2**32 + 1)
        assert not _vr(vk, bad, bundle.proof)


class TestMutators:
    def test_structured_mutants_all_rejected(self, baseline):
        vk, bundle, wire = baseline
        rng = random.Random(11)
        mutants = structured_mutants(wire, rng)
        assert len(mutants) >= 15  # every mutator class fired
        for m in mutants:
            assert m.data != wire, f"{m.mutator} emitted a no-op mutant"
            try:
                proof = proof_from_bytes(m.data)
            except ReproError:
                continue
            assert not _vr(vk, bundle.public, proof), m.mutator

    def test_random_mutants_never_crash(self, baseline):
        vk, bundle, wire = baseline
        rng = random.Random(13)
        for m in random_mutants(wire, rng, 40):
            try:
                proof = proof_from_bytes(m.data)
            except ReproError:
                continue
            assert not _vr(vk, bundle.public, proof)


class TestNoCapValidation:
    def test_bad_lane_counts(self):
        with pytest.raises(ConfigError, match="mul_lanes"):
            NoCapConfig(mul_lanes=0)
        with pytest.raises(ConfigError, match="hash_lanes"):
            NoCapConfig(hash_lanes=-4)
        with pytest.raises(ConfigError, match="frequency_hz"):
            NoCapConfig(frequency_hz=float("inf"))
        with pytest.raises(ConfigError, match="power of two"):
            NoCapConfig(ntt_base_size=1000)

    def test_bad_scale_factor(self):
        with pytest.raises(ConfigError, match="scale factor"):
            NoCapConfig().scale(hash=0.0)
        with pytest.raises(ConfigError, match="unknown resources"):
            NoCapConfig().scale(turbo=2.0)

    def test_instruction_operand_shapes(self):
        prog = Program()
        prog.append(Instruction(Opcode.VADD, 128, dst="v0", srcs=("a",)))
        with pytest.raises(ConfigError, match="source register"):
            prog.validate(require_defined_sources=False)

    def test_vntt_over_base_size(self):
        cfg = NoCapConfig()
        prog = Program()
        prog.append(vntt("v0", "v1", cfg.ntt_base_size * 2))
        with pytest.raises(ConfigError, match="base size"):
            schedule_program(prog, cfg)

    def test_use_before_def(self):
        prog = Program()
        prog.append(vadd("v1", "v0", "v0", 128))
        with pytest.raises(ConfigError, match="before any instruction"):
            prog.validate()
        prog2 = Program()
        prog2.append(vload("v0", 0, 128))
        prog2.append(vadd("v1", "v0", "v0", 128))
        prog2.validate()  # must not raise


class TestCliExitCodes:
    def test_config_error_exit_code(self, capsys):
        from repro.cli import EXIT_CONFIG_ERROR, main

        code = main(["simulate", "--log-n", "10", "--hash", "0"])
        assert code == EXIT_CONFIG_ERROR
        err = capsys.readouterr().err
        assert "ConfigError" in err and "\n" == err[-1]

    def test_strict_reraises(self):
        from repro.cli import main

        with pytest.raises(ConfigError):
            main(["--strict", "simulate", "--log-n", "10", "--hash", "0"])


class TestOptimizedMode:
    def test_prove_verify_under_python_O(self):
        """The verification boundary must not rely on `assert`: the whole
        prove -> serialize -> parse -> verify loop, plus a rejected
        mutation, runs identically under ``python -O``."""
        src = Path(__file__).resolve().parent.parent / "src"
        # NB: plain `assert` would be stripped by -O, so the script checks
        # its outcomes with explicit exits.
        script = (
            "import sys\n"
            "if __debug__: sys.exit(3)  # not actually running under -O\n"
            "from repro.r1cs import Circuit\n"
            "from repro.snark import (TEST, ProofBundle, proof_from_bytes, "
            "proof_to_bytes, prove, setup, verify)\n"
            "from repro.errors import ReproError\n"
            "c = Circuit(); o = c.public(35); w = c.witness(3)\n"
            "c.assert_equal(c.mul(c.mul(w, w), w) + w + 5, o)\n"
            "r1cs, pub, wit = c.compile()\n"
            "pk, vk = setup(r1cs, TEST)\n"
            "b = prove(pk, pub, wit)\n"
            "wire = proof_to_bytes(b.proof)\n"
            "restored = ProofBundle(proof=proof_from_bytes(wire), "
            "public=b.public)\n"
            "if not verify(vk, restored):\n"
            "    sys.exit(1)  # honest proof rejected\n"
            "bad = bytearray(wire); bad[70] ^= 1\n"
            "try:\n"
            "    ok = verify(vk, ProofBundle(proof=proof_from_bytes("
            "bytes(bad)), public=b.public))\n"
            "except ReproError:\n"
            "    ok = False\n"
            "sys.exit(0 if not ok else 2)  # 2: mutant accepted\n"
        )
        proc = subprocess.run(
            [sys.executable, "-O", "-c", script],
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
