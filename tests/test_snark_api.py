"""Tests for the keygen/prove/verify lifecycle, the proof envelope, and
the canonical top-level import surface."""

import numpy as np
import pytest

from repro.errors import ConfigError, DeserializationError
from repro.r1cs import Circuit
from repro.snark import (
    PAPER,
    PRESETS,
    TEST,
    ProofBundle,
    ProvingKey,
    VerifyingKey,
    preset_by_name,
    proof_from_bytes,
    proof_to_bytes,
    prove,
    setup,
    verify,
)


def _circuit(x=3, out=35):
    c = Circuit()
    o = c.public(out)
    w = c.witness(x)
    c.assert_equal(c.mul(c.mul(w, w), w) + w + 5, o)
    return c


@pytest.fixture(scope="module")
def compiled():
    return _circuit().compile()


@pytest.fixture(scope="module")
def keys(compiled):
    r1cs, _, _ = compiled
    return setup(r1cs, TEST)


@pytest.fixture(scope="module")
def bundle(compiled, keys):
    _, public, witness = compiled
    pk, _ = keys
    return prove(pk, public, witness, seed=11, circuit_id="cube")


class TestLifecycle:
    def test_setup_returns_key_pair(self, compiled):
        r1cs, _, _ = compiled
        pk, vk = setup(r1cs, TEST)
        assert isinstance(pk, ProvingKey) and isinstance(vk, VerifyingKey)
        assert pk.preset is TEST and vk.preset is TEST

    def test_setup_rejects_uncompiled_circuit(self):
        with pytest.raises(TypeError):
            setup(_circuit(), TEST)

    @pytest.mark.parametrize("preset", [TEST, PAPER],
                             ids=lambda p: p.name)
    def test_roundtrip_across_presets(self, compiled, preset):
        r1cs, public, witness = compiled
        pk, vk = setup(r1cs, preset)
        b = prove(pk, public, witness, seed=1)
        assert b.preset_name == preset.name
        assert verify(vk, b)

    def test_verify(self, keys, bundle):
        _, vk = keys
        assert verify(vk, bundle)

    def test_wrong_public_rejected(self, keys, bundle):
        _, vk = keys
        bad = ProofBundle(proof=bundle.proof, public=bundle.public.copy(),
                          preset_name=bundle.preset_name)
        bad.public[1] = 36
        assert not verify(vk, bad)

    def test_preset_mismatch_rejected(self, compiled, bundle):
        r1cs, _, _ = compiled
        _, vk_paper = setup(r1cs, PAPER)
        assert not verify(vk_paper, bundle)

    def test_verify_total_on_junk(self, keys):
        _, vk = keys
        assert not verify(vk, None)
        assert not verify(vk, object())
        assert not verify(None, ProofBundle(proof=None, public=np.zeros(1)))

    def test_seeded_prove_is_deterministic(self, compiled, keys, bundle):
        _, public, witness = compiled
        pk, _ = keys
        again = prove(pk, public, witness, seed=11, circuit_id="cube")
        assert again.to_bytes() == bundle.to_bytes()

    def test_distinct_seeds_distinct_proofs(self, compiled, keys):
        r1cs, public, witness = compiled
        pk, _ = keys
        a = prove(pk, public, witness, seed=1)
        b = prove(pk, public, witness, seed=2)
        assert proof_to_bytes(a.proof) != proof_to_bytes(b.proof)

    def test_presets(self):
        assert PAPER.sumcheck_repetitions == 3
        assert PAPER.pcs_rows == 128
        assert PAPER.column_queries == 189
        assert PAPER.rs_blowup == 4
        assert PAPER.proximity_vectors == 4
        assert PAPER.multiset_hash_instances == 4
        assert TEST.sumcheck_repetitions == 1

    def test_preset_factories(self):
        pcs = PAPER.make_pcs()
        assert pcs.params.num_rows == 128
        assert pcs.code.num_queries == 189
        assert PAPER.make_spartan_params().repetitions == 3

    def test_preset_registry(self):
        assert set(PRESETS) == {"paper-128bit", "test-fast"}
        assert preset_by_name("test-fast") is TEST
        with pytest.raises(ConfigError):
            preset_by_name("no-such-preset")


class TestEnvelope:
    def test_roundtrip(self, keys, bundle):
        _, vk = keys
        restored = ProofBundle.from_bytes(bundle.to_bytes())
        assert restored.preset_name == TEST.name
        assert restored.circuit_id == "cube"
        assert np.array_equal(restored.public, bundle.public)
        assert verify(vk, restored)

    def test_roundtrip_stable(self, bundle):
        data = bundle.to_bytes()
        assert ProofBundle.from_bytes(data).to_bytes() == data

    def test_bundle_without_preset_cannot_serialize(self, bundle):
        anon = ProofBundle(proof=bundle.proof, public=bundle.public)
        with pytest.raises(ValueError):
            anon.to_bytes()

    def test_bad_magic(self, bundle):
        with pytest.raises(DeserializationError):
            ProofBundle.from_bytes(b"XXXX" + bundle.to_bytes()[4:])

    def test_unknown_version(self, bundle):
        data = bytearray(bundle.to_bytes())
        data[4] = 99
        with pytest.raises(DeserializationError):
            ProofBundle.from_bytes(bytes(data))

    def test_unknown_preset_id(self, compiled, keys):
        r1cs, public, witness = compiled
        pk, _ = keys
        b = prove(pk, public, witness, seed=3)
        b.preset_name = "test-fast"[::-1]  # right length, wrong name
        with pytest.raises(DeserializationError):
            ProofBundle.from_bytes(b.to_bytes())

    def test_truncated(self, bundle):
        data = bundle.to_bytes()
        for cut in (3, 5, len(data) // 2, len(data) - 1):
            with pytest.raises(DeserializationError):
                ProofBundle.from_bytes(data[:cut])

    def test_truncated_at_every_offset_reports_position(self, bundle):
        """A bundle file cut short at ANY byte — a torn download, a full
        disk — must fail with the typed error carrying the byte offset
        where parsing stopped, never an IndexError/struct.error crash."""
        data = bundle.to_bytes()
        cuts = set(range(min(len(data), 64)))          # dense header sweep
        cuts.update(range(64, len(data), 97))          # sampled body
        cuts.add(len(data) - 1)
        for cut in sorted(cuts):
            with pytest.raises(DeserializationError) as ei:
                ProofBundle.from_bytes(data[:cut])
            assert ei.value.offset is not None, \
                f"truncation at {cut} lost its byte offset"
            assert 0 <= ei.value.offset <= cut, \
                f"offset {ei.value.offset} points past the {cut}-byte input"
            assert str(ei.value.offset) in str(ei.value)

    def test_trailing_garbage(self, bundle):
        with pytest.raises(DeserializationError):
            ProofBundle.from_bytes(bundle.to_bytes() + b"\x00")

    def test_not_bytes(self):
        with pytest.raises(DeserializationError):
            ProofBundle.from_bytes("not bytes")

    def test_fuzzed_envelopes_never_crash(self, keys, bundle):
        """Seeded byte-level mutants either fail to parse with the typed
        error or parse and fail verification — nothing else escapes."""
        import random

        from repro.fuzz.mutate import random_mutants

        _, vk = keys
        data = bundle.to_bytes()
        rng = random.Random(0xE17)
        accepted = 0
        for mutant in random_mutants(data, rng, count=120):
            try:
                parsed = ProofBundle.from_bytes(mutant.data)
            except DeserializationError:
                continue
            accepted += verify(vk, parsed)
        assert accepted == 0


class TestSerialization:
    def test_roundtrip(self, keys, bundle):
        _, vk = keys
        data = proof_to_bytes(bundle.proof)
        restored = proof_from_bytes(data)
        assert verify(vk, ProofBundle(proof=restored, public=bundle.public))

    def test_roundtrip_stable(self, bundle):
        data = proof_to_bytes(bundle.proof)
        assert proof_to_bytes(proof_from_bytes(data)) == data

    def test_corruption_detected(self, keys, bundle):
        """Any single-byte corruption either fails to parse or fails to
        verify (sampled offsets)."""
        _, vk = keys
        data = proof_to_bytes(bundle.proof)
        for offset in range(10, len(data), max(1, len(data) // 12)):
            corrupted = bytearray(data)
            corrupted[offset] ^= 0xFF
            try:
                proof = proof_from_bytes(bytes(corrupted))
            except (ValueError, OverflowError):
                continue
            assert not verify(
                vk, ProofBundle(proof=proof, public=bundle.public)), offset

    def test_wire_size_matches_accounting_order(self, bundle):
        data = proof_to_bytes(bundle.proof)
        # Wire format carries framing, so it is somewhat larger than the
        # raw payload accounting but within 2x.
        assert (bundle.proof.size_bytes() < len(data)
                < 2 * bundle.proof.size_bytes() + 256)


class TestCanonicalSurface:
    """The post-shim API contract: one import surface, no leftovers."""

    def test_top_level_reexports(self):
        import repro

        for name in ("setup", "prove", "prove_many", "verify",
                     "ProvingKey", "VerifyingKey", "ProofBundle",
                     "JobResult", "TEST", "PAPER", "ServiceClient"):
            assert hasattr(repro, name), name
            assert name in repro.__all__, name

    def test_deprecated_facade_removed(self):
        import repro
        import repro.snark

        for mod in (repro, repro.snark):
            assert not hasattr(mod, "Snark")
            assert not hasattr(mod, "prove_and_verify")

    def test_top_level_matches_snark(self):
        import repro
        import repro.snark

        assert repro.setup is repro.snark.setup
        assert repro.prove is repro.snark.prove
        assert repro.verify is repro.snark.verify
        assert repro.prove_many is repro.snark.prove_many
