"""Tests for the high-level SNARK facade and proof serialization."""

import numpy as np
import pytest

from repro.r1cs import Circuit
from repro.snark import (
    PAPER,
    TEST,
    ProofBundle,
    Snark,
    proof_from_bytes,
    proof_to_bytes,
    prove_and_verify,
)


def _circuit(x=3, out=35):
    c = Circuit()
    o = c.public(out)
    w = c.witness(x)
    c.assert_equal(c.mul(c.mul(w, w), w) + w + 5, o)
    return c


class TestSnarkFacade:
    def test_prove_and_verify(self):
        bundle = prove_and_verify(_circuit())
        assert bundle.size_bytes() > 0

    def test_from_circuit_captures_assignment(self):
        snark = Snark.from_circuit(_circuit())
        bundle = snark.prove()
        assert snark.verify(bundle)

    def test_explicit_assignment(self):
        circuit = _circuit()
        r1cs, pub, wit = circuit.compile()
        snark = Snark(r1cs, TEST)
        bundle = snark.prove(pub, wit)
        assert snark.verify(bundle)

    def test_missing_assignment_raises(self):
        circuit = _circuit()
        r1cs, _, _ = circuit.compile()
        snark = Snark(r1cs, TEST)
        with pytest.raises(ValueError):
            snark.prove()

    def test_wrong_public_rejected(self):
        snark = Snark.from_circuit(_circuit())
        bundle = snark.prove()
        bad = ProofBundle(proof=bundle.proof, public=bundle.public.copy())
        bad.public[1] = 36
        assert not snark.verify(bad)

    def test_presets(self):
        assert PAPER.sumcheck_repetitions == 3
        assert PAPER.pcs_rows == 128
        assert PAPER.column_queries == 189
        assert PAPER.rs_blowup == 4
        assert PAPER.proximity_vectors == 4
        assert PAPER.multiset_hash_instances == 4
        assert TEST.sumcheck_repetitions == 1

    def test_preset_factories(self):
        pcs = PAPER.make_pcs()
        assert pcs.params.num_rows == 128
        assert pcs.code.num_queries == 189
        assert PAPER.make_spartan_params().repetitions == 3


class TestSerialization:
    def test_roundtrip(self):
        snark = Snark.from_circuit(_circuit())
        bundle = snark.prove()
        data = proof_to_bytes(bundle.proof)
        restored = proof_from_bytes(data)
        assert snark.verify_raw(bundle.public, restored)

    def test_roundtrip_stable(self):
        snark = Snark.from_circuit(_circuit())
        bundle = snark.prove()
        data = proof_to_bytes(bundle.proof)
        assert proof_to_bytes(proof_from_bytes(data)) == data

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            proof_from_bytes(b"XXXX" + b"\x00" * 100)

    def test_bad_version(self):
        snark = Snark.from_circuit(_circuit())
        data = bytearray(proof_to_bytes(snark.prove().proof))
        data[4] = 99
        with pytest.raises(ValueError):
            proof_from_bytes(bytes(data))

    def test_truncated(self):
        snark = Snark.from_circuit(_circuit())
        data = proof_to_bytes(snark.prove().proof)
        with pytest.raises(ValueError):
            proof_from_bytes(data[: len(data) // 2])

    def test_trailing_garbage(self):
        snark = Snark.from_circuit(_circuit())
        data = proof_to_bytes(snark.prove().proof)
        with pytest.raises(ValueError):
            proof_from_bytes(data + b"\x00")

    def test_corruption_detected(self):
        """Any single-byte corruption either fails to parse or fails to
        verify (sampled offsets)."""
        snark = Snark.from_circuit(_circuit())
        bundle = snark.prove()
        data = proof_to_bytes(bundle.proof)
        for offset in range(10, len(data), max(1, len(data) // 12)):
            corrupted = bytearray(data)
            corrupted[offset] ^= 0xFF
            try:
                proof = proof_from_bytes(bytes(corrupted))
            except (ValueError, OverflowError):
                continue
            assert not snark.verify_raw(bundle.public, proof), offset

    def test_wire_size_matches_accounting_order(self):
        snark = Snark.from_circuit(_circuit())
        bundle = snark.prove()
        data = proof_to_bytes(bundle.proof)
        # Wire format carries framing, so it is somewhat larger than the
        # raw payload accounting but within 2x.
        assert bundle.proof.size_bytes() < len(data) < 2 * bundle.proof.size_bytes() + 256
