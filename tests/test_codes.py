"""Tests for the Reed-Solomon and expander linear codes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.code import ExpanderCode, ReedSolomonCode
from repro.field import vector as fv
from repro.field.goldilocks import MODULUS

felt = st.integers(0, MODULUS - 1)


class TestReedSolomon:
    def test_blowup_and_length(self, rng):
        rs = ReedSolomonCode()
        cw = rs.encode(fv.rand_vector(64, rng))
        assert cw.size == 256
        assert rs.codeword_length(64) == 256

    def test_systematic_decode_roundtrip(self, rng):
        rs = ReedSolomonCode()
        m = fv.rand_vector(128, rng)
        assert (rs.decode_systematic(rs.encode(m)) == m).all()

    def test_corrupted_codeword_detected(self, rng):
        rs = ReedSolomonCode()
        cw = rs.encode(fv.rand_vector(32, rng))
        cw[5] ^= np.uint64(1)
        with pytest.raises(ValueError):
            rs.decode_systematic(cw)

    @given(st.lists(felt, min_size=16, max_size=16),
           st.lists(felt, min_size=16, max_size=16))
    def test_linearity(self, a, b):
        rs = ReedSolomonCode()
        va = np.array(a, dtype=np.uint64)
        vb = np.array(b, dtype=np.uint64)
        assert (rs.encode(fv.add(va, vb))
                == fv.add(rs.encode(va), rs.encode(vb))).all()

    def test_scaling_linearity(self, rng):
        rs = ReedSolomonCode()
        m = fv.rand_vector(32, rng)
        s = 123456789
        assert (rs.encode(fv.mul_scalar(m, s))
                == fv.mul_scalar(rs.encode(m), s)).all()

    def test_distance_on_sample(self, rng):
        # Distinct messages must differ in > (blowup-1)/blowup of positions
        # minus the degree bound: check a weaker sampled property — two
        # random codewords agree on < n positions.
        rs = ReedSolomonCode()
        n = 64
        c1 = rs.encode(fv.rand_vector(n, rng))
        c2 = rs.encode(fv.rand_vector(n, rng))
        agreements = int((c1 == c2).sum())
        assert agreements < n  # distance 3n+1 means <= n-1 agreements

    def test_encode_rows(self, rng):
        rs = ReedSolomonCode()
        mat = fv.rand_vector(4 * 16, rng).reshape(4, 16)
        enc = rs.encode_rows(mat)
        assert enc.shape == (4, 64)
        for i in range(4):
            assert (enc[i] == rs.encode(mat[i])).all()

    def test_non_power_of_two_rejected(self, rng):
        with pytest.raises(ValueError):
            ReedSolomonCode().encode(fv.rand_vector(12, rng))

    def test_bad_blowup_rejected(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(blowup=3)

    def test_paper_parameters(self):
        rs = ReedSolomonCode()
        assert rs.blowup == 4
        assert rs.num_queries == 189

    def test_encoding_cost_scales(self):
        rs = ReedSolomonCode()
        small = rs.encoding_cost(1 << 10)
        large = rs.encoding_cost(1 << 20)
        assert large.mul > 512 * small.mul  # superlinear (n log n)
        assert large.mem_bytes > small.mem_bytes


class TestExpander:
    def test_blowup_and_length(self, rng):
        ex = ExpanderCode()
        cw = ex.encode(fv.rand_vector(256, rng))
        assert cw.size == 1024

    def test_systematic_prefix(self, rng):
        ex = ExpanderCode()
        m = fv.rand_vector(256, rng)
        assert (ex.encode(m)[:256] == m).all()

    def test_linearity(self, rng):
        ex = ExpanderCode()
        a = fv.rand_vector(512, rng)
        b = fv.rand_vector(512, rng)
        assert (ex.encode(fv.add(a, b))
                == fv.add(ex.encode(a), ex.encode(b))).all()

    def test_deterministic_across_instances(self, rng):
        m = fv.rand_vector(256, rng)
        assert (ExpanderCode(seed=5).encode(m)
                == ExpanderCode(seed=5).encode(m)).all()

    def test_seed_changes_code(self, rng):
        m = fv.rand_vector(256, rng)
        assert (ExpanderCode(seed=1).encode(m)
                != ExpanderCode(seed=2).encode(m)).any()

    def test_base_case_is_reed_solomon(self, rng):
        ex = ExpanderCode()
        m = fv.rand_vector(32, rng)  # below BASE_CASE
        assert (ex.encode(m) == ReedSolomonCode().encode(m)).all()

    def test_paper_query_count(self):
        # Sec. VII-A: expander codes need 1,222 column queries vs RS's 189.
        assert ExpanderCode().num_queries == 1222
        assert ReedSolomonCode().num_queries == 189

    def test_graph_bytes_grow_with_size(self):
        ex = ExpanderCode()
        assert ex.graph_bytes(1 << 20) > 100 * ex.graph_bytes(1 << 12)
        # Multi-GB at paper scale (Sec. II: "several gigabytes").
        assert ex.graph_bytes(1 << 28) > 1 << 30

    def test_random_access_cost(self):
        # The accelerator-hostile property: many serialized random accesses.
        cost = ExpanderCode().encoding_cost(1 << 16)
        assert cost.random_accesses > (1 << 16)
        rs_cost = ReedSolomonCode().encoding_cost(1 << 16)
        assert rs_cost.random_accesses == 0
