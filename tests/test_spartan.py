"""End-to-end tests for the Spartan+Orion zk-SNARK."""

import copy

import numpy as np
import pytest

from repro.field import vector as fv
from repro.field.goldilocks import MODULUS
from repro.hashing import Transcript
from repro.multilinear import eq_table
from repro.pcs import OrionPCS, PCSParams
from repro.r1cs import Circuit
from repro.spartan import (
    SpartanParams,
    SpartanProver,
    SpartanVerifier,
    combined_matrix_eval,
    combined_matrix_row,
    matrix_mle_eval,
)
from repro.workloads import synthetic_r1cs


def _cubic_circuit():
    c = Circuit()
    out = c.public(35)
    x = c.witness(3)
    c.assert_equal(c.mul(c.mul(x, x), x) + x + 5, out)
    return c.compile()


def _pcs(seed=1):
    return OrionPCS(params=PCSParams(num_rows=8),
                    rng=np.random.default_rng(seed))


def _prove(r1cs, pub, wit, reps=1, seed=1):
    params = SpartanParams(repetitions=reps)
    prover = SpartanProver(r1cs, _pcs(seed), params)
    verifier = SpartanVerifier(r1cs, _pcs(seed), params)
    proof = prover.prove(pub, wit, Transcript())
    return proof, verifier


class TestMatrixEval:
    def test_matches_dense_mle(self, rng):
        r1cs, pub, wit = synthetic_r1cs(4, band=4, seed=1)
        z = r1cs.assemble_z(pub, wit)
        log_n = r1cs.shape.log_size
        rx = [int(x) for x in fv.rand_vector(log_n, rng)]
        ry = [int(x) for x in fv.rand_vector(log_n, rng)]
        # Flattened dense MLE evaluation as oracle.
        from repro.multilinear import mle_eval

        dense = np.zeros((r1cs.shape.num_constraints,
                          r1cs.shape.num_constraints), dtype=np.uint64)
        for r, c, v in r1cs.a.entries():
            dense[r, c] = (int(dense[r, c]) + v) % MODULUS
        flat = dense.reshape(-1)
        assert matrix_mle_eval(r1cs.a, rx, ry) == mle_eval(flat, rx + ry)

    def test_combined_matches_individual(self, rng):
        r1cs, _, _ = synthetic_r1cs(4, band=4, seed=2)
        log_n = r1cs.shape.log_size
        rx = [int(x) for x in fv.rand_vector(log_n, rng)]
        ry = [int(x) for x in fv.rand_vector(log_n, rng)]
        ra, rb, rc = 3, 5, 7
        want = (ra * matrix_mle_eval(r1cs.a, rx, ry)
                + rb * matrix_mle_eval(r1cs.b, rx, ry)
                + rc * matrix_mle_eval(r1cs.c, rx, ry)) % MODULUS
        assert combined_matrix_eval(r1cs.a, r1cs.b, r1cs.c, ra, rb, rc,
                                    rx, ry) == want

    def test_combined_row_consistency(self, rng):
        """The sumcheck-2 factor table evaluated at ry must equal the
        combined matrix MLE at (rx, ry)."""
        from repro.multilinear import mle_eval

        r1cs, _, _ = synthetic_r1cs(4, band=4, seed=3)
        log_n = r1cs.shape.log_size
        rx = [int(x) for x in fv.rand_vector(log_n, rng)]
        ry = [int(x) for x in fv.rand_vector(log_n, rng)]
        row = combined_matrix_row(r1cs.a, r1cs.b, r1cs.c, 3, 5, 7, rx)
        assert mle_eval(row, ry) == combined_matrix_eval(
            r1cs.a, r1cs.b, r1cs.c, 3, 5, 7, rx, ry)

    def test_dimension_check(self, rng):
        r1cs, _, _ = synthetic_r1cs(4, seed=4)
        with pytest.raises(ValueError):
            matrix_mle_eval(r1cs.a, [1, 2], [1, 2, 3, 4])


class TestSpartanEndToEnd:
    def test_cubic_circuit(self):
        r1cs, pub, wit = _cubic_circuit()
        proof, verifier = _prove(r1cs, pub, wit)
        assert verifier.verify(pub, proof, Transcript())

    def test_synthetic_instances(self):
        for log_size in (3, 5, 7):
            r1cs, pub, wit = synthetic_r1cs(log_size, band=8, seed=log_size)
            proof, verifier = _prove(r1cs, pub, wit)
            assert verifier.verify(pub, proof, Transcript()), log_size

    def test_three_repetitions(self):
        r1cs, pub, wit = _cubic_circuit()
        proof, verifier = _prove(r1cs, pub, wit, reps=3)
        assert len(proof.repetitions) == 3
        assert verifier.verify(pub, proof, Transcript())

    def test_repetition_count_checked(self):
        r1cs, pub, wit = _cubic_circuit()
        proof, _ = _prove(r1cs, pub, wit, reps=2)
        strict = SpartanVerifier(r1cs, _pcs(), SpartanParams(repetitions=3))
        assert not strict.verify(pub, proof, Transcript())

    def test_invalid_witness_raises(self):
        r1cs, pub, wit = _cubic_circuit()
        bad = wit.copy()
        bad[0] = 4
        prover = SpartanProver(r1cs, _pcs(), SpartanParams(repetitions=1))
        with pytest.raises(ValueError):
            prover.prove(pub, bad, Transcript())

    def test_wrong_public_input_rejected(self):
        r1cs, pub, wit = _cubic_circuit()
        proof, verifier = _prove(r1cs, pub, wit)
        bad = pub.copy()
        bad[1] = 36
        assert not verifier.verify(bad, proof, Transcript())

    def test_wrong_public_length_rejected(self):
        r1cs, pub, wit = _cubic_circuit()
        proof, verifier = _prove(r1cs, pub, wit)
        assert not verifier.verify(pub[:-1], proof, Transcript())


class TestSpartanTamperResistance:
    @pytest.fixture
    def setup(self):
        r1cs, pub, wit = _cubic_circuit()
        proof, verifier = _prove(r1cs, pub, wit)
        return proof, verifier, pub

    def test_tampered_va(self, setup):
        proof, verifier, pub = setup
        bad = copy.deepcopy(proof)
        bad.repetitions[0].va = (bad.repetitions[0].va + 1) % MODULUS
        assert not verifier.verify(pub, bad, Transcript())

    def test_tampered_vc(self, setup):
        proof, verifier, pub = setup
        bad = copy.deepcopy(proof)
        bad.repetitions[0].vc = (bad.repetitions[0].vc + 1) % MODULUS
        assert not verifier.verify(pub, bad, Transcript())

    def test_tampered_sc1_round(self, setup):
        proof, verifier, pub = setup
        bad = copy.deepcopy(proof)
        bad.repetitions[0].sc1_round_evals[0][2] = (
            bad.repetitions[0].sc1_round_evals[0][2] + 1) % MODULUS
        assert not verifier.verify(pub, bad, Transcript())

    def test_tampered_sc2_final(self, setup):
        proof, verifier, pub = setup
        bad = copy.deepcopy(proof)
        bad.repetitions[0].sc2.final_values[0] = (
            bad.repetitions[0].sc2.final_values[0] + 1) % MODULUS
        assert not verifier.verify(pub, bad, Transcript())

    def test_tampered_w_eval(self, setup):
        proof, verifier, pub = setup
        bad = copy.deepcopy(proof)
        bad.repetitions[0].w_eval = (bad.repetitions[0].w_eval + 1) % MODULUS
        assert not verifier.verify(pub, bad, Transcript())

    def test_tampered_commitment(self, setup):
        proof, verifier, pub = setup
        bad = copy.deepcopy(proof)
        bad.witness_commitment.root = b"\x11" * 32
        assert not verifier.verify(pub, bad, Transcript())

    def test_proof_from_other_statement_rejected(self):
        r1cs, pub, wit = _cubic_circuit()
        proof, verifier = _prove(r1cs, pub, wit)
        # A different (satisfiable) instance's proof must not verify here.
        r2, pub2, wit2 = synthetic_r1cs(7, seed=7)
        proof2, _ = _prove(r2, pub2, wit2)
        assert not verifier.verify(pub, proof2, Transcript())


class TestProofSize:
    def test_size_accounting(self):
        r1cs, pub, wit = _cubic_circuit()
        proof, _ = _prove(r1cs, pub, wit)
        assert proof.size_bytes() > 32
        assert proof.size_bytes() == (
            proof.witness_commitment.size_bytes()
            + sum(r.size_bytes() for r in proof.repetitions))

    def test_size_grows_with_repetitions(self):
        r1cs, pub, wit = _cubic_circuit()
        p1, _ = _prove(r1cs, pub, wit, reps=1)
        p3, _ = _prove(r1cs, pub, wit, reps=3)
        assert p3.size_bytes() > 2.5 * p1.size_bytes()
