"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.log_n == 24
        assert args.hbm == 1.0
        assert not args.no_recompute

    def test_prove_choices(self):
        args = build_parser().parse_args(["prove", "aes"])
        assert args.workload == "aes"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["prove", "nonsense"])

    def test_paper_workload_aliases_accepted(self):
        assert build_parser().parse_args(
            ["prove", "sha256"]).workload == "sha256"
        assert build_parser().parse_args(
            ["trace", "aes128"]).workload == "aes128"

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "sha"])
        assert args.trace_out == "trace.json"
        assert args.phases_out == "BENCH_phases.json"
        assert not args.metrics

    def test_prove_new_flags(self):
        args = build_parser().parse_args(
            ["prove", "litmus", "--out", "p.bin", "--workers", "4",
             "--preset", "paper-128bit"])
        assert args.out == "p.bin"
        assert args.workers == 4
        assert args.preset == "paper-128bit"
        assert build_parser().parse_args(["prove", "litmus"]).out is None

    def test_verify_parser(self):
        args = build_parser().parse_args(["verify", "p.bin"])
        assert args.bundle == "p.bin" and args.workload is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify"])


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["simulate", "--log-n", "20"]) == 0
        out = capsys.readouterr().out
        assert "constraints" in out
        assert "sumcheck" in out

    def test_simulate_scaled(self, capsys):
        assert main(["simulate", "--log-n", "20", "--hbm", "0.5"]) == 0
        base = capsys.readouterr().out
        assert "W" in base

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "Total NoCap" in out
        assert "45.8" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table IV" in out and "Table V" in out
        assert "586x" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "arith" in out and "hbm" in out

    def test_prove(self, capsys):
        assert main(["prove", "auction"]) == 0
        out = capsys.readouterr().out
        assert "valid: True" in out

    def test_simulate_json(self, capsys):
        import json

        assert main(["simulate", "--log-n", "18", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro/simulate"
        assert payload["padded_constraints"] == 1 << 18
        assert list(payload["time_fractions"]) == list(
            payload["traffic_fractions"])
        assert sum(payload["time_fractions"].values()) == pytest.approx(1.0)
        assert payload["tasks"]
        assert all(t["bound"] in ("compute", "memory")
                   for t in payload["tasks"])

    def test_simulate_family_table_stable_order(self, capsys):
        from repro.obs import FAMILIES

        assert main(["simulate", "--log-n", "18"]) == 0
        out = capsys.readouterr().out
        positions = [out.index(fam) for fam in FAMILIES]
        assert positions == sorted(positions)
        assert "traffic" in out

    def test_simulate_trace_out(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace

        path = tmp_path / "sim_trace.json"
        assert main(["simulate", "--log-n", "16",
                     "--trace-out", str(path)]) == 0
        obj = json.loads(path.read_text())
        assert validate_chrome_trace(obj) == []

    def test_prove_trace_flags(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace

        path = tmp_path / "trace.json"
        assert main(["prove", "auction", "--trace-out", str(path),
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "phase tree" in out
        assert "snark.prove" in out
        assert "merkle.hashes" in out
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_prove_out_verify_roundtrip(self, tmp_path, capsys):
        from repro.cli import EXIT_VERIFICATION_ERROR

        bundle = tmp_path / "litmus.proof"
        assert main(["prove", "litmus", "--out", str(bundle)]) == 0
        assert "written to" in capsys.readouterr().out
        assert main(["verify", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "proof valid" in out and "test-fast" in out
        # The envelope names its circuit; a contradictory claim must fail.
        assert main(["verify", str(bundle), "--workload", "aes"]
                    ) == EXIT_VERIFICATION_ERROR

    def test_verify_exit_codes(self, tmp_path, capsys):
        from repro.cli import (
            EXIT_DESERIALIZATION_ERROR,
            EXIT_VERIFICATION_ERROR,
        )

        garbage = tmp_path / "garbage.proof"
        garbage.write_bytes(b"not a proof envelope")
        assert main(["verify", str(garbage)]) == EXIT_DESERIALIZATION_ERROR
        assert "DeserializationError" in capsys.readouterr().err

        bundle = tmp_path / "litmus.proof"
        assert main(["prove", "litmus", "--out", str(bundle)]) == 0
        raw = bytearray(bundle.read_bytes())
        raw[-40] ^= 1  # corrupt the proof payload, keep the framing
        tampered = tmp_path / "tampered.proof"
        tampered.write_bytes(bytes(raw))
        code = main(["verify", str(tampered)])
        assert code in (EXIT_DESERIALIZATION_ERROR, EXIT_VERIFICATION_ERROR)

    def test_prove_workers_flag_runs(self, capsys):
        assert main(["prove", "litmus", "--workers", "2"]) == 0
        assert "valid: True" in capsys.readouterr().out

    def test_trace_command(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace, validate_phases

        trace = tmp_path / "trace.json"
        phases = tmp_path / "phases.json"
        assert main(["trace", "sha256", "--trace-out", str(trace),
                     "--phases-out", str(phases)]) == 0
        out = capsys.readouterr().out
        assert "drift" in out
        assert validate_chrome_trace(json.loads(trace.read_text())) == []
        payload = json.loads(phases.read_text())
        assert validate_phases(payload) == []
        assert payload["workload"] == "sha"  # alias resolved
        assert "functional" in payload and "simulated" in payload
