"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.log_n == 24
        assert args.hbm == 1.0
        assert not args.no_recompute

    def test_prove_choices(self):
        args = build_parser().parse_args(["prove", "aes"])
        assert args.workload == "aes"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["prove", "nonsense"])


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["simulate", "--log-n", "20"]) == 0
        out = capsys.readouterr().out
        assert "constraints" in out
        assert "sumcheck" in out

    def test_simulate_scaled(self, capsys):
        assert main(["simulate", "--log-n", "20", "--hbm", "0.5"]) == 0
        base = capsys.readouterr().out
        assert "W" in base

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "Total NoCap" in out
        assert "45.8" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table IV" in out and "Table V" in out
        assert "586x" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "arith" in out and "hbm" in out

    def test_prove(self, capsys):
        assert main(["prove", "auction"]) == 0
        out = capsys.readouterr().out
        assert "valid: True" in out
