"""Tests for MLEs, the generic sumcheck, and the paper's Listing 1."""

import copy

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field import vector as fv
from repro.field.goldilocks import MODULUS
from repro.hashing import Transcript
from repro.multilinear import (
    combine_rows,
    eq_eval,
    eq_table,
    final_challenge_point,
    fold,
    hypercube_sum,
    mle_eval,
    num_vars,
    prove_sumcheck,
    sumcheck_cost,
    sumcheck_dp,
    tensor_split_eval,
    verify_sumcheck,
    verify_sumcheck_dp,
    verify_sumcheck_rounds,
)

felt = st.integers(0, MODULUS - 1)


class TestMLE:
    def test_num_vars(self):
        assert num_vars(fv.zeros(16)) == 4
        with pytest.raises(ValueError):
            num_vars(fv.zeros(12))

    def test_mle_agrees_on_hypercube(self, rng):
        table = fv.rand_vector(16, rng)
        for b in range(16):
            point = [(b >> (3 - i)) & 1 for i in range(4)]
            assert mle_eval(table, point) == int(table[b])

    def test_mle_eval_equals_eq_inner_product(self, rng):
        table = fv.rand_vector(64, rng)
        r = [int(x) for x in fv.rand_vector(6, rng)]
        assert mle_eval(table, r) == fv.dot(table, eq_table(r))

    def test_eq_table_sums_to_one(self, rng):
        # sum_b eq(r, b) = 1 for any r (partition of unity).
        r = [int(x) for x in fv.rand_vector(5, rng)]
        assert hypercube_sum(eq_table(r)) == 1

    def test_eq_eval_symmetric(self, rng):
        a = [int(x) for x in fv.rand_vector(4, rng)]
        b = [int(x) for x in fv.rand_vector(4, rng)]
        assert eq_eval(a, b) == eq_eval(b, a)

    def test_eq_eval_matches_table(self, rng):
        r = [int(x) for x in fv.rand_vector(4, rng)]
        table = eq_table(r)
        for b in range(16):
            bits = [(b >> (3 - i)) & 1 for i in range(4)]
            assert int(table[b]) == eq_eval(r, bits)

    def test_fold_binds_top_variable(self, rng):
        table = fv.rand_vector(32, rng)
        r = [int(x) for x in fv.rand_vector(5, rng)]
        folded = fold(table, r[0])
        assert mle_eval(folded, r[1:]) == mle_eval(table, r)

    def test_fold_at_binary_points(self, rng):
        table = fv.rand_vector(8, rng)
        assert (fold(table, 0) == table[:4]).all()
        assert (fold(table, 1) == table[4:]).all()

    def test_tensor_split(self, rng):
        table = fv.rand_vector(64, rng)
        r = [int(x) for x in fv.rand_vector(6, rng)]
        assert tensor_split_eval(table, r[:2], r[2:]) == mle_eval(table, r)

    def test_combine_rows(self, rng):
        mat = fv.rand_vector(4 * 8, rng).reshape(4, 8)
        coeffs = fv.rand_vector(4, rng)
        got = combine_rows(mat, coeffs)
        for j in range(8):
            want = sum(int(coeffs[i]) * int(mat[i, j]) for i in range(4)) % MODULUS
            assert int(got[j]) == want

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            mle_eval(fv.rand_vector(8, rng), [1, 2])


class TestSumcheck:
    @pytest.mark.parametrize("degree,log_n", [(1, 4), (2, 5), (3, 4), (2, 1)])
    def test_honest_prover_accepted(self, degree, log_n, rng):
        tables = [fv.rand_vector(1 << log_n, rng) for _ in range(degree)]
        prod = tables[0]
        for t in tables[1:]:
            prod = fv.mul(prod, t)
        claim = fv.vsum(prod)
        proof, chal = prove_sumcheck(tables, Transcript())
        res = verify_sumcheck(claim, proof, degree, Transcript())
        assert res.ok, res.reason
        assert res.challenges == chal
        for table, v in zip(tables, proof.final_values):
            assert mle_eval(table, chal) == v

    def test_wrong_claim_rejected(self, rng):
        tables = [fv.rand_vector(16, rng)]
        claim = fv.vsum(tables[0])
        proof, _ = prove_sumcheck(tables, Transcript())
        assert not verify_sumcheck((claim + 1) % MODULUS, proof, 1,
                                   Transcript()).ok

    def test_tampered_round_rejected(self, rng):
        tables = [fv.rand_vector(16, rng), fv.rand_vector(16, rng)]
        claim = fv.vsum(fv.mul(*tables))
        proof, _ = prove_sumcheck(tables, Transcript())
        bad = copy.deepcopy(proof)
        bad.round_evals[1][0] = (bad.round_evals[1][0] + 1) % MODULUS
        assert not verify_sumcheck(claim, bad, 2, Transcript()).ok

    def test_tampered_final_rejected(self, rng):
        tables = [fv.rand_vector(16, rng)]
        claim = fv.vsum(tables[0])
        proof, _ = prove_sumcheck(tables, Transcript())
        bad = copy.deepcopy(proof)
        bad.final_values[0] = (bad.final_values[0] + 1) % MODULUS
        assert not verify_sumcheck(claim, bad, 1, Transcript()).ok

    def test_wrong_degree_rejected(self, rng):
        tables = [fv.rand_vector(16, rng), fv.rand_vector(16, rng)]
        claim = fv.vsum(fv.mul(*tables))
        proof, _ = prove_sumcheck(tables, Transcript())
        assert not verify_sumcheck(claim, proof, 3, Transcript()).ok

    def test_rounds_only_api(self, rng):
        tables = [fv.rand_vector(8, rng)]
        claim = fv.vsum(tables[0])
        proof, chal = prove_sumcheck(tables, Transcript())
        res = verify_sumcheck_rounds(claim, proof.round_evals, 1, Transcript())
        assert res.ok
        assert res.challenges == chal
        assert res.final_claim == mle_eval(tables[0], chal)

    def test_mismatched_table_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            prove_sumcheck([fv.rand_vector(8, rng), fv.rand_vector(16, rng)],
                           Transcript())

    def test_tables_not_mutated(self, rng):
        t = fv.rand_vector(16, rng)
        before = t.copy()
        prove_sumcheck([t], Transcript())
        assert (t == before).all()

    def test_proof_size_accounting(self, rng):
        tables = [fv.rand_vector(16, rng)] * 2
        proof, _ = prove_sumcheck(tables, Transcript())
        # 4 rounds x 3 evals + 2 finals, 8 bytes each.
        assert proof.size_bytes() == (4 * 3 + 2) * 8

    def test_sumcheck_cost_scales(self):
        small = sumcheck_cost(1 << 10, 3)
        large = sumcheck_cost(1 << 14, 3)
        assert 15 < large.mul / small.mul < 17  # ~linear in n
        assert large.mem_bytes > small.mem_bytes


class TestListing1:
    def test_matches_hypercube_sum(self, rng):
        a = [int(x) for x in fv.rand_vector(32, rng)]
        result, rx = sumcheck_dp(a)
        claim = sum(a) % MODULUS
        final = mle_eval(np.array(a, dtype=np.uint64), rx)
        assert verify_sumcheck_dp(claim, result, final)

    def test_round_partial_sums(self, rng):
        a = [int(x) for x in fv.rand_vector(16, rng)]
        result, _ = sumcheck_dp(a)
        y0, y1 = result[0]
        assert (y0 + y1) % MODULUS == sum(a) % MODULUS
        # Round 1 splits bottom half vs top half.
        assert y0 == sum(a[:8]) % MODULUS
        assert y1 == sum(a[8:]) % MODULUS

    def test_wrong_claim_rejected(self, rng):
        a = [int(x) for x in fv.rand_vector(16, rng)]
        result, rx = sumcheck_dp(a)
        final = mle_eval(np.array(a, dtype=np.uint64), rx)
        assert not verify_sumcheck_dp((sum(a) + 1) % MODULUS, result, final)

    def test_wrong_final_rejected(self, rng):
        a = [int(x) for x in fv.rand_vector(16, rng)]
        result, rx = sumcheck_dp(a)
        final = mle_eval(np.array(a, dtype=np.uint64), rx)
        assert not verify_sumcheck_dp(sum(a) % MODULUS, result,
                                      (final + 1) % MODULUS)

    def test_challenges_recomputable(self, rng):
        a = [int(x) for x in fv.rand_vector(16, rng)]
        result, rx = sumcheck_dp(a)
        assert final_challenge_point(result) == rx

    def test_equivalent_to_generic_sumcheck(self, rng):
        """Listing 1 and the vectorized degree-1 sumcheck reduce the same
        claim (they differ only in challenge derivation)."""
        a = fv.rand_vector(32, rng)
        claim = fv.vsum(a)
        # Generic path.
        proof, chal = prove_sumcheck([a], Transcript())
        assert verify_sumcheck(claim, proof, 1, Transcript()).ok
        # Listing-1 path.
        result, rx = sumcheck_dp([int(x) for x in a])
        assert verify_sumcheck_dp(claim, result, mle_eval(a, rx))
        # Both reduce to A~ at their respective challenge points.
        assert proof.final_values[0] == mle_eval(a, chal)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            sumcheck_dp([1, 2, 3])
