"""Run every example script end to end — the examples double as
integration tests of the public API."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))

EXPECTED_MARKERS = {
    "quickstart.py": "proof verified",
    "photo_crop.py": "crop proof verified",
    "sealed_bid_auction.py": "auction proof verified",
    "verifiable_database.py": "transaction batch proof verified",
    "private_membership.py": "membership proof verified",
    "accelerator_explorer.py": "Pareto frontier",
}


def test_every_example_has_expectations():
    assert {p.name for p in EXAMPLES} == set(EXPECTED_MARKERS)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run([sys.executable, str(script)],
                            capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_MARKERS[script.name] in result.stdout, \
        result.stdout[-2000:]
