"""Invariant tests for the NoCap simulator: the model must respond to
configuration changes the way real hardware would, for *any* setting —
these guard the design-space sweeps against modeling artifacts."""

import pytest

from repro.nocap import DEFAULT_CONFIG, NoCapConfig, NoCapSimulator

N = 1 << 24


def _time(cfg: NoCapConfig, n: int = N) -> float:
    return NoCapSimulator(cfg).simulate(n).total_seconds


class TestMonotonicity:
    @pytest.mark.parametrize("resource", ["arith", "hash", "ntt", "hbm", "rf"])
    def test_more_of_any_resource_never_hurts(self, resource):
        times = [_time(DEFAULT_CONFIG.scale(**{resource: f}))
                 for f in (0.5, 1.0, 2.0, 4.0)]
        for slower, faster in zip(times[1:], times):
            assert slower <= faster * 1.0001, resource

    def test_time_increases_with_statement_size(self):
        sim = NoCapSimulator(DEFAULT_CONFIG)
        times = [sim.simulate(1 << log_n).total_seconds
                 for log_n in range(18, 31, 2)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_frequency_scaling(self):
        """Doubling the clock can at most double compute-bound speed and
        never increases time."""
        import dataclasses

        fast = dataclasses.replace(DEFAULT_CONFIG, frequency_hz=2e9)
        t_base = _time(DEFAULT_CONFIG)
        t_fast = _time(fast)
        assert t_base / 2 <= t_fast <= t_base

    def test_repetitions_scale_sumcheck_time(self):
        sim = NoCapSimulator(DEFAULT_CONFIG)
        one = sim.simulate(N, repetitions=1)
        three = sim.simulate(N, repetitions=3)
        assert three.time_by_family["sumcheck"] == pytest.approx(
            3 * one.time_by_family["sumcheck"], rel=0.01)
        # Commitment work is repetition-independent.
        assert three.time_by_family["rs_encode"] == pytest.approx(
            one.time_by_family["rs_encode"], rel=0.01)


class TestConservation:
    def test_family_times_sum_to_total(self):
        rep = NoCapSimulator(DEFAULT_CONFIG).simulate(N)
        assert sum(rep.time_by_family.values()) == pytest.approx(
            rep.total_seconds)

    def test_task_times_sum_to_total(self):
        rep = NoCapSimulator(DEFAULT_CONFIG).simulate(N)
        assert sum(t for _, _, t in rep.task_times) == pytest.approx(
            rep.total_seconds)

    def test_busy_cycles_bounded_by_makespan(self):
        rep = NoCapSimulator(DEFAULT_CONFIG).simulate(N)
        for unit, busy in rep.busy_cycles_by_unit.items():
            assert busy <= rep.total_cycles * 1.0001, unit

    def test_fractions_sum_to_one(self):
        rep = NoCapSimulator(DEFAULT_CONFIG).simulate(N)
        assert sum(rep.time_fractions().values()) == pytest.approx(1.0)
        assert sum(rep.traffic_fractions().values()) == pytest.approx(1.0)


class TestExtremes:
    def test_infinite_bandwidth_makes_compute_bound(self):
        huge_bw = DEFAULT_CONFIG.scale(hbm=1e6)
        rep = NoCapSimulator(huge_bw).simulate(N)
        # Only the PCIe host-ingest term (modeled as equivalent HBM time)
        # remains; real HBM demand vanishes.
        assert rep.memory_utilization() < 0.05
        # Time no longer responds to bandwidth.
        assert _time(huge_bw.scale(hbm=2.0)) == pytest.approx(
            rep.total_seconds)

    def test_tiny_bandwidth_memory_bound(self):
        starved = DEFAULT_CONFIG.scale(hbm=0.01)
        rep = NoCapSimulator(starved).simulate(N)
        assert rep.memory_utilization() > 0.5

    def test_tiny_statement_still_positive(self):
        rep = NoCapSimulator(DEFAULT_CONFIG).simulate(1 << 12)
        assert rep.total_seconds > 0
