"""Direct tests for the bit-vector gadget library behind AES and SHA."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.r1cs import Circuit
from repro.r1cs.gadgets import (
    add_mod,
    assert_bits_equal,
    bits_and,
    bits_not,
    bits_rotr,
    bits_select,
    bits_shr,
    bits_to_field,
    bits_value,
    bits_xor,
    const_bits,
    public_bits,
    witness_bits,
)

u32 = st.integers(0, (1 << 32) - 1)
u8 = st.integers(0, 255)


def _satisfied(circuit):
    r1cs, pub, wit = circuit.compile()
    return r1cs.is_satisfied(r1cs.assemble_z(pub, wit))


class TestAllocation:
    def test_witness_bits_roundtrip(self):
        c = Circuit()
        bits = witness_bits(c, 0b1011_0010, 8)
        assert bits_value(bits) == 0b1011_0010
        assert _satisfied(c)

    def test_public_bits(self):
        c = Circuit()
        bits = public_bits(c, 5, 4)
        assert bits_value(bits) == 5
        assert _satisfied(c)

    def test_const_bits_free(self):
        c = Circuit()
        bits = const_bits(c, 0xAB, 8)
        assert bits_value(bits) == 0xAB
        assert c.num_constraints == 0

    def test_overflow_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            witness_bits(c, 256, 8)


class TestBitwiseOps:
    @given(u8, u8)
    def test_xor(self, a, b):
        c = Circuit()
        out = bits_xor(c, witness_bits(c, a, 8), witness_bits(c, b, 8))
        assert bits_value(out) == a ^ b

    @given(u8, u8)
    def test_and(self, a, b):
        c = Circuit()
        out = bits_and(c, witness_bits(c, a, 8), witness_bits(c, b, 8))
        assert bits_value(out) == a & b

    @given(u8)
    def test_not(self, a):
        c = Circuit()
        out = bits_not(c, witness_bits(c, a, 8))
        assert bits_value(out) == a ^ 0xFF

    def test_xor_with_constant_costs_nothing(self):
        c = Circuit()
        a = witness_bits(c, 0x5A, 8)
        before = c.num_constraints
        out = bits_xor(c, a, const_bits(c, 0x0F, 8))
        assert bits_value(out) == 0x5A ^ 0x0F
        assert c.num_constraints == before

    @given(u32, st.integers(0, 31))
    def test_rotr_matches_reference(self, x, k):
        c = Circuit()
        bits = witness_bits(c, x, 32)
        out = bits_rotr(bits, k)
        want = ((x >> k) | (x << (32 - k))) & 0xFFFFFFFF
        assert bits_value(out) == want

    @given(u32, st.integers(0, 32))
    def test_shr_matches_reference(self, x, k):
        c = Circuit()
        bits = witness_bits(c, x, 32)
        out = bits_shr(c, bits, k)
        assert bits_value(out) == x >> k

    def test_rotations_are_free(self):
        c = Circuit()
        bits = witness_bits(c, 0x1234, 16)
        before = c.num_constraints
        bits_rotr(bits, 5)
        bits_shr(c, bits, 3)
        assert c.num_constraints == before


class TestArithmetic:
    @given(u32, u32)
    def test_add_two(self, a, b):
        c = Circuit()
        out = add_mod(c, [witness_bits(c, a, 32), witness_bits(c, b, 32)], 32)
        assert bits_value(out) == (a + b) & 0xFFFFFFFF
        assert _satisfied(c)

    def test_add_five_words(self):
        rng = random.Random(1)
        words = [rng.getrandbits(32) for _ in range(5)]
        c = Circuit()
        out = add_mod(c, [witness_bits(c, w, 32) for w in words], 32)
        assert bits_value(out) == sum(words) & 0xFFFFFFFF
        assert _satisfied(c)

    def test_add_width_mismatch(self):
        c = Circuit()
        with pytest.raises(ValueError):
            add_mod(c, [witness_bits(c, 1, 8), witness_bits(c, 1, 16)], 8)

    def test_add_empty(self):
        c = Circuit()
        with pytest.raises(ValueError):
            add_mod(c, [], 8)


class TestSelectAndEquality:
    def test_bits_select(self):
        c = Circuit()
        cond = c.witness(1)
        c.assert_bool(cond)
        t = witness_bits(c, 0xAA, 8)
        f = witness_bits(c, 0x55, 8)
        assert bits_value(bits_select(c, cond, t, f)) == 0xAA
        cond0 = c.witness(0)
        c.assert_bool(cond0)
        assert bits_value(bits_select(c, cond0, t, f)) == 0x55
        assert _satisfied(c)

    def test_assert_bits_equal(self):
        c = Circuit()
        a = witness_bits(c, 77, 8)
        b = witness_bits(c, 77, 8)
        assert_bits_equal(c, a, b)
        assert _satisfied(c)

    def test_assert_bits_equal_fails_on_mismatch(self):
        c = Circuit()
        a = witness_bits(c, 77, 8)
        b = witness_bits(c, 78, 8)
        assert_bits_equal(c, a, b)
        assert not _satisfied(c)

    def test_bits_to_field(self):
        c = Circuit()
        bits = witness_bits(c, 300, 12)
        assert bits_to_field(c, bits).value == 300
