"""Tests for the Goldilocks field: scalar, vectorized, and properties."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field import Fp, goldilocks as gl
from repro.field import vector as fv

felt = st.integers(0, gl.MODULUS - 1)

EDGE_VALUES = [0, 1, 2, (1 << 32) - 1, 1 << 32, (1 << 32) + 1,
               (1 << 63), gl.MODULUS - 2, gl.MODULUS - 1]


class TestScalar:
    def test_modulus_structure(self):
        assert gl.MODULUS == 2**64 - 2**32 + 1
        # p - 1 = 2^32 * (2^32 - 1): 2-adicity 32.
        assert (gl.MODULUS - 1) % (1 << 32) == 0
        assert ((gl.MODULUS - 1) >> 32) % 2 == 1

    def test_generator_order(self):
        # 7 generates the full multiplicative group: it is not a square
        # and has no small-order factor.
        assert pow(gl.GENERATOR, (gl.MODULUS - 1) // 2, gl.MODULUS) != 1

    @given(felt, felt)
    def test_add_sub_inverse_ops(self, a, b):
        assert gl.sub(gl.add(a, b), b) == a
        assert gl.add(gl.sub(a, b), b) == a

    @given(felt, felt)
    def test_mul_matches_bigint(self, a, b):
        assert gl.mul(a, b) == a * b % gl.MODULUS

    @given(felt, felt, felt)
    def test_distributivity(self, a, b, c):
        left = gl.mul(a, gl.add(b, c))
        right = gl.add(gl.mul(a, b), gl.mul(a, c))
        assert left == right

    @given(felt.filter(lambda x: x != 0))
    def test_inverse(self, a):
        assert gl.mul(a, gl.inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gl.inv(0)

    def test_edge_value_products(self):
        for a in EDGE_VALUES:
            for b in EDGE_VALUES:
                assert gl.mul(a, b) == a * b % gl.MODULUS, (a, b)

    def test_neg(self):
        assert gl.neg(0) == 0
        assert gl.neg(1) == gl.MODULUS - 1
        for a in EDGE_VALUES:
            assert gl.add(a, gl.neg(a)) == 0

    def test_batch_inv_matches_scalar(self):
        vals = [3, 7, gl.MODULUS - 5, 1 << 40]
        assert gl.batch_inv(vals) == [gl.inv(v) for v in vals]

    def test_batch_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gl.batch_inv([1, 0, 2])

    def test_root_of_unity_orders(self):
        for log_order in (0, 1, 5, 12, 32):
            order = 1 << log_order
            w = gl.root_of_unity(order)
            assert pow(w, order, gl.MODULUS) == 1
            if order > 1:
                assert pow(w, order // 2, gl.MODULUS) != 1

    def test_root_of_unity_rejects_bad_orders(self):
        with pytest.raises(ValueError):
            gl.root_of_unity(3)
        with pytest.raises(ValueError):
            gl.root_of_unity(1 << 33)


class TestFpWrapper:
    def test_operators(self):
        a, b = Fp(5), Fp(7)
        assert (a + b).value == 12
        assert (a - b).value == gl.MODULUS - 2
        assert (a * b).value == 35
        assert (a / b * b) == a
        assert (-a + a).value == 0
        assert (a ** 3).value == 125
        assert int(Fp(gl.MODULUS + 3)) == 3

    def test_mixed_int_operators(self):
        a = Fp(10)
        assert (a + 5) == Fp(15)
        assert (5 + a) == Fp(15)
        assert (a - 3) == Fp(7)
        assert (3 - a) == Fp(-7)
        assert (2 * a) == Fp(20)
        assert (1 / Fp(2)) * 2 == Fp(1)

    def test_equality_and_hash(self):
        assert Fp(3) == 3
        assert Fp(3) == Fp(gl.MODULUS + 3)
        assert hash(Fp(3)) == hash(Fp(3))
        assert bool(Fp(0)) is False
        assert bool(Fp(2)) is True


class TestVectorized:
    def test_matches_scalar_on_random(self, rng):
        a = fv.rand_vector(512, rng)
        b = fv.rand_vector(512, rng)
        for op_v, op_s in ((fv.add, gl.add), (fv.sub, gl.sub), (fv.mul, gl.mul)):
            got = op_v(a, b)
            want = [op_s(int(x), int(y)) for x, y in zip(a, b)]
            assert got.tolist() == want

    def test_edge_grid(self):
        grid = np.array(EDGE_VALUES, dtype=np.uint64)
        for b in EDGE_VALUES:
            bv = np.full(len(EDGE_VALUES), b, dtype=np.uint64)
            assert fv.mul(grid, bv).tolist() == [a * b % gl.MODULUS for a in EDGE_VALUES]
            assert fv.add(grid, bv).tolist() == [(a + b) % gl.MODULUS for a in EDGE_VALUES]
            assert fv.sub(grid, bv).tolist() == [(a - b) % gl.MODULUS for a in EDGE_VALUES]

    def test_neg(self, rng):
        a = fv.rand_vector(64, rng)
        assert (fv.add(a, fv.neg(a)) == 0).all()

    def test_inv_vector(self, rng):
        a = fv.rand_vector(64, rng)
        a = np.where(a == 0, np.uint64(1), a)
        inv = fv.inv_vector(a)
        assert (fv.mul(a, inv) == 1).all()

    def test_inv_vector_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            fv.inv_vector(np.array([1, 0], dtype=np.uint64))

    def test_pow_vector(self, rng):
        a = fv.rand_vector(16, rng)
        got = fv.pow_vector(a, 5)
        assert got.tolist() == [pow(int(x), 5, gl.MODULUS) for x in a]
        assert (fv.pow_vector(a, 0) == 1).all()

    def test_vsum_and_dot_exact(self):
        # Values chosen to overflow uint64 if summed naively.
        a = np.full(1000, gl.MODULUS - 1, dtype=np.uint64)
        assert fv.vsum(a) == 1000 * (gl.MODULUS - 1) % gl.MODULUS
        assert fv.dot(a, a) == 1000 * (gl.MODULUS - 1)**2 % gl.MODULUS

    def test_powers(self):
        got = fv.powers(3, 10)
        assert got.tolist() == [pow(3, i, gl.MODULUS) for i in range(10)]

    def test_mul_scalar(self, rng):
        a = fv.rand_vector(32, rng)
        got = fv.mul_scalar(a, gl.MODULUS - 2)
        assert got.tolist() == [int(x) * (gl.MODULUS - 2) % gl.MODULUS for x in a]

    def test_asfield_canonicalizes(self):
        arr = np.array([gl.MODULUS, gl.MODULUS + 5], dtype=np.uint64)
        assert fv.asfield(arr).tolist() == [0, 5]
        assert fv.asfield([gl.MODULUS + 1, -1]).tolist() == [1, gl.MODULUS - 1]

    def test_rand_vector_in_range(self, rng):
        a = fv.rand_vector(10000, rng)
        assert (a < np.uint64(gl.MODULUS)).all()

    @given(st.lists(felt, min_size=1, max_size=50),
           st.lists(felt, min_size=1, max_size=50))
    def test_mul_commutative_property(self, xs, ys):
        n = min(len(xs), len(ys))
        a = np.array(xs[:n], dtype=np.uint64)
        b = np.array(ys[:n], dtype=np.uint64)
        assert (fv.mul(a, b) == fv.mul(b, a)).all()
