"""Tests for the five paper workload circuits and the synthetic generator."""

import hashlib
import random

import pytest

from repro.field.goldilocks import MODULUS
from repro.workloads import (
    PAPER_WORKLOADS,
    WORKLOADS_BY_NAME,
    Access,
    Transaction,
    aes_circuit,
    aes_demo_circuit,
    auction_circuit,
    auction_demo_circuit,
    litmus_circuit,
    litmus_demo_circuit,
    random_transactions,
    rsa_circuit,
    rsa_demo_circuit,
    sha_circuit,
    sha_demo_circuit,
    synthetic_r1cs,
)
from repro.workloads.aes_reference import aes128_encrypt_block, key_expansion
from repro.workloads.sha256_reference import IV, compress, sha256


def _satisfied(circuit):
    r1cs, pub, wit = circuit.compile()
    return r1cs.is_satisfied(r1cs.assemble_z(pub, wit))


class TestAesReference:
    def test_fips197_vector(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        ct = aes128_encrypt_block(list(pt), list(key))
        assert bytes(ct).hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_key_expansion_first_round(self):
        key = list(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        rks = key_expansion(key)
        assert len(rks) == 11
        assert bytes(rks[1]).hex() == "a0fafe1788542cb123a339392a6c7605"

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            aes128_encrypt_block([0] * 15, [0] * 16)


class TestAesCircuit:
    def test_reduced_round_satisfied(self):
        circuit, expected = aes_demo_circuit(num_blocks=1, num_rounds=2)
        assert _satisfied(circuit)
        assert len(expected) == 1

    def test_circuit_matches_reference(self):
        rng = random.Random(7)
        key = [rng.randrange(256) for _ in range(16)]
        block = [rng.randrange(256) for _ in range(16)]
        circuit, expected = aes_circuit([block], key, num_rounds=3)
        assert expected[0] == aes128_encrypt_block(block, key, 3)
        assert _satisfied(circuit)

    def test_multi_block(self):
        circuit, expected = aes_demo_circuit(num_blocks=2, num_rounds=1)
        assert len(expected) == 2
        assert _satisfied(circuit)

    def test_constraints_scale_with_blocks(self):
        c1, _ = aes_demo_circuit(num_blocks=1, num_rounds=1)
        c2, _ = aes_demo_circuit(num_blocks=2, num_rounds=1)
        assert c2.num_constraints > 1.5 * c1.num_constraints

    def test_wrong_ciphertext_unsatisfiable(self):
        rng = random.Random(8)
        key = [rng.randrange(256) for _ in range(16)]
        block = [rng.randrange(256) for _ in range(16)]
        circuit, expected = aes_circuit([block], key, num_rounds=2)
        r1cs, pub, wit = circuit.compile()
        z = r1cs.assemble_z(pub, wit)
        assert r1cs.is_satisfied(z)
        # Corrupt a public ciphertext byte: 16 pt + 16 ct wires after the 1.
        pub2 = pub.copy()
        pub2[1 + 16] = (int(pub2[1 + 16]) + 1) % 256
        assert not r1cs.is_satisfied(r1cs.assemble_z(pub2, wit))


class TestShaReference:
    @pytest.mark.parametrize("msg", [b"", b"abc", b"a" * 64, b"x" * 1000])
    def test_matches_hashlib(self, msg):
        assert sha256(msg) == hashlib.sha256(msg).digest()

    def test_compress_shape_checks(self):
        with pytest.raises(ValueError):
            compress(IV, [0] * 15)


class TestShaCircuit:
    def test_reduced_round_satisfied(self):
        circuit, digest = sha_demo_circuit(num_blocks=1, num_rounds=8)
        assert _satisfied(circuit)
        assert len(digest) == 8

    def test_full_compression_satisfied(self):
        circuit, digest = sha_demo_circuit(num_blocks=1, num_rounds=64)
        assert _satisfied(circuit)

    def test_digest_matches_reference(self):
        rng = random.Random(5)
        block = [rng.getrandbits(32) for _ in range(16)]
        circuit, digest = sha_circuit([block], num_rounds=64)
        assert digest == compress(IV, block, 64)

    def test_chained_blocks(self):
        rng = random.Random(6)
        blocks = [[rng.getrandbits(32) for _ in range(16)] for _ in range(2)]
        circuit, digest = sha_circuit(blocks, num_rounds=16)
        state = list(IV)
        for b in blocks:
            state = compress(state, b, 16)
        assert digest == state
        assert _satisfied(circuit)

    def test_wrong_digest_unsatisfiable(self):
        circuit, _ = sha_demo_circuit(num_blocks=1, num_rounds=8)
        r1cs, pub, wit = circuit.compile()
        pub2 = pub.copy()
        pub2[1] = (int(pub2[1]) + 1) % MODULUS
        assert not r1cs.is_satisfied(r1cs.assemble_z(pub2, wit))


class TestRsaCircuit:
    def test_demo_satisfied(self):
        circuit, cts = rsa_demo_circuit(num_messages=1, modulus_bits=64,
                                        exponent=17)
        assert _satisfied(circuit)

    def test_ciphertexts_match_pow(self):
        modulus = 0xC34F_7281_9D01  # odd composite
        msgs = [12345, 67890]
        circuit, cts = rsa_circuit(msgs, modulus, exponent=5)
        assert cts == [pow(m, 5, modulus) for m in msgs]
        assert _satisfied(circuit)

    def test_message_range_checked(self):
        with pytest.raises(ValueError):
            rsa_circuit([10**30], 997, exponent=3)

    def test_constraints_scale_with_messages(self):
        c1, _ = rsa_demo_circuit(num_messages=1, modulus_bits=64, exponent=5)
        c2, _ = rsa_demo_circuit(num_messages=2, modulus_bits=64, exponent=5)
        assert c2.num_constraints > 1.5 * c1.num_constraints


class TestLitmusCircuit:
    def test_demo_satisfied(self):
        circuit, final_table, final_log = litmus_demo_circuit(6, 8)
        assert _satisfied(circuit)

    def test_write_semantics(self):
        txns = [Transaction((Access(addr=2, op=1, value=99),
                             Access(addr=2, op=0, value=0)))]
        circuit, final_table, _ = litmus_circuit(txns, [10, 11, 12, 13])
        assert final_table == [10, 11, 99, 13]
        assert _satisfied(circuit)

    def test_read_leaves_state(self):
        txns = [Transaction((Access(addr=1, op=0, value=0),
                             Access(addr=3, op=0, value=0)))]
        circuit, final_table, _ = litmus_circuit(txns, [5, 6, 7, 8])
        assert final_table == [5, 6, 7, 8]
        assert _satisfied(circuit)

    def test_log_binds_reads(self):
        """Two schedules with the same final table but different reads
        produce different log accumulators."""
        t1 = [Transaction((Access(0, 0, 0), Access(1, 0, 0)))]
        t2 = [Transaction((Access(1, 0, 0), Access(0, 0, 0)))]
        _, _, log1 = litmus_circuit(t1, [4, 5])
        _, _, log2 = litmus_circuit(t2, [4, 5])
        assert log1 != log2

    def test_tampered_final_table_unsatisfiable(self):
        circuit, final_table, _ = litmus_demo_circuit(4, 4)
        r1cs, pub, wit = circuit.compile()
        pub2 = pub.copy()
        pub2[1 + 4] = (int(pub2[1 + 4]) + 1) % MODULUS  # final table entry
        assert not r1cs.is_satisfied(r1cs.assemble_z(pub2, wit))

    def test_non_power_of_two_table_rejected(self):
        with pytest.raises(ValueError):
            litmus_circuit([], [1, 2, 3])

    def test_random_transactions_shape(self):
        txns = random_transactions(10, 8)
        assert len(txns) == 10
        for t in txns:
            for a in t.accesses:
                assert 0 <= a.addr < 8
                assert a.op in (0, 1)


class TestAuctionCircuit:
    def test_demo_satisfied(self):
        circuit, amount = auction_demo_circuit(8, 12)
        assert _satisfied(circuit)

    def test_winner_must_hold_max(self):
        with pytest.raises(ValueError):
            auction_circuit([10, 50, 20], winner=0)

    def test_correct_winner_accepted(self):
        circuit, amount = auction_circuit([10, 50, 20], winner=1)
        assert amount == 50
        assert _satisfied(circuit)

    def test_bid_range_checked(self):
        with pytest.raises(ValueError):
            auction_circuit([1 << 40], winner=0, bid_bits=32)

    def test_tampered_amount_unsatisfiable(self):
        circuit, amount = auction_circuit([10, 50, 20], winner=1,
                                          bid_bits=8)
        r1cs, pub, wit = circuit.compile()
        pub2 = pub.copy()
        pub2[2] = amount + 1  # announced price
        assert not r1cs.is_satisfied(r1cs.assemble_z(pub2, wit))

    def test_ties_allowed(self):
        circuit, amount = auction_circuit([50, 50, 20], winner=0, bid_bits=8)
        assert _satisfied(circuit)


class TestSynthetic:
    @pytest.mark.parametrize("log_size", [2, 4, 8, 10])
    def test_satisfiable(self, log_size):
        r1cs, pub, wit = synthetic_r1cs(log_size, band=8, seed=log_size)
        assert r1cs.is_satisfied(r1cs.assemble_z(pub, wit))

    def test_banded_structure(self):
        r1cs, _, _ = synthetic_r1cs(10, band=16, seed=1)
        assert r1cs.a.bandwidth() <= 16
        assert r1cs.b.bandwidth() <= 16

    def test_sparse(self):
        r1cs, _, _ = synthetic_r1cs(10, nnz_per_row=3, seed=2)
        n = r1cs.shape.num_constraints
        assert r1cs.a.nnz <= 3 * n
        assert r1cs.c.nnz == n

    def test_deterministic(self):
        a1 = synthetic_r1cs(6, seed=9)[0]
        a2 = synthetic_r1cs(6, seed=9)[0]
        assert a1.a.entries() == a2.a.entries()

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            synthetic_r1cs(1)


class TestWorkloadSpecs:
    def test_table3_rows_present(self):
        assert [w.name for w in PAPER_WORKLOADS] == \
            ["AES", "SHA", "RSA", "Litmus", "Auction"]

    def test_table3_values(self):
        assert WORKLOADS_BY_NAME["AES"].raw_constraints == 16_000_000
        assert WORKLOADS_BY_NAME["Auction"].raw_constraints == 550_000_000
        assert WORKLOADS_BY_NAME["Litmus"].paper_proof_mb == 10.9

    def test_padded_sizes(self):
        # Table IV's CPU doubling pattern implies these padded exponents.
        expect = {"AES": 24, "SHA": 25, "RSA": 27, "Litmus": 28, "Auction": 30}
        for w in PAPER_WORKLOADS:
            assert w.log_padded == expect[w.name], w.name

    def test_demo_builders_produce_satisfiable_circuits(self):
        for w in PAPER_WORKLOADS:
            circuit = w.build_demo()
            assert _satisfied(circuit), w.name


class TestFullAes:
    def test_full_ten_round_fips_vector(self):
        """The complete AES-128 (all 10 rounds, real S-boxes and key
        schedule) satisfies its circuit on the FIPS-197 test vector."""
        key = list(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        pt = list(bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
        circuit, expected = aes_circuit([pt], key, num_rounds=10)
        assert bytes(expected[0]).hex() == "3925841d02dc09fbdc118597196a0b32"
        r1cs, pub, wit = circuit.compile()
        assert r1cs.is_satisfied(r1cs.assemble_z(pub, wit))
        # Size is in the ballpark of the paper's per-block cost
        # (16M constraints / 1,000 blocks = 16k; our bitwise
        # arithmetization with interpolated S-boxes is ~60k).
        assert 30_000 < circuit.num_constraints < 100_000
