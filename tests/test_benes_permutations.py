"""Tests for the Benes network and the wide-permutation decompositions."""

import random

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nocap.benes import (
    apply_routing,
    control_bits_per_element,
    num_stages,
    permute,
    route,
)
from repro.nocap.permutations import (
    SHUFFLE_LANES,
    grouped_interleave,
    grouped_uninterleave,
    wide_rotate,
)


class TestBenesRouting:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64, 128])
    def test_random_permutations_route(self, n, pyrng):
        for _ in range(4):
            perm = list(range(n))
            pyrng.shuffle(perm)
            data = np.arange(n)
            got = permute(perm, data)
            want = np.empty(n, dtype=int)
            want[perm] = data
            assert (got == want).all()

    def test_identity(self):
        data = np.arange(16)
        assert (permute(list(range(16)), data) == data).all()

    def test_reversal(self):
        n = 32
        perm = list(reversed(range(n)))
        got = permute(perm, np.arange(n))
        assert (got == np.arange(n)[::-1]).all()

    def test_cyclic_shift(self):
        n = 64
        shift = 17
        perm = [(i + shift) % n for i in range(n)]
        got = permute(perm, np.arange(n))
        assert (got == np.roll(np.arange(n), shift)).all()

    def test_routing_reusable(self, pyrng):
        n = 16
        perm = list(range(n))
        pyrng.shuffle(perm)
        routing = route(perm)
        for _ in range(3):
            data = np.array([pyrng.randrange(1000) for _ in range(n)])
            want = np.empty(n, dtype=int)
            want[perm] = data
            assert (apply_routing(routing, data) == want).all()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            route([0, 1, 2])        # not a power of two
        with pytest.raises(ValueError):
            route([0, 0, 1, 1])     # not a permutation
        with pytest.raises(ValueError):
            apply_routing(route([1, 0]), np.arange(4))

    def test_stage_count(self):
        assert num_stages(2) == 1
        assert num_stages(128) == 13
        with pytest.raises(ValueError):
            num_stages(96)

    def test_control_state_matches_paper(self):
        """Sec. IV-B: ~N log2 N control bits; 7 bits per element at N=128."""
        routing = route(list(range(128)))
        n_log_n = 128 * 7
        assert routing.control_bits() <= n_log_n
        assert 6 <= control_bits_per_element(128) <= 7

    @given(st.permutations(list(range(8))))
    def test_routing_property(self, perm):
        data = np.arange(8)
        want = np.empty(8, dtype=int)
        want[list(perm)] = data
        assert (permute(list(perm), data) == want).all()


class TestWidePermutations:
    @pytest.mark.parametrize("n,amount", [(1024, 520), (256, 0), (256, 127),
                                          (256, 128), (512, 511), (128, 5),
                                          (2048, 2047), (1024, 512)])
    def test_rotation_matches_roll(self, n, amount):
        v = np.arange(n)
        got, cost = wide_rotate(v, amount)
        assert (got == np.roll(v, amount)).all()
        assert cost.shuffle_passes == 1
        assert cost.elements == n

    def test_paper_example_520(self):
        """Sec. IV-B: rotation by 520 = 8 (in-lane) + 512 (4 PE rows)."""
        v = np.arange(1024)
        got, cost = wide_rotate(v, 520)
        assert (got == np.roll(v, 520)).all()
        # Each group issues two bank-offset writes (wrapped + unwrapped).
        assert cost.bank_writes == (1024 // SHUFFLE_LANES) * 2

    def test_pure_group_shift_single_write(self):
        _, cost = wide_rotate(np.arange(1024), 512)
        assert cost.bank_writes == 1024 // SHUFFLE_LANES

    def test_rotation_negative_amount_wraps(self):
        v = np.arange(256)
        got, _ = wide_rotate(v, -8)
        assert (got == np.roll(v, -8)).all()

    def test_rotation_invalid_width(self):
        with pytest.raises(ValueError):
            wide_rotate(np.arange(200), 5)

    @pytest.mark.parametrize("g", [0, 1, 3, 4])
    def test_interleave_roundtrip(self, g):
        n = 1 << 7
        v = np.arange(n)
        out, cost = grouped_interleave(v, g)
        assert (grouped_uninterleave(out, g) == v).all()
        assert cost.shuffle_passes == 1

    def test_interleave_semantics(self):
        v = np.arange(16)
        out, _ = grouped_interleave(v, 1)  # chunks of 2
        assert out.tolist() == [0, 1, 4, 5, 8, 9, 12, 13,
                                2, 3, 6, 7, 10, 11, 14, 15]

    def test_interleave_compacts_even_chunks(self):
        """The Merkle use: even-indexed chunks (surviving hash outputs)
        become contiguous in the first half."""
        v = np.arange(64)
        out, _ = grouped_interleave(v, 2)
        evens = v.reshape(-1, 4)[0::2].ravel()
        assert (out[:32] == evens).all()

    def test_interleave_invalid_width(self):
        with pytest.raises(ValueError):
            grouped_interleave(np.arange(12), 3)
