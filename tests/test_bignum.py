"""Tests for the multi-precision R1CS gadgets behind the RSA benchmark."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.r1cs import Circuit
from repro.r1cs.bignum import (
    LIMB_BITS,
    BigNum,
    assert_less_than_const,
    modexp,
    mulmod,
)


def _compiles_satisfied(circuit):
    r1cs, pub, wit = circuit.compile()
    return r1cs.is_satisfied(r1cs.assemble_z(pub, wit))


class TestBigNum:
    def test_roundtrip_value(self):
        c = Circuit()
        n = BigNum.witness(c, 0x1234_5678_9ABC, 4)
        assert n.value() == 0x1234_5678_9ABC

    def test_limb_decomposition(self):
        c = Circuit()
        n = BigNum.witness(c, 0x0003_0002_0001, 4)
        assert [int(w.value) for w in n.limbs] == [1, 2, 3, 0]

    def test_overflow_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            BigNum.witness(c, 1 << 64, 4)

    def test_negative_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            BigNum.witness(c, -1, 4)

    def test_assert_equal(self):
        c = Circuit()
        a = BigNum.witness(c, 12345, 2)
        b = BigNum.witness(c, 12345, 2)
        a.assert_equal(b)
        assert _compiles_satisfied(c)


class TestMulMod:
    @given(st.integers(0, (1 << 48) - 1), st.integers(0, (1 << 48) - 1))
    def test_matches_python(self, a, b):
        modulus = (1 << 48) + 1  # fits 4 limbs comfortably? 49 bits -> 4 limbs
        a %= modulus
        b %= modulus
        c = Circuit()
        an = BigNum.witness(c, a, 4)
        bn = BigNum.witness(c, b, 4)
        r = mulmod(c, an, bn, modulus)
        assert r.value() == a * b % modulus
        assert _compiles_satisfied(c)

    def test_zero_operand(self):
        modulus = 1000003
        c = Circuit()
        r = mulmod(c, BigNum.witness(c, 0, 2), BigNum.witness(c, 999, 2),
                   modulus)
        assert r.value() == 0
        assert _compiles_satisfied(c)

    def test_max_operands(self):
        modulus = (1 << 32) - 5
        a = b = modulus - 1
        c = Circuit()
        r = mulmod(c, BigNum.witness(c, a, 2), BigNum.witness(c, b, 2), modulus)
        assert r.value() == a * b % modulus
        assert _compiles_satisfied(c)

    def test_limb_mismatch_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            mulmod(c, BigNum.witness(c, 1, 2), BigNum.witness(c, 1, 3), 97)

    def test_cheating_witness_breaks_constraints(self):
        """Tampering the remainder after synthesis must unsatisfy the system."""
        modulus = 1000003
        c = Circuit()
        a = BigNum.witness(c, 777, 2)
        b = BigNum.witness(c, 888, 2)
        r = mulmod(c, a, b, modulus)
        r1cs, pub, wit = c.compile()
        z = r1cs.assemble_z(pub, wit)
        assert r1cs.is_satisfied(z)
        # Flip the low limb of r in the witness.
        low_limb_var = r.limbs[0].lc
        (var_index,) = low_limb_var.terms.keys()
        half = r1cs.shape.half
        z2 = z.copy()
        z2[half + var_index - c._num_public] ^= 1
        assert not r1cs.is_satisfied(z2)


class TestAssertLess:
    def test_holds(self):
        c = Circuit()
        a = BigNum.witness(c, 500, 2)
        assert_less_than_const(c, a, 501)
        assert _compiles_satisfied(c)

    def test_violation_raises_at_synthesis(self):
        c = Circuit()
        a = BigNum.witness(c, 501, 2)
        with pytest.raises(ValueError):
            assert_less_than_const(c, a, 501)


class TestModExp:
    @pytest.mark.parametrize("exponent", [1, 2, 3, 17, 65537])
    def test_matches_pow(self, exponent):
        rng = random.Random(exponent)
        modulus = 0xFFFF_FFFB  # prime < 2^32
        base = rng.randrange(1, modulus)
        c = Circuit()
        b = BigNum.witness(c, base, 2)
        r = modexp(c, b, exponent, modulus)
        assert r.value() == pow(base, exponent, modulus)
        assert _compiles_satisfied(c)

    def test_bad_exponent_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            modexp(c, BigNum.witness(c, 2, 2), 0, 97)

    def test_constraint_count_scales_with_exponent_bits(self):
        modulus = 0xFFFF_FFFB
        counts = []
        for e in (3, 17, 257):
            c = Circuit()
            modexp(c, BigNum.witness(c, 5, 2), e, modulus)
            counts.append(c.num_constraints)
        assert counts[0] < counts[1] < counts[2]
