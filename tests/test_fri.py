"""Tests for the FRI low-degree test (the STARK-family primitive)."""

import copy

import numpy as np
import pytest

from repro.field import vector as fv
from repro.field.goldilocks import MODULUS
from repro.hashing import Transcript
from repro.hashing.fieldhash import hash_elements
from repro.hashing.merkle import MerkleTree
from repro.ntt.roots import primitive_root
from repro.pcs.fri import (
    FriParams,
    FriProof,
    FriProver,
    FriQueryStep,
    FriVerifier,
    _fold_layer,
    fri_prover_tasks,
)

PARAMS = FriParams(num_queries=20)


def _roundtrip(n, rng, params=PARAMS):
    coeffs = [int(x) for x in fv.rand_vector(n, rng)]
    proof = FriProver(params).prove(coeffs, Transcript())
    return coeffs, proof


class TestFolding:
    def test_fold_preserves_low_degree(self, rng):
        """Folding a degree-<n codeword yields a degree-<n/2 codeword."""
        from repro.ntt.polymul import poly_eval_domain
        from repro.ntt.radix2 import intt

        coeffs = fv.rand_vector(16, rng)
        values = poly_eval_domain(coeffs, 64)
        beta = 12345
        folded = _fold_layer(values, beta, primitive_root(64))
        back = intt(folded)
        assert not back[8:].any()  # degree < 8

    def test_fold_combines_even_odd(self, rng):
        """folded = even_part + beta * odd_part as polynomials."""
        from repro.ntt.polymul import poly_eval_domain
        from repro.ntt.radix2 import intt

        coeffs = fv.rand_vector(8, rng)
        values = poly_eval_domain(coeffs, 32)
        beta = 999
        folded_coeffs = intt(_fold_layer(values, beta, primitive_root(32)))
        for k in range(4):
            want = (int(coeffs[2 * k]) + beta * int(coeffs[2 * k + 1])) % MODULUS
            assert int(folded_coeffs[k]) == want


class TestRoundtrip:
    @pytest.mark.parametrize("n", [8, 16, 64, 128])
    def test_honest_prover_accepted(self, n, rng):
        _, proof = _roundtrip(n, rng)
        assert FriVerifier(PARAMS).verify(n, proof, Transcript())

    def test_non_power_of_two_degree(self, rng):
        coeffs = [int(x) for x in fv.rand_vector(20, rng)]  # pads to 32
        proof = FriProver(PARAMS).prove(coeffs, Transcript())
        assert FriVerifier(PARAMS).verify(20, proof, Transcript())

    def test_proof_size_accounting(self, rng):
        _, proof = _roundtrip(64, rng)
        assert proof.size_bytes() > 0
        fewer = FriParams(num_queries=5)
        _, small = _roundtrip(64, rng, fewer)
        assert small.size_bytes() < proof.size_bytes()


class TestRejections:
    def test_wrong_degree_claim(self, rng):
        _, proof = _roundtrip(64, rng)
        assert not FriVerifier(PARAMS).verify(32, proof, Transcript())
        assert not FriVerifier(PARAMS).verify(128, proof, Transcript())

    def test_tampered_final_coefficients(self, rng):
        _, proof = _roundtrip(64, rng)
        bad = copy.deepcopy(proof)
        bad.final_coefficients[0] = (bad.final_coefficients[0] + 1) % MODULUS
        assert not FriVerifier(PARAMS).verify(64, bad, Transcript())

    def test_tampered_layer_value(self, rng):
        _, proof = _roundtrip(64, rng)
        bad = copy.deepcopy(proof)
        bad.queries[3][0].value = (bad.queries[3][0].value + 1) % MODULUS
        assert not FriVerifier(PARAMS).verify(64, bad, Transcript())

    def test_tampered_sibling(self, rng):
        _, proof = _roundtrip(64, rng)
        bad = copy.deepcopy(proof)
        bad.queries[0][0].sibling = (bad.queries[0][0].sibling + 1) % MODULUS
        assert not FriVerifier(PARAMS).verify(64, bad, Transcript())

    def test_tampered_root(self, rng):
        _, proof = _roundtrip(64, rng)
        bad = copy.deepcopy(proof)
        bad.layer_roots[0] = b"\x00" * 32
        assert not FriVerifier(PARAMS).verify(64, bad, Transcript())

    def test_missing_layer(self, rng):
        _, proof = _roundtrip(64, rng)
        bad = copy.deepcopy(proof)
        bad.layer_roots.pop()
        assert not FriVerifier(PARAMS).verify(64, bad, Transcript())

    def test_high_degree_cheater_caught(self, rng):
        """A prover committing to a *random* word (far from low-degree)
        and truncating the final coefficients is caught by the queries."""
        p = PARAMS
        domain_size = p.blowup * 64
        values = fv.rand_vector(domain_size, rng)  # not a codeword

        # Replay the prover's commit phase on the bogus word.
        transcript = Transcript()
        layers, trees, roots = [], [], []
        gen = primitive_root(domain_size)
        current = values
        bound = 64
        while bound > p.stop_degree:
            tree = MerkleTree([hash_elements(np.array([v], dtype=np.uint64))
                               for v in current])
            layers.append(current)
            trees.append(tree)
            roots.append(tree.root)
            transcript.absorb_digest(b"fri/root", tree.root)
            beta = transcript.challenge_field(b"fri/beta")
            current = _fold_layer(current, beta, gen)
            gen = gen * gen % MODULUS
            bound //= 2
        from repro.ntt.radix2 import intt

        final = [int(c) for c in intt(current)[: p.stop_degree]]  # truncated!
        transcript.absorb_fields(b"fri/final", final)
        indices = transcript.challenge_indices(b"fri/queries",
                                               p.num_queries, domain_size)
        queries = []
        for idx in indices:
            chain, i = [], idx
            for layer, tree in zip(layers, trees):
                half = len(layer) // 2
                i %= half
                chain.append(FriQueryStep(int(layer[i]), int(layer[i + half]),
                                          tree.open(i), tree.open(i + half)))
            queries.append(chain)
        forged = FriProof(roots, final, queries)
        assert not FriVerifier(p).verify(64, forged, Transcript())


class TestNoCapTasks:
    def test_task_families(self):
        tasks = fri_prover_tasks(1 << 20)
        fams = {t.family for t in tasks}
        assert fams == {"rs_encode", "merkle"}

    def test_costs_scale(self):
        small = sum(t.hash_elements for t in fri_prover_tasks(1 << 16))
        large = sum(t.hash_elements for t in fri_prover_tasks(1 << 20))
        assert large > 10 * small

    def test_simulates_on_nocap(self):
        from repro.nocap import NoCapSimulator

        tasks = fri_prover_tasks(1 << 22)
        report = NoCapSimulator().simulate_tasks(tasks, 1 << 22)
        assert report.total_seconds > 0
        assert report.time_by_family["merkle"] > 0


class TestDegenerateBound:
    def test_degree_at_stop_threshold(self, rng):
        """degree_bound == stop_degree: no fold layers; the coefficients
        are the message and the proof is trivially accepted."""
        coeffs = [int(x) for x in fv.rand_vector(PARAMS.stop_degree, rng)]
        proof = FriProver(PARAMS).prove(coeffs, Transcript())
        assert proof.layer_roots == []
        assert FriVerifier(PARAMS).verify(PARAMS.stop_degree, proof,
                                          Transcript())

    def test_degenerate_wrong_bound_rejected(self, rng):
        coeffs = [int(x) for x in fv.rand_vector(PARAMS.stop_degree, rng)]
        proof = FriProver(PARAMS).prove(coeffs, Transcript())
        # Claiming a larger bound requires layers that are absent.
        assert not FriVerifier(PARAMS).verify(64, proof, Transcript())
