"""Tests for the Fig. 7 sensitivity study and Fig. 8 design-space sweep."""

import pytest

from repro.nocap import (
    DEFAULT_CONFIG,
    NoCapConfig,
    design_space_sweep,
    gmean_prover_seconds,
    pareto_frontier,
    sensitivity_sweep,
)
from repro.nocap.area import area_model
from repro.nocap.designspace import DesignPoint

SIZES = [16_000_000, 98_000_000]  # subset for speed; full suite in benches


class TestSensitivity:
    @pytest.fixture(scope="class")
    def points(self):
        return sensitivity_sweep(factors=(0.25, 0.5, 1.0, 2.0, 4.0),
                                 workload_sizes=SIZES)

    def _perf(self, points, resource):
        return {p.factor: p.relative_performance
                for p in points if p.resource == resource}

    def test_baseline_factor_is_unity(self, points):
        for resource in ("arith", "hash", "ntt", "hbm", "rf"):
            assert self._perf(points, resource)[1.0] == pytest.approx(1.0)

    def test_monotonic_in_every_resource(self, points):
        for resource in ("arith", "hash", "ntt", "hbm", "rf"):
            perf = self._perf(points, resource)
            factors = sorted(perf)
            for lo, hi in zip(factors, factors[1:]):
                assert perf[lo] <= perf[hi] + 1e-9, resource

    def test_arith_most_sensitive(self, points):
        """Fig. 7: performance is most sensitive to arithmetic throughput."""
        down = {r: self._perf(points, r)[0.25] for r in
                ("arith", "hash", "ntt", "hbm", "rf")}
        assert down["arith"] == min(down.values())
        up = {r: self._perf(points, r)[4.0] for r in
              ("arith", "hash", "ntt", "hbm", "rf")}
        assert up["arith"] == max(up.values())

    def test_balanced_design_point(self, points):
        """Fig. 7: scaling any one block up brings small benefit; scaling
        any one down degrades quickly."""
        for resource in ("arith", "hash", "ntt", "hbm", "rf"):
            perf = self._perf(points, resource)
            assert perf[4.0] < 1.6, resource      # small upside
            assert perf[0.25] < 0.95, resource    # real downside

    def test_rf_asymmetry(self, points):
        """Fig. 7: growing the RF is negligible; shrinking it is drastic."""
        perf = self._perf(points, "rf")
        assert perf[4.0] < 1.05
        assert perf[0.25] < 0.65

    def test_hash_fu_sized_to_bandwidth(self, points):
        """The 128-lane hash FU matches HBM bandwidth, so more lanes do
        not help (Sec. IV-B)."""
        perf = self._perf(points, "hash")
        assert perf[4.0] < 1.02


class TestDesignSpace:
    @pytest.fixture(scope="class")
    def sweep(self):
        return design_space_sweep(hbm_bytes_per_s=1e12,
                                  arith_factors=(0.5, 1.0, 2.0),
                                  ntt_factors=(0.5, 1.0),
                                  hash_factors=(1.0,),
                                  rf_factors=(0.5, 1.0),
                                  workload_sizes=SIZES)

    def test_sweep_size(self, sweep):
        assert len(sweep) == 3 * 2 * 1 * 2

    def test_pareto_subset_and_sorted(self, sweep):
        frontier = pareto_frontier(sweep)
        assert frontier
        assert all(p in sweep for p in frontier)
        areas = [p.area_mm2 for p in frontier]
        assert areas == sorted(areas)
        times = [p.gmean_seconds for p in frontier]
        assert times == sorted(times, reverse=True)

    def test_no_frontier_point_dominated(self, sweep):
        frontier = pareto_frontier(sweep)
        for p in frontier:
            for q in sweep:
                dominates = (q.area_mm2 <= p.area_mm2
                             and q.gmean_seconds < p.gmean_seconds)
                assert not dominates

    def test_chosen_config_near_frontier(self, sweep):
        """Fig. 8: the paper's configuration is a good area-performance
        tradeoff — no swept point beats it in both axes."""
        chosen_area = area_model(DEFAULT_CONFIG).total
        chosen_time = gmean_prover_seconds(DEFAULT_CONFIG, SIZES)
        for p in sweep:
            assert not (p.area_mm2 < chosen_area * 0.99
                        and p.gmean_seconds < chosen_time * 0.99)

    def test_2tb_bandwidth_frontier_dominates(self):
        """Fig. 8: the 2 TB/s frontier reaches higher performance."""
        one = design_space_sweep(hbm_bytes_per_s=1e12,
                                 arith_factors=(1.0, 2.0),
                                 ntt_factors=(1.0,), hash_factors=(1.0,),
                                 rf_factors=(1.0,), workload_sizes=SIZES)
        two = design_space_sweep(hbm_bytes_per_s=2e12,
                                 arith_factors=(1.0, 2.0),
                                 ntt_factors=(1.0,), hash_factors=(1.0,),
                                 rf_factors=(1.0,), workload_sizes=SIZES)
        assert min(p.gmean_seconds for p in two) < min(
            p.gmean_seconds for p in one)

    def test_performance_property(self):
        p = DesignPoint(config=DEFAULT_CONFIG, area_mm2=45.87,
                        gmean_seconds=0.5)
        assert p.performance == pytest.approx(2.0)
