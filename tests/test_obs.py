"""Tests for the observability layer: spans, counters, exporters, and the
guarantee that tracing never perturbs proofs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.hashing.merkle import MerkleTree
from repro.nocap import NoCapSimulator, TaskRecord
from repro.obs import FAMILIES, METRICS, Tracer
from repro.obs.export import (
    chrome_trace,
    phases_payload,
    validate_chrome_trace,
    validate_phases,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends on the no-op path."""
    obs.set_tracer(None)
    METRICS.enabled = False
    METRICS.reset()
    yield
    obs.set_tracer(None)
    METRICS.enabled = False
    METRICS.reset()


class TestSpans:
    def test_nesting_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("a", "other"):
            with tracer.span("b", "sumcheck"):
                with tracer.span("c", "merkle"):
                    pass
            with tracer.span("d", "spmv"):
                pass
        recs = tracer.records()
        assert [r.name for r in recs] == ["a", "b", "c", "d"]
        assert [r.depth for r in recs] == [0, 1, 2, 1]
        assert [r.parent for r in recs] == [None, 0, 1, 0]
        assert all(r.wall_s is not None and r.wall_s >= 0 for r in recs)
        assert all(r.cpu_s is not None for r in recs)

    def test_unknown_family_coerced_to_other(self):
        tracer = Tracer()
        with tracer.span("x", "not-a-family"):
            pass
        assert tracer.records()[0].family == "other"

    def test_exception_safety(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer", "other"):
                with tracer.span("inner", "merkle"):
                    raise ValueError("boom")
        recs = tracer.records()
        # Both spans closed despite the exception, stack fully unwound.
        assert all(r.wall_s is not None for r in recs)
        assert tracer._stack == []
        assert recs[0].attrs["error"] == "ValueError"
        assert recs[1].attrs["error"] == "ValueError"
        # The tracer still works after the exception.
        with tracer.span("after", "other"):
            pass
        assert tracer.records()[-1].depth == 0

    def test_family_seconds_excludes_children(self):
        tracer = Tracer()
        with tracer.span("root", "other"):
            with tracer.span("child", "merkle"):
                pass
        fam = tracer.family_seconds("root")
        root_rec, child_rec = tracer.records()
        assert fam["merkle"] == pytest.approx(child_rec.wall_s)
        assert fam["other"] == pytest.approx(
            root_rec.wall_s - child_rec.wall_s, abs=1e-9)
        # Exclusive attribution sums back to the inclusive root time.
        assert sum(fam.values()) == pytest.approx(root_rec.wall_s, abs=1e-9)

    def test_module_helpers_noop_when_disabled(self):
        assert obs.get_tracer() is None
        with obs.span("ignored", "merkle"):
            pass  # must not raise, must not record anywhere
        with obs.tracing() as tracer:
            with obs.span("seen", "merkle"):
                pass
        assert obs.get_tracer() is None
        assert [r.name for r in tracer.records()] == ["seen"]
        assert tracer.metrics_snapshot  # finish() ran


class TestCounters:
    def test_disabled_registry_records_nothing(self):
        METRICS.inc("x", 5)
        METRICS.gauge("g", 1)
        assert METRICS.counters() == {}
        assert METRICS.gauges() == {}

    def test_merkle_hash_count_pow2_tree(self):
        # A 2^10-leaf binary tree has 2^10 - 1 = 1023 internal hashes.
        leaves = np.arange(4 * 1024, dtype=np.uint64).reshape(1024, 4)
        METRICS.enabled = True
        MerkleTree(leaves)
        counters = METRICS.counters()
        assert counters["merkle.hashes"] == 1023
        assert counters["merkle.trees"] == 1

    def test_field_mul_batches_counts_calls(self):
        from repro.field import vector as fv

        METRICS.enabled = True
        a = np.arange(8, dtype=np.uint64)
        for _ in range(7):
            fv.mul(a, a)
        assert METRICS.counters()["field.mul_batches"] == 7

    def test_ntt_butterfly_count(self):
        from repro.code.reed_solomon import ReedSolomonCode

        rs = ReedSolomonCode()
        message = np.arange(64, dtype=np.uint64).reshape(4, 16)
        METRICS.enabled = True
        rs.encode(message)
        counters = METRICS.counters()
        # 4 rows, codeword length 4*16=64: (64/2) * log2(64) = 192 each.
        assert counters["ntt.butterflies"] == 4 * (64 // 2) * 6
        assert counters["rs.rows_encoded"] == 4

    def test_span_counter_deltas(self):
        METRICS.enabled = True
        tracer = Tracer(METRICS)
        with tracer.span("outer", "other"):
            METRICS.inc("k", 2)
            with tracer.span("inner", "other"):
                METRICS.inc("k", 3)
        outer, inner = tracer.records()
        assert inner.counters == {"k": 3}
        assert outer.counters == {"k": 5}  # inclusive of children


class TestExport:
    def _traced(self):
        with obs.tracing() as tracer:
            with obs.span("snark.prove", "other"):
                with obs.span("merkle.build", "merkle", leaves=8):
                    pass
        return tracer

    def test_chrome_trace_valid_and_loadable(self, tmp_path):
        tracer = self._traced()
        report = NoCapSimulator().simulate(1 << 12)
        obj = chrome_trace(records=tracer.records(), report=report,
                           metadata={"workload": "test"})
        assert validate_chrome_trace(obj) == []
        # Round-trips through JSON (no numpy scalars or NaNs leaked).
        assert validate_chrome_trace(json.loads(json.dumps(obj))) == []
        events = obj["traceEvents"]
        pids = {e["pid"] for e in events}
        assert pids == {1, 2}  # functional + simulated processes
        x_events = [e for e in events if e["ph"] == "X"]
        assert {e["cat"] for e in x_events} <= set(FAMILIES)
        # Simulated slices are serial: sorted by start within the process.
        sim = [e for e in x_events if e["pid"] == 2]
        assert sim and [e["ts"] for e in sim] == sorted(e["ts"] for e in sim)

    def test_chrome_trace_validator_rejects_corruption(self):
        tracer = self._traced()
        obj = chrome_trace(records=tracer.records())
        assert validate_chrome_trace(obj) == []
        bad = json.loads(json.dumps(obj))
        bad["traceEvents"][2]["dur"] = -1.0
        assert validate_chrome_trace(bad)
        assert validate_chrome_trace({"traceEvents": "nope"})
        assert validate_chrome_trace([1, 2, 3])

    def test_phases_payload_valid(self):
        tracer = self._traced()
        report = NoCapSimulator().simulate(1 << 12)
        obj = phases_payload(tracer=tracer, report=report, workload="test")
        assert validate_phases(obj) == []
        assert validate_phases(json.loads(json.dumps(obj))) == []
        for section in ("functional", "simulated"):
            fracs = obj[section]["fractions_by_family"]
            assert set(fracs) == set(FAMILIES)
            assert sum(fracs.values()) == pytest.approx(1.0)

    def test_phases_validator_rejects_corruption(self):
        tracer = self._traced()
        obj = phases_payload(tracer=tracer, workload="test")
        assert validate_phases(obj) == []
        bad = json.loads(json.dumps(obj))
        bad["functional"]["fractions_by_family"]["merkle"] += 0.5
        assert validate_phases(bad)
        bad = json.loads(json.dumps(obj))
        bad["functional"]["spans"][0]["family"] = "bogus"
        assert validate_phases(bad)
        assert validate_phases({"schema": "wrong"})


class TestExportEdgeCases:
    """Exporter behavior at the boundaries: nothing traced, nothing
    enabled, non-ASCII span names, and multi-worker merged traces."""

    def test_chrome_trace_empty_records(self, tmp_path):
        obj = chrome_trace(records=[])
        # Only process/thread metadata events, no slices — still a
        # structurally valid trace that round-trips through JSON.
        assert [e for e in obj["traceEvents"] if e["ph"] == "X"] == []
        assert all(e["ph"] == "M" for e in obj["traceEvents"])
        assert validate_chrome_trace(json.loads(json.dumps(obj))) == []

    def test_phases_payload_empty_tracer(self):
        tracer = Tracer()
        tracer.finish()
        obj = phases_payload(tracer=tracer, workload="empty")
        assert validate_phases(obj) == []
        fracs = obj["functional"]["fractions_by_family"]
        assert set(fracs) == set(FAMILIES)
        assert obj["functional"]["spans"] == []

    def test_export_from_disabled_tracer_path(self):
        # With no active tracer, module-level spans hit the null path and
        # there is nothing to export; the registry stays empty too.
        with obs.span("invisible", "merkle"):
            pass
        assert obs.get_tracer() is None
        assert METRICS.counters() == {}
        assert METRICS.histograms() == {}
        obj = chrome_trace(records=[])
        assert "traceEvents" in obj

    def test_unicode_span_names_roundtrip(self, tmp_path):
        with obs.tracing() as tracer:
            with obs.span("snark.prove", "other"):
                with obs.span("mérkle—дерево ✓", "merkle", note="ünïcode"):
                    pass
        obj = chrome_trace(records=tracer.records())
        assert validate_chrome_trace(obj) == []
        # Full JSON round-trip preserves the names byte-for-byte.
        back = json.loads(json.dumps(obj, ensure_ascii=False))
        assert validate_chrome_trace(back) == []
        names = {e["name"] for e in back["traceEvents"] if e["ph"] == "X"}
        assert "mérkle—дерево ✓" in names
        payload = phases_payload(tracer=tracer, workload="unicode")
        assert validate_phases(json.loads(json.dumps(payload))) == []

    def test_merged_multi_worker_trace(self):
        parent = Tracer()
        with parent.span("snark.prove", "other"):
            pass
        for fake_pid in (11111, 22222):
            worker = Tracer()
            with worker.span("kernels.encode", "rs_encode"):
                pass
            parent.absorb_worker(fake_pid, worker.records(),
                                 counters={"ntt.butterflies": 192},
                                 start_abs=worker.start_abs)
        parent.finish()
        obj = chrome_trace(records=parent.records(),
                           worker_records=parent.worker_records())
        assert validate_chrome_trace(obj) == []
        x_events = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        pids = {e["pid"] for e in x_events}
        assert len(pids) == 3  # main lane + one lane per worker
        worker_names = [e["name"] for e in x_events if e["pid"] != 1]
        assert worker_names.count("kernels.encode") == 2
        assert validate_chrome_trace(json.loads(json.dumps(obj))) == []


class TestTaskRecord:
    def test_tuple_compat(self):
        rec = TaskRecord(name="t", family="merkle", seconds=1.5,
                         mem_bytes=64.0, bound="memory")
        name, family, seconds = rec
        assert (name, family, seconds) == ("t", "merkle", 1.5)
        assert len(rec) == 3
        assert rec[1] == "merkle"
        assert tuple(rec) == ("t", "merkle", 1.5)

    def test_simulator_emits_bound_classification(self):
        report = NoCapSimulator().simulate(1 << 12)
        assert report.task_times
        for task in report.task_times:
            assert task.family in FAMILIES
            assert task.bound in ("compute", "memory")
            assert task.mem_bytes >= 0
            assert task.fu_cycles  # every task exercises some FU


class TestDeterminism:
    def test_tracing_does_not_perturb_proof_bytes(self):
        from repro.r1cs import Circuit
        from repro.snark import TEST, proof_to_bytes, prove, setup

        circuit = Circuit()
        out = circuit.public(35)
        x = circuit.witness(3)
        circuit.assert_equal(
            circuit.mul(circuit.mul(x, x), x) + x + 5, out)
        r1cs, public, witness = circuit.compile()
        pk, _ = setup(r1cs, TEST)

        plain = proof_to_bytes(prove(pk, public, witness, seed=7).proof)
        with obs.tracing():
            traced = proof_to_bytes(prove(pk, public, witness, seed=7).proof)
        assert plain == traced
